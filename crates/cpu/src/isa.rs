//! The instruction set: encoding, decoding, a two-pass assembler, and a
//! disassembler.
//!
//! A compact 32-bit RISC encoding with 16 general registers (`r0` is
//! hard-wired to zero), 16-bit immediates, PC-relative branches, a
//! hypervisor call (`ecall`), and a small CSR file. See the crate docs for
//! why this stands in for the proprietary R52 ISA.

use crate::CpuError;
use std::collections::HashMap;
use std::fmt;

/// Decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Stop the core.
    Halt,
    /// No operation.
    Nop,
    /// Register-register ALU op: `rd = rs1 <op> rs2`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: u8,
        /// First source.
        rs1: u8,
        /// Second source.
        rs2: u8,
    },
    /// Immediate ALU op: `rd = rs1 <op> imm` (the immediate is
    /// sign-extended, except for the logical ops and/or/xor which
    /// zero-extend so `lui`+`ori` can build any 32-bit constant).
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: u8,
        /// Source register.
        rs1: u8,
        /// Sign-extended immediate.
        imm: i16,
    },
    /// Load upper immediate: `rd = imm << 16`.
    Lui {
        /// Destination register.
        rd: u8,
        /// Immediate (treated as unsigned).
        imm: u16,
    },
    /// Memory load: `rd = mem[rs1 + imm]`.
    Load {
        /// Access width/sign.
        kind: MemKind,
        /// Destination register.
        rd: u8,
        /// Base register.
        rs1: u8,
        /// Byte offset.
        imm: i16,
    },
    /// Memory store: `mem[rs1 + imm] = rd`.
    Store {
        /// Access width.
        kind: MemKind,
        /// Value register.
        rd: u8,
        /// Base register.
        rs1: u8,
        /// Byte offset.
        imm: i16,
    },
    /// Conditional branch: `if rs1 <cond> rs2 then pc += imm * 4`.
    Branch {
        /// Condition.
        cond: BranchCond,
        /// First compared register.
        rs1: u8,
        /// Second compared register.
        rs2: u8,
        /// Instruction-count offset (relative to this instruction).
        imm: i16,
    },
    /// Jump and link: `rd = pc + 4; pc += imm * 4`.
    Jal {
        /// Link register.
        rd: u8,
        /// Instruction-count offset.
        imm: i16,
    },
    /// Jump and link register: `rd = pc + 4; pc = rs1 + imm`.
    Jalr {
        /// Link register.
        rd: u8,
        /// Target base register.
        rs1: u8,
        /// Byte offset.
        imm: i16,
    },
    /// Hypervisor/system call with an immediate code.
    Ecall {
        /// Call code.
        code: u16,
    },
    /// Return from trap (privileged).
    Eret,
    /// CSR read: `rd = csr[imm]`.
    CsrRead {
        /// Destination register.
        rd: u8,
        /// CSR index.
        csr: u16,
    },
    /// CSR write: `csr[imm] = rs1` (privileged).
    CsrWrite {
        /// Source register.
        rs1: u8,
        /// CSR index.
        csr: u16,
    },
    /// Wait for interrupt (yields the core).
    Wfi,
}

/// ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication (low 32 bits).
    Mul,
    /// Signed division (x/0 = -1).
    Div,
    /// Remainder (x%0 = x).
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sra,
    /// Set if less-than (signed).
    Slt,
    /// Set if less-than (unsigned).
    Sltu,
}

/// Memory access kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemKind {
    /// 32-bit word.
    Word,
    /// Sign-extended halfword.
    Half,
    /// Zero-extended halfword.
    HalfU,
    /// Sign-extended byte.
    Byte,
    /// Zero-extended byte.
    ByteU,
}

impl MemKind {
    /// Access size in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            MemKind::Word => 4,
            MemKind::Half | MemKind::HalfU => 2,
            MemKind::Byte | MemKind::ByteU => 1,
        }
    }
}

/// Branch conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchCond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    LtU,
    /// Unsigned greater-or-equal.
    GeU,
}

// opcode bytes
const OP_HALT: u8 = 0x00;
const OP_NOP: u8 = 0x01;
const OP_ALU: u8 = 0x10; // + AluOp as offset
const OP_ALUI: u8 = 0x30; // + AluOp as offset
const OP_LUI: u8 = 0x50;
const OP_LOAD: u8 = 0x58; // + MemKind
const OP_STORE: u8 = 0x60; // + MemKind
const OP_BRANCH: u8 = 0x68; // + cond
const OP_JAL: u8 = 0x70;
const OP_JALR: u8 = 0x71;
const OP_ECALL: u8 = 0x78;
const OP_ERET: u8 = 0x79;
const OP_CSRR: u8 = 0x7A;
const OP_CSRW: u8 = 0x7B;
const OP_WFI: u8 = 0x7C;

fn alu_code(op: AluOp) -> u8 {
    op as u8
}

fn alu_from(code: u8) -> Option<AluOp> {
    use AluOp::*;
    [Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr, Sra, Slt, Sltu]
        .get(code as usize)
        .copied()
}

fn mem_from(code: u8) -> Option<MemKind> {
    use MemKind::*;
    [Word, Half, HalfU, Byte, ByteU].get(code as usize).copied()
}

fn cond_from(code: u8) -> Option<BranchCond> {
    use BranchCond::*;
    [Eq, Ne, Lt, Ge, LtU, GeU].get(code as usize).copied()
}

impl Instr {
    /// Encode to the 32-bit machine word.
    pub fn encode(self) -> u32 {
        let pack = |op: u8, rd: u8, rs1: u8, imm: u16| -> u32 {
            (u32::from(op) << 24)
                | (u32::from(rd & 0xF) << 20)
                | (u32::from(rs1 & 0xF) << 16)
                | u32::from(imm)
        };
        match self {
            Instr::Halt => pack(OP_HALT, 0, 0, 0),
            Instr::Nop => pack(OP_NOP, 0, 0, 0),
            Instr::Alu { op, rd, rs1, rs2 } => {
                pack(OP_ALU + alu_code(op), rd, rs1, u16::from(rs2 & 0xF) << 12)
            }
            Instr::AluImm { op, rd, rs1, imm } => {
                pack(OP_ALUI + alu_code(op), rd, rs1, imm as u16)
            }
            Instr::Lui { rd, imm } => pack(OP_LUI, rd, 0, imm),
            Instr::Load { kind, rd, rs1, imm } => {
                pack(OP_LOAD + kind as u8, rd, rs1, imm as u16)
            }
            Instr::Store { kind, rd, rs1, imm } => {
                pack(OP_STORE + kind as u8, rd, rs1, imm as u16)
            }
            Instr::Branch {
                cond,
                rs1,
                rs2,
                imm,
            } => {
                // imm is 12 bits here (|imm| < 2048), packed with rs2
                let imm12 = (imm as u16) & 0x0FFF;
                (u32::from(OP_BRANCH + cond as u8) << 24)
                    | (u32::from(rs2 & 0xF) << 20)
                    | (u32::from(rs1 & 0xF) << 16)
                    | (u32::from(imm12) << 4)
            }
            Instr::Jal { rd, imm } => pack(OP_JAL, rd, 0, imm as u16),
            Instr::Jalr { rd, rs1, imm } => pack(OP_JALR, rd, rs1, imm as u16),
            Instr::Ecall { code } => pack(OP_ECALL, 0, 0, code),
            Instr::Eret => pack(OP_ERET, 0, 0, 0),
            Instr::CsrRead { rd, csr } => pack(OP_CSRR, rd, 0, csr),
            Instr::CsrWrite { rs1, csr } => pack(OP_CSRW, 0, rs1, csr),
            Instr::Wfi => pack(OP_WFI, 0, 0, 0),
        }
    }

    /// Decode a machine word; `None` for illegal encodings.
    pub fn decode(word: u32) -> Option<Instr> {
        let op = (word >> 24) as u8;
        let rd = ((word >> 20) & 0xF) as u8;
        let rs1 = ((word >> 16) & 0xF) as u8;
        let imm = (word & 0xFFFF) as u16;
        let rs2 = ((word >> 12) & 0xF) as u8;
        match op {
            OP_HALT => Some(Instr::Halt),
            OP_NOP => Some(Instr::Nop),
            o if (OP_ALU..OP_ALU + 13).contains(&o) => Some(Instr::Alu {
                op: alu_from(o - OP_ALU)?,
                rd,
                rs1,
                rs2,
            }),
            o if (OP_ALUI..OP_ALUI + 13).contains(&o) => Some(Instr::AluImm {
                op: alu_from(o - OP_ALUI)?,
                rd,
                rs1,
                imm: imm as i16,
            }),
            OP_LUI => Some(Instr::Lui { rd, imm }),
            o if (OP_LOAD..OP_LOAD + 5).contains(&o) => Some(Instr::Load {
                kind: mem_from(o - OP_LOAD)?,
                rd,
                rs1,
                imm: imm as i16,
            }),
            o if (OP_STORE..OP_STORE + 5).contains(&o) => Some(Instr::Store {
                kind: mem_from(o - OP_STORE)?,
                rd,
                rs1,
                imm: imm as i16,
            }),
            o if (OP_BRANCH..OP_BRANCH + 6).contains(&o) => {
                let imm12 = ((word >> 4) & 0x0FFF) as u16;
                // sign-extend 12 bits
                let imm = ((imm12 << 4) as i16) >> 4;
                Some(Instr::Branch {
                    cond: cond_from(op - OP_BRANCH)?,
                    rs1,
                    rs2: rd,
                    imm,
                })
            }
            OP_JAL => Some(Instr::Jal {
                rd,
                imm: imm as i16,
            }),
            OP_JALR => Some(Instr::Jalr {
                rd,
                rs1,
                imm: imm as i16,
            }),
            OP_ECALL => Some(Instr::Ecall { code: imm }),
            OP_ERET => Some(Instr::Eret),
            OP_CSRR => Some(Instr::CsrRead { rd, csr: imm }),
            OP_CSRW => Some(Instr::CsrWrite { rs1, csr: imm }),
            OP_WFI => Some(Instr::Wfi),
            _ => None,
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Halt => write!(f, "halt"),
            Instr::Nop => write!(f, "nop"),
            Instr::Alu { op, rd, rs1, rs2 } => {
                write!(f, "{} r{rd}, r{rs1}, r{rs2}", alu_name(*op))
            }
            Instr::AluImm { op, rd, rs1, imm } => {
                write!(f, "{}i r{rd}, r{rs1}, {imm}", alu_name(*op))
            }
            Instr::Lui { rd, imm } => write!(f, "lui r{rd}, {imm:#x}"),
            Instr::Load { kind, rd, rs1, imm } => {
                write!(f, "l{} r{rd}, {imm}(r{rs1})", mem_suffix(*kind))
            }
            Instr::Store { kind, rd, rs1, imm } => {
                write!(f, "s{} r{rd}, {imm}(r{rs1})", mem_suffix(*kind))
            }
            Instr::Branch {
                cond,
                rs1,
                rs2,
                imm,
            } => write!(f, "b{} r{rs1}, r{rs2}, {imm}", cond_name(*cond)),
            Instr::Jal { rd, imm } => write!(f, "jal r{rd}, {imm}"),
            Instr::Jalr { rd, rs1, imm } => write!(f, "jalr r{rd}, r{rs1}, {imm}"),
            Instr::Ecall { code } => write!(f, "ecall {code}"),
            Instr::Eret => write!(f, "eret"),
            Instr::CsrRead { rd, csr } => write!(f, "csrr r{rd}, {csr}"),
            Instr::CsrWrite { rs1, csr } => write!(f, "csrw r{rs1}, {csr}"),
            Instr::Wfi => write!(f, "wfi"),
        }
    }
}

fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::Mul => "mul",
        AluOp::Div => "div",
        AluOp::Rem => "rem",
        AluOp::And => "and",
        AluOp::Or => "or",
        AluOp::Xor => "xor",
        AluOp::Shl => "shl",
        AluOp::Shr => "shr",
        AluOp::Sra => "sra",
        AluOp::Slt => "slt",
        AluOp::Sltu => "sltu",
    }
}

fn mem_suffix(kind: MemKind) -> &'static str {
    match kind {
        MemKind::Word => "w",
        MemKind::Half => "h",
        MemKind::HalfU => "hu",
        MemKind::Byte => "b",
        MemKind::ByteU => "bu",
    }
}

fn cond_name(c: BranchCond) -> &'static str {
    match c {
        BranchCond::Eq => "eq",
        BranchCond::Ne => "ne",
        BranchCond::Lt => "lt",
        BranchCond::Ge => "ge",
        BranchCond::LtU => "ltu",
        BranchCond::GeU => "geu",
    }
}

/// Assemble a program. Supports labels (`name:`), comments (`;` or `#`),
/// decimal/hex immediates, and label operands in branch/jal positions.
///
/// # Errors
///
/// Returns [`CpuError::Asm`] with the offending line on malformed input.
pub fn assemble(src: &str) -> Result<Vec<u32>, CpuError> {
    // first pass: labels
    let mut labels: HashMap<String, usize> = HashMap::new();
    let mut cleaned: Vec<(usize, String)> = Vec::new();
    let mut pc = 0usize;
    for (ln, raw) in src.lines().enumerate() {
        let mut line = raw;
        if let Some(i) = line.find(';') {
            line = &line[..i];
        }
        if let Some(i) = line.find('#') {
            line = &line[..i];
        }
        let mut line = line.trim().to_string();
        while let Some(colon) = line.find(':') {
            let label = line[..colon].trim().to_string();
            if label.is_empty() || !label.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(CpuError::Asm {
                    line: ln + 1,
                    detail: format!("bad label `{label}`"),
                });
            }
            labels.insert(label, pc);
            line = line[colon + 1..].trim().to_string();
        }
        if line.is_empty() {
            continue;
        }
        cleaned.push((ln + 1, line));
        pc += 1;
    }
    // second pass: encode
    let mut out = Vec::with_capacity(cleaned.len());
    for (idx, (ln, line)) in cleaned.iter().enumerate() {
        let instr = parse_line(line, idx, &labels)
            .map_err(|detail| CpuError::Asm { line: *ln, detail })?;
        out.push(instr.encode());
    }
    Ok(out)
}

fn parse_line(line: &str, pc: usize, labels: &HashMap<String, usize>) -> Result<Instr, String> {
    let (mn, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
    let mn = mn.to_ascii_lowercase();
    let args: Vec<String> = rest
        .split(',')
        .map(|a| a.trim().to_string())
        .filter(|a| !a.is_empty())
        .collect();
    let reg = |s: &str| -> Result<u8, String> {
        let s = s.trim();
        s.strip_prefix('r')
            .and_then(|n| n.parse::<u8>().ok())
            .filter(|&n| n < 16)
            .ok_or_else(|| format!("bad register `{s}`"))
    };
    let imm = |s: &str| -> Result<i64, String> {
        let s = s.trim();
        let (neg, body) = match s.strip_prefix('-') {
            Some(b) => (true, b),
            None => (false, s),
        };
        let v = if let Some(hex) = body.strip_prefix("0x") {
            i64::from_str_radix(hex, 16)
        } else {
            body.parse::<i64>()
        }
        .map_err(|_| format!("bad immediate `{s}`"))?;
        Ok(if neg { -v } else { v })
    };
    let target = |s: &str| -> Result<i16, String> {
        if let Some(&t) = labels.get(s.trim()) {
            Ok(t as i16 - pc as i16)
        } else {
            imm(s).map(|v| v as i16)
        }
    };
    // `imm(rN)` addressing for loads/stores
    let mem_operand = |s: &str| -> Result<(u8, i16), String> {
        let s = s.trim();
        if let Some(open) = s.find('(') {
            let close = s.find(')').ok_or_else(|| format!("missing `)` in `{s}`"))?;
            let off = if s[..open].trim().is_empty() {
                0
            } else {
                imm(&s[..open])? as i16
            };
            Ok((reg(&s[open + 1..close])?, off))
        } else {
            Err(format!("expected `imm(rN)`, got `{s}`"))
        }
    };
    let need = |n: usize| -> Result<(), String> {
        if args.len() == n {
            Ok(())
        } else {
            Err(format!("{mn} expects {n} operands, got {}", args.len()))
        }
    };
    let alu_mn = |m: &str| -> Option<AluOp> {
        Some(match m {
            "add" => AluOp::Add,
            "sub" => AluOp::Sub,
            "mul" => AluOp::Mul,
            "div" => AluOp::Div,
            "rem" => AluOp::Rem,
            "and" => AluOp::And,
            "or" => AluOp::Or,
            "xor" => AluOp::Xor,
            "shl" => AluOp::Shl,
            "shr" => AluOp::Shr,
            "sra" => AluOp::Sra,
            "slt" => AluOp::Slt,
            "sltu" => AluOp::Sltu,
            _ => return None,
        })
    };
    match mn.as_str() {
        "halt" => Ok(Instr::Halt),
        "nop" => Ok(Instr::Nop),
        "wfi" => Ok(Instr::Wfi),
        "eret" => Ok(Instr::Eret),
        "ecall" => {
            need(1)?;
            Ok(Instr::Ecall {
                code: imm(&args[0])? as u16,
            })
        }
        "lui" => {
            need(2)?;
            Ok(Instr::Lui {
                rd: reg(&args[0])?,
                imm: imm(&args[1])? as u16,
            })
        }
        "csrr" => {
            need(2)?;
            Ok(Instr::CsrRead {
                rd: reg(&args[0])?,
                csr: imm(&args[1])? as u16,
            })
        }
        "csrw" => {
            need(2)?;
            Ok(Instr::CsrWrite {
                rs1: reg(&args[0])?,
                csr: imm(&args[1])? as u16,
            })
        }
        "jal" => {
            need(2)?;
            Ok(Instr::Jal {
                rd: reg(&args[0])?,
                imm: target(&args[1])?,
            })
        }
        "jalr" => {
            need(3)?;
            Ok(Instr::Jalr {
                rd: reg(&args[0])?,
                rs1: reg(&args[1])?,
                imm: imm(&args[2])? as i16,
            })
        }
        "lw" | "lh" | "lhu" | "lb" | "lbu" => {
            need(2)?;
            let kind = match mn.as_str() {
                "lw" => MemKind::Word,
                "lh" => MemKind::Half,
                "lhu" => MemKind::HalfU,
                "lb" => MemKind::Byte,
                _ => MemKind::ByteU,
            };
            let (rs1, off) = mem_operand(&args[1])?;
            Ok(Instr::Load {
                kind,
                rd: reg(&args[0])?,
                rs1,
                imm: off,
            })
        }
        "sw" | "sh" | "sb" => {
            need(2)?;
            let kind = match mn.as_str() {
                "sw" => MemKind::Word,
                "sh" => MemKind::Half,
                _ => MemKind::Byte,
            };
            let (rs1, off) = mem_operand(&args[1])?;
            Ok(Instr::Store {
                kind,
                rd: reg(&args[0])?,
                rs1,
                imm: off,
            })
        }
        "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
            need(3)?;
            let cond = match mn.as_str() {
                "beq" => BranchCond::Eq,
                "bne" => BranchCond::Ne,
                "blt" => BranchCond::Lt,
                "bge" => BranchCond::Ge,
                "bltu" => BranchCond::LtU,
                _ => BranchCond::GeU,
            };
            Ok(Instr::Branch {
                cond,
                rs1: reg(&args[0])?,
                rs2: reg(&args[1])?,
                imm: target(&args[2])?,
            })
        }
        m => {
            if let Some(op) = m.strip_suffix('i').and_then(alu_mn) {
                need(3)?;
                return Ok(Instr::AluImm {
                    op,
                    rd: reg(&args[0])?,
                    rs1: reg(&args[1])?,
                    imm: imm(&args[2])? as i16,
                });
            }
            if let Some(op) = alu_mn(m) {
                need(3)?;
                return Ok(Instr::Alu {
                    op,
                    rd: reg(&args[0])?,
                    rs1: reg(&args[1])?,
                    rs2: reg(&args[2])?,
                });
            }
            Err(format!("unknown mnemonic `{m}`"))
        }
    }
}

/// Disassemble a word, or render `.word` for illegal encodings.
pub fn disassemble(word: u32) -> String {
    match Instr::decode(word) {
        Some(i) => i.to_string(),
        None => format!(".word {word:#010x}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let instrs = vec![
            Instr::Halt,
            Instr::Nop,
            Instr::Alu {
                op: AluOp::Mul,
                rd: 3,
                rs1: 4,
                rs2: 5,
            },
            Instr::AluImm {
                op: AluOp::Add,
                rd: 1,
                rs1: 2,
                imm: -42,
            },
            Instr::Lui { rd: 7, imm: 0xABCD },
            Instr::Load {
                kind: MemKind::HalfU,
                rd: 2,
                rs1: 9,
                imm: 16,
            },
            Instr::Store {
                kind: MemKind::Byte,
                rd: 2,
                rs1: 9,
                imm: -1,
            },
            Instr::Branch {
                cond: BranchCond::LtU,
                rs1: 1,
                rs2: 2,
                imm: -100,
            },
            Instr::Jal { rd: 14, imm: 50 },
            Instr::Jalr {
                rd: 0,
                rs1: 14,
                imm: 0,
            },
            Instr::Ecall { code: 0x42 },
            Instr::Eret,
            Instr::CsrRead { rd: 5, csr: 3 },
            Instr::CsrWrite { rs1: 5, csr: 3 },
            Instr::Wfi,
        ];
        for i in instrs {
            assert_eq!(Instr::decode(i.encode()), Some(i), "roundtrip {i}");
        }
    }

    #[test]
    fn assembler_basics() {
        let prog = assemble(
            "start:\n  addi r1, r0, 5\n  add r2, r1, r1 ; double\n  bne r2, r0, start\n  halt\n",
        )
        .unwrap();
        assert_eq!(prog.len(), 4);
        assert_eq!(
            Instr::decode(prog[0]),
            Some(Instr::AluImm {
                op: AluOp::Add,
                rd: 1,
                rs1: 0,
                imm: 5
            })
        );
        // branch back to start: offset -2
        assert_eq!(
            Instr::decode(prog[2]),
            Some(Instr::Branch {
                cond: BranchCond::Ne,
                rs1: 2,
                rs2: 0,
                imm: -2
            })
        );
    }

    #[test]
    fn memory_operands() {
        let prog = assemble("lw r1, 8(r2)\nsw r1, (r3)\nlbu r4, -4(r5)").unwrap();
        assert_eq!(
            Instr::decode(prog[0]),
            Some(Instr::Load {
                kind: MemKind::Word,
                rd: 1,
                rs1: 2,
                imm: 8
            })
        );
        assert_eq!(
            Instr::decode(prog[1]),
            Some(Instr::Store {
                kind: MemKind::Word,
                rd: 1,
                rs1: 3,
                imm: 0
            })
        );
        assert_eq!(
            Instr::decode(prog[2]),
            Some(Instr::Load {
                kind: MemKind::ByteU,
                rd: 4,
                rs1: 5,
                imm: -4
            })
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        match assemble("nop\nbogus r1, r2\n") {
            Err(CpuError::Asm { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected asm error, got {other:?}"),
        }
        assert!(assemble("add r1, r99, r2").is_err());
        assert!(assemble("lw r1, r2").is_err());
    }

    #[test]
    fn hex_and_negative_immediates() {
        let p = assemble("lui r1, 0x1234\naddi r2, r0, -100").unwrap();
        assert_eq!(
            Instr::decode(p[0]),
            Some(Instr::Lui { rd: 1, imm: 0x1234 })
        );
        assert_eq!(
            Instr::decode(p[1]),
            Some(Instr::AluImm {
                op: AluOp::Add,
                rd: 2,
                rs1: 0,
                imm: -100
            })
        );
    }

    #[test]
    fn disassembly_is_readable() {
        let p = assemble("mul r3, r4, r5").unwrap();
        assert_eq!(disassemble(p[0]), "mul r3, r4, r5");
        assert!(disassemble(0xFF00_0000).starts_with(".word"));
    }
}
