//! Memory protection unit and protection-key domains.
//!
//! A per-core region-based MPU in the R52 style: a fixed number of regions,
//! each with a base/limit pair and read/write/execute permissions per
//! privilege level. The hypervisor (privileged software) programs the MPU
//! before dispatching a partition; any access outside the partition's
//! regions traps — this is the *spatial* half of time-and-space
//! partitioning.
//!
//! ## Protection-key domains
//!
//! Layered beside the region permissions sits a small protection-key table
//! (RustyMPK / Intel-MPK style, scaled down to the R52 model): every region
//! carries a **domain key** and the hart exposes one **active-key
//! register** ([`Mpu::active_key`]). An unprivileged access passes only if
//! a covering region both permits the access *and* is tagged with the
//! shared key ([`KEY_SHARED`]) or the hart's active key. The payoff is in
//! context-switch cost: instead of reprogramming the whole region table at
//! every partition dispatch (cost scaling with region count), the
//! hypervisor installs the union table once and swaps the single key
//! register per dispatch — the *gate crossing*. The constants below model
//! both costs in cycles so the switch paths can be compared.
//!
//! ## Overlap semantics
//!
//! Overlapping regions are legal and resolve **most-permissive**: an
//! access is allowed if *any* covering region (covering the first and last
//! byte) permits it for an allowed key. There is no first-match priority —
//! region order never matters. This is asserted by the edge-case tests
//! below.

/// Access kinds checked by the MPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Execute,
}

/// Privilege levels (the hypervisor runs privileged; partitions do not).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Privilege {
    /// Hypervisor / boot software (bypasses the MPU).
    #[default]
    Privileged,
    /// Partition (guest) code.
    User,
}

/// The domain key matching every active key (untagged/shared regions).
pub const KEY_SHARED: u8 = 0;

/// Cycles to swap the per-hart active-key register at dispatch (one
/// register write plus a synchronization barrier).
pub const GATE_CROSS_CYCLES: u64 = 2;

/// Fixed cycles of a full MPU reprogram (disable, drain, re-enable).
pub const MPU_REPROGRAM_BASE_CYCLES: u64 = 6;

/// Cycles per region of a full MPU reprogram (base, limit, and attribute
/// register writes).
pub const MPU_REPROGRAM_CYCLES_PER_REGION: u64 = 4;

/// Cost in cycles of reprogramming `regions` MPU regions.
pub fn reprogram_cost(regions: usize) -> u64 {
    MPU_REPROGRAM_BASE_CYCLES + MPU_REPROGRAM_CYCLES_PER_REGION * regions as u64
}

/// One MPU region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MpuRegion {
    /// First byte covered.
    pub base: u32,
    /// Size in bytes.
    pub size: u32,
    /// Allow unprivileged reads.
    pub user_read: bool,
    /// Allow unprivileged writes.
    pub user_write: bool,
    /// Allow unprivileged instruction fetch.
    pub user_exec: bool,
    /// Protection-domain key. [`KEY_SHARED`] (the default of the
    /// constructors) matches every active key; any other value matches
    /// only a hart whose [`Mpu::active_key`] equals it.
    pub key: u8,
}

impl MpuRegion {
    /// A read/write/execute region (convenience).
    pub fn rwx(base: u32, size: u32) -> Self {
        MpuRegion {
            base,
            size,
            user_read: true,
            user_write: true,
            user_exec: true,
            key: KEY_SHARED,
        }
    }

    /// A read-only data region.
    pub fn ro(base: u32, size: u32) -> Self {
        MpuRegion {
            base,
            size,
            user_read: true,
            user_write: false,
            user_exec: false,
            key: KEY_SHARED,
        }
    }

    /// Tag the region with a protection-domain key (builder style).
    #[must_use]
    pub fn with_key(mut self, key: u8) -> Self {
        self.key = key;
        self
    }

    fn contains(&self, addr: u32) -> bool {
        addr >= self.base && (addr - self.base) < self.size
    }

    fn permits(&self, access: Access) -> bool {
        match access {
            Access::Read => self.user_read,
            Access::Write => self.user_write,
            Access::Execute => self.user_exec,
        }
    }

    fn key_allows(&self, active: u8) -> bool {
        self.key == KEY_SHARED || self.key == active
    }
}

/// Maximum programmable regions (matches the R52's 16+8 EL1/EL2 split,
/// simplified to one bank).
pub const MAX_REGIONS: usize = 16;

/// Why [`Mpu::try_program`] rejected a region set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpuProgramError {
    /// More regions than the hardware has slots for.
    TooManyRegions {
        /// Regions supplied.
        requested: usize,
    },
    /// A region with `size == 0` covers nothing and is rejected rather
    /// than silently never matching.
    ZeroSizeRegion {
        /// Index of the offending region.
        index: usize,
    },
}

impl std::fmt::Display for MpuProgramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpuProgramError::TooManyRegions { requested } => write!(
                f,
                "MPU supports at most {MAX_REGIONS} regions ({requested} requested)"
            ),
            MpuProgramError::ZeroSizeRegion { index } => {
                write!(f, "MPU region {index} has zero size")
            }
        }
    }
}

impl std::error::Error for MpuProgramError {}

/// Outcome of a checked access, attributing the denial cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpuVerdict {
    /// A covering region permits the access under an allowed key.
    Allowed,
    /// No covering region permits the access at all (classic MPU fault).
    NoRegion,
    /// A covering region would permit the access, but its domain key does
    /// not match the hart's active key (protection-domain fault).
    KeyDenied,
}

/// The per-core MPU.
#[derive(Debug, Clone, Default)]
pub struct Mpu {
    regions: Vec<MpuRegion>,
    /// Whether the MPU enforces unprivileged accesses (disabled at reset,
    /// enabled by the hypervisor).
    pub enabled: bool,
    /// The hart's active protection-domain key, swapped by the hypervisor
    /// at partition dispatch (the gate crossing). Regions tagged
    /// [`KEY_SHARED`] match any value.
    pub active_key: u8,
}

impl Mpu {
    /// An MPU with no regions, disabled.
    pub fn new() -> Self {
        Mpu::default()
    }

    /// Replace the programmed regions, rejecting invalid sets.
    ///
    /// # Errors
    ///
    /// [`MpuProgramError::TooManyRegions`] past [`MAX_REGIONS`];
    /// [`MpuProgramError::ZeroSizeRegion`] for any zero-size region.
    pub fn try_program(&mut self, regions: &[MpuRegion]) -> Result<(), MpuProgramError> {
        if regions.len() > MAX_REGIONS {
            return Err(MpuProgramError::TooManyRegions {
                requested: regions.len(),
            });
        }
        if let Some(index) = regions.iter().position(|r| r.size == 0) {
            return Err(MpuProgramError::ZeroSizeRegion { index });
        }
        self.regions = regions.to_vec();
        Ok(())
    }

    /// Replace the programmed regions (privileged operation; the caller —
    /// the hypervisor model — is trusted).
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_REGIONS`] regions are supplied or any
    /// region has zero size; [`Mpu::try_program`] is the fallible form.
    pub fn program(&mut self, regions: &[MpuRegion]) {
        if let Err(e) = self.try_program(regions) {
            panic!("{e}");
        }
    }

    /// Clear all regions, reset the active key, and disable enforcement.
    pub fn reset(&mut self) {
        self.regions.clear();
        self.enabled = false;
        self.active_key = KEY_SHARED;
    }

    /// Currently programmed regions.
    pub fn regions(&self) -> &[MpuRegion] {
        &self.regions
    }

    /// Check an access with cause attribution.
    ///
    /// Privileged accesses always pass; with the MPU disabled everything
    /// passes (boot-time behaviour). Overlaps resolve most-permissive: any
    /// covering region that permits the access under an allowed key wins.
    pub fn verdict(&self, privilege: Privilege, access: Access, addr: u32, size: u32) -> MpuVerdict {
        if privilege == Privilege::Privileged || !self.enabled {
            return MpuVerdict::Allowed;
        }
        let last = addr.saturating_add(size.saturating_sub(1));
        let mut key_denied = false;
        for r in &self.regions {
            if r.contains(addr) && r.contains(last) && r.permits(access) {
                if r.key_allows(self.active_key) {
                    return MpuVerdict::Allowed;
                }
                key_denied = true;
            }
        }
        if key_denied {
            MpuVerdict::KeyDenied
        } else {
            MpuVerdict::NoRegion
        }
    }

    /// Check an access; `true` = allowed.
    ///
    /// Privileged accesses always pass; with the MPU disabled everything
    /// passes (boot-time behaviour).
    pub fn check(&self, privilege: Privilege, access: Access, addr: u32, size: u32) -> bool {
        self.verdict(privilege, access, addr, size) == MpuVerdict::Allowed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_mpu_allows_everything() {
        let mpu = Mpu::new();
        assert!(mpu.check(Privilege::User, Access::Write, 0x1234, 4));
    }

    #[test]
    fn privileged_bypasses() {
        let mut mpu = Mpu::new();
        mpu.enabled = true;
        assert!(mpu.check(Privilege::Privileged, Access::Write, 0xFFFF_0000, 4));
        assert!(!mpu.check(Privilege::User, Access::Read, 0xFFFF_0000, 4));
    }

    #[test]
    fn region_permissions_enforced() {
        let mut mpu = Mpu::new();
        mpu.enabled = true;
        mpu.program(&[
            MpuRegion::rwx(0x1000, 0x1000),
            MpuRegion::ro(0x8000, 0x100),
        ]);
        assert!(mpu.check(Privilege::User, Access::Write, 0x1800, 4));
        assert!(mpu.check(Privilege::User, Access::Execute, 0x1000, 4));
        assert!(mpu.check(Privilege::User, Access::Read, 0x8010, 4));
        assert!(!mpu.check(Privilege::User, Access::Write, 0x8010, 4));
        assert!(!mpu.check(Privilege::User, Access::Read, 0x9000, 4));
    }

    #[test]
    fn straddling_access_rejected() {
        let mut mpu = Mpu::new();
        mpu.enabled = true;
        mpu.program(&[MpuRegion::rwx(0x1000, 0x10)]);
        // 4-byte access whose last byte falls outside the region
        assert!(!mpu.check(Privilege::User, Access::Read, 0x100E, 4));
        assert!(mpu.check(Privilege::User, Access::Read, 0x100C, 4));
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_regions_panics() {
        let mut mpu = Mpu::new();
        let regions = vec![MpuRegion::rwx(0, 16); MAX_REGIONS + 1];
        mpu.program(&regions);
    }

    #[test]
    fn try_program_rejects_exhaustion_and_zero_size() {
        let mut mpu = Mpu::new();
        let too_many = vec![MpuRegion::rwx(0, 16); MAX_REGIONS + 1];
        assert_eq!(
            mpu.try_program(&too_many),
            Err(MpuProgramError::TooManyRegions {
                requested: MAX_REGIONS + 1
            })
        );
        let zero = [MpuRegion::rwx(0x1000, 0x10), MpuRegion::rwx(0x2000, 0)];
        assert_eq!(
            mpu.try_program(&zero),
            Err(MpuProgramError::ZeroSizeRegion { index: 1 })
        );
        assert!(mpu.regions().is_empty(), "failed program leaves no regions");
        assert!(mpu.try_program(&[MpuRegion::rwx(0, 16); MAX_REGIONS]).is_ok());
        assert_eq!(mpu.regions().len(), MAX_REGIONS);
    }

    #[test]
    fn overlapping_regions_resolve_most_permissive() {
        // a read-only region overlapping an rwx region: the union of
        // permissions applies in the overlap, regardless of program order
        let a = MpuRegion::ro(0x1000, 0x1000);
        let b = MpuRegion::rwx(0x1800, 0x1000);
        for order in [[a, b], [b, a]] {
            let mut mpu = Mpu::new();
            mpu.enabled = true;
            mpu.program(&order);
            // overlap [0x1800, 0x2000): most-permissive -> writable
            assert!(mpu.check(Privilege::User, Access::Write, 0x1900, 4));
            assert!(mpu.check(Privilege::User, Access::Read, 0x1900, 4));
            // ro-only stretch keeps its restriction
            assert!(!mpu.check(Privilege::User, Access::Write, 0x1100, 4));
            // rwx-only stretch unaffected by the ro region
            assert!(mpu.check(Privilege::User, Access::Write, 0x2100, 4));
        }
    }

    #[test]
    fn boundary_addresses_all_access_kinds() {
        let base = 0x4000u32;
        let size = 0x100u32;
        let mut mpu = Mpu::new();
        mpu.enabled = true;
        mpu.program(&[MpuRegion::rwx(base, size)]);
        for access in [Access::Read, Access::Write, Access::Execute] {
            assert!(mpu.check(Privilege::User, access, base, 1), "{access:?} at base");
            assert!(
                mpu.check(Privilege::User, access, base + size - 1, 1),
                "{access:?} at base+size-1"
            );
            assert!(
                !mpu.check(Privilege::User, access, base + size, 1),
                "{access:?} at base+size"
            );
            assert!(
                !mpu.check(Privilege::User, access, base - 1, 1),
                "{access:?} at base-1"
            );
        }
    }

    #[test]
    fn domain_keys_gate_access() {
        let mut mpu = Mpu::new();
        mpu.enabled = true;
        mpu.program(&[
            MpuRegion::rwx(0x1000, 0x1000).with_key(1),
            MpuRegion::rwx(0x2000, 0x1000).with_key(2),
            MpuRegion::ro(0x3000, 0x1000), // KEY_SHARED
        ]);
        mpu.active_key = 1;
        assert_eq!(mpu.verdict(Privilege::User, Access::Write, 0x1000, 4), MpuVerdict::Allowed);
        assert_eq!(
            mpu.verdict(Privilege::User, Access::Write, 0x2000, 4),
            MpuVerdict::KeyDenied,
            "neighbor domain denied by key, not by region absence"
        );
        assert_eq!(
            mpu.verdict(Privilege::User, Access::Read, 0x3000, 4),
            MpuVerdict::Allowed,
            "shared-key region readable from any domain"
        );
        assert_eq!(
            mpu.verdict(Privilege::User, Access::Write, 0x9000, 4),
            MpuVerdict::NoRegion
        );
        // gate crossing: swapping the key register flips the verdicts
        mpu.active_key = 2;
        assert_eq!(mpu.verdict(Privilege::User, Access::Write, 0x1000, 4), MpuVerdict::KeyDenied);
        assert_eq!(mpu.verdict(Privilege::User, Access::Write, 0x2000, 4), MpuVerdict::Allowed);
        // privileged code bypasses keys like it bypasses regions
        assert_eq!(
            mpu.verdict(Privilege::Privileged, Access::Write, 0x1000, 4),
            MpuVerdict::Allowed
        );
    }

    #[test]
    fn reset_clears_key_and_regions() {
        let mut mpu = Mpu::new();
        mpu.enabled = true;
        mpu.active_key = 3;
        mpu.program(&[MpuRegion::rwx(0, 16).with_key(3)]);
        mpu.reset();
        assert!(!mpu.enabled);
        assert_eq!(mpu.active_key, KEY_SHARED);
        assert!(mpu.regions().is_empty());
    }

    #[test]
    fn cost_model_orders_gate_crossing_below_reprogram() {
        assert!(GATE_CROSS_CYCLES < reprogram_cost(1));
        assert_eq!(reprogram_cost(0), MPU_REPROGRAM_BASE_CYCLES);
        assert_eq!(
            reprogram_cost(4),
            MPU_REPROGRAM_BASE_CYCLES + 4 * MPU_REPROGRAM_CYCLES_PER_REGION
        );
    }
}
