//! Memory protection unit.
//!
//! A per-core region-based MPU in the R52 style: a fixed number of regions,
//! each with a base/limit pair and read/write/execute permissions per
//! privilege level. The hypervisor (privileged software) programs the MPU
//! before dispatching a partition; any access outside the partition's
//! regions traps — this is the *spatial* half of time-and-space
//! partitioning.

/// Access kinds checked by the MPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Execute,
}

/// Privilege levels (the hypervisor runs privileged; partitions do not).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Privilege {
    /// Hypervisor / boot software (bypasses the MPU).
    #[default]
    Privileged,
    /// Partition (guest) code.
    User,
}

/// One MPU region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MpuRegion {
    /// First byte covered.
    pub base: u32,
    /// Size in bytes.
    pub size: u32,
    /// Allow unprivileged reads.
    pub user_read: bool,
    /// Allow unprivileged writes.
    pub user_write: bool,
    /// Allow unprivileged instruction fetch.
    pub user_exec: bool,
}

impl MpuRegion {
    /// A read/write/execute region (convenience).
    pub fn rwx(base: u32, size: u32) -> Self {
        MpuRegion {
            base,
            size,
            user_read: true,
            user_write: true,
            user_exec: true,
        }
    }

    /// A read-only data region.
    pub fn ro(base: u32, size: u32) -> Self {
        MpuRegion {
            base,
            size,
            user_read: true,
            user_write: false,
            user_exec: false,
        }
    }

    fn contains(&self, addr: u32) -> bool {
        addr >= self.base && (addr - self.base) < self.size
    }

    fn permits(&self, access: Access) -> bool {
        match access {
            Access::Read => self.user_read,
            Access::Write => self.user_write,
            Access::Execute => self.user_exec,
        }
    }
}

/// Maximum programmable regions (matches the R52's 16+8 EL1/EL2 split,
/// simplified to one bank).
pub const MAX_REGIONS: usize = 16;

/// The per-core MPU.
#[derive(Debug, Clone, Default)]
pub struct Mpu {
    regions: Vec<MpuRegion>,
    /// Whether the MPU enforces unprivileged accesses (disabled at reset,
    /// enabled by the hypervisor).
    pub enabled: bool,
}

impl Mpu {
    /// An MPU with no regions, disabled.
    pub fn new() -> Self {
        Mpu::default()
    }

    /// Replace the programmed regions (privileged operation; the caller —
    /// the hypervisor model — is trusted).
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_REGIONS`] regions are supplied.
    pub fn program(&mut self, regions: &[MpuRegion]) {
        assert!(
            regions.len() <= MAX_REGIONS,
            "MPU supports at most {MAX_REGIONS} regions"
        );
        self.regions = regions.to_vec();
    }

    /// Clear all regions and disable enforcement.
    pub fn reset(&mut self) {
        self.regions.clear();
        self.enabled = false;
    }

    /// Currently programmed regions.
    pub fn regions(&self) -> &[MpuRegion] {
        &self.regions
    }

    /// Check an access; `true` = allowed.
    ///
    /// Privileged accesses always pass; with the MPU disabled everything
    /// passes (boot-time behaviour).
    pub fn check(&self, privilege: Privilege, access: Access, addr: u32, size: u32) -> bool {
        if privilege == Privilege::Privileged || !self.enabled {
            return true;
        }
        let last = addr.saturating_add(size.saturating_sub(1));
        self.regions
            .iter()
            .any(|r| r.contains(addr) && r.contains(last) && r.permits(access))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_mpu_allows_everything() {
        let mpu = Mpu::new();
        assert!(mpu.check(Privilege::User, Access::Write, 0x1234, 4));
    }

    #[test]
    fn privileged_bypasses() {
        let mut mpu = Mpu::new();
        mpu.enabled = true;
        assert!(mpu.check(Privilege::Privileged, Access::Write, 0xFFFF_0000, 4));
        assert!(!mpu.check(Privilege::User, Access::Read, 0xFFFF_0000, 4));
    }

    #[test]
    fn region_permissions_enforced() {
        let mut mpu = Mpu::new();
        mpu.enabled = true;
        mpu.program(&[
            MpuRegion::rwx(0x1000, 0x1000),
            MpuRegion::ro(0x8000, 0x100),
        ]);
        assert!(mpu.check(Privilege::User, Access::Write, 0x1800, 4));
        assert!(mpu.check(Privilege::User, Access::Execute, 0x1000, 4));
        assert!(mpu.check(Privilege::User, Access::Read, 0x8010, 4));
        assert!(!mpu.check(Privilege::User, Access::Write, 0x8010, 4));
        assert!(!mpu.check(Privilege::User, Access::Read, 0x9000, 4));
    }

    #[test]
    fn straddling_access_rejected() {
        let mut mpu = Mpu::new();
        mpu.enabled = true;
        mpu.program(&[MpuRegion::rwx(0x1000, 0x10)]);
        // 4-byte access whose last byte falls outside the region
        assert!(!mpu.check(Privilege::User, Access::Read, 0x100E, 4));
        assert!(mpu.check(Privilege::User, Access::Read, 0x100C, 4));
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_regions_panics() {
        let mut mpu = Mpu::new();
        let regions = vec![MpuRegion::rwx(0, 16); MAX_REGIONS + 1];
        mpu.program(&regions);
    }
}
