//! A single hardware thread (core).
//!
//! Executes the ISA of [`crate::isa`] against a shared [`SystemBus`], with
//! per-core [`Mpu`] enforcement, two privilege levels, precise traps, and a
//! CSR file. `ecall` from unprivileged code returns control to the
//! embedding software (the hypervisor model), mirroring a trap to EL2 on
//! the real R52.

use crate::isa::{AluOp, BranchCond, Instr, MemKind};
use crate::memmap::SystemBus;
use crate::mpu::{Access, Mpu, MpuVerdict, Privilege};
use crate::CpuError;

/// CSR indices.
pub mod csr {
    /// Exception PC.
    pub const EPC: u16 = 0;
    /// Trap cause.
    pub const CAUSE: u16 = 1;
    /// Current privilege (read-only).
    pub const MODE: u16 = 2;
    /// Trap vector address.
    pub const TVEC: u16 = 3;
    /// Scratch register for trap handlers.
    pub const SCRATCH: u16 = 4;
    /// Cycle counter (low 32 bits, read-only).
    pub const CYCLE: u16 = 5;
    /// Hart id (read-only).
    pub const HARTID: u16 = 6;
    /// Privilege level before the last trap.
    pub const PREV_MODE: u16 = 7;
    /// Number of CSRs.
    pub const COUNT: usize = 8;
}

/// Trap causes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrapCause {
    /// Illegal or undecodable instruction.
    IllegalInstruction,
    /// MPU denied a data access.
    MpuDataFault,
    /// MPU denied an instruction fetch.
    MpuFetchFault,
    /// Bus error (unmapped address).
    BusError,
    /// Unaligned access.
    Unaligned,
    /// Privileged instruction from user mode.
    PrivilegeViolation,
    /// A covering MPU region would permit the access, but its
    /// protection-domain key does not match the hart's active key — the
    /// access crossed into another partition's domain.
    DomainFault,
}

impl TrapCause {
    /// Numeric code stored in the CAUSE CSR.
    pub fn code(self) -> u32 {
        match self {
            TrapCause::IllegalInstruction => 1,
            TrapCause::MpuDataFault => 2,
            TrapCause::MpuFetchFault => 3,
            TrapCause::BusError => 4,
            TrapCause::Unaligned => 5,
            TrapCause::PrivilegeViolation => 6,
            TrapCause::DomainFault => 7,
        }
    }
}

/// What a single step produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Normal forward progress.
    None,
    /// The core executed `halt`.
    Halted,
    /// The core executed `wfi` and idles until resumed.
    Waiting,
    /// `ecall` from *unprivileged* code: control returns to the embedder
    /// (hypervisor) with the call code. Privileged ecalls vector through
    /// TVEC like traps.
    HypervisorCall(u16),
    /// A trap occurred and no trap vector is installed — fatal for the
    /// current context; the embedder decides (health monitor).
    UnhandledTrap(TrapCause),
}

/// One core.
#[derive(Debug, Clone)]
pub struct Hart {
    regs: [u32; 16],
    /// Program counter (byte address).
    pub pc: u32,
    csrs: [u32; csr::COUNT],
    /// Current privilege.
    pub privilege: Privilege,
    /// The core's MPU.
    pub mpu: Mpu,
    /// Executed-cycle counter.
    pub cycles: u64,
    /// Whether the core is running (false after `halt`, before `start`).
    pub running: bool,
    /// Whether the core is parked in `wfi`.
    pub waiting: bool,
}

impl Hart {
    /// A stopped hart with the given id.
    pub fn new(hartid: u32) -> Self {
        let mut csrs = [0u32; csr::COUNT];
        csrs[csr::HARTID as usize] = hartid;
        Hart {
            regs: [0; 16],
            pc: 0,
            csrs,
            privilege: Privilege::Privileged,
            mpu: Mpu::new(),
            cycles: 0,
            running: false,
            waiting: false,
        }
    }

    /// Read a general register (`r0` is always 0).
    pub fn reg(&self, i: u8) -> u32 {
        if i == 0 {
            0
        } else {
            self.regs[i as usize & 0xF]
        }
    }

    /// Write a general register (writes to `r0` are discarded).
    pub fn set_reg(&mut self, i: u8, v: u32) {
        if i != 0 {
            self.regs[i as usize & 0xF] = v;
        }
    }

    /// Read a CSR.
    pub fn csr(&self, i: u16) -> u32 {
        match i {
            csr::MODE => u32::from(self.privilege == Privilege::Privileged),
            csr::CYCLE => self.cycles as u32,
            _ => self.csrs.get(i as usize).copied().unwrap_or(0),
        }
    }

    /// Write a CSR (no privilege check here; the instruction path checks).
    pub fn set_csr(&mut self, i: u16, v: u32) {
        if let Some(slot) = self.csrs.get_mut(i as usize) {
            *slot = v;
        }
    }

    /// Begin execution at `pc` in the given privilege.
    pub fn start(&mut self, pc: u32, privilege: Privilege) {
        self.pc = pc;
        self.privilege = privilege;
        self.running = true;
        self.waiting = false;
    }

    /// Resume a `wfi`-parked core.
    pub fn wake(&mut self) {
        self.waiting = false;
    }

    fn trap(&mut self, cause: TrapCause) -> Event {
        let tvec = self.csrs[csr::TVEC as usize];
        if tvec == 0 {
            return Event::UnhandledTrap(cause);
        }
        self.csrs[csr::EPC as usize] = self.pc;
        self.csrs[csr::CAUSE as usize] = cause.code();
        self.csrs[csr::PREV_MODE as usize] =
            u32::from(self.privilege == Privilege::Privileged);
        self.privilege = Privilege::Privileged;
        self.pc = tvec;
        Event::None
    }

    /// Execute one instruction.
    ///
    /// # Errors
    ///
    /// Only internal inconsistencies produce `Err`; architectural faults
    /// become traps or [`Event::UnhandledTrap`].
    pub fn step(&mut self, bus: &mut SystemBus) -> Result<Event, CpuError> {
        if !self.running || self.waiting {
            return Ok(if self.running {
                Event::Waiting
            } else {
                Event::Halted
            });
        }
        self.cycles += 1;

        // fetch
        if !self.pc.is_multiple_of(4) {
            return Ok(self.trap(TrapCause::Unaligned));
        }
        match self.mpu.verdict(self.privilege, Access::Execute, self.pc, 4) {
            MpuVerdict::Allowed => {}
            MpuVerdict::NoRegion => return Ok(self.trap(TrapCause::MpuFetchFault)),
            MpuVerdict::KeyDenied => return Ok(self.trap(TrapCause::DomainFault)),
        }
        let word = match bus.read(self.pc, 4) {
            Ok(w) => w,
            Err(_) => return Ok(self.trap(TrapCause::BusError)),
        };
        let Some(instr) = Instr::decode(word) else {
            return Ok(self.trap(TrapCause::IllegalInstruction));
        };
        let mut next_pc = self.pc.wrapping_add(4);

        match instr {
            Instr::Halt => {
                self.running = false;
                return Ok(Event::Halted);
            }
            Instr::Nop => {}
            Instr::Wfi => {
                self.waiting = true;
                self.pc = next_pc;
                return Ok(Event::Waiting);
            }
            Instr::Alu { op, rd, rs1, rs2 } => {
                let v = alu(op, self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, v);
            }
            Instr::AluImm { op, rd, rs1, imm } => {
                // logical immediates are zero-extended (MIPS-style), so
                // `lui` + `ori` materializes any 32-bit constant; arithmetic
                // and comparison immediates are sign-extended
                let ext = match op {
                    AluOp::And | AluOp::Or | AluOp::Xor => u32::from(imm as u16),
                    _ => imm as i32 as u32,
                };
                let v = alu(op, self.reg(rs1), ext);
                self.set_reg(rd, v);
            }
            Instr::Lui { rd, imm } => self.set_reg(rd, u32::from(imm) << 16),
            Instr::Load { kind, rd, rs1, imm } => {
                let addr = self.reg(rs1).wrapping_add(imm as i32 as u32);
                let size = kind.bytes();
                if !addr.is_multiple_of(size) {
                    return Ok(self.trap(TrapCause::Unaligned));
                }
                match self.mpu.verdict(self.privilege, Access::Read, addr, size) {
                    MpuVerdict::Allowed => {}
                    MpuVerdict::NoRegion => return Ok(self.trap(TrapCause::MpuDataFault)),
                    MpuVerdict::KeyDenied => return Ok(self.trap(TrapCause::DomainFault)),
                }
                let raw = match bus.read(addr, size) {
                    Ok(v) => v,
                    Err(_) => return Ok(self.trap(TrapCause::BusError)),
                };
                let v = match kind {
                    MemKind::Word | MemKind::HalfU | MemKind::ByteU => raw,
                    MemKind::Half => raw as u16 as i16 as i32 as u32,
                    MemKind::Byte => raw as u8 as i8 as i32 as u32,
                };
                self.set_reg(rd, v);
            }
            Instr::Store { kind, rd, rs1, imm } => {
                let addr = self.reg(rs1).wrapping_add(imm as i32 as u32);
                let size = kind.bytes();
                if !addr.is_multiple_of(size) {
                    return Ok(self.trap(TrapCause::Unaligned));
                }
                match self.mpu.verdict(self.privilege, Access::Write, addr, size) {
                    MpuVerdict::Allowed => {}
                    MpuVerdict::NoRegion => return Ok(self.trap(TrapCause::MpuDataFault)),
                    MpuVerdict::KeyDenied => return Ok(self.trap(TrapCause::DomainFault)),
                }
                if bus.write(addr, size, self.reg(rd)).is_err() {
                    return Ok(self.trap(TrapCause::BusError));
                }
            }
            Instr::Branch {
                cond,
                rs1,
                rs2,
                imm,
            } => {
                let (a, b) = (self.reg(rs1), self.reg(rs2));
                let taken = match cond {
                    BranchCond::Eq => a == b,
                    BranchCond::Ne => a != b,
                    BranchCond::Lt => (a as i32) < (b as i32),
                    BranchCond::Ge => (a as i32) >= (b as i32),
                    BranchCond::LtU => a < b,
                    BranchCond::GeU => a >= b,
                };
                if taken {
                    next_pc = self.pc.wrapping_add((imm as i32 * 4) as u32);
                }
            }
            Instr::Jal { rd, imm } => {
                self.set_reg(rd, next_pc);
                next_pc = self.pc.wrapping_add((imm as i32 * 4) as u32);
            }
            Instr::Jalr { rd, rs1, imm } => {
                let target = self.reg(rs1).wrapping_add(imm as i32 as u32) & !3;
                self.set_reg(rd, next_pc);
                next_pc = target;
            }
            Instr::Ecall { code } => {
                self.pc = next_pc;
                if self.privilege == Privilege::User {
                    return Ok(Event::HypervisorCall(code));
                }
                // privileged ecall vectors like a trap (system services)
                return Ok(self.trap(TrapCause::PrivilegeViolation));
            }
            Instr::Eret => {
                if self.privilege != Privilege::Privileged {
                    return Ok(self.trap(TrapCause::PrivilegeViolation));
                }
                next_pc = self.csrs[csr::EPC as usize];
                self.privilege = if self.csrs[csr::PREV_MODE as usize] == 1 {
                    Privilege::Privileged
                } else {
                    Privilege::User
                };
            }
            Instr::CsrRead { rd, csr: c } => {
                let v = self.csr(c);
                self.set_reg(rd, v);
            }
            Instr::CsrWrite { rs1, csr: c } => {
                if self.privilege != Privilege::Privileged {
                    return Ok(self.trap(TrapCause::PrivilegeViolation));
                }
                let v = self.reg(rs1);
                self.set_csr(c, v);
            }
        }
        self.pc = next_pc;
        Ok(Event::None)
    }
}

fn alu(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            if b == 0 {
                u32::MAX
            } else {
                ((a as i32).wrapping_div(b as i32)) as u32
            }
        }
        AluOp::Rem => {
            if b == 0 {
                a
            } else {
                ((a as i32).wrapping_rem(b as i32)) as u32
            }
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl(b & 31),
        AluOp::Shr => a.wrapping_shr(b & 31),
        AluOp::Sra => ((a as i32).wrapping_shr(b & 31)) as u32,
        AluOp::Slt => u32::from((a as i32) < (b as i32)),
        AluOp::Sltu => u32::from(a < b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::assemble;
    use crate::memmap::layout;
    use crate::mpu::MpuRegion;

    fn run_asm(src: &str, max_steps: u64) -> (Hart, SystemBus) {
        let mut bus = SystemBus::new();
        let prog = assemble(src).unwrap();
        let bytes: Vec<u8> = prog.iter().flat_map(|w| w.to_le_bytes()).collect();
        bus.load_bytes(layout::SRAM_BASE, &bytes).unwrap();
        let mut hart = Hart::new(0);
        hart.start(layout::SRAM_BASE, Privilege::Privileged);
        for _ in 0..max_steps {
            if hart.step(&mut bus).unwrap() == Event::Halted {
                break;
            }
        }
        (hart, bus)
    }

    #[test]
    fn fibonacci() {
        let (hart, _) = run_asm(
            r#"
            addi r1, r0, 0    ; a
            addi r2, r0, 1    ; b
            addi r3, r0, 10   ; count
        loop:
            add  r4, r1, r2
            add  r1, r0, r2
            add  r2, r0, r4
            addi r3, r3, -1
            bne  r3, r0, loop
            halt
            "#,
            200,
        );
        assert_eq!(hart.reg(1), 55); // fib(10)
        assert_eq!(hart.reg(2), 89);
    }

    #[test]
    fn memory_and_uart() {
        let (hart, bus) = run_asm(
            &format!(
                r#"
                lui  r1, {sram_hi}
                addi r2, r0, 1234
                sw   r2, 0x100(r1)
                lw   r3, 0x100(r1)
                lui  r4, {uart_hi}
                addi r5, r0, 72   ; 'H'
                sb   r5, (r4)
                addi r5, r0, 73   ; 'I'
                sb   r5, (r4)
                halt
                "#,
                sram_hi = layout::SRAM_BASE >> 16,
                uart_hi = layout::UART_TX >> 16,
            ),
            100,
        );
        assert_eq!(hart.reg(3), 1234);
        assert_eq!(bus.uart_output(), b"HI");
    }

    #[test]
    fn signed_ops() {
        let (hart, _) = run_asm(
            r#"
            addi r1, r0, -20
            addi r2, r0, 6
            div  r3, r1, r2   ; -3
            rem  r4, r1, r2   ; -2
            sra  r5, r1, r2   ; -20 >> 6 = -1
            slt  r6, r1, r2   ; 1
            halt
            "#,
            50,
        );
        assert_eq!(hart.reg(3) as i32, -3);
        assert_eq!(hart.reg(4) as i32, -2);
        assert_eq!(hart.reg(5) as i32, -1);
        assert_eq!(hart.reg(6), 1);
    }

    #[test]
    fn subroutine_call() {
        let (hart, _) = run_asm(
            r#"
            addi r1, r0, 7
            jal  r14, double
            jal  r14, double
            halt
        double:
            add  r1, r1, r1
            jalr r0, r14, 0
            "#,
            100,
        );
        assert_eq!(hart.reg(1), 28);
    }

    #[test]
    fn mpu_fault_traps_to_vector() {
        let mut bus = SystemBus::new();
        // handler at SRAM+0x200 writes a marker and halts
        let handler = assemble("addi r10, r0, 99\nhalt").unwrap();
        let main = assemble(&format!(
            "lui r1, {hi}\nsw r0, 0x500(r1)\nhalt",
            hi = layout::DDR_BASE >> 16
        ))
        .unwrap();
        let to_bytes =
            |p: &[u32]| p.iter().flat_map(|w| w.to_le_bytes()).collect::<Vec<u8>>();
        bus.load_bytes(layout::SRAM_BASE, &to_bytes(&main)).unwrap();
        bus.load_bytes(layout::SRAM_BASE + 0x200, &to_bytes(&handler))
            .unwrap();
        let mut hart = Hart::new(0);
        hart.set_csr(csr::TVEC, layout::SRAM_BASE + 0x200);
        hart.mpu.enabled = true;
        // user may only touch SRAM (not DDR)
        hart.mpu
            .program(&[MpuRegion::rwx(layout::SRAM_BASE, layout::SRAM_SIZE)]);
        hart.start(layout::SRAM_BASE, Privilege::User);
        for _ in 0..50 {
            if hart.step(&mut bus).unwrap() == Event::Halted {
                break;
            }
        }
        assert_eq!(hart.reg(10), 99, "trap handler ran");
        assert_eq!(hart.csr(csr::CAUSE), TrapCause::MpuDataFault.code());
        assert_eq!(hart.privilege, Privilege::Privileged);
    }

    #[test]
    fn domain_key_mismatch_raises_domain_fault() {
        let mut bus = SystemBus::new();
        let prog = assemble(&format!(
            "lui r1, {hi}\nlw r2, 0x800(r1)\nhalt",
            hi = layout::SRAM_BASE >> 16
        ))
        .unwrap();
        let bytes: Vec<u8> = prog.iter().flat_map(|w| w.to_le_bytes()).collect();
        bus.load_bytes(layout::SRAM_BASE, &bytes).unwrap();
        let mut hart = Hart::new(0);
        hart.mpu.enabled = true;
        hart.mpu.program(&[
            // code region in this hart's domain, data region in another
            MpuRegion::rwx(layout::SRAM_BASE, 0x100).with_key(1),
            MpuRegion::rwx(layout::SRAM_BASE + 0x800, 0x100).with_key(2),
        ]);
        hart.mpu.active_key = 1;
        hart.start(layout::SRAM_BASE, Privilege::User);
        let mut ev = Event::None;
        for _ in 0..10 {
            ev = hart.step(&mut bus).unwrap();
            if ev != Event::None {
                break;
            }
        }
        assert_eq!(
            ev,
            Event::UnhandledTrap(TrapCause::DomainFault),
            "cross-domain load attributed as DomainFault, not plain MPU fault"
        );
    }

    #[test]
    fn user_ecall_reaches_hypervisor() {
        let mut bus = SystemBus::new();
        let prog = assemble("ecall 0x77\nhalt").unwrap();
        let bytes: Vec<u8> = prog.iter().flat_map(|w| w.to_le_bytes()).collect();
        bus.load_bytes(layout::SRAM_BASE, &bytes).unwrap();
        let mut hart = Hart::new(2);
        hart.start(layout::SRAM_BASE, Privilege::User);
        let ev = hart.step(&mut bus).unwrap();
        assert_eq!(ev, Event::HypervisorCall(0x77));
        assert_eq!(hart.csr(csr::HARTID), 2);
    }

    #[test]
    fn csr_write_needs_privilege() {
        let mut bus = SystemBus::new();
        let prog = assemble("csrw r1, 3\nhalt").unwrap();
        let bytes: Vec<u8> = prog.iter().flat_map(|w| w.to_le_bytes()).collect();
        bus.load_bytes(layout::SRAM_BASE, &bytes).unwrap();
        let mut hart = Hart::new(0);
        hart.start(layout::SRAM_BASE, Privilege::User);
        let ev = hart.step(&mut bus).unwrap();
        assert_eq!(
            ev,
            Event::UnhandledTrap(TrapCause::PrivilegeViolation),
            "no TVEC installed -> unhandled"
        );
    }

    #[test]
    fn wfi_parks_core() {
        let (hart, _) = run_asm("wfi\nhalt", 10);
        assert!(hart.waiting);
        assert!(hart.running);
    }

    #[test]
    fn r0_is_zero() {
        let (hart, _) = run_asm("addi r0, r0, 55\nadd r1, r0, r0\nhalt", 10);
        assert_eq!(hart.reg(0), 0);
        assert_eq!(hart.reg(1), 0);
    }
}
