//! Synthesizable netlist templates for library components.
//!
//! Each [`ComponentTemplate`] kind
//! is lowered to a small coarse netlist whose synthesis + timing results
//! stand in for the component's characterized cost. Registers wrap the
//! operands and result so the timing analysis measures a realistic
//! register-to-register path, exactly as a characterization synthesis run
//! would.

use hermes_rtl::component::{ComponentKind, ComponentTemplate, Comparison};
use hermes_rtl::netlist::{CellOp, Netlist, NetId};
use hermes_rtl::RtlError;

/// Build the characterization netlist for one component specialization.
///
/// The structure is `input regs -> combinational core -> output reg`, so the
/// measured critical path covers clk-to-q + core + setup.
///
/// # Errors
///
/// Returns an [`RtlError`] if the template widths are unsupported.
pub fn build(template: &ComponentTemplate) -> Result<Netlist, RtlError> {
    let w = template.input_width;
    let ow = template.output_width;
    let mut nl = Netlist::new(template.instance_name());

    let reg = |nl: &mut Netlist, name: &str, src: NetId, width: u32| -> Result<NetId, RtlError> {
        let q = nl.add_net(format!("{name}_q"), width);
        nl.add_cell(
            format!("{name}_reg"),
            CellOp::Register {
                has_enable: false,
                has_reset: true,
            },
            &[src],
            &[q],
        )?;
        Ok(q)
    };

    let a_in = nl.add_input("a", w);
    let a = reg(&mut nl, "a", a_in, w)?;
    let result = nl.add_net("y", ow);

    use ComponentKind::*;
    match template.kind {
        Adder | Subtractor | Multiplier | Divider | Modulo | And | Or | Xor | ShiftLeft
        | ShiftRightLogical | ShiftRightArith => {
            let b_in = nl.add_input("b", w);
            let b = reg(&mut nl, "b", b_in, w)?;
            let op = match template.kind {
                Adder => CellOp::Add,
                Subtractor => CellOp::Sub,
                Multiplier => CellOp::Mul,
                Divider => CellOp::Div,
                Modulo => CellOp::Mod,
                And => CellOp::And,
                Or => CellOp::Or,
                Xor => CellOp::Xor,
                ShiftLeft => CellOp::Shl,
                ShiftRightLogical => CellOp::ShrL,
                _ => CellOp::ShrA,
            };
            nl.add_cell("core", op, &[a, b], &[result])?;
        }
        Comparator(c) => {
            let b_in = nl.add_input("b", w);
            let b = reg(&mut nl, "b", b_in, w)?;
            let bit = nl.add_net("cmp", 1);
            nl.add_cell("core", CellOp::Cmp(c), &[a, b], &[bit])?;
            nl.add_cell("widen", CellOp::ZeroExtend, &[bit], &[result])?;
        }
        Not => {
            nl.add_cell("core", CellOp::Not, &[a], &[result])?;
        }
        Mux => {
            let b_in = nl.add_input("b", w);
            let b = reg(&mut nl, "b", b_in, w)?;
            let s_in = nl.add_input("sel", 1);
            let s = reg(&mut nl, "sel", s_in, 1)?;
            nl.add_cell("core", CellOp::Mux, &[s, a, b], &[result])?;
        }
        Register => {
            nl.add_cell(
                "core",
                CellOp::Register {
                    has_enable: false,
                    has_reset: true,
                },
                &[a],
                &[result],
            )?;
        }
        RamTdp | Rom => {
            let depth = 256u32;
            let aw = 8u32;
            let addr_in = nl.add_input("addr", aw);
            let addr = reg(&mut nl, "addr", addr_in, aw)?;
            let we_in = nl.add_input("we", 1);
            let we = reg(&mut nl, "we", we_in, 1)?;
            let zero = nl.add_net("z1", 1);
            nl.add_cell("z1c", CellOp::Const { value: 0 }, &[], &[zero])?;
            let zaddr = nl.add_net("zaddr", aw);
            nl.add_cell("zac", CellOp::Const { value: 0 }, &[], &[zaddr])?;
            let rb = nl.add_net("rb", ow);
            nl.add_cell(
                "core",
                CellOp::RamTdp {
                    depth,
                    init: vec![],
                },
                &[addr, a, we, zaddr, a, zero],
                &[result, rb],
            )?;
        }
        Constant => {
            let k = nl.add_net("k", ow);
            nl.add_cell("core", CellOp::Const { value: 0x5A }, &[], &[k])?;
            nl.add_cell("mix", CellOp::Xor, &[a, k], &[result])?;
        }
        Resize => {
            nl.add_cell("core", CellOp::SignExtend, &[a], &[result])?;
        }
    }

    let out = reg(&mut nl, "y", result, ow)?;
    nl.mark_output(out);
    Ok(nl)
}

/// All comparison kinds swept by default.
pub fn default_comparisons() -> Vec<Comparison> {
    vec![Comparison::Eq, Comparison::LtU, Comparison::LtS]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_rtl::component::ComponentKind;

    #[test]
    fn every_kind_builds_and_validates() {
        for &kind in ComponentKind::all() {
            let t = ComponentTemplate::with_widths(kind, 16, 16, 0).unwrap();
            let nl = build(&t).unwrap_or_else(|e| panic!("{kind}: {e}"));
            nl.validate().unwrap_or_else(|e| panic!("{kind}: {e}"));
        }
    }

    #[test]
    fn template_netlists_are_registered() {
        let t = ComponentTemplate::new(ComponentKind::Adder, 8).unwrap();
        let nl = build(&t).unwrap();
        assert!(nl.stats().sequential >= 3, "in/out registers present");
    }
}
