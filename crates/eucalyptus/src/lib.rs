//! # hermes-eucalyptus
//!
//! Component pre-characterization for the HLS library — the analogue of the
//! Eucalyptus tool the paper describes: "a characterization tool … to
//! synthesize different configurations of library components and collect the
//! resulting latency and resource consumption metrics as XML files in the
//! Bambu library. The configurations are obtained by specializing a generic
//! template of the resource component … according to the bit widths of its
//! input and output arguments, and to the number of pipeline stages."
//!
//! [`Eucalyptus::characterize`] sweeps every component kind over the
//! requested widths and pipeline depths, pushes the combinational core of
//! each specialization through the `hermes-fpga` synthesis + timing engine,
//! and records delay/area entries in a [`CharacterizationLibrary`] that the
//! HLS scheduler consumes and that round-trips through an XML file format.
//!
//! ## Example
//!
//! ```
//! use hermes_eucalyptus::{Eucalyptus, SweepConfig};
//! use hermes_fpga::device::DeviceProfile;
//!
//! # fn main() -> Result<(), hermes_eucalyptus::CharError> {
//! let sweep = SweepConfig { widths: vec![8, 16], pipeline_stages: vec![0, 1] };
//! let lib = Eucalyptus::new(DeviceProfile::ng_medium_like()).characterize(&sweep)?;
//! let add16 = lib.lookup("add", 16, 0).expect("characterized");
//! assert!(add16.delay_ns > 0.0);
//! let xml = lib.to_xml();
//! let back = hermes_eucalyptus::CharacterizationLibrary::from_xml(&xml)?;
//! assert_eq!(back.len(), lib.len());
//! # Ok(())
//! # }
//! ```

pub mod cache;
pub mod library;
pub mod sweep;
pub mod templates;

pub use cache::{characterize_shared, CacheStats};
pub use library::{CharEntry, CharacterizationLibrary};
pub use sweep::{Eucalyptus, SweepConfig};

use std::fmt;

/// Errors produced during characterization or library I/O.
#[derive(Debug, Clone, PartialEq)]
pub enum CharError {
    /// The underlying synthesis flow failed.
    Flow(hermes_fpga::FpgaError),
    /// A template could not be constructed.
    Template(hermes_rtl::RtlError),
    /// XML parse failure.
    Parse {
        /// Line number (1-based) of the failure.
        line: usize,
        /// Detail message.
        detail: String,
    },
}

impl fmt::Display for CharError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CharError::Flow(e) => write!(f, "characterization flow failed: {e}"),
            CharError::Template(e) => write!(f, "template construction failed: {e}"),
            CharError::Parse { line, detail } => {
                write!(f, "library XML parse error at line {line}: {detail}")
            }
        }
    }
}

impl std::error::Error for CharError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CharError::Flow(e) => Some(e),
            CharError::Template(e) => Some(e),
            CharError::Parse { .. } => None,
        }
    }
}

impl From<hermes_fpga::FpgaError> for CharError {
    fn from(e: hermes_fpga::FpgaError) -> Self {
        CharError::Flow(e)
    }
}

impl From<hermes_rtl::RtlError> for CharError {
    fn from(e: hermes_rtl::RtlError) -> Self {
        CharError::Template(e)
    }
}
