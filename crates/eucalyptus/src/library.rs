//! The characterization library and its XML serialization.
//!
//! Entries are keyed by `(kind mnemonic, input width, pipeline stages)`.
//! Lookups fall back to the nearest characterized width at or above the
//! requested one, matching how an HLS tool consumes a sparse library.

use crate::CharError;
use std::collections::BTreeMap;
use std::fmt;

/// Characterized cost of one component specialization.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CharEntry {
    /// Combinational delay through the component, ns (for `stages == 0`
    /// this is the full path; for pipelined variants, the per-stage path).
    pub delay_ns: f64,
    /// Cycles of latency (`stages` for pipelined units, 0 for pure
    /// combinational unless multi-cycling is required by the clock).
    pub latency_cycles: u32,
    /// LUT4s consumed.
    pub luts: u64,
    /// Flip-flops consumed.
    pub ffs: u64,
    /// DSP blocks consumed.
    pub dsps: u64,
    /// Block RAMs consumed.
    pub rams: u64,
}

impl CharEntry {
    /// Cycles needed to execute this component under a clock period,
    /// respecting pipelining: a pipelined unit takes `latency_cycles`, a
    /// combinational one takes `ceil(delay / period)` (minimum 1).
    pub fn cycles_at(&self, clock_period_ns: f64) -> u32 {
        if self.latency_cycles > 0 {
            self.latency_cycles
        } else {
            (self.delay_ns / clock_period_ns).ceil().max(1.0) as u32
        }
    }

    /// Whether the component can chain with others in a single cycle under
    /// the given clock (its delay uses at most `fraction` of the period).
    pub fn chainable_at(&self, clock_period_ns: f64, fraction: f64) -> bool {
        self.latency_cycles == 0 && self.delay_ns <= clock_period_ns * fraction
    }
}

/// Key identifying a characterized specialization.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CharKey {
    /// Component mnemonic (e.g. `add`, `mul`, `cmplts`).
    pub kind: String,
    /// Input width in bits.
    pub width: u32,
    /// Pipeline stages.
    pub stages: u32,
}

/// A library of characterized components for one device.
#[derive(Debug, Clone, Default)]
pub struct CharacterizationLibrary {
    /// Device the library was characterized against.
    pub device_name: String,
    entries: BTreeMap<CharKey, CharEntry>,
}

impl CharacterizationLibrary {
    /// Create an empty library for a device.
    pub fn new(device_name: impl Into<String>) -> Self {
        CharacterizationLibrary {
            device_name: device_name.into(),
            entries: BTreeMap::new(),
        }
    }

    /// Insert or replace an entry.
    pub fn insert(&mut self, kind: &str, width: u32, stages: u32, entry: CharEntry) {
        self.entries.insert(
            CharKey {
                kind: kind.to_string(),
                width,
                stages,
            },
            entry,
        );
    }

    /// Exact-match lookup.
    pub fn lookup(&self, kind: &str, width: u32, stages: u32) -> Option<&CharEntry> {
        self.entries.get(&CharKey {
            kind: kind.to_string(),
            width,
            stages,
        })
    }

    /// Lookup with fallback to the nearest characterized width that can
    /// implement the requested one (smallest width >= requested; if none,
    /// the widest available). Stage count must match exactly.
    pub fn lookup_nearest(&self, kind: &str, width: u32, stages: u32) -> Option<&CharEntry> {
        if let Some(e) = self.lookup(kind, width, stages) {
            return Some(e);
        }
        let mut best_above: Option<(&CharKey, &CharEntry)> = None;
        let mut widest: Option<(&CharKey, &CharEntry)> = None;
        for (k, e) in &self.entries {
            if k.kind != kind || k.stages != stages {
                continue;
            }
            if k.width >= width && best_above.map(|(bk, _)| k.width < bk.width).unwrap_or(true) {
                best_above = Some((k, e));
            }
            if widest.map(|(wk, _)| k.width > wk.width).unwrap_or(true) {
                widest = Some((k, e));
            }
        }
        best_above.or(widest).map(|(_, e)| e)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the library has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over all entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&CharKey, &CharEntry)> {
        self.entries.iter()
    }

    /// Serialize to the Bambu-style XML library format.
    pub fn to_xml(&self) -> String {
        let mut s = String::new();
        s.push_str("<?xml version=\"1.0\"?>\n");
        s.push_str(&format!(
            "<library device=\"{}\">\n",
            xml_escape(&self.device_name)
        ));
        for (k, e) in &self.entries {
            s.push_str(&format!(
                "  <component kind=\"{}\" width=\"{}\" stages=\"{}\" delay_ns=\"{:.4}\" \
                 latency=\"{}\" luts=\"{}\" ffs=\"{}\" dsps=\"{}\" rams=\"{}\"/>\n",
                xml_escape(&k.kind),
                k.width,
                k.stages,
                e.delay_ns,
                e.latency_cycles,
                e.luts,
                e.ffs,
                e.dsps,
                e.rams
            ));
        }
        s.push_str("</library>\n");
        s
    }

    /// Write the library to an XML file (the on-disk artifact "collected …
    /// as XML files in the Bambu library").
    ///
    /// # Errors
    ///
    /// Returns [`CharError::Parse`] wrapping I/O problems (line 0).
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), CharError> {
        std::fs::write(path, self.to_xml()).map_err(|e| CharError::Parse {
            line: 0,
            detail: format!("write failed: {e}"),
        })
    }

    /// Load a library from an XML file.
    ///
    /// # Errors
    ///
    /// Returns [`CharError::Parse`] for I/O or format problems.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, CharError> {
        let text = std::fs::read_to_string(path).map_err(|e| CharError::Parse {
            line: 0,
            detail: format!("read failed: {e}"),
        })?;
        Self::from_xml(&text)
    }

    /// Parse the XML library format written by [`Self::to_xml`].
    ///
    /// # Errors
    ///
    /// Returns [`CharError::Parse`] with the offending line on malformed
    /// input.
    pub fn from_xml(text: &str) -> Result<Self, CharError> {
        let mut lib = CharacterizationLibrary::default();
        let mut seen_library = false;
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = ln + 1;
            if line.starts_with("<?xml") || line.is_empty() || line == "</library>" {
                continue;
            }
            if let Some(rest) = line.strip_prefix("<library") {
                seen_library = true;
                if let Some(dev) = attr(rest, "device") {
                    lib.device_name = xml_unescape(&dev);
                }
                continue;
            }
            if let Some(rest) = line.strip_prefix("<component") {
                if !seen_library {
                    return Err(CharError::Parse {
                        line: lineno,
                        detail: "component before <library>".into(),
                    });
                }
                let get = |name: &str| -> Result<String, CharError> {
                    attr(rest, name).ok_or_else(|| CharError::Parse {
                        line: lineno,
                        detail: format!("missing attribute `{name}`"),
                    })
                };
                let pf = |v: String| -> Result<f64, CharError> {
                    v.parse().map_err(|_| CharError::Parse {
                        line: lineno,
                        detail: format!("bad number `{v}`"),
                    })
                };
                let pu = |v: String| -> Result<u64, CharError> {
                    v.parse().map_err(|_| CharError::Parse {
                        line: lineno,
                        detail: format!("bad integer `{v}`"),
                    })
                };
                let kind = xml_unescape(&get("kind")?);
                let width = pu(get("width")?)? as u32;
                let stages = pu(get("stages")?)? as u32;
                let entry = CharEntry {
                    delay_ns: pf(get("delay_ns")?)?,
                    latency_cycles: pu(get("latency")?)? as u32,
                    luts: pu(get("luts")?)?,
                    ffs: pu(get("ffs")?)?,
                    dsps: pu(get("dsps")?)?,
                    rams: pu(get("rams")?)?,
                };
                lib.insert(&kind, width, stages, entry);
                continue;
            }
            return Err(CharError::Parse {
                line: lineno,
                detail: format!("unrecognized line `{line}`"),
            });
        }
        if !seen_library {
            return Err(CharError::Parse {
                line: 0,
                detail: "no <library> element".into(),
            });
        }
        Ok(lib)
    }
}

impl fmt::Display for CharacterizationLibrary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "characterization library for {} ({} entries)",
            self.device_name,
            self.len()
        )
    }
}

fn attr(text: &str, name: &str) -> Option<String> {
    let pat = format!("{name}=\"");
    let start = text.find(&pat)? + pat.len();
    let end = text[start..].find('"')? + start;
    Some(text[start..end].to_string())
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn xml_unescape(s: &str) -> String {
    s.replace("&quot;", "\"")
        .replace("&gt;", ">")
        .replace("&lt;", "<")
        .replace("&amp;", "&")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CharacterizationLibrary {
        let mut lib = CharacterizationLibrary::new("NG-MEDIUM-like");
        lib.insert(
            "add",
            16,
            0,
            CharEntry {
                delay_ns: 1.2,
                latency_cycles: 0,
                luts: 48,
                ffs: 0,
                dsps: 0,
                rams: 0,
            },
        );
        lib.insert(
            "add",
            32,
            0,
            CharEntry {
                delay_ns: 2.1,
                latency_cycles: 0,
                luts: 96,
                ffs: 0,
                dsps: 0,
                rams: 0,
            },
        );
        lib.insert(
            "mul",
            32,
            2,
            CharEntry {
                delay_ns: 1.1,
                latency_cycles: 2,
                luts: 64,
                ffs: 64,
                dsps: 4,
                rams: 0,
            },
        );
        lib
    }

    #[test]
    fn exact_lookup() {
        let lib = sample();
        assert!(lib.lookup("add", 16, 0).is_some());
        assert!(lib.lookup("add", 16, 1).is_none());
        assert!(lib.lookup("sub", 16, 0).is_none());
    }

    #[test]
    fn nearest_lookup_prefers_width_above() {
        let lib = sample();
        let e = lib.lookup_nearest("add", 20, 0).unwrap();
        assert_eq!(e.luts, 96, "20-bit request served by 32-bit entry");
        let e = lib.lookup_nearest("add", 64, 0).unwrap();
        assert_eq!(e.luts, 96, "wider than library falls back to widest");
    }

    #[test]
    fn xml_roundtrip() {
        let lib = sample();
        let xml = lib.to_xml();
        let back = CharacterizationLibrary::from_xml(&xml).unwrap();
        assert_eq!(back.len(), lib.len());
        assert_eq!(back.device_name, lib.device_name);
        let (a, b) = (
            lib.lookup("mul", 32, 2).unwrap(),
            back.lookup("mul", 32, 2).unwrap(),
        );
        assert!((a.delay_ns - b.delay_ns).abs() < 1e-3);
        assert_eq!(a.dsps, b.dsps);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad = "<library device=\"x\">\n<component kind=\"add\"/>\n</library>";
        match CharacterizationLibrary::from_xml(bad) {
            Err(CharError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(CharacterizationLibrary::from_xml("<garbage/>").is_err());
        assert!(CharacterizationLibrary::from_xml("").is_err());
    }

    #[test]
    fn cycles_at_clock() {
        let comb = CharEntry {
            delay_ns: 4.5,
            latency_cycles: 0,
            ..CharEntry::default()
        };
        assert_eq!(comb.cycles_at(10.0), 1);
        assert_eq!(comb.cycles_at(2.0), 3);
        let piped = CharEntry {
            delay_ns: 1.0,
            latency_cycles: 3,
            ..CharEntry::default()
        };
        assert_eq!(piped.cycles_at(10.0), 3);
        assert!(comb.chainable_at(10.0, 0.5));
        assert!(!comb.chainable_at(10.0, 0.4));
        assert!(!piped.chainable_at(10.0, 0.9));
    }

    #[test]
    fn file_roundtrip() {
        let lib = sample();
        let path = std::env::temp_dir().join("hermes_euc_lib_test.xml");
        lib.save(&path).unwrap();
        let back = CharacterizationLibrary::load(&path).unwrap();
        assert_eq!(back.len(), lib.len());
        std::fs::remove_file(&path).ok();
        assert!(CharacterizationLibrary::load("/nonexistent/nope.xml").is_err());
    }

    #[test]
    fn xml_escaping() {
        let mut lib = CharacterizationLibrary::new("dev \"quoted\" <x>");
        lib.insert("add", 8, 0, CharEntry::default());
        let back = CharacterizationLibrary::from_xml(&lib.to_xml()).unwrap();
        assert_eq!(back.device_name, "dev \"quoted\" <x>");
    }
}
