//! Process-wide shared characterization cache.
//!
//! A characterization sweep is a pure function of the device profile and
//! the sweep configuration, yet every HLS flow used to pay for its own
//! sweep — a suite of N kernel flows ran N identical sweeps. This module
//! memoizes completed sweeps behind a `OnceLock`-guarded mutex so the
//! first flow characterizes and everyone after it (including parallel
//! fan-outs, which block on the same lock and then hit) shares the
//! resulting [`CharacterizationLibrary`] by `Arc`.
//!
//! Keys are `(device fingerprint, sweep signature)`: the fingerprint
//! hashes *every* field of the [`DeviceProfile`] (not just its name, so
//! two differently tuned profiles with the same name never alias), and
//! the signature canonically renders the sweep's widths, pipeline depths,
//! and the characterizer's kind list.
//!
//! For A/B measurement and tests that must observe a cold sweep, the
//! cache has a bypass knob: [`set_bypass`] programmatically, or the
//! `HERMES_CHAR_CACHE` environment variable (`off`/`0`/`false` disables
//! caching). Bypassed calls neither read nor populate the store.

use crate::library::CharacterizationLibrary;
use crate::sweep::{Eucalyptus, SweepConfig};
use crate::CharError;
use hermes_fpga::device::DeviceProfile;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

type Store = Mutex<HashMap<(u64, String), Arc<CharacterizationLibrary>>>;

static CACHE: OnceLock<Store> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static BYPASSES: AtomicU64 = AtomicU64::new(0);
static BYPASS: AtomicBool = AtomicBool::new(false);

/// Cache effectiveness counters (process-wide, monotonic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Calls served from the store.
    pub hits: u64,
    /// Calls that ran a sweep and populated the store.
    pub misses: u64,
    /// Calls that skipped the store entirely (bypass knob).
    pub bypasses: u64,
}

/// Current process-wide cache counters.
pub fn stats() -> CacheStats {
    CacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        bypasses: BYPASSES.load(Ordering::Relaxed),
    }
}

/// Programmatic bypass knob: `true` makes every [`characterize_shared`]
/// call run a fresh sweep without touching the store (tests, A/B runs).
pub fn set_bypass(on: bool) {
    BYPASS.store(on, Ordering::Relaxed);
}

/// Whether caching is currently bypassed ([`set_bypass`] or the
/// `HERMES_CHAR_CACHE` environment variable set to `off`/`0`/`false`).
pub fn bypassed() -> bool {
    if BYPASS.load(Ordering::Relaxed) {
        return true;
    }
    let raw = std::env::var("HERMES_CHAR_CACHE").ok();
    !hermes_obs::env::bool_lenient("HERMES_CHAR_CACHE", raw.as_deref(), true)
}

/// FNV-1a over a canonical rendering of every device-profile field
/// (floats by bit pattern), so any tuning difference changes the key.
pub fn device_fingerprint(device: &DeviceProfile) -> u64 {
    let mut h = Fnv::new();
    h.str(&device.name);
    for v in [
        u64::from(device.grid_cols),
        u64::from(device.grid_rows),
        u64::from(device.luts_per_tile),
        u64::from(device.dsps_per_column),
        u64::from(device.dsp_width),
        u64::from(device.rams_per_column),
        u64::from(device.ram_bits),
        u64::from(device.ram_port_width),
        u64::from(device.config_tmr),
    ] {
        h.u64(v);
    }
    for &c in &device.dsp_columns {
        h.u64(u64::from(c));
    }
    h.u64(u64::MAX); // separator between the two column lists
    for &c in &device.ram_columns {
        h.u64(u64::from(c));
    }
    let t = &device.timing;
    for f in [
        t.lut_delay_ns,
        t.carry_delay_ns,
        t.ff_clk_to_q_ns,
        t.ff_setup_ns,
        t.dsp_delay_ns,
        t.ram_clk_to_out_ns,
        t.ram_setup_ns,
        t.net_base_ns,
        t.net_per_tile_ns,
        t.net_per_fanout_ns,
    ] {
        h.u64(f.to_bits());
    }
    let p = &device.power;
    for f in [
        p.lut_static_uw,
        p.lut_dynamic_uw_per_100mhz,
        p.dsp_static_uw,
        p.ram_static_uw,
    ] {
        h.u64(f.to_bits());
    }
    h.finish()
}

/// Canonical signature of a sweep request: widths, pipeline depths, and
/// the characterizer's kind list, in order.
pub fn sweep_signature(euc: &Eucalyptus, sweep: &SweepConfig) -> String {
    let join = |v: &[u32]| {
        v.iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    let kinds = euc
        .kinds
        .iter()
        .map(|k| k.mnemonic())
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "w[{}];s[{}];k[{}]",
        join(&sweep.widths),
        join(&sweep.pipeline_stages),
        kinds
    )
}

/// Run (or reuse) a characterization sweep through the shared store.
///
/// On a miss the sweep runs *while the store lock is held*, so parallel
/// callers requesting the same key wait for the first one and then hit —
/// a kernel-suite fan-out characterizes exactly once. Failed sweeps are
/// never cached.
///
/// # Errors
///
/// Propagates the sweep's [`CharError`] on a (non-cached) failure.
pub fn characterize_shared(
    euc: &Eucalyptus,
    sweep: &SweepConfig,
) -> Result<Arc<CharacterizationLibrary>, CharError> {
    if bypassed() {
        BYPASSES.fetch_add(1, Ordering::Relaxed);
        return euc.characterize(sweep).map(Arc::new);
    }
    let key = (device_fingerprint(euc.device()), sweep_signature(euc, sweep));
    let store = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = store.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(lib) = map.get(&key) {
        HITS.fetch_add(1, Ordering::Relaxed);
        return Ok(Arc::clone(lib));
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let lib = Arc::new(euc.characterize(sweep)?);
    map.insert(key, Arc::clone(&lib));
    Ok(lib)
}

/// Minimal FNV-1a hasher (the workspace is hermetic — no external hash
/// crates; `DefaultHasher` is not guaranteed stable across releases).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xCBF2_9CE4_8422_2325)
    }
    fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }
    fn str(&mut self, s: &str) {
        for b in s.as_bytes() {
            self.byte(*b);
        }
        self.byte(0xFF); // terminator so "ab"+"c" != "a"+"bc"
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_separates_profiles() {
        let a = DeviceProfile::ng_medium_like();
        let b = DeviceProfile::ng_ultra_like();
        let c = DeviceProfile::legacy_radhard_like();
        assert_ne!(device_fingerprint(&a), device_fingerprint(&b));
        assert_ne!(device_fingerprint(&a), device_fingerprint(&c));
        assert_eq!(
            device_fingerprint(&a),
            device_fingerprint(&DeviceProfile::ng_medium_like())
        );
        // same name, different tuning: must not alias
        let mut tuned = DeviceProfile::ng_medium_like();
        tuned.timing.lut_delay_ns *= 1.5;
        assert_ne!(device_fingerprint(&a), device_fingerprint(&tuned));
    }

    #[test]
    fn sweep_signature_is_order_sensitive() {
        let euc = Eucalyptus::new(DeviceProfile::ng_medium_like());
        let a = sweep_signature(
            &euc,
            &SweepConfig { widths: vec![8, 16], pipeline_stages: vec![0] },
        );
        let b = sweep_signature(
            &euc,
            &SweepConfig { widths: vec![16, 8], pipeline_stages: vec![0] },
        );
        assert_ne!(a, b);
        let narrowed = Eucalyptus::new(DeviceProfile::ng_medium_like())
            .with_kinds(vec![hermes_rtl::component::ComponentKind::Adder]);
        let c = sweep_signature(
            &narrowed,
            &SweepConfig { widths: vec![8, 16], pipeline_stages: vec![0] },
        );
        assert_ne!(a, c, "kind list is part of the key");
    }

    #[test]
    fn shared_sweep_hits_after_miss_and_returns_same_arc() {
        let euc = Eucalyptus::new(DeviceProfile::ng_medium_like())
            .with_kinds(vec![hermes_rtl::component::ComponentKind::Not]);
        // a sweep config no other test uses, so the first call is a miss
        let sweep = SweepConfig { widths: vec![5], pipeline_stages: vec![0] };
        let before = stats();
        let a = characterize_shared(&euc, &sweep).expect("sweep succeeds");
        let b = characterize_shared(&euc, &sweep).expect("sweep cached");
        let after = stats();
        assert!(Arc::ptr_eq(&a, &b), "second call shares the first library");
        assert_eq!(after.misses, before.misses + 1);
        assert!(after.hits > before.hits);
        assert_eq!(a.len(), 1, "not x width 5 x 1 stage");
    }

    #[test]
    fn bypass_skips_the_store() {
        let euc = Eucalyptus::new(DeviceProfile::ng_medium_like())
            .with_kinds(vec![hermes_rtl::component::ComponentKind::Not]);
        let sweep = SweepConfig { widths: vec![6], pipeline_stages: vec![0] };
        set_bypass(true);
        let a = characterize_shared(&euc, &sweep).expect("sweep succeeds");
        let b = characterize_shared(&euc, &sweep).expect("sweep succeeds");
        set_bypass(false);
        assert!(!Arc::ptr_eq(&a, &b), "bypassed calls never share");
        let s = stats();
        assert!(s.bypasses >= 2);
        // the store was not populated under bypass: this is a miss
        let before = stats().misses;
        let _ = characterize_shared(&euc, &sweep).expect("sweep succeeds");
        assert_eq!(stats().misses, before + 1);
    }
}
