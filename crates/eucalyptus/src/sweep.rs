//! The characterization sweep engine.
//!
//! For every component kind × width × pipeline depth, [`Eucalyptus`] builds
//! the template netlist, synthesizes it for the target device, runs static
//! timing, and records a [`CharEntry`]. Pipelined variants are derived from
//! the combinational measurement with the standard retiming model: an
//! `s`-stage unit splits the combinational path into `s + 1` balanced
//! segments (plus register overhead) and adds `s × width` flip-flops.

use crate::library::{CharEntry, CharacterizationLibrary};
use crate::templates;
use crate::CharError;
use hermes_fpga::device::DeviceProfile;
use hermes_fpga::synth::Synthesizer;
use hermes_fpga::timing::Analyzer;
use hermes_rtl::component::{ComponentKind, ComponentTemplate};

/// Which specializations to characterize.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Operand widths to sweep.
    pub widths: Vec<u32>,
    /// Pipeline depths to sweep (0 = combinational).
    pub pipeline_stages: Vec<u32>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            widths: vec![8, 16, 24, 32, 48, 64],
            pipeline_stages: vec![0, 1, 2],
        }
    }
}

impl SweepConfig {
    /// A minimal sweep for fast tests.
    pub fn quick() -> Self {
        SweepConfig {
            widths: vec![8, 32],
            pipeline_stages: vec![0, 1],
        }
    }
}

/// The characterization engine.
#[derive(Debug, Clone)]
pub struct Eucalyptus {
    device: DeviceProfile,
    /// Kinds to characterize; defaults to every kind.
    pub kinds: Vec<ComponentKind>,
}

impl Eucalyptus {
    /// Create a characterizer for a device covering all component kinds.
    pub fn new(device: DeviceProfile) -> Self {
        Eucalyptus {
            device,
            kinds: ComponentKind::all().to_vec(),
        }
    }

    /// Restrict to a subset of kinds (useful for focused sweeps).
    pub fn with_kinds(mut self, kinds: Vec<ComponentKind>) -> Self {
        self.kinds = kinds;
        self
    }

    /// The target device.
    pub fn device(&self) -> &DeviceProfile {
        &self.device
    }

    /// Run the sweep and produce a library, characterizing the independent
    /// kind × width units in parallel across the default worker count.
    ///
    /// # Errors
    ///
    /// Propagates template-construction and synthesis failures.
    pub fn characterize(&self, sweep: &SweepConfig) -> Result<CharacterizationLibrary, CharError> {
        self.characterize_jobs(sweep, hermes_par::jobs())
    }

    /// [`Self::characterize`] through the process-wide shared cache: the
    /// first call for a given (device, sweep, kinds) key runs the sweep,
    /// every later call — including from other threads — shares the same
    /// [`std::sync::Arc`]'d library. See [`crate::cache`] for the key
    /// derivation and the bypass knob.
    ///
    /// # Errors
    ///
    /// Propagates sweep failures (which are never cached).
    pub fn characterize_cached(
        &self,
        sweep: &SweepConfig,
    ) -> Result<std::sync::Arc<CharacterizationLibrary>, CharError> {
        crate::cache::characterize_shared(self, sweep)
    }

    /// [`Self::characterize`] with an explicit worker count.
    ///
    /// Each kind × width specialization is an independent synthesis + STA
    /// unit; results are merged back in sweep order, so the library is
    /// identical for every `jobs` value (the serial path is `jobs = 1`).
    ///
    /// # Errors
    ///
    /// Propagates template-construction and synthesis failures; the
    /// lowest-indexed failing unit wins.
    pub fn characterize_jobs(
        &self,
        sweep: &SweepConfig,
        jobs: usize,
    ) -> Result<CharacterizationLibrary, CharError> {
        let units: Vec<(ComponentKind, u32)> = self
            .kinds
            .iter()
            .flat_map(|&kind| sweep.widths.iter().map(move |&width| (kind, width)))
            .collect();
        let measured = hermes_par::par_map_jobs(jobs, &units, |&(kind, width)| {
            self.characterize_unit(kind, width, sweep)
        })
        .map_err(|e| {
            CharError::Flow(hermes_fpga::FpgaError::Internal {
                message: format!("parallel characterization worker failed: {e}"),
            })
        })?;
        let mut lib = CharacterizationLibrary::new(self.device.name.clone());
        for unit in measured {
            for (mnemonic, width, stages, entry) in unit? {
                lib.insert(mnemonic, width, stages, entry);
            }
        }
        Ok(lib)
    }

    /// Characterize one kind × width specialization across all pipeline
    /// depths: build the template, synthesize, run STA, derive pipelined
    /// variants with the standard retiming model.
    #[allow(clippy::type_complexity)]
    fn characterize_unit(
        &self,
        kind: ComponentKind,
        width: u32,
        sweep: &SweepConfig,
    ) -> Result<Vec<(&'static str, u32, u32, CharEntry)>, CharError> {
        let synth = Synthesizer::new(self.device.clone());
        let analyzer = Analyzer::new(self.device.clone());
        let template = ComponentTemplate::with_widths(kind, width, width, 0)?;
        let netlist = templates::build(&template)?;
        let result = synth.synthesize(&netlist)?;
        // Large target period: we want the raw combinational delay.
        let timing = analyzer.analyze(&result.prim, None, 1000.0);
        // Strip the template's register overhead from the measured
        // path to get the core's own delay.
        let t = &self.device.timing;
        let overhead = t.ff_clk_to_q_ns + t.ff_setup_ns + t.net_base_ns;
        let core_delay = (timing.critical_path_ns - overhead).max(t.lut_delay_ns);
        let u = result.report.utilization;
        // Remove the template's scaffolding from the area figures:
        // the in/out registers (up to 3 x width flip-flops) are not
        // part of the component. I/O pads are tracked separately by
        // the utilization struct and never counted as LUTs.
        let scaffold_ffs = u.ffs.min(3 * u64::from(width));
        let base = CharEntry {
            delay_ns: core_delay,
            latency_cycles: 0,
            luts: u.luts,
            ffs: u.ffs - scaffold_ffs,
            dsps: u.dsps,
            rams: u.rams,
        };
        let mut out = Vec::with_capacity(sweep.pipeline_stages.len());
        for &stages in &sweep.pipeline_stages {
            let entry = if stages == 0 {
                base
            } else {
                CharEntry {
                    delay_ns: core_delay / f64::from(stages + 1)
                        + t.ff_clk_to_q_ns
                        + t.ff_setup_ns,
                    latency_cycles: stages,
                    luts: base.luts,
                    ffs: base.ffs + u64::from(stages) * u64::from(width),
                    dsps: base.dsps,
                    rams: base.rams,
                }
            };
            out.push((template.kind.mnemonic(), width, stages, entry));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_rtl::component::Comparison;

    fn quick_lib(kinds: Vec<ComponentKind>) -> CharacterizationLibrary {
        Eucalyptus::new(DeviceProfile::ng_medium_like())
            .with_kinds(kinds)
            .characterize(&SweepConfig::quick())
            .expect("characterization succeeds")
    }

    #[test]
    fn adder_delay_grows_with_width() {
        let lib = quick_lib(vec![ComponentKind::Adder]);
        let d8 = lib.lookup("add", 8, 0).unwrap().delay_ns;
        let d32 = lib.lookup("add", 32, 0).unwrap().delay_ns;
        assert!(d32 > d8, "32-bit adder slower than 8-bit: {d8} vs {d32}");
    }

    #[test]
    fn pipelining_cuts_delay_and_adds_ffs() {
        let lib = quick_lib(vec![ComponentKind::Multiplier]);
        let c = lib.lookup("mul", 32, 0).unwrap();
        let p = lib.lookup("mul", 32, 1).unwrap();
        assert!(p.delay_ns < c.delay_ns);
        assert_eq!(p.latency_cycles, 1);
        assert!(p.ffs > c.ffs);
    }

    #[test]
    fn multiplier_uses_dsps() {
        let lib = quick_lib(vec![ComponentKind::Multiplier]);
        assert!(lib.lookup("mul", 32, 0).unwrap().dsps >= 1);
    }

    #[test]
    fn divider_is_slowest_arith() {
        let lib = quick_lib(vec![ComponentKind::Adder, ComponentKind::Divider]);
        let add = lib.lookup("add", 32, 0).unwrap().delay_ns;
        let div = lib.lookup("div", 32, 0).unwrap().delay_ns;
        assert!(div > 3.0 * add);
    }

    #[test]
    fn full_sweep_covers_all_kinds() {
        let lib = Eucalyptus::new(DeviceProfile::ng_medium_like())
            .characterize(&SweepConfig::quick())
            .unwrap();
        // every kind x 2 widths x 2 stage counts
        let kinds = ComponentKind::all().len();
        assert_eq!(lib.len(), kinds * 2 * 2);
        // spot-check a comparator entry exists under its mnemonic
        assert!(lib
            .lookup(
                ComponentKind::Comparator(Comparison::LtS).mnemonic(),
                32,
                0
            )
            .is_some());
    }

    #[test]
    fn xml_roundtrip_of_real_sweep() {
        let lib = quick_lib(vec![ComponentKind::Adder, ComponentKind::RamTdp]);
        let back = CharacterizationLibrary::from_xml(&lib.to_xml()).unwrap();
        assert_eq!(back.len(), lib.len());
    }
}
