//! # hermes-serve
//!
//! The deadline-aware accelerator serving runtime of the HERMES workspace:
//! the layer that turns a pool of compiled HLS accelerators into sustained,
//! bounded-latency throughput under a stream of requests.
//!
//! The paper's Section II extends Bambu to synthesize dynamically
//! controlled (dataflow) accelerators precisely so coarse-grained-parallel
//! ML workloads can run as streaming services on the NG-ULTRA fabric; this
//! crate supplies the missing host side of that story — the runtime that
//! admits, batches, dispatches, and (when it must) sheds requests:
//!
//! * [`request`] — requests, priority classes, and the accounted
//!   [`Verdict`](request::Verdict) every request ends in;
//! * [`queue`] — the admission [`Backlog`](queue::Backlog): bounded total
//!   depth, per-tenant quotas, EDF order within each priority class;
//! * [`model`] — the [`AcceleratorModel`](model::AcceleratorModel):
//!   batch/item/DMA service-time model measured from a compiled design and
//!   the AXI bus model, plus the pure compute function that produces
//!   response payloads;
//! * [`pool`] — N simulated accelerator instances with busy/down
//!   accounting;
//! * [`workload`] — the open-loop seeded arrival process;
//! * [`engine`] — the event-stepped [`ServeEngine`](engine::ServeEngine)
//!   tying it all together, and the [`ServeReport`](engine::ServeReport).
//!
//! ## Determinism contract
//!
//! The engine runs on a simulated serve clock (ticks). Every scheduling
//! decision — admission, batch formation, shedding, fault application —
//! is a function of tick arithmetic and seeded [`hermes_rtl::rng::DetRng`]
//! draws, never of wall-clock time or thread interleaving. Batch payloads
//! are evaluated through [`hermes_par::par_map_bounded`], whose results
//! come back in input order, so reports and traces are byte-identical
//! across `--jobs` settings.
//!
//! ## Accounting invariant
//!
//! Every offered request ends in exactly one verdict:
//! `served + shed + rejected == offered`, including under a chaos campaign
//! that kills a pool instance mid-batch (its in-flight requests are
//! re-queued, never dropped). [`ServeReport::accounted`] checks it;
//! the E14 experiment and `ci.sh` gate on it.
//!
//! [`ServeReport::accounted`]: engine::ServeReport::accounted
//!
//! ## Example
//!
//! ```
//! use hermes_serve::engine::{ServeConfig, ServeEngine};
//! use hermes_serve::model::AcceleratorModel;
//! use hermes_serve::workload::{self, WorkloadConfig};
//!
//! // a toy accelerator: 40 cycles per item, doubles its input
//! let model = AcceleratorModel::new("double", 20, 40, |xs| {
//!     xs.iter().map(|&x| x * 2).collect()
//! });
//! let arrivals = workload::generate(7, &WorkloadConfig::default());
//! let offered = arrivals.len() as u64;
//! let mut engine = ServeEngine::new(ServeConfig::default(), model, arrivals);
//! let report = engine.run();
//! assert!(report.accounted(), "{report:?}");
//! assert_eq!(report.offered, offered);
//! assert!(report.served > 0);
//! ```

pub mod engine;
pub mod model;
pub mod pool;
pub mod queue;
pub mod request;
pub mod workload;

/// A tick of the simulated serve clock.
pub type Tick = u64;

/// FNV-1a over a stream of 64-bit words — the digest used to witness that
/// served outputs are identical across worker counts.
pub fn fnv1a_words(acc: u64, words: &[i64]) -> u64 {
    let mut h = if acc == 0 { 0xcbf2_9ce4_8422_2325 } else { acc };
    for &w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}
