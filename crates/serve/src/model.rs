//! The accelerator service model: how long a batch occupies an instance,
//! and the pure compute function producing response payloads.
//!
//! The model is *measured, not guessed*: [`AcceleratorModel::from_design`]
//! co-simulates a compiled HLS design once to get the per-item cycle cost
//! (the design is compiled once and shared — the flow/characterization
//! caches make repeated builds cheap), and
//! [`AcceleratorModel::with_measured_dma`] runs a real round trip through
//! the AXI bus model to price per-item data movement. Both measurements
//! are deterministic, so the whole serving simulation is replayable.

use hermes_axi::memory::MemoryTiming;
use hermes_axi::testbench::AxiTestbench;
use hermes_hls::{Design, HlsError};
use std::sync::Arc;

/// The pure compute function producing a response payload from a request
/// payload.
pub type ComputeFn = Arc<dyn Fn(&[i64]) -> Vec<i64> + Send + Sync>;

/// Service-time and compute model of one accelerator kind.
#[derive(Clone)]
pub struct AcceleratorModel {
    /// Accelerator name (usually the kernel's function name).
    pub name: String,
    /// Fixed per-batch cycles (control handshake, descriptor setup).
    pub batch_overhead: u64,
    /// Cycles each item spends in the accelerator datapath.
    pub per_item: u64,
    /// Bus cycles each item spends in DMA (input in, output out).
    pub dma_per_item: u64,
    compute: ComputeFn,
}

impl std::fmt::Debug for AcceleratorModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AcceleratorModel")
            .field("name", &self.name)
            .field("batch_overhead", &self.batch_overhead)
            .field("per_item", &self.per_item)
            .field("dma_per_item", &self.dma_per_item)
            .finish()
    }
}

impl AcceleratorModel {
    /// A model with explicit timing and a compute function (DMA cost 0
    /// until measured).
    pub fn new(
        name: &str,
        batch_overhead: u64,
        per_item: u64,
        compute: impl Fn(&[i64]) -> Vec<i64> + Send + Sync + 'static,
    ) -> Self {
        AcceleratorModel {
            name: name.to_string(),
            batch_overhead,
            per_item: per_item.max(1),
            dma_per_item: 0,
            compute: Arc::new(compute),
        }
    }

    /// Build a model from a compiled design: the per-item cost is the
    /// measured cycle count of one co-simulation with `representative_args`
    /// and the compute function runs the design's cycle-accurate model.
    /// The design is simulated per request, so use this for fast scalar
    /// kernels (demos, tests); production-shaped workloads measure once
    /// and supply a reference compute function via [`AcceleratorModel::new`].
    ///
    /// # Errors
    ///
    /// Propagates the measurement simulation's failure.
    pub fn from_design(
        design: Design,
        representative_args: &[i64],
        batch_overhead: u64,
    ) -> Result<Self, HlsError> {
        let measured = design.simulate(representative_args)?;
        Ok(AcceleratorModel {
            name: design.name().to_string(),
            batch_overhead,
            per_item: measured.cycles.max(1),
            dma_per_item: 0,
            compute: Arc::new(move |args: &[i64]| {
                let r = design
                    .simulate(args)
                    .unwrap_or_else(|e| panic!("serve compute simulation failed: {e}"));
                vec![r.return_value.unwrap_or(0)]
            }),
        })
    }

    /// [`Self::from_design`] with a causal trace context: the measurement
    /// co-simulation is recorded as a trace-linked `hls`/`cosim` span, so
    /// the model's provenance (which co-sim priced it) is part of the
    /// causal tree.
    ///
    /// # Errors
    ///
    /// Propagates the measurement simulation's failure.
    pub fn from_design_traced(
        design: Design,
        representative_args: &[i64],
        batch_overhead: u64,
        obs: &hermes_obs::Recorder,
        ctx: hermes_obs::TraceCtx,
    ) -> Result<Self, HlsError> {
        let measured = design.simulate_traced(representative_args, obs, ctx)?;
        Ok(AcceleratorModel {
            name: design.name().to_string(),
            batch_overhead,
            per_item: measured.cycles.max(1),
            dma_per_item: 0,
            compute: Arc::new(move |args: &[i64]| {
                let r = design
                    .simulate(args)
                    .unwrap_or_else(|e| panic!("serve compute simulation failed: {e}"));
                vec![r.return_value.unwrap_or(0)]
            }),
        })
    }

    /// Price per-item data movement by timing one write+read round trip of
    /// `bytes_per_item` through the AXI bus model (deterministic cycles).
    #[must_use]
    pub fn with_measured_dma(self, bytes_per_item: usize) -> Self {
        self.measure_dma(bytes_per_item, None)
    }

    /// [`Self::with_measured_dma`] with a causal trace context: the bus
    /// statistics of the measurement round trip are exported through the
    /// recorder with a trace-linked summary instant (subsystem `dma`).
    #[must_use]
    pub fn with_measured_dma_traced(
        self,
        bytes_per_item: usize,
        obs: &hermes_obs::Recorder,
        ctx: hermes_obs::TraceCtx,
    ) -> Self {
        self.measure_dma(bytes_per_item, Some((obs, ctx)))
    }

    fn measure_dma(
        mut self,
        bytes_per_item: usize,
        trace: Option<(&hermes_obs::Recorder, hermes_obs::TraceCtx)>,
    ) -> Self {
        let bytes = bytes_per_item.clamp(1, 32 * 1024);
        let mut tb = AxiTestbench::new(64 * 1024, MemoryTiming::default());
        let block = vec![0xA5u8; bytes];
        let wrote = tb
            .write_blocking(0, &block)
            .expect("DMA measurement write fits the slave");
        let (_, read) = tb
            .read_blocking(0, bytes)
            .expect("DMA measurement read fits the slave");
        self.dma_per_item = wrote + read;
        if let Some((obs, ctx)) = trace {
            tb.stats().obs_export_ctx(obs, "dma", ctx);
        }
        self
    }

    /// Ticks a batch of `k` items occupies an instance.
    pub fn service_cycles(&self, k: usize) -> u64 {
        self.batch_overhead + (self.per_item + self.dma_per_item) * k as u64
    }

    /// Evaluate one request's payload.
    pub fn compute(&self, input: &[i64]) -> Vec<i64> {
        (self.compute)(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_hls::HlsFlow;

    #[test]
    fn service_cycles_affine_in_batch_size() {
        let m = AcceleratorModel::new("m", 10, 7, |xs| xs.to_vec());
        assert_eq!(m.service_cycles(1), 17);
        assert_eq!(m.service_cycles(4), 38);
        assert_eq!(m.service_cycles(0), 10);
    }

    #[test]
    fn from_design_measures_and_computes() {
        let design = HlsFlow::new()
            .compile("int triple(int x) { return x * 3; }")
            .expect("compiles");
        let m = AcceleratorModel::from_design(design, &[5], 8).expect("measures");
        assert_eq!(m.name, "triple");
        assert!(m.per_item >= 1);
        assert_eq!(m.compute(&[7]), vec![21]);
        assert_eq!(m.compute(&[-4]), vec![-12]);
    }

    #[test]
    fn measured_dma_is_deterministic_and_positive() {
        let a = AcceleratorModel::new("a", 0, 1, |xs| xs.to_vec()).with_measured_dma(64);
        let b = AcceleratorModel::new("b", 0, 1, |xs| xs.to_vec()).with_measured_dma(64);
        assert!(a.dma_per_item > 0);
        assert_eq!(a.dma_per_item, b.dma_per_item, "bus model is deterministic");
        let wide = AcceleratorModel::new("w", 0, 1, |xs| xs.to_vec()).with_measured_dma(1024);
        assert!(wide.dma_per_item > a.dma_per_item, "more bytes, more cycles");
    }
}
