//! Requests, priority classes, and the accounted verdicts they end in.

use crate::Tick;

/// One inference/processing request offered to the serving runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Unique, monotonically assigned id (also the tie-breaker that keeps
    /// every ordering decision total and deterministic).
    pub id: u64,
    /// Tenant the request bills against (per-tenant admission quotas).
    pub tenant: u16,
    /// Priority class, `0` highest. Scheduling is strict priority across
    /// classes and earliest-deadline-first within a class; batches never
    /// mix classes (class is the compatibility key).
    pub class: u8,
    /// Arrival tick.
    pub arrival: Tick,
    /// Absolute deadline tick: a completion after this tick has no value
    /// and is accounted as shed, never silently dropped.
    pub deadline: Tick,
    /// Input payload handed to the accelerator.
    pub input: Vec<i64>,
}

/// Why a request was turned away at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The backlog is at its configured depth bound.
    QueueFull,
    /// The request's tenant is at its quota of queued requests.
    TenantQuota,
    /// The engine is draining (scale-down or shutdown): it finishes what
    /// it holds but admits nothing new.
    Draining,
}

impl RejectReason {
    /// Stable label used in reports and traces.
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue-full",
            RejectReason::TenantQuota => "tenant-quota",
            RejectReason::Draining => "draining",
        }
    }
}

/// Why an admitted request was shed instead of served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The deadline passed while the request was still queued.
    DeadlineExpired,
    /// At batch formation the request could not finish by its deadline
    /// even in the smallest batch dispatchable now.
    WouldMissDeadline,
    /// The batch completed late (an instance stall pushed it past the
    /// deadline after dispatch).
    CompletedLate,
    /// The compute model failed (panicked) on the batch; the whole batch
    /// is shed rather than killing the engine, keeping every request
    /// accounted.
    ComputeFailed,
}

impl ShedReason {
    /// Stable label used in reports and traces.
    pub fn as_str(self) -> &'static str {
        match self {
            ShedReason::DeadlineExpired => "deadline-expired",
            ShedReason::WouldMissDeadline => "would-miss-deadline",
            ShedReason::CompletedLate => "completed-late",
            ShedReason::ComputeFailed => "compute-failed",
        }
    }
}

/// The accounted outcome of one offered request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Completed by its deadline; `latency` is completion − arrival.
    Served {
        /// Ticks from arrival to completion.
        latency: u64,
    },
    /// Admitted but not served, for the given reason.
    Shed(ShedReason),
    /// Turned away at admission, for the given reason.
    Rejected(RejectReason),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(RejectReason::QueueFull.as_str(), "queue-full");
        assert_eq!(ShedReason::CompletedLate.as_str(), "completed-late");
        assert_eq!(ShedReason::ComputeFailed.as_str(), "compute-failed");
        assert_eq!(
            Verdict::Shed(ShedReason::DeadlineExpired),
            Verdict::Shed(ShedReason::DeadlineExpired)
        );
    }
}
