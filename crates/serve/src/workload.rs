//! Open-loop seeded arrival generation.
//!
//! The workload is *open-loop*: arrivals are generated up front from a
//! seed and do not react to service — exactly the regime in which
//! saturation behavior (queue growth, shedding) is visible. All timing
//! is integer tick arithmetic from [`DetRng`] draws, so the same seed
//! and config always produce the byte-identical request stream.

use crate::request::Request;
use crate::Tick;
use hermes_rtl::rng::DetRng;

/// Per-class workload shape.
#[derive(Debug, Clone)]
pub struct ClassProfile {
    /// Relative arrival weight (share of requests landing in this class).
    pub weight: u64,
    /// Deadline budget in ticks: `deadline = arrival + budget ± jitter`.
    pub deadline_budget: u64,
    /// Max jitter added to or subtracted from the budget (uniform).
    pub deadline_jitter: u64,
}

/// Configuration of the open-loop arrival process.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of requests to offer.
    pub requests: usize,
    /// Mean inter-arrival gap in ticks. Gaps are drawn uniformly from
    /// `0..=2*mean`, so the mean offered rate is `1/mean` per tick.
    pub mean_interarrival: u64,
    /// Number of tenants; each request draws a tenant uniformly.
    pub tenants: u16,
    /// Per-class shapes; class index is the priority (0 highest).
    pub classes: Vec<ClassProfile>,
    /// Payload words per request.
    pub payload_words: usize,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            requests: 400,
            mean_interarrival: 40,
            tenants: 4,
            classes: vec![
                // latency-critical: tight deadlines, small share
                ClassProfile {
                    weight: 1,
                    deadline_budget: 600,
                    deadline_jitter: 100,
                },
                // bulk: loose deadlines, large share
                ClassProfile {
                    weight: 3,
                    deadline_budget: 4000,
                    deadline_jitter: 800,
                },
            ],
            payload_words: 4,
        }
    }
}

impl WorkloadConfig {
    /// The same workload at a different offered load: the mean
    /// inter-arrival gap is scaled so the offered rate becomes
    /// `load_pct` percent of the base rate (200 = 2x the arrivals
    /// per tick). Used by E14 to sweep underload → past saturation.
    #[must_use]
    pub fn at_load_pct(mut self, load_pct: u64) -> Self {
        let pct = load_pct.max(1);
        self.mean_interarrival = (self.mean_interarrival * 100 / pct).max(1);
        self
    }
}

/// Generate the arrival stream: requests sorted by arrival tick with
/// sequential ids, tenants, classes, deadlines, and payloads all drawn
/// from a single seeded stream.
pub fn generate(seed: u64, cfg: &WorkloadConfig) -> Vec<Request> {
    let mut rng = DetRng::new(seed ^ 0x5e7e_c10c_5e7e_c10c);
    let total_weight: u64 = cfg.classes.iter().map(|c| c.weight.max(1)).sum();
    let mut t: Tick = 0;
    let mut out = Vec::with_capacity(cfg.requests);
    for id in 0..cfg.requests as u64 {
        t += rng.below(2 * cfg.mean_interarrival + 1);
        // weighted class pick
        let mut pick = rng.below(total_weight.max(1));
        let mut class = 0u8;
        for (i, c) in cfg.classes.iter().enumerate() {
            let w = c.weight.max(1);
            if pick < w {
                class = i as u8;
                break;
            }
            pick -= w;
        }
        let profile = &cfg.classes[class as usize];
        let jitter = if profile.deadline_jitter == 0 {
            0
        } else {
            rng.below(2 * profile.deadline_jitter + 1) as i64 - profile.deadline_jitter as i64
        };
        let budget = profile.deadline_budget.saturating_add_signed(jitter).max(1);
        let tenant = rng.below(u64::from(cfg.tenants.max(1))) as u16;
        let input = (0..cfg.payload_words)
            .map(|_| rng.range_i64(-1000, 1000))
            .collect();
        out.push(Request {
            id,
            tenant,
            class,
            arrival: t,
            deadline: t + budget,
            input,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let cfg = WorkloadConfig::default();
        let a = generate(42, &cfg);
        let b = generate(42, &cfg);
        assert_eq!(a, b);
        let c = generate(43, &cfg);
        assert_ne!(a, c);
    }

    #[test]
    fn stream_is_well_formed() {
        let cfg = WorkloadConfig::default();
        let reqs = generate(7, &cfg);
        assert_eq!(reqs.len(), cfg.requests);
        let mut last = 0;
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.id, i as u64, "ids are sequential");
            assert!(r.arrival >= last, "arrivals are non-decreasing");
            assert!(r.deadline > r.arrival, "deadline after arrival");
            assert!((r.class as usize) < cfg.classes.len());
            assert!(r.tenant < cfg.tenants);
            assert_eq!(r.input.len(), cfg.payload_words);
            last = r.arrival;
        }
        // both classes actually appear
        assert!(reqs.iter().any(|r| r.class == 0));
        assert!(reqs.iter().any(|r| r.class == 1));
    }

    #[test]
    fn load_scaling_compresses_gaps() {
        let base = WorkloadConfig::default();
        let double = base.clone().at_load_pct(200);
        assert_eq!(double.mean_interarrival, base.mean_interarrival / 2);
        let half = base.clone().at_load_pct(50);
        assert_eq!(half.mean_interarrival, base.mean_interarrival * 2);
        // offered span shrinks with load
        let slow = generate(1, &base);
        let fast = generate(1, &double);
        assert!(fast.last().unwrap().arrival < slow.last().unwrap().arrival);
    }
}
