//! The event-stepped serving engine: admission, dynamic batching,
//! deadline-aware dispatch, load shedding, and chaos-tolerant pools.
//!
//! The engine advances a simulated serve clock from event to event (next
//! arrival, batch completion, instance recovery, scheduled fault, deadline
//! expiry, batch-window trigger) instead of polling every tick. Within a
//! tick the phase order is fixed — recover, complete, faults, arrivals,
//! shed-expired, dispatch — so the whole simulation is a pure function of
//! the configuration, the arrival stream, and the fault plan. Worker count
//! only parallelizes batch payload evaluation through
//! [`hermes_par::par_map_bounded_jobs`], whose results come back in input
//! order, so reports are byte-identical across `--jobs`.
//!
//! Wake times come from the unified event kernel (`hermes-kernel`,
//! DESIGN.md §14): every phase posts its next due tick as a timer, the
//! chaos [`FaultPlan`] posts its whole timeline up front, and the run
//! loop pops the earliest timer that still matches the current state
//! (timers are validated at pop, so superseded ones are skipped, never
//! acted on). The `HERMES_EVENT_KERNEL` knob selects the timer wheel or
//! the sorted reference scheduler; both pop in the identical
//! `(time, domain, seq)` order, so the knob is a speed choice, never a
//! results choice.

use crate::model::AcceleratorModel;
use crate::pool::{Batch, Pool};
use crate::queue::Backlog;
use crate::request::{RejectReason, Request, ShedReason, Verdict};
use crate::{fnv1a_words, Tick};
use hermes_chaos::plan::{FaultKind, FaultPlan};
use hermes_kernel::{DomainId, DomainRegistry, Scheduler, WheelStats};
use hermes_obs::slo::{RequestOutcome, SloEngine};
use hermes_obs::{ClockDomain, Histogram, Recorder, TraceCtx, WallMark};
use std::collections::HashMap;

/// Batch-size histogram bounds (items).
const BATCH_BOUNDS: [u64; 7] = [1, 2, 4, 8, 16, 32, 64];
/// Latency histogram bounds (ticks, powers of two).
const LATENCY_BOUNDS: [u64; 12] = [
    16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768,
];

/// Serving-runtime configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Total backlog depth bound (admission rejects past it).
    pub queue_depth: usize,
    /// Max queued requests per tenant.
    pub tenant_quota: usize,
    /// Number of priority classes (requests beyond the range fold into the
    /// lowest class).
    pub classes: usize,
    /// Max requests coalesced into one batch.
    pub batch_max: usize,
    /// Ticks a queued class may age before it is dispatched even
    /// under-filled (bounds added queueing delay).
    pub batch_window: u64,
    /// Accelerator instances in the pool.
    pub instances: usize,
    /// Bound on concurrently evaluated payload items (flow control toward
    /// the compute model).
    pub compute_bound: usize,
    /// Worker threads for payload evaluation; `0` uses the global
    /// `hermes_par` setting. A throughput knob, never a results knob.
    pub jobs: usize,
    /// Permille of minted traces whose events are recorded (the
    /// `HERMES_TRACE_SAMPLE` knob). A trace context is minted for *every*
    /// arrival regardless — sampling decides recording, never identity —
    /// so trace ids are byte-identical across sample rates and worker
    /// counts.
    pub trace_sample_permille: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_depth: 64,
            tenant_quota: 32,
            classes: 2,
            batch_max: 8,
            batch_window: 100,
            instances: 2,
            compute_bound: 4,
            jobs: 0,
            trace_sample_permille: 1000,
        }
    }
}

/// Per-class outcome statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassStats {
    /// Priority class index.
    pub class: usize,
    /// Requests served by deadline.
    pub served: u64,
    /// Requests shed (all reasons).
    pub shed: u64,
    /// Median served latency in ticks.
    pub p50: u64,
    /// 95th-percentile served latency in ticks.
    pub p95: u64,
    /// 99th-percentile served latency in ticks.
    pub p99: u64,
}

/// The accounted outcome of one serving run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeReport {
    /// Requests offered (the whole arrival stream).
    pub offered: u64,
    /// Requests completed by their deadline.
    pub served: u64,
    /// Shed: deadline passed while queued.
    pub shed_expired: u64,
    /// Shed at dispatch: could not finish by deadline even solo.
    pub shed_would_miss: u64,
    /// Shed after completion: a stall pushed the batch past the deadline.
    pub shed_late: u64,
    /// Shed because the compute model failed (panicked) on the batch.
    pub shed_compute: u64,
    /// Rejected at admission: backlog depth bound.
    pub rejected_queue_full: u64,
    /// Rejected at admission: tenant quota.
    pub rejected_quota: u64,
    /// Rejected at admission: the engine was draining.
    pub rejected_draining: u64,
    /// Requests re-queued out of killed batches (still accounted once).
    pub requeued: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Total items across dispatched batches.
    pub batch_items: u64,
    /// Tick of the last processed event.
    pub makespan: Tick,
    /// Per-class served/shed/latency statistics.
    pub per_class: Vec<ClassStats>,
    /// Per-instance busy ticks.
    pub instance_busy: Vec<u64>,
    /// Per-instance down ticks.
    pub instance_down: Vec<u64>,
    /// Pool-kill fault events applied.
    pub kills: u64,
    /// Pool-stall fault events applied.
    pub stalls: u64,
    /// FNV-1a digest of all served outputs in completion order — the
    /// witness that results are identical across worker counts.
    pub output_checksum: u64,
}

impl ServeReport {
    /// Total shed requests.
    pub fn shed(&self) -> u64 {
        self.shed_expired + self.shed_would_miss + self.shed_late + self.shed_compute
    }

    /// Total rejected requests.
    pub fn rejected(&self) -> u64 {
        self.rejected_queue_full + self.rejected_quota + self.rejected_draining
    }

    /// The accounting invariant: every offered request ended in exactly
    /// one verdict.
    pub fn accounted(&self) -> bool {
        self.served + self.shed() + self.rejected() == self.offered
    }

    /// Pool availability in permille: `1000 * (1 - down / capacity)` where
    /// capacity is `instances * makespan` ticks.
    pub fn availability_permille(&self) -> u64 {
        let capacity = self.makespan * self.instance_down.len() as u64;
        if capacity == 0 {
            return 1000;
        }
        let down: u64 = self.instance_down.iter().sum();
        1000 - (1000 * down.min(capacity)) / capacity
    }

    /// Deterministic multi-line rendering (integer arithmetic only) — the
    /// byte-identity artifact the CI jobs gate diffs.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "serve: offered {} served {} shed {} (expired {}, would-miss {}, late {}, compute {}) \
             rejected {} (queue-full {}, quota {}, draining {})\n",
            self.offered,
            self.served,
            self.shed(),
            self.shed_expired,
            self.shed_would_miss,
            self.shed_late,
            self.shed_compute,
            self.rejected(),
            self.rejected_queue_full,
            self.rejected_quota,
            self.rejected_draining,
        ));
        let mean_batch_x100 = (self.batch_items * 100).checked_div(self.batches).unwrap_or(0);
        s.push_str(&format!(
            "batches {} items {} mean-batch-x100 {} requeued {} makespan {}\n",
            self.batches, self.batch_items, mean_batch_x100, self.requeued, self.makespan,
        ));
        for c in &self.per_class {
            s.push_str(&format!(
                "class {}: served {} shed {} p50 {} p95 {} p99 {}\n",
                c.class, c.served, c.shed, c.p50, c.p95, c.p99,
            ));
        }
        s.push_str(&format!(
            "pool: busy {:?} down {:?} kills {} stalls {} availability-permille {}\n",
            self.instance_busy,
            self.instance_down,
            self.kills,
            self.stalls,
            self.availability_permille(),
        ));
        s.push_str(&format!("output-checksum {:#018x}\n", self.output_checksum));
        s
    }
}

/// What an engine still held when [`ServeEngine::drain`] was called:
/// the residue it must finish before it can be retired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainResidue {
    /// Requests still queued in the backlog.
    pub queued: usize,
    /// Requests in flight on pool instances.
    pub in_flight: usize,
}

/// The serve-clock timers the engine posts into the event kernel. Each
/// is validated against the live state at pop time: a popped timer whose
/// kind no longer predicts that tick is superseded and skipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ServeTimer {
    /// Next request arrival (always fires: arrivals never move).
    Arrival,
    /// Next pool transition: batch completion or instance recovery.
    Pool,
    /// A scheduled chaos fault (the whole plan posts up front).
    Chaos,
    /// Earliest queued deadline expires (sheds at deadline + 1).
    Expiry,
    /// A class's batch window ages out.
    Window(usize),
    /// A class head's last safe dispatch tick.
    Safe(usize),
}

/// Last posted due time per timer kind — a timer already pending for
/// the same tick is not re-posted (pending is guaranteed: the kernel
/// hand trails the serve clock, so a memoized future tick is unpopped).
#[derive(Debug, Clone, Default)]
struct TimerMemo {
    arrival: Option<Tick>,
    pool: Option<Tick>,
    expiry: Option<Tick>,
    window: Vec<Option<Tick>>,
    safe: Vec<Option<Tick>>,
}

/// The kernel domains of the serve clock, in same-tick priority order.
struct ServeDomains {
    arrival: DomainId,
    pool: DomainId,
    chaos: DomainId,
    expiry: DomainId,
    batch: DomainId,
}

impl ServeDomains {
    fn register() -> Self {
        let mut reg = DomainRegistry::new();
        ServeDomains {
            arrival: reg.register("arrival"),
            pool: reg.register("pool"),
            chaos: reg.register("chaos"),
            expiry: reg.register("expiry"),
            batch: reg.register("batch"),
        }
    }
}

/// The deadline-aware serving engine.
pub struct ServeEngine {
    cfg: ServeConfig,
    model: AcceleratorModel,
    arrivals: Vec<Request>,
    cursor: usize,
    /// Externally submitted requests (fleet routing) waiting for the next
    /// step's admission phase — admitted through the exact same path as
    /// internal arrivals so an externally stepped engine is byte-identical
    /// to `run`.
    incoming: Vec<Request>,
    /// Draining: admit nothing new, finish what is held.
    draining: bool,
    backlog: Backlog,
    pool: Pool,
    plan: Option<FaultPlan>,
    obs: Recorder,
    slo: Option<SloEngine>,
    /// Trace contexts of in-flight *sampled* requests, keyed by request
    /// id. Contexts are minted for every arrival (identity is sampling-
    /// independent) but only sampled ones are kept and recorded.
    traces: HashMap<u64, TraceCtx>,
    now: Tick,
    /// Timer-wheel path when on, sorted reference when off; identical
    /// pop order either way.
    event_kernel: bool,
    memo: TimerMemo,
    /// Ticks the engine actually woke on (== processed steps).
    wakes: u64,
    /// Scheduler counters of the last `run` (E18 exports these).
    kernel_stats: WheelStats,
    // accounting
    verdicts: Vec<(u64, Verdict)>,
    /// Requests this engine is accountable for: every admission-phase
    /// entry increments it, a failover evacuation (the request moves to
    /// another shard) decrements it. Equal to `arrivals.len()` for a
    /// plain `run`.
    offered: u64,
    served: u64,
    shed_expired: u64,
    shed_would_miss: u64,
    shed_late: u64,
    shed_compute: u64,
    rejected_queue_full: u64,
    rejected_quota: u64,
    rejected_draining: u64,
    requeued: u64,
    batches: u64,
    batch_items: u64,
    kills: u64,
    stalls: u64,
    checksum: u64,
    class_served: Vec<u64>,
    class_shed: Vec<u64>,
    class_latency: Vec<Histogram>,
}

impl ServeEngine {
    /// An engine over `arrivals` (any order; they are sorted by
    /// `(arrival, id)` internally).
    pub fn new(cfg: ServeConfig, model: AcceleratorModel, mut arrivals: Vec<Request>) -> Self {
        arrivals.sort_by_key(|r| (r.arrival, r.id));
        let classes = cfg.classes.max(1);
        ServeEngine {
            backlog: Backlog::new(classes, cfg.queue_depth, cfg.tenant_quota),
            pool: Pool::new(cfg.instances),
            plan: None,
            obs: Recorder::disabled(),
            slo: None,
            traces: HashMap::new(),
            now: 0,
            event_kernel: hermes_kernel::event_kernel_enabled(),
            memo: TimerMemo {
                window: vec![None; classes],
                safe: vec![None; classes],
                ..TimerMemo::default()
            },
            wakes: 0,
            kernel_stats: WheelStats::default(),
            cursor: 0,
            incoming: Vec::new(),
            draining: false,
            verdicts: Vec::with_capacity(arrivals.len()),
            offered: 0,
            served: 0,
            shed_expired: 0,
            shed_would_miss: 0,
            shed_late: 0,
            shed_compute: 0,
            rejected_queue_full: 0,
            rejected_quota: 0,
            rejected_draining: 0,
            requeued: 0,
            batches: 0,
            batch_items: 0,
            kills: 0,
            stalls: 0,
            checksum: 0,
            class_served: vec![0; classes],
            class_shed: vec![0; classes],
            class_latency: (0..classes).map(|_| Histogram::new(&LATENCY_BOUNDS)).collect(),
            cfg,
            model,
            arrivals,
        }
    }

    /// Attach a chaos fault plan; `PoolKill`/`PoolStall` events are
    /// applied at their scheduled tick, other subsystems' events are
    /// ignored (they target the boot/bus campaigns).
    #[must_use]
    pub fn with_chaos(mut self, plan: FaultPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Attach a recorder (usually a child of the caller's) that receives
    /// serve metrics and chaos instants during the run.
    #[must_use]
    pub fn with_recorder(mut self, obs: Recorder) -> Self {
        self.obs = obs;
        self
    }

    /// Attach an SLO engine: every verdict is fed to it on the simulated
    /// clock, alert-state transitions are recorded as `slo` instants, and
    /// the current state of each spec is exported as an `alert_<spec>`
    /// gauge.
    #[must_use]
    pub fn with_slo(mut self, slo: SloEngine) -> Self {
        self.slo = Some(slo);
        self
    }

    /// Override the `HERMES_EVENT_KERNEL` selection for this engine:
    /// `true` schedules wakes on the timer wheel, `false` on the sorted
    /// reference. Results are byte-identical either way (tests assert
    /// it without racing the process environment).
    #[must_use]
    pub fn with_event_kernel(mut self, on: bool) -> Self {
        self.event_kernel = on;
        self
    }

    /// The attached SLO engine (inspect states/verdicts after `run`).
    pub fn slo(&self) -> Option<&SloEngine> {
        self.slo.as_ref()
    }

    /// Ticks the engine woke on during `run` (each wake runs one full
    /// phased step; every other tick of the makespan was skipped).
    pub fn wakes(&self) -> u64 {
        self.wakes
    }

    /// Scheduler counters of the last `run` (wheel occupancy, cascades).
    pub fn kernel_stats(&self) -> &WheelStats {
        &self.kernel_stats
    }

    /// The attached recorder (absorb it into a parent after `run`).
    pub fn recorder(&self) -> &Recorder {
        &self.obs
    }

    /// Replace the recorder in place (the fleet re-wires shard recorders
    /// when a recorder is attached after the shards were spawned).
    pub fn set_recorder(&mut self, obs: Recorder) {
        self.obs = obs;
    }

    /// In-place form of [`Self::with_event_kernel`] (fleet wiring).
    pub fn set_event_kernel(&mut self, on: bool) {
        self.event_kernel = on;
    }

    /// One verdict per offered request, in decision order (accounting
    /// audit trail; never contains duplicates).
    pub fn verdicts(&self) -> &[(u64, Verdict)] {
        &self.verdicts
    }

    // ---- fleet stepping API -------------------------------------------
    //
    // A fleet drives shard engines externally instead of calling `run`:
    // it submits routed requests, advances each shard at exactly the
    // ticks `next_due` predicts (plus delivery ticks), and collects the
    // report with `finish`. Because submissions drain through the same
    // admission phase as internal arrivals, a single externally stepped
    // shard is byte-identical to a bare `run` over the same stream.

    /// Submit a routed request; it is admitted in the next step's
    /// admission phase (after any internal arrivals, in submit order).
    pub fn submit(&mut self, req: Request) {
        self.incoming.push(req);
    }

    /// Advance the serve clock to `t` (monotonic) and process one full
    /// phased step there — the externally driven equivalent of one `run`
    /// wake.
    pub fn advance(&mut self, t: Tick) {
        debug_assert!(t >= self.now, "serve clock is monotonic");
        self.now = t;
        self.step();
        self.wakes += 1;
    }

    /// The earliest tick strictly after `now` at which this engine has
    /// work due — the externally driven equivalent of the timers `run`
    /// would post. `None` means the engine is idle until new work is
    /// submitted.
    pub fn next_due(&self) -> Option<Tick> {
        let now = self.now;
        let svc1 = self.model.service_cycles(1);
        let mut due: Option<Tick> = None;
        let mut consider = |t: Option<Tick>| {
            if let Some(t) = t {
                if t > now && due.is_none_or(|d| t < d) {
                    due = Some(t);
                }
            }
        };
        consider(self.arrivals.get(self.cursor).map(|r| r.arrival));
        consider(self.pool.next_transition());
        if !(self.backlog.is_empty() && self.cursor >= self.arrivals.len()) {
            consider(self.plan.as_ref().and_then(FaultPlan::peek_cycle));
        }
        consider(self.backlog.earliest_deadline().map(|d| d + 1));
        for class in 0..self.backlog.class_count() {
            consider(self.backlog.oldest_arrival(class).map(|o| o + self.cfg.batch_window));
            consider(self.backlog.head_deadline(class).map(|h| h.saturating_sub(svc1)));
        }
        due
    }

    /// Stop admitting: every subsequent submission or internal arrival is
    /// rejected as draining, while queued and in-flight work keeps being
    /// served. Returns the residue still held at the drain point.
    pub fn drain(&mut self) -> DrainResidue {
        self.draining = true;
        DrainResidue {
            queued: self.backlog.len() + self.incoming.len(),
            in_flight: self.pool.in_flight_requests(),
        }
    }

    /// Whether the engine holds no work at all (drained shards quiesce
    /// before retirement).
    pub fn quiescent(&self) -> bool {
        self.cursor >= self.arrivals.len()
            && self.incoming.is_empty()
            && self.backlog.is_empty()
            && self.pool.busy_count() == 0
    }

    /// Failover evacuation: pull every queued, pending, and in-flight
    /// request out of the engine (deterministic order: backlog classes in
    /// EDF order, then pending submissions, then pool batches in instance
    /// order) and stop accounting for them — the fleet re-routes them to
    /// surviving shards, where they are offered again. Trace contexts of
    /// evacuated requests are dropped; the destination mints fresh ones.
    pub fn evacuate(&mut self) -> Vec<Request> {
        let mut out = Vec::new();
        for class in 0..self.backlog.class_count() {
            let n = self.backlog.class_len(class);
            out.extend(self.backlog.take(class, n));
        }
        out.append(&mut self.incoming);
        for batch in self.pool.evacuate() {
            out.extend(batch.requests);
        }
        for req in &out {
            self.offered -= 1;
            self.traces.remove(&req.id);
        }
        out
    }

    /// Queue pressure the balancer routes on: queued plus not-yet-admitted
    /// submissions.
    pub fn queued_hint(&self) -> usize {
        self.backlog.len() + self.incoming.len()
    }

    /// Whether submitted requests are waiting for the next step's
    /// admission phase (the fleet must advance the engine to deliver them).
    pub fn has_incoming(&self) -> bool {
        !self.incoming.is_empty()
    }

    /// The engine's current serve-clock tick.
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Per-class served-latency histograms (the scaler's p99 input).
    pub fn class_latency(&self) -> &[Histogram] {
        &self.class_latency
    }

    /// Instances in this engine's pool.
    pub fn pool_size(&self) -> usize {
        self.pool.size()
    }

    /// Instances currently serving a batch.
    pub fn pool_busy(&self) -> usize {
        self.pool.busy_count()
    }

    /// Finish an externally stepped engine: final accounting and the
    /// report (the counterpart of the tail of `run`). Call once.
    pub fn finish(&mut self) -> ServeReport {
        self.finalize()
    }

    fn effective_jobs(&self) -> usize {
        if self.cfg.jobs == 0 {
            hermes_par::jobs()
        } else {
            self.cfg.jobs
        }
    }

    /// Run to completion: every offered request ends in a verdict.
    ///
    /// The loop is timer-driven: after each phased step the engine posts
    /// the next due tick of every phase into the kernel, then pops wake
    /// candidates until one still matches the live state. The first
    /// live timer is exactly the minimum pending event tick, so the
    /// serve clock advances event to event with no per-tick polling.
    pub fn run(&mut self) -> ServeReport {
        let mut sched: Scheduler<ServeTimer> = Scheduler::new(self.event_kernel);
        let domains = ServeDomains::register();
        // chaos has a single timeline: the whole plan posts up front
        // instead of being peeked every step
        if let Some(plan) = &self.plan {
            for cycle in plan.pending_cycles() {
                if cycle > 0 {
                    sched
                        .post(cycle, domains.chaos, ServeTimer::Chaos)
                        .expect("fault timeline is in the future");
                }
            }
        }
        loop {
            self.step();
            self.wakes += 1;
            self.post_timers(&mut sched, &domains);
            match self.next_wake(&mut sched) {
                Some(t) => {
                    debug_assert!(t > self.now, "event clock must advance");
                    self.now = t;
                }
                None => break,
            }
        }
        self.kernel_stats = *sched.stats();
        self.finalize()
    }

    /// Process every phase due at the current tick, in the fixed order:
    /// recover, complete, faults, arrivals, shed-expired, dispatch.
    fn step(&mut self) {
        let now = self.now;
        self.pool.account_until(now);
        self.pool.recover_until(now);

        let done = self.pool.complete_until(now);
        for (_instance, batch) in done {
            self.complete_batch(batch);
        }

        let faults: Vec<_> = match self.plan.as_mut() {
            Some(plan) => plan.drain_until(now),
            None => Vec::new(),
        };
        for ev in faults {
            self.apply_fault(ev.kind);
        }

        while self.cursor < self.arrivals.len() && self.arrivals[self.cursor].arrival <= now {
            let req = self.arrivals[self.cursor].clone();
            self.cursor += 1;
            self.admit(req);
        }
        // externally submitted (fleet-routed) requests enter through the
        // same admission phase, after internal arrivals, in submit order
        if !self.incoming.is_empty() {
            let incoming = std::mem::take(&mut self.incoming);
            for req in incoming {
                self.admit(req);
            }
        }

        for req in self.backlog.expire(now) {
            self.shed_expired += 1;
            let class = self.class_of(&req);
            self.class_shed[class] += 1;
            self.settle(req.id, Verdict::Shed(ShedReason::DeadlineExpired));
        }

        self.dispatch();
        self.obs
            .gauge_set("serve", "queue_depth", self.backlog.len() as i64);
    }

    /// The admission phase for one request: count it offered, mint its
    /// trace context, and either queue it or settle a rejection verdict.
    /// Internal arrivals and fleet-submitted requests share this path, so
    /// the verdict stream is identical however requests reach the engine.
    fn admit(&mut self, req: Request) {
        let now = self.now;
        let id = req.id;
        self.offered += 1;
        // mint for every arrival — identity must not depend on the
        // sample rate — but only sampled contexts are kept/recorded
        let ctx = self.obs.mint_trace();
        if ctx.is_traced() && ctx.sampled(self.cfg.trace_sample_permille) {
            self.traces.insert(id, ctx);
            // no args: the trace link is the identity, and the root
            // span emitted at completion carries id/class — sampled
            // admission stays cheap (~one ring push per arrival)
            self.obs.trace_instant("serve", "arrive", ClockDomain::Cpu, now, &[], ctx);
        }
        if self.draining {
            self.rejected_draining += 1;
            self.settle(id, Verdict::Rejected(RejectReason::Draining));
            return;
        }
        match self.backlog.offer(req) {
            Ok(()) => {}
            Err(RejectReason::QueueFull) => {
                self.rejected_queue_full += 1;
                self.settle(id, Verdict::Rejected(RejectReason::QueueFull));
            }
            Err(RejectReason::TenantQuota) => {
                self.rejected_quota += 1;
                self.settle(id, Verdict::Rejected(RejectReason::TenantQuota));
            }
            Err(RejectReason::Draining) => unreachable!("backlog never rejects as draining"),
        }
    }

    fn class_of(&self, req: &Request) -> usize {
        (req.class as usize).min(self.class_shed.len() - 1)
    }

    /// Deadline-aware batch formation. Queues are EDF-sorted, so the
    /// binding deadline of any prefix batch is the head's: shed heads that
    /// cannot finish even solo, then take the largest batch the head's
    /// deadline still admits.
    fn dispatch(&mut self) {
        let svc1 = self.model.service_cycles(1);
        let now = self.now;
        'classes: for class in 0..self.backlog.class_count() {
            loop {
                let Some(instance) = self.pool.first_idle() else {
                    break 'classes;
                };
                // shed heads that would miss even in the smallest batch
                while let Some(d) = self.backlog.head_deadline(class) {
                    if d < now + svc1 {
                        for req in self.backlog.take(class, 1) {
                            self.shed_would_miss += 1;
                            let c = self.class_of(&req);
                            self.class_shed[c] += 1;
                            self.settle(req.id, Verdict::Shed(ShedReason::WouldMissDeadline));
                        }
                    } else {
                        break;
                    }
                }
                let qlen = self.backlog.class_len(class);
                if qlen == 0 {
                    break;
                }
                let head = self.backlog.head_deadline(class).expect("non-empty class");
                let oldest = self.backlog.oldest_arrival(class).expect("non-empty class");
                let full = qlen >= self.cfg.batch_max;
                let aged = now >= oldest + self.cfg.batch_window;
                let urgent = head <= now + svc1;
                if !(full || aged || urgent) {
                    break;
                }
                // largest k the head's deadline admits
                let mut k = qlen.min(self.cfg.batch_max).max(1);
                while k > 1 && head < now + self.model.service_cycles(k) {
                    k -= 1;
                }
                let requests = self.backlog.take(class, k);
                let finish = now + self.model.service_cycles(requests.len());
                self.batches += 1;
                self.batch_items += requests.len() as u64;
                self.obs
                    .observe("serve", "batch_size", &BATCH_BOUNDS, requests.len() as u64);
                for req in &requests {
                    if let Some(&ctx) = self.traces.get(&req.id) {
                        // instance only: id and batch size ride on the
                        // root span; the dispatch instant pins *where*
                        // and *when* the request left the queue
                        self.obs.trace_instant(
                            "serve",
                            "dispatch",
                            ClockDomain::Cpu,
                            now,
                            &[("instance", instance.to_string())],
                            ctx,
                        );
                    }
                }
                self.pool.dispatch(
                    instance,
                    Batch {
                        class,
                        requests,
                        dispatched: now,
                        finish,
                    },
                );
            }
        }
    }

    /// A batch finished: evaluate payloads (bounded, in input order) and
    /// assign verdicts. On-time members are served and folded into the
    /// output checksum; a stall that pushed the batch past a member's
    /// deadline sheds that member as completed-late. A compute-model
    /// panic degrades gracefully: the whole batch is shed as
    /// compute-failed instead of killing the engine, so the accounting
    /// invariant (`served + shed + rejected == offered`) survives a
    /// hostile or buggy model.
    fn complete_batch(&mut self, batch: Batch) {
        let inputs: Vec<&[i64]> = batch.requests.iter().map(|r| r.input.as_slice()).collect();
        let model = &self.model;
        let outputs = match hermes_par::par_map_bounded_jobs(
            self.effective_jobs(),
            self.cfg.compute_bound,
            &inputs,
            |input| model.compute(input),
        ) {
            Ok(outputs) => outputs,
            Err(_) => {
                self.obs.instant(
                    "serve",
                    "compute-failed",
                    ClockDomain::Cpu,
                    self.now,
                    &[("items", batch.requests.len().to_string())],
                );
                for req in &batch.requests {
                    self.shed_compute += 1;
                    let class = self.class_of(req);
                    self.class_shed[class] += 1;
                    self.settle(req.id, Verdict::Shed(ShedReason::ComputeFailed));
                }
                return;
            }
        };
        let k = batch.requests.len();
        for (req, out) in batch.requests.iter().zip(outputs.iter()) {
            if batch.finish <= req.deadline {
                let latency = batch.finish - req.arrival;
                self.served += 1;
                let class = self.class_of(req);
                self.class_served[class] += 1;
                self.class_latency[class].observe(latency);
                // static names for the common class counts: one histogram
                // observe per served request must not allocate
                const CLASS_HIST: [&str; 4] =
                    ["latency_class0", "latency_class1", "latency_class2", "latency_class3"];
                match CLASS_HIST.get(class) {
                    Some(name) => self.obs.observe("serve", name, &LATENCY_BOUNDS, latency),
                    None => self.obs.observe(
                        "serve",
                        &format!("latency_class{class}"),
                        &LATENCY_BOUNDS,
                        latency,
                    ),
                }
                self.checksum = fnv1a_words(self.checksum, out);
                self.trace_request_path(req, &batch, k, latency);
                self.settle(req.id, Verdict::Served { latency });
            } else {
                self.shed_late += 1;
                let class = self.class_of(req);
                self.class_shed[class] += 1;
                self.settle(req.id, Verdict::Shed(ShedReason::CompletedLate));
            }
        }
    }

    /// Emit the causal trace of one served request: a `request` root span
    /// covering arrival→completion, decomposed into child segments —
    /// queue wait, batch overhead, accelerator service, DMA, and any
    /// fault-induced stall — that sum to the end-to-end latency *exactly*
    /// (the profiler's critical-path invariant). Zero-length segments are
    /// elided; elision never breaks the sum.
    fn trace_request_path(&self, req: &Request, batch: &Batch, k: usize, latency: u64) {
        let Some(&ctx) = self.traces.get(&req.id) else {
            return;
        };
        let root = self.obs.trace_span(
            "serve",
            "request",
            ClockDomain::Cpu,
            req.arrival,
            latency,
            &[
                ("id", req.id.to_string()),
                ("class", req.class.to_string()),
                ("batch", k.to_string()),
            ],
            WallMark::none(),
            ctx,
        );
        let child = ctx.child(root);
        let k64 = k as u64;
        let queue_wait = batch.dispatched - req.arrival;
        let service = self.model.per_item * k64;
        let dma = self.model.dma_per_item * k64;
        let stall = (batch.finish - batch.dispatched) - self.model.service_cycles(k);
        let mut t = req.arrival;
        for (name, dur) in [
            ("queue-wait", queue_wait),
            ("batch-overhead", self.model.batch_overhead),
            ("service", service),
            ("dma", dma),
            ("stall", stall),
        ] {
            if dur > 0 {
                self.obs
                    .trace_span("serve", name, ClockDomain::Cpu, t, dur, &[], WallMark::none(), child);
                t += dur;
            }
        }
        debug_assert_eq!(t - req.arrival, latency, "segments must sum to latency");
    }

    /// Final accounting for one request: retire its trace context
    /// (emitting a terminal instant for non-served outcomes), record the
    /// verdict, and feed the SLO engine on the simulated clock —
    /// emitting an `slo` instant and refreshing the `alert_<spec>` gauge
    /// on every alert-state transition.
    fn settle(&mut self, id: u64, verdict: Verdict) {
        let ctx = self.traces.remove(&id).unwrap_or_default();
        if ctx.is_traced() {
            let terminal = match verdict {
                Verdict::Rejected(r) => Some(("reject", r.as_str())),
                Verdict::Shed(r) => Some(("shed", r.as_str())),
                Verdict::Served { .. } => None, // the root span is the terminator
            };
            if let Some((name, reason)) = terminal {
                self.obs.trace_instant(
                    "serve",
                    name,
                    ClockDomain::Cpu,
                    self.now,
                    &[("id", id.to_string()), ("reason", reason.to_string())],
                    ctx,
                );
            }
        }
        self.verdicts.push((id, verdict));
        let outcome = match verdict {
            Verdict::Served { latency } => RequestOutcome {
                served: true,
                rejected: false,
                latency: Some(latency),
            },
            Verdict::Shed(_) => RequestOutcome { served: false, rejected: false, latency: None },
            Verdict::Rejected(_) => RequestOutcome { served: false, rejected: true, latency: None },
        };
        let transitions = match self.slo.as_mut() {
            Some(slo) => slo.record(self.now, &outcome),
            None => Vec::new(),
        };
        for t in transitions {
            self.obs.instant(
                "slo",
                "alert-transition",
                ClockDomain::Cpu,
                self.now,
                &[
                    ("spec", t.spec.clone()),
                    ("from", t.from.as_str().to_string()),
                    ("to", t.to.as_str().to_string()),
                    ("short_burn_x100", t.short_burn_x100.to_string()),
                    ("long_burn_x100", t.long_burn_x100.to_string()),
                ],
            );
            self.obs.gauge_set("slo", &format!("alert_{}", t.spec), t.to.as_gauge());
        }
    }

    fn apply_fault(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::PoolKill {
                instance,
                down_cycles,
            } => {
                self.kills += 1;
                let until = self.now + u64::from(down_cycles.max(1));
                self.obs.instant(
                    "serve",
                    "pool-kill",
                    ClockDomain::Cpu,
                    self.now,
                    &[("instance", instance.to_string())],
                );
                if let Some(batch) = self.pool.kill(usize::from(instance), until) {
                    for req in batch.requests {
                        self.requeued += 1;
                        self.backlog.requeue(req);
                    }
                }
            }
            FaultKind::PoolStall { instance, cycles } => {
                self.stalls += 1;
                self.obs.instant(
                    "serve",
                    "pool-stall",
                    ClockDomain::Cpu,
                    self.now,
                    &[("instance", instance.to_string())],
                );
                self.pool.stall(usize::from(instance), u64::from(cycles.max(1)));
            }
            // Other subsystems' faults target the boot/bus campaigns.
            _ => {}
        }
    }

    /// Post one timer kind's current due tick, unless it is not in the
    /// future or the same tick is already pending for that kind.
    fn post_timer(
        sched: &mut Scheduler<ServeTimer>,
        memo: &mut Option<Tick>,
        due: Option<Tick>,
        now: Tick,
        domain: DomainId,
        timer: ServeTimer,
    ) {
        if let Some(t) = due {
            if t > now && *memo != Some(t) {
                sched.post(t, domain, timer).expect("future timer posts");
                *memo = Some(t);
            }
        }
    }

    /// Post the next due tick of every phase after a step. Superseded
    /// timers (the state moved on) stay in the kernel and are skipped at
    /// pop by [`Self::next_wake`]'s liveness check.
    fn post_timers(&mut self, sched: &mut Scheduler<ServeTimer>, d: &ServeDomains) {
        let now = self.now;
        let svc1 = self.model.service_cycles(1);
        let arrival = self.arrivals.get(self.cursor).map(|r| r.arrival);
        Self::post_timer(sched, &mut self.memo.arrival, arrival, now, d.arrival, ServeTimer::Arrival);
        let pool = self.pool.next_transition();
        Self::post_timer(sched, &mut self.memo.pool, pool, now, d.pool, ServeTimer::Pool);
        // expiry: deadline < now sheds, so the wake lands at deadline + 1
        let expiry = self.backlog.earliest_deadline().map(|dl| dl + 1);
        Self::post_timer(sched, &mut self.memo.expiry, expiry, now, d.expiry, ServeTimer::Expiry);
        for class in 0..self.backlog.class_count() {
            let window = self.backlog.oldest_arrival(class).map(|o| o + self.cfg.batch_window);
            Self::post_timer(
                sched,
                &mut self.memo.window[class],
                window,
                now,
                d.batch,
                ServeTimer::Window(class),
            );
            // last safe dispatch of the class head
            let safe = self.backlog.head_deadline(class).map(|h| h.saturating_sub(svc1));
            Self::post_timer(
                sched,
                &mut self.memo.safe[class],
                safe,
                now,
                d.batch,
                ServeTimer::Safe(class),
            );
        }
    }

    /// Whether a popped timer still predicts tick `t` — i.e. its kind's
    /// current due tick is exactly `t`. Chaos timers additionally only
    /// matter while work remains (the engine never wakes just to apply a
    /// fault to an empty, finished system).
    fn timer_live(&self, timer: ServeTimer, t: Tick) -> bool {
        let svc1 = self.model.service_cycles(1);
        match timer {
            ServeTimer::Arrival => self.arrivals.get(self.cursor).map(|r| r.arrival) == Some(t),
            ServeTimer::Pool => self.pool.next_transition() == Some(t),
            ServeTimer::Chaos => {
                !(self.backlog.is_empty() && self.cursor >= self.arrivals.len())
                    && self.plan.as_ref().and_then(FaultPlan::peek_cycle) == Some(t)
            }
            ServeTimer::Expiry => self.backlog.earliest_deadline().map(|d| d + 1) == Some(t),
            ServeTimer::Window(class) => {
                self.backlog.oldest_arrival(class).map(|o| o + self.cfg.batch_window) == Some(t)
            }
            ServeTimer::Safe(class) => {
                self.backlog.head_deadline(class).map(|h| h.saturating_sub(svc1)) == Some(t)
            }
        }
    }

    /// Pop the next wake tick: the earliest pending timer that is still
    /// live. Every phase's current due tick is pending (posted after the
    /// last step), so the first live pop is exactly the minimum pending
    /// event tick strictly after `now`; `None` means the run is done.
    fn next_wake(&mut self, sched: &mut Scheduler<ServeTimer>) -> Option<Tick> {
        while let Some(ev) = sched.pop_next() {
            // a timer at or behind the serve clock is always superseded
            if ev.time > self.now && self.timer_live(ev.payload, ev.time) {
                return Some(ev.time);
            }
        }
        None
    }

    fn finalize(&mut self) -> ServeReport {
        self.pool.account_until(self.now);
        let offered = self.offered;
        let per_class = (0..self.class_served.len())
            .map(|c| {
                let h = &self.class_latency[c];
                ClassStats {
                    class: c,
                    served: self.class_served[c],
                    shed: self.class_shed[c],
                    p50: h.percentile(0.50).unwrap_or(0),
                    p95: h.percentile(0.95).unwrap_or(0),
                    p99: h.percentile(0.99).unwrap_or(0),
                }
            })
            .collect();
        let report = ServeReport {
            offered,
            served: self.served,
            shed_expired: self.shed_expired,
            shed_would_miss: self.shed_would_miss,
            shed_late: self.shed_late,
            shed_compute: self.shed_compute,
            rejected_queue_full: self.rejected_queue_full,
            rejected_quota: self.rejected_quota,
            rejected_draining: self.rejected_draining,
            requeued: self.requeued,
            batches: self.batches,
            batch_items: self.batch_items,
            makespan: self.now,
            per_class,
            instance_busy: self.pool.busy_ticks.clone(),
            instance_down: self.pool.down_ticks.clone(),
            kills: self.kills,
            stalls: self.stalls,
            output_checksum: self.checksum,
        };
        for (name, v) in [
            ("offered", report.offered),
            ("served", report.served),
            ("shed", report.shed()),
            ("rejected", report.rejected()),
            ("requeued", report.requeued),
            ("batches", report.batches),
        ] {
            self.obs.counter_add("serve", name, v);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{self, WorkloadConfig};
    use hermes_chaos::plan::{FaultPlan, FaultPlanConfig};
    use std::collections::HashSet;

    fn model() -> AcceleratorModel {
        AcceleratorModel::new("double", 20, 40, |xs| xs.iter().map(|&x| x * 2).collect())
    }

    fn run_with(cfg: ServeConfig, load_pct: u64, seed: u64) -> (ServeReport, Vec<(u64, Verdict)>) {
        let wl = WorkloadConfig::default().at_load_pct(load_pct);
        let arrivals = workload::generate(seed, &wl);
        let mut engine = ServeEngine::new(cfg, model(), arrivals);
        let report = engine.run();
        (report, engine.verdicts().to_vec())
    }

    #[test]
    fn underload_serves_everything_admitted() {
        let (report, verdicts) = run_with(ServeConfig::default(), 50, 11);
        assert!(report.accounted(), "{report:?}");
        assert_eq!(report.offered, 400);
        assert!(report.served >= report.offered * 9 / 10, "{report:?}");
        assert_eq!(verdicts.len() as u64, report.offered);
    }

    #[test]
    fn overload_sheds_and_rejects_but_accounts_everything() {
        let cfg = ServeConfig {
            queue_depth: 16,
            tenant_quota: 8,
            ..ServeConfig::default()
        };
        let (report, verdicts) = run_with(cfg, 300, 7);
        assert!(report.accounted(), "{report:?}");
        assert!(report.rejected() > 0, "{report:?}");
        assert!(report.served > 0, "{report:?}");
        // every offered id got exactly one verdict
        let ids: HashSet<u64> = verdicts.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids.len(), verdicts.len(), "no duplicate verdicts");
        assert_eq!(ids.len() as u64, report.offered);
    }

    #[test]
    fn reports_identical_across_jobs() {
        for load in [60, 180] {
            let (r1, v1) = run_with(ServeConfig { jobs: 1, ..ServeConfig::default() }, load, 3);
            let (r4, v4) = run_with(ServeConfig { jobs: 4, ..ServeConfig::default() }, load, 3);
            assert_eq!(r1, r4, "report differs at load {load}");
            assert_eq!(v1, v4, "verdict log differs at load {load}");
            assert_eq!(r1.render(), r4.render());
        }
    }

    #[test]
    fn chaos_kills_requeue_and_stay_accounted() {
        let wl = WorkloadConfig::default().at_load_pct(150);
        let arrivals = workload::generate(5, &wl);
        let span = arrivals.last().unwrap().arrival;
        let plan = FaultPlan::generate(99, &FaultPlanConfig::pool_only(span, 6, 4, 500, 2));
        let mut engine = ServeEngine::new(ServeConfig::default(), model(), arrivals).with_chaos(plan);
        let report = engine.run();
        assert!(report.accounted(), "{report:?}");
        assert_eq!(report.kills, 6);
        assert_eq!(report.stalls, 4);
        assert!(report.requeued > 0, "a kill should land mid-batch: {report:?}");
        assert!(report.instance_down.iter().sum::<u64>() > 0);
        assert!(report.availability_permille() < 1000);
        let ids: HashSet<u64> = engine.verdicts().iter().map(|&(id, _)| id).collect();
        assert_eq!(ids.len() as u64, report.offered, "no silent drops under chaos");
    }

    #[test]
    fn chaos_run_identical_across_jobs() {
        let mk = |jobs: usize| {
            let wl = WorkloadConfig::default().at_load_pct(150);
            let arrivals = workload::generate(5, &wl);
            let span = arrivals.last().unwrap().arrival;
            let plan = FaultPlan::generate(99, &FaultPlanConfig::pool_only(span, 6, 4, 500, 2));
            let mut engine = ServeEngine::new(
                ServeConfig { jobs, ..ServeConfig::default() },
                model(),
                arrivals,
            )
            .with_chaos(plan);
            let report = engine.run();
            (report.render(), report.output_checksum)
        };
        assert_eq!(mk(1), mk(4));
    }

    #[test]
    fn panicking_model_sheds_batches_instead_of_killing_engine() {
        // a hostile compute model that panics on inputs divisible by 5:
        // the engine must survive, shed those batches as compute-failed,
        // and keep every request accounted
        let hostile = AcceleratorModel::new("hostile", 20, 40, |xs| {
            assert!(!xs.iter().any(|&x| x % 5 == 0), "hostile input");
            xs.iter().map(|&x| x * 2).collect()
        });
        let wl = WorkloadConfig::default().at_load_pct(80);
        let arrivals = workload::generate(13, &wl);
        let mut engine = ServeEngine::new(ServeConfig::default(), hostile, arrivals);
        let report = engine.run();
        assert!(report.accounted(), "{report:?}");
        assert!(report.shed_compute > 0, "panics landed: {report:?}");
        assert!(report.served > 0, "clean batches still served: {report:?}");
        assert!(
            engine
                .verdicts()
                .iter()
                .any(|&(_, v)| v == Verdict::Shed(ShedReason::ComputeFailed)),
            "compute-failed verdicts recorded"
        );
        assert!(report.render().contains("compute"));

        // an always-panicking model: nothing served, still fully accounted
        let toxic = AcceleratorModel::new("toxic", 20, 40, |_| panic!("boom"));
        let arrivals = workload::generate(13, &WorkloadConfig::default().at_load_pct(80));
        let mut engine = ServeEngine::new(ServeConfig::default(), toxic, arrivals);
        let report = engine.run();
        assert!(report.accounted(), "{report:?}");
        assert_eq!(report.served, 0);
        assert!(report.shed_compute > 0);
    }

    #[test]
    fn panicking_model_identical_across_jobs() {
        let mk = |jobs: usize| {
            let hostile = AcceleratorModel::new("hostile", 20, 40, |xs| {
                assert!(!xs.iter().any(|&x| x % 5 == 0), "hostile input");
                xs.iter().map(|&x| x * 2).collect()
            });
            let arrivals = workload::generate(13, &WorkloadConfig::default().at_load_pct(80));
            let mut engine =
                ServeEngine::new(ServeConfig { jobs, ..ServeConfig::default() }, hostile, arrivals);
            let report = engine.run();
            (report.render(), engine.verdicts().to_vec())
        };
        assert_eq!(mk(1), mk(4));
    }

    #[test]
    fn strict_priority_favors_class_zero_under_overload() {
        let (report, _) = run_with(ServeConfig::default(), 250, 21);
        assert!(report.accounted());
        let c0 = &report.per_class[0];
        let c1 = &report.per_class[1];
        assert!(c0.served > 0 && c1.served > 0);
        // class 0 is dispatched first; its served share must not be worse
        let share0 = c0.served * 1000 / (c0.served + c0.shed).max(1);
        let share1 = c1.served * 1000 / (c1.served + c1.shed).max(1);
        assert!(
            share0 >= share1,
            "priority inverted: {share0} vs {share1} ({report:?})"
        );
    }

    #[test]
    fn traced_run_has_exact_critical_paths_for_every_served_request() {
        let run = |jobs: usize| {
            let wl = WorkloadConfig::default().at_load_pct(150);
            let arrivals = workload::generate(9, &wl);
            let mut engine = ServeEngine::new(
                ServeConfig { jobs, ..ServeConfig::default() },
                model(),
                arrivals,
            )
            .with_recorder(Recorder::new());
            let report = engine.run();
            (report, engine.recorder().snapshot())
        };
        let (report, snap) = run(1);
        let prof = hermes_obs::profile::profile(&snap);
        let (exact, total) = prof.exact_paths("request");
        assert_eq!(total, report.served, "one root span per served request");
        assert_eq!(exact, total, "every critical path must sum to its latency exactly");
        assert!(prof.spans.iter().any(|s| s.name == "queue-wait"));
        assert!(prof.spans.iter().any(|s| s.name == "service"));
        // byte-identical across worker counts
        let (_, snap4) = run(4);
        let prof4 = hermes_obs::profile::profile(&snap4);
        assert_eq!(format!("{prof:?}"), format!("{prof4:?}"));
    }

    #[test]
    fn sampling_bounds_recording_but_never_identity() {
        let run = |permille: u64| {
            let wl = WorkloadConfig::default().at_load_pct(120);
            let arrivals = workload::generate(17, &wl);
            let mut engine = ServeEngine::new(
                ServeConfig { trace_sample_permille: permille, ..ServeConfig::default() },
                model(),
                arrivals,
            )
            .with_recorder(Recorder::new());
            let report = engine.run();
            let snap = engine.recorder().snapshot();
            let traced: usize = snap
                .subsystems
                .iter()
                .flat_map(|s| s.events.iter())
                .filter(|e| e.trace.is_some())
                .count();
            (report, engine.verdicts().to_vec(), traced)
        };
        let (r_full, v_full, t_full) = run(1000);
        let (r_half, v_half, t_half) = run(500);
        let (r_none, v_none, t_none) = run(0);
        // sampling is an observability knob, never a results knob
        assert_eq!(r_full, r_half);
        assert_eq!(r_full, r_none);
        assert_eq!(v_full, v_half);
        assert_eq!(v_full, v_none);
        // and it really does bound the recording volume
        assert_eq!(t_none, 0);
        assert!(t_half > 0 && t_half < t_full, "{t_half} vs {t_full}");
    }

    #[test]
    fn slo_pages_under_sustained_overload_and_stays_ok_when_healthy() {
        use hermes_obs::slo::{AlertState, SloObjective, SloSpec};
        let run = |load_pct: u64| {
            let wl = WorkloadConfig::default().at_load_pct(load_pct);
            let arrivals = workload::generate(23, &wl);
            let makespan_hint = arrivals.last().unwrap().arrival;
            // overload at the admission queue manifests as rejections, so
            // availability (which counts them) is the objective that sees it
            let specs = vec![SloSpec::new(
                "avail",
                SloObjective::Availability { min_permille: 950 },
                (makespan_hint / 4).max(8),
            )];
            let mut engine = ServeEngine::new(ServeConfig::default(), model(), arrivals)
                .with_recorder(Recorder::new())
                .with_slo(hermes_obs::slo::SloEngine::new(specs));
            let report = engine.run();
            let worst = engine.slo().unwrap().worst_states()[0].1;
            let transitions = engine.slo().unwrap().verdicts().len();
            let snap = engine.recorder().snapshot();
            let gauged = snap
                .gauges
                .iter()
                .any(|(sub, name, _)| sub == "slo" && name == "alert_avail");
            (report, worst, transitions, gauged)
        };
        let (healthy, worst_ok, trans_ok, _) = run(50);
        assert!(healthy.accounted());
        assert_eq!(worst_ok, AlertState::Ok, "light load must never alert");
        assert_eq!(trans_ok, 0);
        let (overload, worst_bad, trans_bad, gauged) = run(300);
        assert!(overload.accounted());
        assert_eq!(worst_bad, AlertState::Page, "sustained overload must page");
        assert!(trans_bad > 0);
        assert!(gauged, "alert state exported as a gauge on transition");
    }

    #[test]
    fn slo_feed_is_identical_across_jobs() {
        use hermes_obs::slo::{SloObjective, SloSpec};
        let run = |jobs: usize| {
            let wl = WorkloadConfig::default().at_load_pct(250);
            let arrivals = workload::generate(31, &wl);
            let mut engine = ServeEngine::new(
                ServeConfig { jobs, queue_depth: 16, ..ServeConfig::default() },
                model(),
                arrivals,
            )
            .with_slo(hermes_obs::slo::SloEngine::new(vec![SloSpec::new(
                "avail",
                SloObjective::Availability { min_permille: 900 },
                2000,
            )]));
            engine.run();
            format!("{:?}", engine.slo().unwrap().verdicts())
        };
        assert_eq!(run(1), run(4));
    }

    /// Drive an engine externally the way a fleet shard is driven: submit
    /// each request at its arrival tick, advance at every due/delivery
    /// tick until both the stream and the engine are exhausted.
    fn pump(e: &mut ServeEngine, reqs: &[Request]) {
        let mut i = 0;
        loop {
            let next_arrival = reqs.get(i).map(|r| r.arrival);
            let t = match (next_arrival, e.next_due()) {
                (Some(a), Some(d)) => a.min(d),
                (Some(a), None) => a,
                (None, Some(d)) => d,
                (None, None) => break,
            };
            let t = t.max(e.now());
            while reqs.get(i).is_some_and(|r| r.arrival <= t) {
                e.submit(reqs[i].clone());
                i += 1;
            }
            e.advance(t);
        }
    }

    #[test]
    fn externally_stepped_engine_matches_run_byte_identically() {
        for (load, seed) in [(60, 5), (150, 5), (250, 12)] {
            let wl = WorkloadConfig::default().at_load_pct(load);
            let arrivals = workload::generate(seed, &wl);
            let mut bare = ServeEngine::new(ServeConfig::default(), model(), arrivals.clone());
            let baseline = bare.run();
            let mut ext = ServeEngine::new(ServeConfig::default(), model(), Vec::new());
            pump(&mut ext, &arrivals);
            let report = ext.finish();
            assert_eq!(report, baseline, "load {load} seed {seed}");
            assert_eq!(report.render(), baseline.render());
            assert_eq!(ext.verdicts(), bare.verdicts());
        }
    }

    #[test]
    fn drain_stops_admission_and_preserves_accounting() {
        let wl = WorkloadConfig::default().at_load_pct(200);
        let arrivals = workload::generate(8, &wl);
        let half = arrivals.len() / 2;
        let mut e = ServeEngine::new(ServeConfig::default(), model(), Vec::new());
        // feed the first half only up to its last arrival tick, so work
        // is still queued/in flight when the drain lands
        let mut i = 0;
        let cutoff = arrivals[half - 1].arrival;
        while i < half {
            let t = arrivals[i].arrival;
            while i < half && arrivals[i].arrival <= t {
                e.submit(arrivals[i].clone());
                i += 1;
            }
            e.advance(t);
            if t >= cutoff {
                break;
            }
        }
        let residue = e.drain();
        assert!(
            residue.queued + residue.in_flight > 0,
            "drain landed on live work: {residue:?}"
        );
        // the residue finishes without new admissions
        while let Some(t) = e.next_due() {
            e.advance(t);
        }
        assert!(e.quiescent(), "drained engine quiesces");
        // late submissions are rejected as draining, still accounted
        let late = &arrivals[half..];
        for r in late {
            e.submit(r.clone());
        }
        let t = e.now() + 1;
        e.advance(t);
        let report = e.finish();
        assert!(report.accounted(), "{report:?}");
        assert_eq!(report.rejected_draining, late.len() as u64);
        assert!(report.served > 0);
        assert!(report.render().contains("draining"));
    }

    #[test]
    fn evacuate_hands_back_unsettled_work_and_keeps_accounting() {
        let wl = WorkloadConfig::default().at_load_pct(250);
        let arrivals = workload::generate(4, &wl);
        let half = arrivals.len() / 2;
        let mut e = ServeEngine::new(ServeConfig::default(), model(), Vec::new());
        let mut i = 0;
        while i < half {
            let t = arrivals[i].arrival;
            while i < half && arrivals[i].arrival <= t {
                e.submit(arrivals[i].clone());
                i += 1;
            }
            e.advance(t);
        }
        let submitted = half as u64;
        let evacuated = e.evacuate();
        assert!(!evacuated.is_empty(), "overloaded engine held work");
        assert!(e.quiescent(), "evacuation empties the engine");
        let settled: HashSet<u64> = e.verdicts().iter().map(|&(id, _)| id).collect();
        for req in &evacuated {
            assert!(!settled.contains(&req.id), "evacuated work has no verdict here");
        }
        let report = e.finish();
        assert!(report.accounted(), "{report:?}");
        assert_eq!(report.offered + evacuated.len() as u64, submitted);
    }

    #[test]
    fn recorder_sees_serve_metrics() {
        let wl = WorkloadConfig::default();
        let arrivals = workload::generate(2, &wl);
        let mut engine = ServeEngine::new(ServeConfig::default(), model(), arrivals)
            .with_recorder(Recorder::new());
        let report = engine.run();
        let snap = engine.recorder().snapshot();
        let served = snap
            .counters
            .iter()
            .find(|(sub, name, _)| sub == "serve" && name == "served")
            .expect("served counter exported");
        assert_eq!(served.2, report.served);
        assert!(snap
            .histograms
            .iter()
            .any(|(sub, name, _)| sub == "serve" && name == "batch_size"));
    }
}
