//! The admission backlog: bounded depth, per-tenant quotas, and
//! earliest-deadline-first order within each priority class.
//!
//! Admission control is the first of the runtime's three defenses against
//! overload (the others are deadline-aware batch shrinking and shedding at
//! dispatch). A request that would push the backlog past its depth bound,
//! or its tenant past its quota, is rejected *immediately* with an
//! accounted verdict — an overloaded runtime must say no early, not queue
//! work it will certainly shed later.

use crate::request::{RejectReason, Request};
use crate::Tick;
use std::collections::HashMap;

/// Bounded, quota-enforcing, EDF-ordered backlog.
#[derive(Debug)]
pub struct Backlog {
    depth_limit: usize,
    tenant_quota: usize,
    /// One EDF queue per priority class, each sorted ascending by
    /// `(deadline, id)`.
    classes: Vec<Vec<Request>>,
    /// Queued requests per tenant (quota accounting). Never iterated, so
    /// the map's order cannot leak into results.
    tenants: HashMap<u16, usize>,
    len: usize,
}

impl Backlog {
    /// An empty backlog for `classes` priority classes.
    pub fn new(classes: usize, depth_limit: usize, tenant_quota: usize) -> Self {
        Backlog {
            depth_limit: depth_limit.max(1),
            tenant_quota: tenant_quota.max(1),
            classes: (0..classes.max(1)).map(|_| Vec::new()).collect(),
            tenants: HashMap::new(),
            len: 0,
        }
    }

    /// Number of priority classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Total queued requests.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queued requests in one class.
    pub fn class_len(&self, class: usize) -> usize {
        self.classes.get(class).map_or(0, Vec::len)
    }

    /// Admission: accept the request into its class queue, or reject it
    /// with an accounted reason. A request whose class exceeds the
    /// configured range is folded into the lowest-priority class.
    ///
    /// # Errors
    ///
    /// [`RejectReason::QueueFull`] at the depth bound,
    /// [`RejectReason::TenantQuota`] at the tenant's quota.
    pub fn offer(&mut self, req: Request) -> Result<(), RejectReason> {
        if self.len >= self.depth_limit {
            return Err(RejectReason::QueueFull);
        }
        if self.tenants.get(&req.tenant).copied().unwrap_or(0) >= self.tenant_quota {
            return Err(RejectReason::TenantQuota);
        }
        self.insert(req);
        Ok(())
    }

    /// Re-admit a request whose batch was killed mid-flight. Quota and
    /// depth are bypassed — the request was already admitted once and must
    /// stay accounted — but the tenant count is kept so quotas see the
    /// re-queued load.
    pub fn requeue(&mut self, req: Request) {
        self.insert(req);
    }

    fn insert(&mut self, req: Request) {
        let class = (req.class as usize).min(self.classes.len() - 1);
        *self.tenants.entry(req.tenant).or_insert(0) += 1;
        let q = &mut self.classes[class];
        let key = (req.deadline, req.id);
        let pos = q.partition_point(|r| (r.deadline, r.id) < key);
        q.insert(pos, req);
        self.len += 1;
    }

    /// The earliest deadline across all queued requests.
    pub fn earliest_deadline(&self) -> Option<Tick> {
        self.classes
            .iter()
            .filter_map(|q| q.first().map(|r| r.deadline))
            .min()
    }

    /// The earliest arrival among requests queued in `class` (drives the
    /// batch-window trigger: the oldest waiter bounds added queueing
    /// delay).
    pub fn oldest_arrival(&self, class: usize) -> Option<Tick> {
        self.classes
            .get(class)?
            .iter()
            .map(|r| r.arrival)
            .min()
    }

    /// Deadline of the EDF head of `class`.
    pub fn head_deadline(&self, class: usize) -> Option<Tick> {
        self.classes.get(class)?.first().map(|r| r.deadline)
    }

    /// Pop the first `k` requests of `class` in EDF order.
    pub fn take(&mut self, class: usize, k: usize) -> Vec<Request> {
        let q = &mut self.classes[class];
        let k = k.min(q.len());
        let taken: Vec<Request> = q.drain(..k).collect();
        for r in &taken {
            let tenant = r.tenant;
            if let Some(n) = self.tenants.get_mut(&tenant) {
                *n = n.saturating_sub(1);
            }
        }
        self.len -= taken.len();
        taken
    }

    /// Remove and return every queued request whose deadline is strictly
    /// before `now` (they can no longer be served and must be shed).
    pub fn expire(&mut self, now: Tick) -> Vec<Request> {
        let mut expired = Vec::new();
        for class in 0..self.classes.len() {
            // EDF order: expired requests are a prefix of each queue
            let cut = self.classes[class].partition_point(|r| r.deadline < now);
            for req in self.classes[class].drain(..cut) {
                expired.push(req);
            }
        }
        for r in &expired {
            self.removed_counts(r.tenant);
        }
        self.len -= expired.len();
        // deterministic shed order across classes: by (deadline, id)
        expired.sort_by_key(|r| (r.deadline, r.id));
        expired
    }

    fn removed_counts(&mut self, tenant: u16) {
        if let Some(n) = self.tenants.get_mut(&tenant) {
            *n = n.saturating_sub(1);
        }
    }

    /// Queued count for one tenant (test/observability hook).
    pub fn tenant_load(&self, tenant: u16) -> usize {
        self.tenants.get(&tenant).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, tenant: u16, class: u8, deadline: Tick) -> Request {
        Request {
            id,
            tenant,
            class,
            arrival: 0,
            deadline,
            input: vec![],
        }
    }

    #[test]
    fn edf_order_within_class_with_id_tiebreak() {
        let mut b = Backlog::new(2, 16, 16);
        b.offer(req(1, 0, 0, 50)).unwrap();
        b.offer(req(2, 0, 0, 10)).unwrap();
        b.offer(req(3, 0, 0, 50)).unwrap();
        b.offer(req(4, 0, 0, 30)).unwrap();
        let taken = b.take(0, 4);
        let ids: Vec<u64> = taken.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![2, 4, 1, 3], "deadline asc, id breaks ties");
        assert!(b.is_empty());
    }

    #[test]
    fn depth_bound_rejects_queue_full() {
        let mut b = Backlog::new(1, 2, 16);
        b.offer(req(1, 0, 0, 10)).unwrap();
        b.offer(req(2, 1, 0, 10)).unwrap();
        assert_eq!(b.offer(req(3, 2, 0, 10)), Err(RejectReason::QueueFull));
        b.take(0, 1);
        b.offer(req(4, 3, 0, 10)).unwrap();
    }

    #[test]
    fn tenant_quota_rejects_before_depth() {
        let mut b = Backlog::new(1, 100, 2);
        b.offer(req(1, 7, 0, 10)).unwrap();
        b.offer(req(2, 7, 0, 10)).unwrap();
        assert_eq!(b.offer(req(3, 7, 0, 10)), Err(RejectReason::TenantQuota));
        // another tenant is still admitted
        b.offer(req(4, 8, 0, 10)).unwrap();
        assert_eq!(b.tenant_load(7), 2);
        // serving the tenant's work frees quota
        b.take(0, 2);
        b.offer(req(5, 7, 0, 10)).unwrap();
    }

    #[test]
    fn expire_removes_exactly_the_overdue_prefix() {
        let mut b = Backlog::new(2, 16, 16);
        b.offer(req(1, 0, 0, 5)).unwrap();
        b.offer(req(2, 0, 1, 3)).unwrap();
        b.offer(req(3, 0, 0, 20)).unwrap();
        let expired = b.expire(10);
        let ids: Vec<u64> = expired.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![2, 1], "sorted by (deadline, id)");
        assert_eq!(b.len(), 1);
        assert_eq!(b.tenant_load(0), 1);
    }

    #[test]
    fn requeue_bypasses_bounds_but_counts() {
        let mut b = Backlog::new(1, 1, 1);
        b.offer(req(1, 0, 0, 10)).unwrap();
        // full; a killed batch's request must still come back
        b.requeue(req(2, 0, 0, 8));
        assert_eq!(b.len(), 2);
        assert_eq!(b.tenant_load(0), 2);
        let taken = b.take(0, 2);
        assert_eq!(taken[0].id, 2, "requeued EDF position honored");
    }

    #[test]
    fn out_of_range_class_folds_into_lowest_priority() {
        let mut b = Backlog::new(2, 16, 16);
        b.offer(req(1, 0, 9, 10)).unwrap();
        assert_eq!(b.class_len(1), 1);
    }
}
