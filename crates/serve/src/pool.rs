//! The accelerator pool: N simulated instances with busy/down accounting.
//!
//! Each slot is either idle, busy serving a dispatched batch, or down
//! after a chaos kill. The pool does no scheduling itself — the engine
//! decides what to dispatch and when — but it owns the per-instance
//! utilization/availability bookkeeping that the report and the E14
//! experiment aggregate.

use crate::request::Request;
use crate::Tick;

/// A batch of same-class requests dispatched to one instance.
#[derive(Debug, Clone)]
pub struct Batch {
    /// The priority class every member shares.
    pub class: usize,
    /// Members in EDF order (the order they were taken from the backlog).
    pub requests: Vec<Request>,
    /// Tick the batch was dispatched.
    pub dispatched: Tick,
    /// Tick the batch completes (may be pushed later by a stall).
    pub finish: Tick,
}

/// One instance's occupancy state.
#[derive(Debug, Clone)]
pub enum Slot {
    /// Free to accept a batch.
    Idle,
    /// Serving a batch until `batch.finish`.
    Busy(Batch),
    /// Killed by chaos; unavailable until `until`.
    Down {
        /// First tick the instance is usable again.
        until: Tick,
    },
}

/// A fixed-size pool of simulated accelerator instances.
#[derive(Debug)]
pub struct Pool {
    slots: Vec<Slot>,
    /// Per-instance busy ticks (batch occupancy).
    pub busy_ticks: Vec<u64>,
    /// Per-instance down ticks (chaos outages).
    pub down_ticks: Vec<u64>,
    last_accounted: Tick,
}

impl Pool {
    /// A pool of `n` idle instances (at least one).
    pub fn new(n: usize) -> Self {
        let n = n.max(1);
        Pool {
            slots: vec![Slot::Idle; n],
            busy_ticks: vec![0; n],
            down_ticks: vec![0; n],
            last_accounted: 0,
        }
    }

    /// Number of instances.
    pub fn size(&self) -> usize {
        self.slots.len()
    }

    /// Advance occupancy accounting to `now`: every tick since the last
    /// call is attributed busy/down/idle per instance. Call before any
    /// state change at `now`.
    pub fn account_until(&mut self, now: Tick) {
        let span = now.saturating_sub(self.last_accounted);
        if span == 0 {
            return;
        }
        for (i, slot) in self.slots.iter().enumerate() {
            match slot {
                Slot::Idle => {}
                Slot::Busy(_) => self.busy_ticks[i] += span,
                Slot::Down { .. } => self.down_ticks[i] += span,
            }
        }
        self.last_accounted = now;
    }

    /// The lowest-indexed idle instance, if any (deterministic choice).
    pub fn first_idle(&self) -> Option<usize> {
        self.slots
            .iter()
            .position(|s| matches!(s, Slot::Idle))
    }

    /// Occupy `instance` with `batch`.
    pub fn dispatch(&mut self, instance: usize, batch: Batch) {
        debug_assert!(matches!(self.slots[instance], Slot::Idle));
        self.slots[instance] = Slot::Busy(batch);
    }

    /// Earliest tick at which any busy batch finishes or a down instance
    /// recovers (the pool's contribution to the next-event computation).
    pub fn next_transition(&self) -> Option<Tick> {
        self.slots
            .iter()
            .filter_map(|s| match s {
                Slot::Idle => None,
                Slot::Busy(b) => Some(b.finish),
                Slot::Down { until } => Some(*until),
            })
            .min()
    }

    /// Take every batch whose finish tick is `<= now`, in instance order,
    /// freeing the slots.
    pub fn complete_until(&mut self, now: Tick) -> Vec<(usize, Batch)> {
        let mut done = Vec::new();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if let Slot::Busy(b) = slot {
                if b.finish <= now {
                    if let Slot::Busy(batch) = std::mem::replace(slot, Slot::Idle) {
                        done.push((i, batch));
                    }
                }
            }
        }
        done
    }

    /// Bring recovered instances (down until `<= now`) back to idle,
    /// returning how many recovered.
    pub fn recover_until(&mut self, now: Tick) -> usize {
        let mut n = 0;
        for slot in &mut self.slots {
            if let Slot::Down { until } = slot {
                if *until <= now {
                    *slot = Slot::Idle;
                    n += 1;
                }
            }
        }
        n
    }

    /// Chaos kill: mark `instance` down until `until`; if it was busy the
    /// in-flight batch is returned so the engine can re-queue its members.
    pub fn kill(&mut self, instance: usize, until: Tick) -> Option<Batch> {
        let i = instance % self.slots.len();
        match std::mem::replace(&mut self.slots[i], Slot::Down { until }) {
            Slot::Busy(b) => Some(b),
            Slot::Down { until: old } => {
                // already down: keep the later recovery point
                self.slots[i] = Slot::Down {
                    until: until.max(old),
                };
                None
            }
            Slot::Idle => None,
        }
    }

    /// Chaos stall: push a busy instance's finish tick out by `extra`
    /// ticks. Returns true if the instance had a batch to stall.
    pub fn stall(&mut self, instance: usize, extra: u64) -> bool {
        let i = instance % self.slots.len();
        if let Slot::Busy(b) = &mut self.slots[i] {
            b.finish += extra;
            true
        } else {
            false
        }
    }

    /// Failover evacuation: pull every in-flight batch off the pool (in
    /// instance order), freeing the slots. Used when a whole shard dies
    /// and its work must move to surviving shards — the batches' members
    /// are re-routed, never dropped.
    pub fn evacuate(&mut self) -> Vec<Batch> {
        let mut out = Vec::new();
        for slot in &mut self.slots {
            if matches!(slot, Slot::Busy(_)) {
                if let Slot::Busy(b) = std::mem::replace(slot, Slot::Idle) {
                    out.push(b);
                }
            }
        }
        out
    }

    /// Total requests riding on busy instances right now.
    pub fn in_flight_requests(&self) -> usize {
        self.slots
            .iter()
            .map(|s| match s {
                Slot::Busy(b) => b.requests.len(),
                _ => 0,
            })
            .sum()
    }

    /// Number of busy instances (queue-depth/occupancy gauge input).
    pub fn busy_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s, Slot::Busy(_)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(finish: Tick) -> Batch {
        Batch {
            class: 0,
            requests: vec![],
            dispatched: 0,
            finish,
        }
    }

    #[test]
    fn dispatch_complete_and_accounting() {
        let mut p = Pool::new(2);
        p.dispatch(0, batch(10));
        assert_eq!(p.first_idle(), Some(1));
        assert_eq!(p.next_transition(), Some(10));
        p.account_until(10);
        let done = p.complete_until(10);
        assert_eq!(done.len(), 1);
        assert_eq!(p.busy_ticks, vec![10, 0]);
        assert_eq!(p.first_idle(), Some(0));
    }

    #[test]
    fn kill_returns_inflight_batch_and_tracks_downtime() {
        let mut p = Pool::new(2);
        p.dispatch(1, batch(50));
        let killed = p.kill(1, 30).expect("batch was in flight");
        assert_eq!(killed.finish, 50);
        assert_eq!(p.next_transition(), Some(30));
        p.account_until(30);
        assert_eq!(p.recover_until(30), 1);
        assert_eq!(p.down_ticks, vec![0, 30]);
        assert_eq!(p.first_idle(), Some(0));
    }

    #[test]
    fn kill_idle_and_double_kill_extend_downtime() {
        let mut p = Pool::new(1);
        assert!(p.kill(0, 20).is_none());
        assert!(p.kill(0, 10).is_none(), "re-kill keeps the later recovery");
        assert_eq!(p.next_transition(), Some(20));
    }

    #[test]
    fn stall_pushes_finish_out() {
        let mut p = Pool::new(1);
        p.dispatch(0, batch(10));
        assert!(p.stall(0, 15));
        assert_eq!(p.next_transition(), Some(25));
        assert!(p.complete_until(10).is_empty());
        assert_eq!(p.complete_until(25).len(), 1);
        assert!(!p.stall(0, 5), "idle instance has nothing to stall");
    }
}
