//! Binding: map scheduled operations onto shared functional units and map
//! values onto datapath registers (left-edge algorithm).
//!
//! Binding is the third classic HLS core step. Functional-unit binding is
//! greedy by schedule order (optimal instance counts follow from the peak
//! concurrency the scheduler recorded); register binding minimizes register
//! count by packing non-overlapping temp lifetimes into shared registers.
//! Named variables live across blocks and get dedicated registers.

use crate::allocate::fu_kind_of;
use crate::allocate::FuKind;
use crate::ir::{IrFunction, IrOp, Operand, TempId};
use crate::schedule::FunctionSchedule;
use std::collections::HashMap;

/// A functional-unit instance in the datapath.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuInstance {
    /// The kind of unit.
    pub kind: FuKind,
    /// Operand width in bits.
    pub width: u32,
}

/// A datapath register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegInfo {
    /// Width in bits.
    pub width: u32,
    /// Debug name.
    pub name: String,
}

/// Identifier of a register in the binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegId(pub u32);

/// Complete binding result.
#[derive(Debug, Clone, Default)]
pub struct Binding {
    /// All FU instances.
    pub fus: Vec<FuInstance>,
    /// FU instance of each bound instruction, keyed by (block, instr index).
    pub fu_of: HashMap<(u32, usize), usize>,
    /// All registers.
    pub regs: Vec<RegInfo>,
    /// Register of each variable.
    pub reg_of_var: Vec<RegId>,
    /// Register of each cross-cycle temp, keyed by temp id.
    pub reg_of_temp: HashMap<TempId, RegId>,
    /// Temps that never need a register (chained, consumed in their cycle).
    pub wire_temps: Vec<TempId>,
}

impl Binding {
    /// Number of registers.
    pub fn reg_count(&self) -> usize {
        self.regs.len()
    }

    /// Number of FU instances of a given kind.
    pub fn fu_count(&self, kind: FuKind) -> usize {
        self.fus.iter().filter(|f| f.kind == kind).count()
    }

    /// Total register bits.
    pub fn register_bits(&self) -> u64 {
        self.regs.iter().map(|r| u64::from(r.width)).sum()
    }
}

/// Run FU and register binding over a scheduled function.
pub fn bind(func: &IrFunction, sched: &FunctionSchedule) -> Binding {
    let mut binding = Binding::default();

    // --- dedicated registers for variables ---
    // names carry the register index so shadowed/duplicated source names
    // stay unique in the generated netlist
    for (vi, var) in func.vars.iter().enumerate() {
        let id = RegId(binding.regs.len() as u32);
        binding.regs.push(RegInfo {
            width: var.ty.width,
            name: format!("r{}_{}", id.0, var.name.replace('.', "_")),
        });
        debug_assert_eq!(vi, binding.reg_of_var.len());
        binding.reg_of_var.push(id);
    }

    // --- FU binding: greedy interval packing per kind ---
    // instance busy intervals: fu index -> list of (block, start, end)
    let mut busy: HashMap<usize, Vec<(u32, u32, u32)>> = HashMap::new();
    for (bi, block) in func.blocks.iter().enumerate() {
        for (ii, instr) in block.instrs.iter().enumerate() {
            let Some(kind) = fu_kind_of(instr, func) else {
                continue;
            };
            let s = sched.blocks[bi].instrs[ii];
            let (lo, hi) = (s.start_cycle, s.finish_cycle());
            let width = instr.ty.width.max(match &instr.op {
                IrOp::Bin { a, .. } => func.operand_type(*a).width,
                _ => 1,
            });
            // find an existing instance of same kind & >= width that is free
            let mut chosen = None;
            for (fi, fu) in binding.fus.iter().enumerate() {
                if fu.kind != kind || fu.width < width {
                    continue;
                }
                let overlaps = busy
                    .get(&fi)
                    .map(|iv| {
                        iv.iter()
                            .any(|&(b, l, h)| b == bi as u32 && l <= hi && lo <= h)
                    })
                    .unwrap_or(false);
                if !overlaps {
                    chosen = Some(fi);
                    break;
                }
            }
            let fi = chosen.unwrap_or_else(|| {
                binding.fus.push(FuInstance { kind, width });
                binding.fus.len() - 1
            });
            busy.entry(fi).or_default().push((bi as u32, lo, hi));
            binding.fu_of.insert((bi as u32, ii), fi);
        }
    }

    // --- register binding for cross-cycle temps: left-edge per block ---
    for (bi, block) in func.blocks.iter().enumerate() {
        // lifetimes: temp -> (def finish cycle, last use cycle)
        let mut def: HashMap<TempId, u32> = HashMap::new();
        let mut last_use: HashMap<TempId, u32> = HashMap::new();
        let mut chained_only: HashMap<TempId, bool> = HashMap::new();
        for (ii, instr) in block.instrs.iter().enumerate() {
            let s = sched.blocks[bi].instrs[ii];
            if let Some(dst) = instr.dst {
                def.insert(dst, s.finish_cycle());
                chained_only.insert(dst, true);
            }
            let mut note_use = |op: &Operand| {
                if let Operand::Temp(t) = op {
                    let e = last_use.entry(*t).or_insert(0);
                    *e = (*e).max(s.start_cycle);
                    if let Some(&d) = def.get(t) {
                        if s.start_cycle > d {
                            chained_only.insert(*t, false);
                        }
                    }
                }
            };
            match &instr.op {
                IrOp::Bin { a, b, .. } => {
                    note_use(a);
                    note_use(b);
                }
                IrOp::Un { a, .. } | IrOp::Cast { a, .. } => note_use(a),
                IrOp::Load { index, .. } => note_use(index),
                IrOp::Store { index, value, .. } => {
                    note_use(index);
                    note_use(value);
                }
                IrOp::SetVar { value, .. } => note_use(value),
            }
        }
        // temps used by the terminator live to the end of the block
        let block_end = sched.blocks[bi].length;
        let mut note_term = |op: &Operand| {
            if let Operand::Temp(t) = op {
                last_use.insert(*t, block_end);
                if def.get(t).map(|&d| block_end > d).unwrap_or(false) {
                    chained_only.insert(*t, false);
                }
            }
        };
        match &block.term {
            crate::ir::Terminator::Branch { cond, .. } => note_term(cond),
            crate::ir::Terminator::Return(Some(v)) => note_term(v),
            _ => {}
        }

        // memory loads always land in a capture register
        for (ii, instr) in block.instrs.iter().enumerate() {
            if matches!(instr.op, IrOp::Load { .. }) {
                if let Some(dst) = instr.dst {
                    let _ = ii;
                    chained_only.insert(dst, false);
                }
            }
        }

        // left-edge over temps needing storage
        let mut intervals: Vec<(TempId, u32, u32, u32)> = def
            .iter()
            .filter(|(t, _)| !chained_only.get(t).copied().unwrap_or(true))
            .map(|(&t, &d)| {
                let end = last_use.get(&t).copied().unwrap_or(d).max(d);
                let width = func.temp_types[t.0 as usize].width;
                (t, d, end, width)
            })
            .collect();
        intervals.sort_by_key(|&(t, d, _, _)| (d, t));
        // rows: (register id, last end, width)
        let mut rows: Vec<(RegId, u32, u32)> = Vec::new();
        for (t, d, e, w) in intervals {
            let mut placed = false;
            for row in rows.iter_mut() {
                if row.1 < d && row.2 >= w {
                    row.1 = e;
                    binding.reg_of_temp.insert(t, row.0);
                    placed = true;
                    break;
                }
            }
            if !placed {
                let id = RegId(binding.regs.len() as u32);
                binding.regs.push(RegInfo {
                    width: w,
                    name: format!("tmp{}_{}", bi, id.0),
                });
                rows.push((id, e, w));
                binding.reg_of_temp.insert(t, id);
            }
        }
        for (t, chained) in chained_only {
            if chained {
                binding.wire_temps.push(t);
            }
        }
    }

    binding
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocate::Allocation;
    use crate::ir::lower;
    use crate::lang::parse;
    use crate::schedule::{schedule, ScheduleOptions};
    use hermes_eucalyptus::{CharacterizationLibrary, Eucalyptus, SweepConfig};
    use hermes_fpga::device::DeviceProfile;
    use std::sync::OnceLock;

    fn lib() -> &'static CharacterizationLibrary {
        static LIB: OnceLock<CharacterizationLibrary> = OnceLock::new();
        LIB.get_or_init(|| {
            Eucalyptus::new(DeviceProfile::ng_medium_like())
                .characterize(&SweepConfig {
                    widths: vec![8, 16, 32],
                    pipeline_stages: vec![0],
                })
                .expect("characterization")
        })
    }

    fn bound(src: &str, alloc: Allocation) -> (IrFunction, FunctionSchedule, Binding) {
        let mut f = lower(&parse(src).unwrap(), None).unwrap();
        crate::opt::optimize(&mut f);
        let s = schedule(&f, &alloc, lib(), &ScheduleOptions::default()).unwrap();
        let b = bind(&f, &s);
        (f, s, b)
    }

    #[test]
    fn sharing_under_minimal_allocation() {
        let (_, _, b) = bound(
            "int f(int a, int b, int c, int d) { return a*b + c*d + a*d; }",
            Allocation::minimal(),
        );
        assert_eq!(b.fu_count(FuKind::Mul), 1, "three muls share one unit");
    }

    #[test]
    fn parallel_ops_get_parallel_fus() {
        let (_, s, b) = bound(
            "int f(int a, int b, int c, int d) { return a*b + c*d; }",
            Allocation::default(),
        );
        let peak = s.peak_usage.get(&FuKind::Mul).copied().unwrap_or(0);
        assert_eq!(b.fu_count(FuKind::Mul) as u32, peak);
        assert!(peak >= 2);
    }

    #[test]
    fn every_bound_instr_has_fu() {
        let (f, _, b) = bound(
            "int f(int a, int b) { int s = 0; if (a > b) { s = a / b; } return s; }",
            Allocation::default(),
        );
        for (bi, block) in f.blocks.iter().enumerate() {
            for (ii, instr) in block.instrs.iter().enumerate() {
                if fu_kind_of(instr, &f).is_some() {
                    assert!(
                        b.fu_of.contains_key(&(bi as u32, ii)),
                        "unbound instr {bi}/{ii}"
                    );
                }
            }
        }
    }

    #[test]
    fn vars_get_dedicated_registers() {
        let (f, _, b) = bound(
            "int f(int a) { int x = a + 1; int y = x * 2; return y; }",
            Allocation::default(),
        );
        assert_eq!(b.reg_of_var.len(), f.vars.len());
        assert!(b.reg_count() >= f.vars.len());
    }

    #[test]
    fn register_bits_accounted() {
        let (_, _, b) = bound("int64 f(int64 a) { int64 x = a * 3; return x + 1; }", Allocation::default());
        assert!(b.register_bits() >= 64);
    }
}
