//! Resource allocation: classify every IR instruction onto a functional-unit
//! kind and decide how many units of each kind the design may use.
//!
//! Allocation is the first of the three classic HLS core steps (allocation,
//! scheduling, binding — Section II of the paper). Constraints may come from
//! the user (resource-bound synthesis) or default to a generous but finite
//! allocation.

use crate::ir::{ArrayId, Instr, IrFunction, IrOp};
use crate::lang::ast::{BinOp, UnOp};
use std::collections::HashMap;
use std::fmt;

/// Functional-unit kinds shared by allocation, scheduling, and binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FuKind {
    /// Adder/subtractor (also negation).
    AddSub,
    /// Multiplier (DSP-backed).
    Mul,
    /// Divider / modulo unit.
    Div,
    /// Barrel shifter.
    Shift,
    /// Bitwise logic (and/or/xor/not) and casts.
    Logic,
    /// Comparator.
    Cmp,
    /// A port of a local (BRAM) array.
    LocalMem(ArrayId),
    /// The external AXI master port.
    ExtMem,
}

impl fmt::Display for FuKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuKind::AddSub => write!(f, "addsub"),
            FuKind::Mul => write!(f, "mul"),
            FuKind::Div => write!(f, "div"),
            FuKind::Shift => write!(f, "shift"),
            FuKind::Logic => write!(f, "logic"),
            FuKind::Cmp => write!(f, "cmp"),
            FuKind::LocalMem(a) => write!(f, "bram{}", a.0),
            FuKind::ExtMem => write!(f, "axi"),
        }
    }
}

/// Classify an instruction onto its FU kind; `None` for free operations
/// (`SetVar` moves become register enables, constants become wires).
pub fn fu_kind_of(instr: &Instr, func: &IrFunction) -> Option<FuKind> {
    match &instr.op {
        IrOp::Bin { op, .. } => Some(match op {
            BinOp::Add | BinOp::Sub => FuKind::AddSub,
            BinOp::Mul => FuKind::Mul,
            BinOp::Div | BinOp::Mod => FuKind::Div,
            BinOp::Shl | BinOp::Shr => FuKind::Shift,
            BinOp::And | BinOp::Or | BinOp::Xor | BinOp::LogAnd | BinOp::LogOr => FuKind::Logic,
            _ => FuKind::Cmp,
        }),
        IrOp::Un { op, .. } => Some(match op {
            UnOp::Neg => FuKind::AddSub,
            UnOp::BitNot | UnOp::LogNot => FuKind::Logic,
        }),
        IrOp::Cast { .. } => None, // wiring (sign/zero extension)
        IrOp::Load { array, .. } | IrOp::Store { array, .. } => {
            Some(match func.arrays[array.0 as usize].kind {
                crate::ir::ArrayKind::Local { .. } => FuKind::LocalMem(*array),
                crate::ir::ArrayKind::External => FuKind::ExtMem,
            })
        }
        IrOp::SetVar { .. } => None,
    }
}

/// The mnemonic used to look this FU kind up in the characterization
/// library (written by `hermes-eucalyptus`).
pub fn char_mnemonic(kind: FuKind, instr: &Instr) -> &'static str {
    match kind {
        FuKind::AddSub => "add",
        FuKind::Mul => "mul",
        FuKind::Div => "div",
        FuKind::Shift => "shl",
        FuKind::Logic => "and",
        FuKind::Cmp => {
            if let IrOp::Bin { op, .. } = &instr.op {
                if matches!(op, BinOp::Eq | BinOp::Ne) {
                    "cmpeq"
                } else {
                    "cmplts"
                }
            } else {
                "cmpeq"
            }
        }
        FuKind::LocalMem(_) => "ram_tdp",
        FuKind::ExtMem => "ram_tdp",
    }
}

/// Resource constraints: maximum concurrent units per kind.
#[derive(Debug, Clone)]
pub struct Allocation {
    limits: HashMap<FuKind, u32>,
    /// Default limit for kinds not listed.
    pub default_limit: u32,
}

impl Default for Allocation {
    fn default() -> Self {
        let mut limits = HashMap::new();
        limits.insert(FuKind::Mul, 4);
        limits.insert(FuKind::Div, 1);
        limits.insert(FuKind::ExtMem, 1);
        Allocation {
            limits,
            default_limit: 8,
        }
    }
}

impl Allocation {
    /// An unconstrained allocation (ASAP-like schedules).
    pub fn unconstrained() -> Self {
        Allocation {
            limits: HashMap::new(),
            default_limit: u32::MAX,
        }
    }

    /// A minimal-area allocation: one unit of every kind.
    pub fn minimal() -> Self {
        Allocation {
            limits: HashMap::new(),
            default_limit: 1,
        }
    }

    /// Set the limit for one kind.
    pub fn with_limit(mut self, kind: FuKind, limit: u32) -> Self {
        self.limits.insert(kind, limit);
        self
    }

    /// Concurrency limit for a kind. Local memories are capped at 2 (true
    /// dual port) regardless of the default.
    pub fn limit(&self, kind: FuKind) -> u32 {
        if let Some(&l) = self.limits.get(&kind) {
            return l.max(1);
        }
        match kind {
            FuKind::LocalMem(_) => 2.min(self.default_limit.max(1)),
            FuKind::ExtMem => 1,
            _ => self.default_limit.max(1),
        }
    }
}

/// Count how many instructions of each kind a function contains (the
/// allocation report).
pub fn demand(func: &IrFunction) -> HashMap<FuKind, u32> {
    let mut m = HashMap::new();
    for block in &func.blocks {
        for instr in &block.instrs {
            if let Some(k) = fu_kind_of(instr, func) {
                *m.entry(k).or_insert(0) += 1;
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::lower;
    use crate::lang::parse;

    fn func(src: &str) -> IrFunction {
        lower(&parse(src).unwrap(), None).unwrap()
    }

    #[test]
    fn classification() {
        let f = func("int f(int a, int b, int *m) { m[0] = a * b + (a / b); return m[0] >> 2; }");
        let d = demand(&f);
        assert_eq!(d.get(&FuKind::Mul), Some(&1));
        assert_eq!(d.get(&FuKind::Div), Some(&1));
        assert_eq!(d.get(&FuKind::AddSub), Some(&1));
        assert_eq!(d.get(&FuKind::Shift), Some(&1));
        assert_eq!(d.get(&FuKind::ExtMem), Some(&2)); // one store + one load
    }

    #[test]
    fn default_limits() {
        let a = Allocation::default();
        assert_eq!(a.limit(FuKind::Div), 1);
        assert_eq!(a.limit(FuKind::Mul), 4);
        assert_eq!(a.limit(FuKind::AddSub), 8);
        assert_eq!(a.limit(FuKind::LocalMem(ArrayId(0))), 2, "true dual port");
        assert_eq!(a.limit(FuKind::ExtMem), 1);
    }

    #[test]
    fn minimal_and_unconstrained() {
        assert_eq!(Allocation::minimal().limit(FuKind::AddSub), 1);
        assert_eq!(
            Allocation::unconstrained().limit(FuKind::AddSub),
            u32::MAX
        );
        let custom = Allocation::default().with_limit(FuKind::AddSub, 2);
        assert_eq!(custom.limit(FuKind::AddSub), 2);
    }

    #[test]
    fn local_arrays_use_bram_ports() {
        let f = func("int f() { int m[16]; m[0] = 1; m[1] = 2; return m[0] + m[1]; }");
        let d = demand(&f);
        let bram_ops: u32 = d
            .iter()
            .filter(|(k, _)| matches!(k, FuKind::LocalMem(_)))
            .map(|(_, &v)| v)
            .sum();
        assert_eq!(bram_ops, 4);
    }
}
