//! The top-level HLS flow: source text in, complete [`Design`] out.
//!
//! [`HlsFlow`] is a builder mirroring the Bambu command line: clock
//! constraint, target device, resource allocation, loop-unroll limit,
//! chaining, external-memory latency estimates, and top-function selection.

use crate::allocate::Allocation;
use crate::bind::{bind, Binding};
use crate::cdfg::{self, CdfgStats};
use crate::datapath::{self, DatapathNetlist};
use crate::emit;
use crate::estimate::{estimate, Estimate};
use crate::fsm::{self, Fsm};
use crate::interface::{build_spec, InterfaceOptions, InterfaceSpec};
use crate::ir::{lower, IrFunction};
use crate::lang::parse;
use crate::opt::{optimize, unroll_for_loops, OptStats};
use crate::schedule::{schedule, FunctionSchedule, ScheduleOptions};
use crate::simulate::{self, ExternalMemory, SimLimits, SimResult};
use crate::HlsError;
use hermes_eucalyptus::{CharacterizationLibrary, Eucalyptus, SweepConfig};
use hermes_fpga::device::DeviceProfile;
use hermes_obs::{ClockDomain, Recorder, WallMark};
use std::sync::Arc;

/// Obtain the characterization library for a device through the shared
/// process-wide cache in `hermes-eucalyptus` (keyed on the full device
/// fingerprint, not just the name): a suite of kernel flows — serial or
/// fanned out over `hermes-par` — characterizes each device exactly once.
/// `HERMES_CHAR_CACHE=off` (or `hermes_eucalyptus::cache::set_bypass`)
/// forces a fresh sweep per flow for A/B measurement.
fn library_for(device: &DeviceProfile) -> Arc<CharacterizationLibrary> {
    Eucalyptus::new(device.clone())
        .characterize_cached(&SweepConfig {
            widths: vec![8, 16, 32, 64],
            pipeline_stages: vec![0],
        })
        .expect("built-in characterization sweep cannot fail")
}

/// The HLS flow builder.
#[derive(Debug, Clone)]
pub struct HlsFlow {
    clock_ns: f64,
    device: DeviceProfile,
    allocation: Allocation,
    unroll_limit: u32,
    chaining: bool,
    ext_read_latency: u32,
    ext_write_latency: u32,
    top: Option<String>,
    library: Option<Arc<CharacterizationLibrary>>,
}

impl Default for HlsFlow {
    fn default() -> Self {
        HlsFlow::new()
    }
}

impl HlsFlow {
    /// A flow with default options: 10 ns clock, NG-MEDIUM-like device,
    /// default allocation, 64-iteration unroll limit, chaining on.
    pub fn new() -> Self {
        HlsFlow {
            clock_ns: 10.0,
            device: DeviceProfile::ng_medium_like(),
            allocation: Allocation::default(),
            unroll_limit: 64,
            chaining: true,
            ext_read_latency: 14,
            ext_write_latency: 8,
            top: None,
            library: None,
        }
    }

    /// Set the clock constraint in nanoseconds.
    pub fn clock_ns(mut self, ns: f64) -> Self {
        self.clock_ns = ns;
        self
    }

    /// Set the target device (changes the characterization library).
    pub fn device(mut self, device: DeviceProfile) -> Self {
        self.device = device;
        self
    }

    /// Set the resource allocation.
    pub fn allocation(mut self, alloc: Allocation) -> Self {
        self.allocation = alloc;
        self
    }

    /// Set the full-unroll iteration limit (0 disables unrolling).
    pub fn unroll_limit(mut self, limit: u32) -> Self {
        self.unroll_limit = limit;
        self
    }

    /// Enable or disable operator chaining.
    pub fn chaining(mut self, on: bool) -> Self {
        self.chaining = on;
        self
    }

    /// Set the static external-memory latency estimates (cycles).
    pub fn ext_mem_latency(mut self, read: u32, write: u32) -> Self {
        self.ext_read_latency = read;
        self.ext_write_latency = write;
        self
    }

    /// Select the top function by name (default: last function).
    pub fn top(mut self, name: impl Into<String>) -> Self {
        self.top = Some(name.into());
        self
    }

    /// Use an explicit characterization library instead of the built-in
    /// sweep for the device.
    pub fn library(mut self, lib: CharacterizationLibrary) -> Self {
        self.library = Some(Arc::new(lib));
        self
    }

    /// Run the complete flow on C-subset source text.
    ///
    /// # Errors
    ///
    /// Propagates any front-end, middle-end, or back-end failure.
    pub fn compile(&self, src: &str) -> Result<Design, HlsError> {
        self.compile_traced(src, &Recorder::disabled())
    }

    /// [`compile`](HlsFlow::compile) with per-stage flight-recorder spans:
    /// parse → unroll → lower → optimize → cdfg → schedule → bind → fsm →
    /// emit, each a `Seq`-clocked span (ts = stage index) carrying the
    /// stage's headline statistic, with wall time on the side channel.
    ///
    /// # Errors
    ///
    /// Propagates any front-end, middle-end, or back-end failure.
    pub fn compile_traced(&self, src: &str, obs: &Recorder) -> Result<Design, HlsError> {
        const SUB: &str = "hls";
        let mut stage = 0u64;
        let mut span = |name: &str, args: &[(&str, String)], mark: WallMark| {
            obs.span(SUB, name, ClockDomain::Seq, stage, 1, args, mark);
            stage += 1;
        };

        let m = obs.mark();
        let mut program = parse(src)?;
        span(
            "parse",
            &[("functions", program.functions.len().to_string())],
            m,
        );

        let m = obs.mark();
        if self.unroll_limit > 0 {
            for f in &mut program.functions {
                unroll_for_loops(&mut f.body, self.unroll_limit);
            }
        }
        span("unroll", &[("limit", self.unroll_limit.to_string())], m);

        let m = obs.mark();
        let mut ir = lower(&program, self.top.as_deref())?;
        span(
            "typeck+lower",
            &[
                ("top", ir.name.clone()),
                ("blocks", ir.blocks.len().to_string()),
            ],
            m,
        );

        let m = obs.mark();
        let opt_stats = optimize(&mut ir);
        span(
            "optimize",
            &[
                ("folded", opt_stats.folded.to_string()),
                ("dce_removed", opt_stats.dce_removed.to_string()),
                ("cse_hits", opt_stats.cse_hits.to_string()),
            ],
            m,
        );

        let m = obs.mark();
        let cdfg_stats = cdfg::stats(&ir);
        span(
            "cdfg",
            &[
                ("nodes", cdfg_stats.nodes.to_string()),
                ("critical_chain", cdfg_stats.critical_chain.to_string()),
            ],
            m,
        );

        let lib = self
            .library
            .clone()
            .unwrap_or_else(|| library_for(&self.device));
        let sched_opts = ScheduleOptions {
            clock_ns: self.clock_ns,
            chaining: self.chaining,
            chain_fraction: 0.9,
            ext_mem_read_latency: self.ext_read_latency,
            ext_mem_write_latency: self.ext_write_latency,
        };
        let m = obs.mark();
        let sched = schedule(&ir, &self.allocation, &lib, &sched_opts)?;
        span("schedule", &[("states", sched.total_states().to_string())], m);

        let m = obs.mark();
        let binding = bind(&ir, &sched);
        span(
            "bind",
            &[
                ("fus", binding.fus.len().to_string()),
                ("registers", binding.reg_count().to_string()),
            ],
            m,
        );

        let m = obs.mark();
        let fsm = fsm::build(&ir, &sched);
        span("fsm", &[("states", fsm.state_count().to_string())], m);

        let m = obs.mark();
        let dp = datapath::generate(&ir, &sched, &binding, &fsm)?;
        span(
            "emit",
            &[
                ("cells", dp.netlist.cell_count().to_string()),
                ("nets", dp.netlist.net_count().to_string()),
            ],
            m,
        );

        obs.counter_add(SUB, "compiles", 1);
        obs.counter_add(SUB, "netlist_cells", dp.netlist.cell_count() as u64);

        Ok(Design {
            ir,
            sched,
            binding,
            fsm,
            datapath: dp,
            cdfg_stats,
            opt_stats,
            lib,
            clock_ns: self.clock_ns,
        })
    }
}

/// A fully synthesized design.
#[derive(Debug, Clone)]
pub struct Design {
    /// The optimized IR.
    pub ir: IrFunction,
    /// The schedule.
    pub sched: FunctionSchedule,
    /// FU and register binding.
    pub binding: Binding,
    /// The controller.
    pub fsm: Fsm,
    /// The structural FSMD netlist.
    pub datapath: DatapathNetlist,
    /// CDFG statistics (Fig. 2 metrics).
    pub cdfg_stats: CdfgStats,
    /// Optimization statistics.
    pub opt_stats: OptStats,
    lib: Arc<CharacterizationLibrary>,
    clock_ns: f64,
}

impl Design {
    /// Design (top function) name.
    pub fn name(&self) -> &str {
        &self.ir.name
    }

    /// The clock constraint the design was synthesized for, ns.
    pub fn clock_ns(&self) -> f64 {
        self.clock_ns
    }

    /// Cycle-accurate simulation on scalar arguments (no external arrays).
    ///
    /// # Errors
    ///
    /// See [`simulate::run`].
    pub fn simulate(&self, args: &[i64]) -> Result<SimResult, HlsError> {
        let mut ext = ExternalMemory::buffers(vec![]);
        simulate::run(&self.ir, &self.sched, args, &mut ext, SimLimits::default())
    }

    /// [`Self::simulate`] with a causal trace context: records one
    /// trace-linked `cosim` span (duration = measured cycles) under
    /// subsystem `hls`, so a request trace that reaches the accelerator
    /// co-simulation stays one connected tree.
    ///
    /// # Errors
    ///
    /// See [`simulate::run`].
    pub fn simulate_traced(
        &self,
        args: &[i64],
        obs: &hermes_obs::Recorder,
        ctx: hermes_obs::TraceCtx,
    ) -> Result<SimResult, HlsError> {
        let result = self.simulate(args)?;
        obs.trace_span(
            "hls",
            "cosim",
            hermes_obs::ClockDomain::Rtl,
            0,
            result.cycles,
            &[("design", self.name().to_string())],
            hermes_obs::WallMark::none(),
            ctx,
        );
        Ok(result)
    }

    /// Cycle-accurate simulation with external memory backing.
    ///
    /// # Errors
    ///
    /// See [`simulate::run`].
    pub fn simulate_with_memory(
        &self,
        args: &[i64],
        ext: &mut ExternalMemory<'_>,
    ) -> Result<SimResult, HlsError> {
        simulate::run(&self.ir, &self.sched, args, ext, SimLimits::default())
    }

    /// Wall-clock estimate of one invocation in nanoseconds (cycles ×
    /// clock).
    ///
    /// # Errors
    ///
    /// See [`simulate::run`].
    pub fn latency_ns(&self, args: &[i64]) -> Result<f64, HlsError> {
        Ok(self.simulate(args)?.cycles as f64 * self.clock_ns)
    }

    /// The structural netlist (feed this to `hermes-fpga`'s flow).
    pub fn netlist(&self) -> &hermes_rtl::netlist::Netlist {
        &self.datapath.netlist
    }

    /// Multicycle path exceptions for downstream STA: every operation the
    /// schedule gave more than one cycle maps its datapath cell name to the
    /// allowed settle-cycle count (the SDC knowledge a real Bambu→NXmap
    /// flow hands over).
    pub fn multicycle_hints(&self) -> std::collections::HashMap<String, u32> {
        let mut hints = std::collections::HashMap::new();
        for (bi, block) in self.ir.blocks.iter().enumerate() {
            for (ii, instr) in block.instrs.iter().enumerate() {
                let s = self.sched.blocks[bi].instrs[ii];
                if s.latency > 1 && matches!(instr.op, crate::ir::IrOp::Bin { .. }) {
                    hints.insert(format!("b{bi}_i{ii}"), s.latency);
                }
            }
        }
        hints
    }

    /// Emit synthesizable Verilog.
    pub fn emit_verilog(&self) -> String {
        emit::verilog(&self.datapath)
    }

    /// Emit VHDL.
    pub fn emit_vhdl(&self) -> String {
        emit::vhdl(&self.datapath)
    }

    /// Emit a self-checking Verilog testbench. Each vector is
    /// `(args, expected_return)`; cycle budgets come from co-simulation.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures while computing expected cycles.
    pub fn emit_verilog_testbench(
        &self,
        vectors: &[(Vec<i64>, Option<i64>)],
    ) -> Result<String, HlsError> {
        let mut tvs = Vec::with_capacity(vectors.len());
        for (args, expected) in vectors {
            let r = self.simulate(args)?;
            tvs.push(emit::TestVector {
                args: args.clone(),
                expected: *expected,
                expected_cycles: r.cycles,
            });
        }
        Ok(emit::verilog_testbench(&self.datapath, &tvs))
    }

    /// The AXI interface specification of the design.
    pub fn interface_spec(&self) -> InterfaceSpec {
        build_spec(&self.ir, InterfaceOptions::default())
    }

    /// Pre-implementation area/timing estimate.
    pub fn estimate(&self) -> Estimate {
        estimate(&self.ir, &self.binding, &self.fsm, &self.lib)
    }

    /// Render the per-stage HLS report (the Fig. 2 pipeline artifacts).
    pub fn report(&self) -> String {
        format!(
            "HLS report for `{name}` @ {clk} ns\n\
             \x20 frontend : {blocks} blocks, {nodes} CDFG nodes, {dedges} data edges, \
             chain depth {chain}\n\
             \x20 opt      : {folded} folded, {dce} dead removed, {cse} CSE hits, \
             {sr} strength-reduced\n\
             \x20 schedule : {states} states, peak FU usage {peaks:?}\n\
             \x20 binding  : {fus} FUs, {regs} registers ({bits} bits)\n\
             \x20 fsm      : {fsm_states} states ({fsm_bits}-bit state reg), \
             {branches} branches\n\
             \x20 netlist  : {cells} cells / {nets} nets",
            name = self.name(),
            clk = self.clock_ns,
            blocks = self.cdfg_stats.blocks,
            nodes = self.cdfg_stats.nodes,
            dedges = self.cdfg_stats.data_edges,
            chain = self.cdfg_stats.critical_chain,
            folded = self.opt_stats.folded,
            dce = self.opt_stats.dce_removed,
            cse = self.opt_stats.cse_hits,
            sr = self.opt_stats.strength_reduced,
            states = self.sched.total_states(),
            peaks = {
                let mut v: Vec<(String, u32)> = self
                    .sched
                    .peak_usage
                    .iter()
                    .map(|(k, &n)| (k.to_string(), n))
                    .collect();
                v.sort();
                v
            },
            fus = self.binding.fus.len(),
            regs = self.binding.reg_count(),
            bits = self.binding.register_bits(),
            fsm_states = self.fsm.state_count(),
            fsm_bits = self.fsm.state_bits(),
            branches = self.fsm.branch_count(),
            cells = self.netlist().cell_count(),
            nets = self.netlist().net_count(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_rtl::sim::Simulator;

    #[test]
    fn end_to_end_compile_and_simulate() {
        let d = HlsFlow::new()
            .compile("int gcd(int a, int b) { while (b != 0) { int t = b; b = a % b; a = t; } return a; }")
            .unwrap();
        assert_eq!(d.simulate(&[48, 36]).unwrap().return_value, Some(12));
        assert_eq!(d.simulate(&[17, 5]).unwrap().return_value, Some(1));
        assert!(d.report().contains("schedule"));
    }

    /// The critical integration check: the structural netlist, simulated
    /// cycle-by-cycle with the hermes-rtl simulator, must agree with the
    /// IR-level co-simulation on both value and latency.
    fn cosim(src: &str, cases: &[Vec<i64>]) {
        let d = HlsFlow::new().compile(src).unwrap();
        let nl = d.netlist();
        for args in cases {
            let expect = d.simulate(args).unwrap();
            let mut sim = Simulator::new(nl).unwrap();
            sim.reset();
            // argument order in `args` follows IR scalar-param order
            let mut ai = 0usize;
            for (pname, binding) in &d.ir.params {
                if let crate::ir::ParamBinding::Scalar(_) = binding {
                    sim.poke(&format!("arg_{pname}"), args[ai] as u64).unwrap();
                    ai += 1;
                }
            }
            let budget = expect.states_visited * 3 + 32;
            let cycles = sim
                .run_until(budget, |s| s.peek("done").unwrap() == 1)
                .unwrap()
                .unwrap_or_else(|| panic!("netlist sim never finished for {args:?}"));
            let got = sim.peek("ret_q").unwrap();
            let want = hermes_rtl::mask(
                expect.return_value.unwrap() as u64,
                d.ir.return_type.unwrap().width,
            );
            assert_eq!(
                got, want,
                "netlist vs co-sim mismatch for {args:?} in {}",
                d.name()
            );
            // latency agreement: the netlist pays one extra INIT state
            // but `done` is visible on entry to the final state, so the
            // two effects cancel
            assert_eq!(
                cycles, expect.states_visited,
                "latency mismatch for {args:?}"
            );
        }
    }

    #[test]
    fn netlist_cosim_arithmetic() {
        cosim(
            "int f(int a, int b) { return (a + b) * (a - b) + 7; }",
            &[vec![5, 3], vec![100, 1], vec![0, 0], vec![-4, 9]],
        );
    }

    #[test]
    fn netlist_cosim_branches() {
        cosim(
            "int f(int a, int b) { int m = a; if (b > a) { m = b; } return m * 2; }",
            &[vec![3, 9], vec![9, 3], vec![5, 5]],
        );
    }

    #[test]
    fn netlist_cosim_loop() {
        cosim(
            "int f(int n) { int s = 0; int i = 0; while (i < n) { s += i; i += 1; } return s; }",
            &[vec![0], vec![1], vec![10]],
        );
    }

    #[test]
    fn netlist_cosim_local_array() {
        cosim(
            "int f(int x) { int m[4] = {3, 1, 4, 1}; m[2] = x; return m[0] + m[1] + m[2] + m[3]; }",
            &[vec![0], vec![42]],
        );
    }

    #[test]
    fn netlist_cosim_division_and_shifts() {
        cosim(
            "int f(int a, int b) { return (a / (b + 1)) + (a << 2) + (a >> 1); }",
            &[vec![100, 3], vec![7, 0]],
        );
    }

    #[test]
    fn clock_constraint_changes_schedule() {
        let slow = HlsFlow::new()
            .clock_ns(40.0)
            .compile("int f(int a, int b) { return a * b / (b + 1); }")
            .unwrap();
        let fast = HlsFlow::new()
            .clock_ns(2.5)
            .compile("int f(int a, int b) { return a * b / (b + 1); }")
            .unwrap();
        assert!(
            fast.fsm.state_count() > slow.fsm.state_count(),
            "tight clock should add states: {} vs {}",
            fast.fsm.state_count(),
            slow.fsm.state_count()
        );
    }

    #[test]
    fn top_selection() {
        let src = "int one() { return 1; }\nint two() { return 2; }";
        let d = HlsFlow::new().top("one").compile(src).unwrap();
        assert_eq!(d.name(), "one");
        assert_eq!(d.simulate(&[]).unwrap().return_value, Some(1));
    }

    #[test]
    fn unrolling_changes_structure() {
        let src = "int f() { int s = 0; for (int i = 0; i < 8; i++) { s += i; } return s; }";
        let unrolled = HlsFlow::new().unroll_limit(64).compile(src).unwrap();
        let rolled = HlsFlow::new().unroll_limit(0).compile(src).unwrap();
        assert!(unrolled.cdfg_stats.blocks < rolled.cdfg_stats.blocks);
        assert_eq!(unrolled.simulate(&[]).unwrap().return_value, Some(28));
        assert_eq!(rolled.simulate(&[]).unwrap().return_value, Some(28));
        assert!(
            unrolled.simulate(&[]).unwrap().cycles < rolled.simulate(&[]).unwrap().cycles
        );
    }
}

#[cfg(test)]
mod loop_control_tests {
    use super::*;

    #[test]
    fn break_exits_loop_early() {
        let d = HlsFlow::new()
            .unroll_limit(0)
            .compile(
                "int first_ge(int *data, int n, int threshold) {
                    int found = 0 - 1;
                    for (int i = 0; i < n; i += 1) {
                        if (data[i] >= threshold) { found = i; break; }
                    }
                    return found; }",
            )
            .unwrap();
        let mut ext = crate::simulate::ExternalMemory::buffers(vec![(
            crate::ir::ArrayId(0),
            vec![5, 12, 40, 7, 99],
        )]);
        let r = d.simulate_with_memory(&[5, 30], &mut ext).unwrap();
        assert_eq!(r.return_value, Some(2));
        // early exit really saves time: searching for a smaller threshold
        // that matches the first element must be faster
        let mut ext2 = crate::simulate::ExternalMemory::buffers(vec![(
            crate::ir::ArrayId(0),
            vec![5, 12, 40, 7, 99],
        )]);
        let r2 = d.simulate_with_memory(&[5, 1], &mut ext2).unwrap();
        assert_eq!(r2.return_value, Some(0));
        assert!(r2.cycles < r.cycles, "break must shorten execution");
        // not found path
        let mut ext3 = crate::simulate::ExternalMemory::buffers(vec![(
            crate::ir::ArrayId(0),
            vec![5, 12, 40, 7, 99],
        )]);
        let r3 = d.simulate_with_memory(&[5, 1000], &mut ext3).unwrap();
        assert_eq!(r3.return_value, Some(-1));
    }

    #[test]
    fn continue_skips_iterations() {
        let d = HlsFlow::new()
            .unroll_limit(0)
            .compile(
                "int sum_even(int n) {
                    int s = 0;
                    for (int i = 0; i < n; i += 1) {
                        if ((i & 1) == 1) { continue; }
                        s += i;
                    }
                    return s; }",
            )
            .unwrap();
        // continue must still run the step expression
        assert_eq!(d.simulate(&[10]).unwrap().return_value, Some(2 + 4 + 6 + 8));
        assert_eq!(d.simulate(&[0]).unwrap().return_value, Some(0));
    }

    #[test]
    fn break_in_while_and_netlist_agreement() {
        let src = "int f(int n) {
            int i = 0;
            while (1 == 1) {
                if (i * i >= n) { break; }
                i += 1;
            }
            return i; }";
        // integer square root by search, with an infinite loop + break
        let d = HlsFlow::new().compile(src).unwrap();
        for n in [0i64, 1, 17, 100, 1000] {
            let r = d.simulate(&[n]).unwrap();
            let isqrt_ceil = (0..).find(|&i| (i as i64) * (i as i64) >= n).unwrap();
            assert_eq!(r.return_value, Some(isqrt_ceil as i64), "n={n}");
            // netlist agreement
            let mut sim = hermes_rtl::sim::Simulator::new(d.netlist()).unwrap();
            sim.reset();
            sim.poke("arg_n", n as u64).unwrap();
            sim.run_until(r.states_visited * 3 + 64, |s| s.peek("done").unwrap() == 1)
                .unwrap()
                .expect("netlist finishes");
            assert_eq!(sim.peek("ret_q").unwrap(), r.return_value.unwrap() as u64);
        }
    }

    #[test]
    fn break_outside_loop_rejected() {
        let err = HlsFlow::new()
            .compile("int f(int a) { break; return a; }")
            .unwrap_err();
        assert!(matches!(err, HlsError::Type { .. }));
        let err = HlsFlow::new()
            .compile("int f(int a) { continue; return a; }")
            .unwrap_err();
        assert!(matches!(err, HlsError::Type { .. }));
    }

    #[test]
    fn loops_with_break_are_not_unrolled() {
        let d = HlsFlow::new()
            .unroll_limit(64)
            .compile(
                "int f() {
                    int s = 0;
                    for (int i = 0; i < 8; i += 1) {
                        if (i == 5) { break; }
                        s += i;
                    }
                    return s; }",
            )
            .unwrap();
        assert!(d.cdfg_stats.blocks > 2, "loop structure preserved");
        assert_eq!(d.simulate(&[]).unwrap().return_value, Some(1 + 2 + 3 + 4));
    }
}
