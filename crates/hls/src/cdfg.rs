//! Control-and-data-flow-graph construction.
//!
//! For each basic block, builds the intra-block dependence graph the
//! scheduler needs: RAW edges through temps, RAW/WAR/WAW edges through
//! variables, and conservative ordering edges between memory operations on
//! the same array. Control flow between blocks is already explicit in the
//! IR's terminators; together they form the CDFG of the classic HLS flow
//! (Fig. 2 of the paper).

use crate::ir::{ArrayId, Block, IrFunction, IrOp, Operand, TempId, VarId};
use std::collections::HashMap;

/// Dependence information for one basic block.
#[derive(Debug, Clone, Default)]
pub struct BlockDfg {
    /// `preds[i]` lists the in-block instruction indices that must complete
    /// before instruction `i` may start.
    pub preds: Vec<Vec<usize>>,
    /// `succs[i]` is the inverse of `preds`.
    pub succs: Vec<Vec<usize>>,
    /// Longest-path-to-sink priority of each instruction (in instruction
    /// counts), used as the list-scheduling priority function.
    pub priority: Vec<u32>,
}

impl BlockDfg {
    /// Number of instructions covered.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Whether the block has no instructions.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// A topological order of the instructions (indices), stable with
    /// respect to program order among independent instructions.
    pub fn topo_order(&self) -> Vec<usize> {
        let n = self.len();
        let mut indeg: Vec<usize> = vec![0; n];
        for ps in &self.preds {
            for &_p in ps {}
        }
        for (i, ps) in self.preds.iter().enumerate() {
            indeg[i] = ps.len();
        }
        let mut order = Vec::with_capacity(n);
        let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        ready.sort_unstable();
        while let Some(i) = ready.first().copied() {
            ready.remove(0);
            order.push(i);
            for &s in &self.succs[i] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    let pos = ready.binary_search(&s).unwrap_or_else(|e| e);
                    ready.insert(pos, s);
                }
            }
        }
        debug_assert_eq!(order.len(), n, "block DFG must be acyclic");
        order
    }
}

/// Build the dependence graph of one block.
pub fn build_block_dfg(block: &Block) -> BlockDfg {
    let n = block.instrs.len();
    let mut dfg = BlockDfg {
        preds: vec![Vec::new(); n],
        succs: vec![Vec::new(); n],
        priority: vec![0; n],
    };
    let mut temp_def: HashMap<TempId, usize> = HashMap::new();
    let mut var_last_write: HashMap<VarId, usize> = HashMap::new();
    let mut var_reads_since_write: HashMap<VarId, Vec<usize>> = HashMap::new();
    let mut array_last_store: HashMap<ArrayId, usize> = HashMap::new();
    let mut array_loads_since_store: HashMap<ArrayId, Vec<usize>> = HashMap::new();

    let add_edge = |dfg: &mut BlockDfg, from: usize, to: usize| {
        if from != to && !dfg.preds[to].contains(&from) {
            dfg.preds[to].push(from);
            dfg.succs[from].push(to);
        }
    };

    for (i, instr) in block.instrs.iter().enumerate() {
        let mut uses: Vec<Operand> = Vec::new();
        match &instr.op {
            IrOp::Bin { a, b, .. } => {
                uses.push(*a);
                uses.push(*b);
            }
            IrOp::Un { a, .. } | IrOp::Cast { a, .. } => uses.push(*a),
            IrOp::Load { index, .. } => uses.push(*index),
            IrOp::Store { index, value, .. } => {
                uses.push(*index);
                uses.push(*value);
            }
            IrOp::SetVar { value, .. } => uses.push(*value),
        }
        for u in uses {
            match u {
                Operand::Temp(t) => {
                    if let Some(&d) = temp_def.get(&t) {
                        add_edge(&mut dfg, d, i);
                    }
                }
                Operand::Var(v) => {
                    if let Some(&w) = var_last_write.get(&v) {
                        add_edge(&mut dfg, w, i);
                    }
                    var_reads_since_write.entry(v).or_default().push(i);
                }
                Operand::Const(_) => {}
            }
        }
        match &instr.op {
            IrOp::SetVar { var, .. } => {
                if let Some(&w) = var_last_write.get(var) {
                    add_edge(&mut dfg, w, i); // WAW
                }
                for &r in var_reads_since_write.get(var).into_iter().flatten() {
                    add_edge(&mut dfg, r, i); // WAR
                }
                var_last_write.insert(*var, i);
                var_reads_since_write.insert(*var, Vec::new());
            }
            IrOp::Load { array, .. } => {
                if let Some(&s) = array_last_store.get(array) {
                    add_edge(&mut dfg, s, i);
                }
                array_loads_since_store.entry(*array).or_default().push(i);
            }
            IrOp::Store { array, .. } => {
                if let Some(&s) = array_last_store.get(array) {
                    add_edge(&mut dfg, s, i);
                }
                for &l in array_loads_since_store.get(array).into_iter().flatten() {
                    add_edge(&mut dfg, l, i);
                }
                array_last_store.insert(*array, i);
                array_loads_since_store.insert(*array, Vec::new());
            }
            _ => {}
        }
        if let Some(dst) = instr.dst {
            temp_def.insert(dst, i);
        }
    }

    // priorities: longest path to a sink, computed in reverse topo order
    let order = dfg.topo_order();
    for &i in order.iter().rev() {
        let best = dfg.succs[i]
            .iter()
            .map(|&s| dfg.priority[s] + 1)
            .max()
            .unwrap_or(0);
        dfg.priority[i] = best;
    }
    dfg
}

/// CDFG summary metrics (the Fig. 2 "CDFG" artifact of a design).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CdfgStats {
    /// Basic blocks.
    pub blocks: usize,
    /// Total instructions (dataflow nodes).
    pub nodes: usize,
    /// Total intra-block dependence edges.
    pub data_edges: usize,
    /// Control edges between blocks.
    pub control_edges: usize,
    /// Length of the longest dependence chain over all blocks.
    pub critical_chain: u32,
}

/// Compute CDFG statistics for a function.
pub fn stats(func: &IrFunction) -> CdfgStats {
    let mut s = CdfgStats {
        blocks: func.blocks.len(),
        ..CdfgStats::default()
    };
    for block in &func.blocks {
        let dfg = build_block_dfg(block);
        s.nodes += dfg.len();
        s.data_edges += dfg.preds.iter().map(Vec::len).sum::<usize>();
        s.critical_chain = s
            .critical_chain
            .max(dfg.priority.iter().copied().max().unwrap_or(0) + 1);
        s.control_edges += match block.term {
            crate::ir::Terminator::Jump(_) => 1,
            crate::ir::Terminator::Branch { .. } => 2,
            crate::ir::Terminator::Return(_) => 0,
        };
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::lower;
    use crate::lang::parse;

    fn dfg_of(src: &str) -> (IrFunction, Vec<BlockDfg>) {
        let p = parse(src).unwrap();
        let f = lower(&p, None).unwrap();
        let dfgs = f.blocks.iter().map(build_block_dfg).collect();
        (f, dfgs)
    }

    #[test]
    fn raw_dependency_on_temps() {
        let (_, dfgs) = dfg_of("int f(int a, int b) { return (a + b) * b; }");
        let dfg = &dfgs[0];
        // mul depends on add
        assert_eq!(dfg.len(), 2);
        assert_eq!(dfg.preds[1], vec![0]);
        assert!(dfg.priority[0] > dfg.priority[1]);
    }

    #[test]
    fn independent_ops_have_no_edges() {
        let (_, dfgs) = dfg_of("int f(int a, int b) { int x = a + 1; int y = b + 2; return x + y; }");
        let dfg = &dfgs[0];
        // two adds independent; final add depends on both setvars
        let independent_pairs = (0..dfg.len())
            .filter(|&i| dfg.preds[i].is_empty())
            .count();
        assert!(independent_pairs >= 2);
    }

    #[test]
    fn war_and_waw_on_vars() {
        let (_, dfgs) =
            dfg_of("int f(int a) { int x = a; int y = x + 1; x = a * 2; return x + y; }");
        let dfg = &dfgs[0];
        // the second SetVar(x) must come after the read of x (WAR)
        // find instr indices: 0: SetVar x=a; 1: add x+1; 2: SetVar y; 3: mul a*2; 4: SetVar x
        let order = dfg.topo_order();
        let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
        assert!(pos(1) < pos(4), "read of x before x rewrite");
    }

    #[test]
    fn memory_ordering_preserved() {
        let (_, dfgs) = dfg_of(
            "int f(int *m) { m[0] = 1; int a = m[0]; m[1] = a + 1; return m[1]; }",
        );
        let dfg = &dfgs[0];
        let order = dfg.topo_order();
        // store m[0] -> load m[0] -> store m[1] -> load m[1] in order
        let stores_loads: Vec<usize> = order.clone();
        assert_eq!(stores_loads.len(), dfg.len());
        // topo order must equal program order for this chain
        let p: Vec<usize> = (0..dfg.len()).collect();
        let chain_respected = order
            .iter()
            .zip(p.iter())
            .all(|(a, b)| a == b || dfg.preds[*a].is_empty());
        assert!(chain_respected);
    }

    #[test]
    fn stats_reflect_structure() {
        let (f, _) = dfg_of(
            "int f(int n) { int s = 0; for (int i = 0; i < n; i += 1) { s += i; } return s; }",
        );
        let st = stats(&f);
        assert!(st.blocks >= 4);
        assert!(st.nodes > 0);
        assert!(st.control_edges >= 4);
        assert!(st.critical_chain >= 1);
    }
}
