//! Intermediate representation: a control-flow graph of typed, flat
//! instructions, plus the AST → IR lowering pass (with function inlining
//! and integrated type checking).
//!
//! The IR is deliberately non-SSA: named variables are storage locations
//! (they become datapath registers), while expression temporaries are
//! single-assignment values local to a basic block. This matches the
//! FSM + datapath structure the back-end produces.

use crate::lang::ast::{BinOp, Expr, Function, IntType, Param, Program, Stmt, UnOp};
use crate::{HlsError, Loc};
use std::collections::HashMap;
use std::fmt;

/// Identifier of an expression temporary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TempId(pub u32);

/// Identifier of a named variable (a datapath register).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// Identifier of an array (a BRAM or an external AXI region).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub u32);

/// Identifier of a basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl fmt::Display for TempId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// An instruction operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// An expression temporary.
    Temp(TempId),
    /// A named variable (read at instruction issue).
    Var(VarId),
    /// An immediate constant.
    Const(i64),
}

/// Instruction payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum IrOp {
    /// Binary arithmetic/logic; destination is a temp.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// Unary operation; destination is a temp.
    Un {
        /// Operator.
        op: UnOp,
        /// Operand.
        a: Operand,
    },
    /// Width/sign conversion; destination is a temp.
    Cast {
        /// Operand.
        a: Operand,
        /// Source type of the operand.
        from: IntType,
    },
    /// Array element read; destination is a temp.
    Load {
        /// Array accessed.
        array: ArrayId,
        /// Element index.
        index: Operand,
    },
    /// Array element write.
    Store {
        /// Array accessed.
        array: ArrayId,
        /// Element index.
        index: Operand,
        /// Value written.
        value: Operand,
    },
    /// Variable write.
    SetVar {
        /// Target variable.
        var: VarId,
        /// Value written.
        value: Operand,
    },
}

/// One IR instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct Instr {
    /// Destination temp, for value-producing ops.
    pub dst: Option<TempId>,
    /// The operation.
    pub op: IrOp,
    /// Result type (or value type for stores/setvars).
    pub ty: IntType,
    /// Source location for diagnostics.
    pub loc: Loc,
}

/// Block terminator.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on a 1-bit operand.
    Branch {
        /// Condition (nonzero = taken).
        cond: Operand,
        /// Target when true.
        then_bb: BlockId,
        /// Target when false.
        else_bb: BlockId,
    },
    /// Function return.
    Return(Option<Operand>),
}

/// A basic block.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Straight-line instructions.
    pub instrs: Vec<Instr>,
    /// The terminator.
    pub term: Terminator,
}

/// Storage class of an array.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrayKind {
    /// Function-local array mapped to on-fabric block RAM.
    Local {
        /// Initial contents (zero-padded to `size`).
        init: Vec<i64>,
    },
    /// Array parameter accessed through the AXI4 master interface.
    External,
}

/// Array metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayInfo {
    /// Source name.
    pub name: String,
    /// Element type.
    pub ty: IntType,
    /// Element count (0 = unknown/unbounded external).
    pub size: u32,
    /// Storage class.
    pub kind: ArrayKind,
}

/// Variable metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct VarInfo {
    /// Source name (inlined callees get suffixed names).
    pub name: String,
    /// Declared type.
    pub ty: IntType,
}

/// How a source parameter maps into the IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamBinding {
    /// Scalar parameter: a pre-initialized variable.
    Scalar(VarId),
    /// Array parameter: an external array.
    Array(ArrayId),
}

/// A lowered function ready for HLS.
#[derive(Debug, Clone)]
pub struct IrFunction {
    /// Function name.
    pub name: String,
    /// Return type (None = void).
    pub return_type: Option<IntType>,
    /// Parameter bindings in declaration order (with source names).
    pub params: Vec<(String, ParamBinding)>,
    /// Variables (registers).
    pub vars: Vec<VarInfo>,
    /// Arrays (memories).
    pub arrays: Vec<ArrayInfo>,
    /// Basic blocks; entry is block 0.
    pub blocks: Vec<Block>,
    /// Number of temps allocated.
    pub temp_count: u32,
    /// Type of each temp, indexed by `TempId`.
    pub temp_types: Vec<IntType>,
}

impl IrFunction {
    /// The entry block id.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Block lookup.
    ///
    /// # Panics
    ///
    /// Panics on an id from another function.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// Type of an operand.
    pub fn operand_type(&self, op: Operand) -> IntType {
        match op {
            Operand::Temp(t) => self.temp_types[t.0 as usize],
            Operand::Var(v) => self.vars[v.0 as usize].ty,
            Operand::Const(_) => IntType::I32,
        }
    }

    /// Total instruction count.
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }

    /// Render a textual dump (for debugging and golden tests).
    pub fn dump(&self) -> String {
        let mut s = format!("function {}:\n", self.name);
        for (i, b) in self.blocks.iter().enumerate() {
            s.push_str(&format!("bb{i}:\n"));
            for instr in &b.instrs {
                s.push_str(&format!("  {instr:?}\n"));
            }
            s.push_str(&format!("  {:?}\n", b.term));
        }
        s
    }
}

/// Maximum call-inlining depth before recursion is assumed.
const MAX_INLINE_DEPTH: usize = 16;

/// Lower `program`'s function `top` (or the last defined one when `None`)
/// into IR, inlining all calls.
///
/// # Errors
///
/// Returns [`HlsError::Type`] for semantic violations and
/// [`HlsError::Unsupported`] for recursion or out-of-subset constructs.
pub fn lower(program: &Program, top: Option<&str>) -> Result<IrFunction, HlsError> {
    let func = match top {
        Some(name) => program.function(name).ok_or_else(|| HlsError::Type {
            loc: Loc::default(),
            detail: format!("no function named `{name}`"),
        })?,
        None => program.functions.last().expect("parser guarantees >= 1"),
    };
    let mut lw = Lowerer {
        program,
        func: IrFunction {
            name: func.name.clone(),
            return_type: func.return_type,
            params: Vec::new(),
            vars: Vec::new(),
            arrays: Vec::new(),
            blocks: Vec::new(),
            temp_count: 0,
            temp_types: Vec::new(),
        },
        scopes: vec![HashMap::new()],
        current: BlockId(0),
        depth: 0,
        loop_stack: Vec::new(),
    };
    lw.func.blocks.push(Block {
        instrs: Vec::new(),
        term: Terminator::Return(None),
    });

    // Bind parameters.
    for p in &func.params {
        let binding = lw.bind_param(p)?;
        lw.func.params.push((p.name.clone(), binding));
    }
    lw.lower_body(&func.body)?;
    Ok(lw.func)
}

#[derive(Debug, Clone, Copy)]
enum Binding {
    Var(VarId),
    Array(ArrayId),
}

struct Lowerer<'p> {
    program: &'p Program,
    func: IrFunction,
    scopes: Vec<HashMap<String, Binding>>,
    current: BlockId,
    depth: usize,
    /// Enclosing loops: (continue target, break target).
    loop_stack: Vec<(BlockId, BlockId)>,
}

impl<'p> Lowerer<'p> {
    fn bind_param(&mut self, p: &Param) -> Result<ParamBinding, HlsError> {
        match p.array {
            Some(size) => {
                let id = ArrayId(self.func.arrays.len() as u32);
                self.func.arrays.push(ArrayInfo {
                    name: p.name.clone(),
                    ty: p.ty,
                    size,
                    kind: ArrayKind::External,
                });
                self.scope_insert(&p.name, Binding::Array(id), p.loc)?;
                Ok(ParamBinding::Array(id))
            }
            None => {
                let id = self.new_var(&p.name, p.ty);
                self.scope_insert(&p.name, Binding::Var(id), p.loc)?;
                Ok(ParamBinding::Scalar(id))
            }
        }
    }

    fn new_var(&mut self, name: &str, ty: IntType) -> VarId {
        let id = VarId(self.func.vars.len() as u32);
        self.func.vars.push(VarInfo {
            name: name.to_string(),
            ty,
        });
        id
    }

    fn new_temp(&mut self, ty: IntType) -> TempId {
        let id = TempId(self.func.temp_count);
        self.func.temp_count += 1;
        self.func.temp_types.push(ty);
        id
    }

    fn scope_insert(&mut self, name: &str, b: Binding, _loc: Loc) -> Result<(), HlsError> {
        // Redeclaration in the same scope shadows the previous binding
        // (loop unrolling replicates declarations, so this must be legal).
        let scope = self.scopes.last_mut().expect("scope stack nonempty");
        scope.insert(name.to_string(), b);
        Ok(())
    }

    fn resolve(&self, name: &str, loc: Loc) -> Result<Binding, HlsError> {
        for scope in self.scopes.iter().rev() {
            if let Some(&b) = scope.get(name) {
                return Ok(b);
            }
        }
        Err(HlsError::Type {
            loc,
            detail: format!("`{name}` is not declared"),
        })
    }

    fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.func.blocks.len() as u32);
        self.func.blocks.push(Block {
            instrs: Vec::new(),
            term: Terminator::Return(None),
        });
        id
    }

    fn emit(&mut self, instr: Instr) {
        self.func.blocks[self.current.0 as usize].instrs.push(instr);
    }

    fn terminate(&mut self, term: Terminator) {
        self.func.blocks[self.current.0 as usize].term = term;
    }

    /// Lower a statement list; returns true if it ended with a `return`.
    fn lower_body(&mut self, body: &[Stmt]) -> Result<bool, HlsError> {
        let mut terminated = false;
        for stmt in body {
            if terminated {
                // dead code after return: accept and drop
                break;
            }
            terminated = self.lower_stmt(stmt)?;
        }
        Ok(terminated)
    }

    /// Lower one statement; returns true if it terminated the block with a
    /// return.
    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<bool, HlsError> {
        match stmt {
            Stmt::Decl { ty, name, init, loc } => {
                let var = self.new_var(name, *ty);
                self.scope_insert(name, Binding::Var(var), *loc)?;
                if let Some(e) = init {
                    let (v, vty) = self.lower_expr(e)?;
                    let v = self.coerce(v, vty, *ty, *loc);
                    self.emit(Instr {
                        dst: None,
                        op: IrOp::SetVar { var, value: v },
                        ty: *ty,
                        loc: *loc,
                    });
                }
                Ok(false)
            }
            Stmt::ArrayDecl {
                ty,
                name,
                size,
                init,
                loc,
            } => {
                let id = ArrayId(self.func.arrays.len() as u32);
                self.func.arrays.push(ArrayInfo {
                    name: name.clone(),
                    ty: *ty,
                    size: *size,
                    kind: ArrayKind::Local { init: init.clone() },
                });
                self.scope_insert(name, Binding::Array(id), *loc)?;
                Ok(false)
            }
            Stmt::Assign { name, value, loc } => {
                let Binding::Var(var) = self.resolve(name, *loc)? else {
                    return Err(HlsError::Type {
                        loc: *loc,
                        detail: format!("cannot assign to array `{name}` without an index"),
                    });
                };
                let (v, vty) = self.lower_expr(value)?;
                let target_ty = self.func.vars[var.0 as usize].ty;
                let v = self.coerce(v, vty, target_ty, *loc);
                self.emit(Instr {
                    dst: None,
                    op: IrOp::SetVar { var, value: v },
                    ty: target_ty,
                    loc: *loc,
                });
                Ok(false)
            }
            Stmt::Store {
                name,
                index,
                value,
                loc,
            } => {
                let Binding::Array(array) = self.resolve(name, *loc)? else {
                    return Err(HlsError::Type {
                        loc: *loc,
                        detail: format!("`{name}` is not an array"),
                    });
                };
                let (iv, _) = self.lower_expr(index)?;
                let (vv, vty) = self.lower_expr(value)?;
                let ety = self.func.arrays[array.0 as usize].ty;
                let vv = self.coerce(vv, vty, ety, *loc);
                self.emit(Instr {
                    dst: None,
                    op: IrOp::Store {
                        array,
                        index: iv,
                        value: vv,
                    },
                    ty: ety,
                    loc: *loc,
                });
                Ok(false)
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                loc: _,
            } => {
                let (c, _) = self.lower_expr(cond)?;
                let then_bb = self.new_block();
                let else_bb = self.new_block();
                let join_bb = self.new_block();
                self.terminate(Terminator::Branch {
                    cond: c,
                    then_bb,
                    else_bb,
                });
                self.current = then_bb;
                self.scopes.push(HashMap::new());
                let then_ret = self.lower_body(then_body)?;
                self.scopes.pop();
                if !then_ret {
                    self.terminate(Terminator::Jump(join_bb));
                }
                self.current = else_bb;
                self.scopes.push(HashMap::new());
                let else_ret = self.lower_body(else_body)?;
                self.scopes.pop();
                if !else_ret {
                    self.terminate(Terminator::Jump(join_bb));
                }
                self.current = join_bb;
                Ok(false)
            }
            Stmt::While { cond, body, loc: _ } => {
                let head = self.new_block();
                let body_bb = self.new_block();
                let exit = self.new_block();
                self.terminate(Terminator::Jump(head));
                self.current = head;
                let (c, _) = self.lower_expr(cond)?;
                self.terminate(Terminator::Branch {
                    cond: c,
                    then_bb: body_bb,
                    else_bb: exit,
                });
                self.current = body_bb;
                self.scopes.push(HashMap::new());
                self.loop_stack.push((head, exit));
                let body_ret = self.lower_body(body)?;
                self.loop_stack.pop();
                self.scopes.pop();
                if !body_ret {
                    self.terminate(Terminator::Jump(head));
                }
                self.current = exit;
                Ok(false)
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                loc: _,
            } => {
                self.scopes.push(HashMap::new());
                self.lower_stmt(init)?;
                let head = self.new_block();
                let body_bb = self.new_block();
                let step_bb = self.new_block();
                let exit = self.new_block();
                self.terminate(Terminator::Jump(head));
                self.current = head;
                let (c, _) = self.lower_expr(cond)?;
                self.terminate(Terminator::Branch {
                    cond: c,
                    then_bb: body_bb,
                    else_bb: exit,
                });
                self.current = body_bb;
                self.scopes.push(HashMap::new());
                self.loop_stack.push((step_bb, exit));
                let body_ret = self.lower_body(body)?;
                self.loop_stack.pop();
                self.scopes.pop();
                if !body_ret {
                    self.terminate(Terminator::Jump(step_bb));
                }
                // the step block runs the step statement, then re-tests
                self.current = step_bb;
                self.lower_stmt(step)?;
                self.terminate(Terminator::Jump(head));
                self.scopes.pop();
                self.current = exit;
                Ok(false)
            }
            Stmt::Break { loc } => {
                let &(_, break_bb) =
                    self.loop_stack.last().ok_or_else(|| HlsError::Type {
                        loc: *loc,
                        detail: "`break` outside of a loop".into(),
                    })?;
                self.terminate(Terminator::Jump(break_bb));
                Ok(true)
            }
            Stmt::Continue { loc } => {
                let &(continue_bb, _) =
                    self.loop_stack.last().ok_or_else(|| HlsError::Type {
                        loc: *loc,
                        detail: "`continue` outside of a loop".into(),
                    })?;
                self.terminate(Terminator::Jump(continue_bb));
                Ok(true)
            }
            Stmt::Return { value, loc } => {
                let op = match (value, self.func.return_type) {
                    (Some(e), Some(rty)) => {
                        let (v, vty) = self.lower_expr(e)?;
                        Some(self.coerce(v, vty, rty, *loc))
                    }
                    (None, None) => None,
                    (Some(_), None) => {
                        return Err(HlsError::Type {
                            loc: *loc,
                            detail: "void function returns a value".into(),
                        })
                    }
                    (None, Some(_)) => {
                        return Err(HlsError::Type {
                            loc: *loc,
                            detail: "non-void function returns nothing".into(),
                        })
                    }
                };
                self.terminate(Terminator::Return(op));
                Ok(true)
            }
            Stmt::ExprStmt { expr, loc } => match expr {
                Expr::Call { .. } => {
                    self.lower_expr(expr)?;
                    Ok(false)
                }
                _ => Err(HlsError::Unsupported {
                    loc: *loc,
                    detail: "expression statements must be calls".into(),
                }),
            },
        }
    }

    fn coerce(&mut self, v: Operand, from: IntType, to: IntType, loc: Loc) -> Operand {
        if from == to {
            return v;
        }
        if let Operand::Const(_) = v {
            return v; // constants adapt to context
        }
        let dst = self.new_temp(to);
        self.emit(Instr {
            dst: Some(dst),
            op: IrOp::Cast { a: v, from },
            ty: to,
            loc,
        });
        Operand::Temp(dst)
    }

    fn lower_expr(&mut self, e: &Expr) -> Result<(Operand, IntType), HlsError> {
        match e {
            Expr::Literal { value, .. } => Ok((Operand::Const(*value), IntType::I32)),
            Expr::Var { name, loc } => match self.resolve(name, *loc)? {
                Binding::Var(v) => Ok((Operand::Var(v), self.func.vars[v.0 as usize].ty)),
                Binding::Array(_) => Err(HlsError::Type {
                    loc: *loc,
                    detail: format!("array `{name}` used as a scalar"),
                }),
            },
            Expr::Index { name, index, loc } => {
                let Binding::Array(array) = self.resolve(name, *loc)? else {
                    return Err(HlsError::Type {
                        loc: *loc,
                        detail: format!("`{name}` is not an array"),
                    });
                };
                let (iv, _) = self.lower_expr(index)?;
                let ety = self.func.arrays[array.0 as usize].ty;
                let dst = self.new_temp(ety);
                self.emit(Instr {
                    dst: Some(dst),
                    op: IrOp::Load { array, index: iv },
                    ty: ety,
                    loc: *loc,
                });
                Ok((Operand::Temp(dst), ety))
            }
            Expr::Binary { op, lhs, rhs, loc } => {
                let (a, aty) = self.lower_expr(lhs)?;
                let (b, bty) = self.lower_expr(rhs)?;
                let (a, b, opty) = match op {
                    BinOp::LogAnd | BinOp::LogOr => {
                        let a = self.coerce_to_bool(a, aty, *loc);
                        let b = self.coerce_to_bool(b, bty, *loc);
                        (a, b, IntType::BOOL)
                    }
                    BinOp::Shl | BinOp::Shr => (a, b, aty),
                    _ => {
                        let unified = aty.unify(bty);
                        (
                            self.coerce(a, aty, unified, *loc),
                            self.coerce(b, bty, unified, *loc),
                            unified,
                        )
                    }
                };
                let result_ty = if op.is_comparison() || matches!(op, BinOp::LogAnd | BinOp::LogOr)
                {
                    IntType::BOOL
                } else {
                    opty
                };
                let dst = self.new_temp(result_ty);
                self.emit(Instr {
                    dst: Some(dst),
                    op: IrOp::Bin { op: *op, a, b },
                    ty: result_ty,
                    loc: *loc,
                });
                Ok((Operand::Temp(dst), result_ty))
            }
            Expr::Unary { op, operand, loc } => {
                let (a, aty) = self.lower_expr(operand)?;
                let result_ty = match op {
                    UnOp::LogNot => IntType::BOOL,
                    _ => aty,
                };
                let a = if matches!(op, UnOp::LogNot) {
                    self.coerce_to_bool(a, aty, *loc)
                } else {
                    a
                };
                let dst = self.new_temp(result_ty);
                self.emit(Instr {
                    dst: Some(dst),
                    op: IrOp::Un { op: *op, a },
                    ty: result_ty,
                    loc: *loc,
                });
                Ok((Operand::Temp(dst), result_ty))
            }
            Expr::Cast { ty, operand, loc } => {
                let (a, aty) = self.lower_expr(operand)?;
                if aty == *ty {
                    return Ok((a, *ty));
                }
                let dst = self.new_temp(*ty);
                self.emit(Instr {
                    dst: Some(dst),
                    op: IrOp::Cast { a, from: aty },
                    ty: *ty,
                    loc: *loc,
                });
                Ok((Operand::Temp(dst), *ty))
            }
            Expr::Call { name, args, loc } => self.inline_call(name, args, *loc),
        }
    }

    fn coerce_to_bool(&mut self, v: Operand, ty: IntType, loc: Loc) -> Operand {
        if ty == IntType::BOOL {
            return v;
        }
        let dst = self.new_temp(IntType::BOOL);
        self.emit(Instr {
            dst: Some(dst),
            op: IrOp::Bin {
                op: BinOp::Ne,
                a: v,
                b: Operand::Const(0),
            },
            ty: IntType::BOOL,
            loc,
        });
        Operand::Temp(dst)
    }

    fn inline_call(
        &mut self,
        name: &str,
        args: &[Expr],
        loc: Loc,
    ) -> Result<(Operand, IntType), HlsError> {
        let callee: &Function = self.program.function(name).ok_or_else(|| HlsError::Type {
            loc,
            detail: format!("call to undefined function `{name}`"),
        })?;
        if callee.name == self.func.name || self.depth >= MAX_INLINE_DEPTH {
            return Err(HlsError::Unsupported {
                loc,
                detail: format!("recursive call to `{name}` cannot be synthesized"),
            });
        }
        if args.len() != callee.params.len() {
            return Err(HlsError::Type {
                loc,
                detail: format!(
                    "`{name}` expects {} arguments, got {}",
                    callee.params.len(),
                    args.len()
                ),
            });
        }
        // Fresh scope mapping callee parameter names.
        let mut callee_scope = HashMap::new();
        for (param, arg) in callee.params.iter().zip(args) {
            match param.array {
                Some(_) => {
                    // array argument must be an array name
                    let Expr::Var { name: an, loc: aloc } = arg else {
                        return Err(HlsError::Unsupported {
                            loc: arg.loc(),
                            detail: "array arguments must be plain array names".into(),
                        });
                    };
                    let Binding::Array(aid) = self.resolve(an, *aloc)? else {
                        return Err(HlsError::Type {
                            loc: *aloc,
                            detail: format!("`{an}` is not an array"),
                        });
                    };
                    callee_scope.insert(param.name.clone(), Binding::Array(aid));
                }
                None => {
                    let (v, vty) = self.lower_expr(arg)?;
                    let v = self.coerce(v, vty, param.ty, loc);
                    let pv = self.new_var(&format!("{name}.{}", param.name), param.ty);
                    self.emit(Instr {
                        dst: None,
                        op: IrOp::SetVar {
                            var: pv,
                            value: v,
                        },
                        ty: param.ty,
                        loc,
                    });
                    callee_scope.insert(param.name.clone(), Binding::Var(pv));
                }
            }
        }
        // Result variable for non-void callees.
        let result_var = callee.return_type.map(|rty| {
            self.new_var(&format!("{name}.__ret"), rty)
        });
        let exit_bb = self.new_block();

        // Lower callee body with a dedicated scope stack and return target.
        let saved_scopes = std::mem::replace(&mut self.scopes, vec![callee_scope]);
        let saved_name = std::mem::replace(&mut self.func.name, callee.name.clone());
        let saved_rty = std::mem::replace(&mut self.func.return_type, callee.return_type);
        self.depth += 1;
        let result = self.lower_inlined_body(&callee.body, result_var, exit_bb);
        self.depth -= 1;
        self.func.name = saved_name;
        self.func.return_type = saved_rty;
        self.scopes = saved_scopes;
        result?;
        self.current = exit_bb;
        match (result_var, callee.return_type) {
            (Some(v), Some(rty)) => Ok((Operand::Var(v), rty)),
            _ => Ok((Operand::Const(0), IntType::I32)),
        }
    }

    /// Lower an inlined body: returns become `SetVar(result) + Jump(exit)`.
    fn lower_inlined_body(
        &mut self,
        body: &[Stmt],
        result_var: Option<VarId>,
        exit_bb: BlockId,
    ) -> Result<(), HlsError> {
        for stmt in body {
            if let Stmt::Return { value, loc } = stmt {
                if let (Some(e), Some(rv)) = (value, result_var) {
                    let (v, vty) = self.lower_expr(e)?;
                    let rty = self.func.vars[rv.0 as usize].ty;
                    let v = self.coerce(v, vty, rty, *loc);
                    self.emit(Instr {
                        dst: None,
                        op: IrOp::SetVar {
                            var: rv,
                            value: v,
                        },
                        ty: rty,
                        loc: *loc,
                    });
                }
                self.terminate(Terminator::Jump(exit_bb));
                return Ok(());
            }
            // For control flow containing returns we recurse specially.
            match stmt {
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    ..
                } => {
                    let (c, _) = self.lower_expr(cond)?;
                    let then_bb = self.new_block();
                    let else_bb = self.new_block();
                    let join_bb = self.new_block();
                    self.terminate(Terminator::Branch {
                        cond: c,
                        then_bb,
                        else_bb,
                    });
                    self.current = then_bb;
                    self.scopes.push(HashMap::new());
                    self.lower_inlined_body(then_body, result_var, exit_bb)?;
                    self.scopes.pop();
                    if !matches!(
                        self.func.blocks[self.current.0 as usize].term,
                        Terminator::Jump(_)
                    ) {
                        self.terminate(Terminator::Jump(join_bb));
                    }
                    self.current = else_bb;
                    self.scopes.push(HashMap::new());
                    self.lower_inlined_body(else_body, result_var, exit_bb)?;
                    self.scopes.pop();
                    if !matches!(
                        self.func.blocks[self.current.0 as usize].term,
                        Terminator::Jump(_)
                    ) {
                        self.terminate(Terminator::Jump(join_bb));
                    }
                    self.current = join_bb;
                }
                _ => {
                    if self.lower_stmt(stmt)? {
                        // break/continue terminated the block
                        return Ok(());
                    }
                }
            }
        }
        self.terminate(Terminator::Jump(exit_bb));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parse;

    fn lower_src(src: &str) -> IrFunction {
        let p = parse(src).expect("parses");
        lower(&p, None).expect("lowers")
    }

    #[test]
    fn straight_line_lowering() {
        let f = lower_src("int f(int a, int b) { int c = a + b; return c * 2; }");
        assert_eq!(f.blocks.len(), 1);
        assert!(f.instr_count() >= 3); // add, setvar, mul
        assert_eq!(f.vars.len(), 3); // a, b, c
    }

    #[test]
    fn if_creates_diamond() {
        let f = lower_src("int f(int a) { int x = 0; if (a > 0) { x = 1; } else { x = 2; } return x; }");
        // entry, then, else, join
        assert_eq!(f.blocks.len(), 4);
        assert!(matches!(
            f.block(BlockId(0)).term,
            Terminator::Branch { .. }
        ));
    }

    #[test]
    fn while_creates_loop() {
        let f = lower_src("int f(int n) { int s = 0; while (n > 0) { s += n; n -= 1; } return s; }");
        assert_eq!(f.blocks.len(), 4); // entry, head, body, exit
        let head = f.block(BlockId(1));
        assert!(matches!(head.term, Terminator::Branch { .. }));
    }

    #[test]
    fn local_array_becomes_bram() {
        let f = lower_src("int f() { int m[8] = {1,2,3}; return m[2]; }");
        assert_eq!(f.arrays.len(), 1);
        assert!(matches!(f.arrays[0].kind, ArrayKind::Local { .. }));
        assert_eq!(f.arrays[0].size, 8);
    }

    #[test]
    fn param_array_is_external() {
        let f = lower_src("int f(int *data) { return data[0]; }");
        assert!(matches!(f.arrays[0].kind, ArrayKind::External));
        assert!(matches!(f.params[0].1, ParamBinding::Array(_)));
    }

    #[test]
    fn inlining_produces_single_function() {
        let f = lower_src(
            "int sq(int x) { return x * x; }\nint f(int a) { return sq(a) + sq(a + 1); }",
        );
        // both call sites inlined: two mul instructions present
        let muls = f
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i.op, IrOp::Bin { op: BinOp::Mul, .. }))
            .count();
        assert_eq!(muls, 2);
    }

    #[test]
    fn recursion_rejected() {
        let p = parse("int f(int a) { return f(a - 1); }").unwrap();
        assert!(matches!(
            lower(&p, None),
            Err(HlsError::Unsupported { .. })
        ));
    }

    #[test]
    fn undeclared_variable_rejected() {
        let p = parse("int f() { return nope; }").unwrap();
        assert!(matches!(lower(&p, None), Err(HlsError::Type { .. })));
    }

    #[test]
    fn type_coercion_inserts_casts() {
        let f = lower_src("int16 f(int8 a, int16 b) { return a + b; }");
        let casts = f
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i.op, IrOp::Cast { .. }))
            .count();
        assert!(casts >= 1, "int8 operand must be widened");
    }

    #[test]
    fn top_selection_by_name() {
        let p = parse("int a() { return 1; }\nint b() { return 2; }").unwrap();
        let f = lower(&p, Some("a")).unwrap();
        assert_eq!(f.name, "a");
        assert!(lower(&p, Some("zz")).is_err());
    }

    #[test]
    fn void_function_with_stores() {
        let f = lower_src("void f(int *out) { out[0] = 42; }");
        assert!(f.return_type.is_none());
        let stores = f
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i.op, IrOp::Store { .. }))
            .count();
        assert_eq!(stores, 1);
    }
}
