//! Cycle-accurate simulation of a scheduled design.
//!
//! Values follow the exact evaluation semantics of [`crate::opt`]
//! (`eval_bin` / `eval_un` / `normalize`), and the cycle count follows the
//! FSM schedule, so a simulation is simultaneously a functional reference
//! check and a performance measurement. External (AXI) arrays can be backed
//! by a plain buffer with the scheduler's static latency estimate, or by a
//! live [`hermes_axi::testbench::AxiTestbench`] for bus-accurate
//! co-simulation (the testbench generation feature of Section II).

use crate::ir::{ArrayId, ArrayKind, IrFunction, IrOp, Operand, Terminator};
use crate::lang::ast::IntType;
use crate::opt::{eval_bin, eval_un, normalize};
use crate::schedule::FunctionSchedule;
use crate::HlsError;
use hermes_axi::testbench::AxiTestbench;
use std::collections::HashMap;

/// Result of one simulated invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// The returned value (canonical), if the function is non-void.
    pub return_value: Option<i64>,
    /// Total cycles consumed (FSM states, plus any bus-accurate memory
    /// correction when co-simulating with AXI).
    pub cycles: u64,
    /// FSM states visited.
    pub states_visited: u64,
    /// Memory operations performed (loads + stores).
    pub memory_ops: u64,
    /// External-memory bytes moved over the AXI model (0 for buffer mode).
    pub axi_bytes: u64,
    /// Census of executed IR operations, for software-baseline cost models.
    pub op_census: OpCensus,
}

/// Counts of executed IR operations by class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCensus {
    /// Simple ALU ops (add/sub/logic/shift/compare).
    pub alu: u64,
    /// Multiplications.
    pub mul: u64,
    /// Divisions and remainders.
    pub div: u64,
    /// Memory loads.
    pub load: u64,
    /// Memory stores.
    pub store: u64,
    /// Register moves (SetVar/Cast).
    pub mov: u64,
    /// Branches taken or fallen through (block terminators).
    pub branch: u64,
}

impl OpCensus {
    /// Total executed operations.
    pub fn total(&self) -> u64 {
        self.alu + self.mul + self.div + self.load + self.store + self.mov + self.branch
    }

    /// Estimated cycles on a single-issue in-order CPU with the given
    /// per-class costs — the software-baseline model for the E7 use-case
    /// comparison. ALU ops cost 1, branches 1, and register moves 0 (a
    /// compiler's register allocator folds them into the producing
    /// instruction); `mul`/`div`/`mem` are the later-bound latencies.
    pub fn cpu_cycles(&self, mul: u64, div: u64, mem: u64) -> u64 {
        self.alu
            + self.mul * mul
            + self.div * div
            + (self.load + self.store) * mem
            + self.branch
    }
}

/// Backing storage for external (parameter) arrays during simulation.
#[derive(Debug)]
pub enum ExternalMemory<'a> {
    /// Plain buffers, one per external array, with the scheduler's static
    /// latency already accounted in the FSM schedule.
    Buffers(HashMap<ArrayId, Vec<i64>>),
    /// A live AXI4 testbench; each external array is a base address in the
    /// shared memory. Element width follows the array's declared type.
    Axi {
        /// The bus + slave memory.
        bus: &'a mut AxiTestbench,
        /// Base byte address of each array.
        base_addr: HashMap<ArrayId, u64>,
    },
    /// A live AXI4 testbench behind an accelerator-side cache (the
    /// prefetch/caching extension of Section II). Reads go through the
    /// cache; the cycle accounting uses the cache's amortized bus traffic.
    CachedAxi {
        /// The cache.
        cache: &'a mut hermes_axi::cache::AxiCache,
        /// The bus + slave memory.
        bus: &'a mut AxiTestbench,
        /// Base byte address of each array.
        base_addr: HashMap<ArrayId, u64>,
    },
}

impl ExternalMemory<'_> {
    /// Convenience constructor for buffer mode.
    pub fn buffers(bufs: Vec<(ArrayId, Vec<i64>)>) -> ExternalMemory<'static> {
        ExternalMemory::Buffers(bufs.into_iter().collect())
    }

    /// Extract a buffer after simulation (buffer mode only).
    pub fn buffer(&self, id: ArrayId) -> Option<&Vec<i64>> {
        match self {
            ExternalMemory::Buffers(m) => m.get(&id),
            ExternalMemory::Axi { .. } | ExternalMemory::CachedAxi { .. } => None,
        }
    }
}

/// Simulation limits.
#[derive(Debug, Clone, Copy)]
pub struct SimLimits {
    /// Maximum FSM states to visit before declaring a hang.
    pub max_states: u64,
}

impl Default for SimLimits {
    fn default() -> Self {
        SimLimits {
            max_states: 50_000_000,
        }
    }
}

fn elem_bytes(ty: IntType) -> u64 {
    u64::from(ty.width.div_ceil(8).max(1))
}

/// Run the design on the given scalar arguments and external memory.
///
/// `args` supplies scalar parameters in declaration order (array parameters
/// are skipped — they come from `ext`).
///
/// # Errors
///
/// Returns [`HlsError::Simulation`] for argument-count mismatches,
/// out-of-bounds local accesses, or watchdog expiry, and propagates AXI
/// errors in co-simulation mode.
pub fn run(
    func: &IrFunction,
    sched: &FunctionSchedule,
    args: &[i64],
    ext: &mut ExternalMemory<'_>,
    limits: SimLimits,
) -> Result<SimResult, HlsError> {
    // bind scalar args
    let mut vars: Vec<i64> = vec![0; func.vars.len()];
    let scalar_params: Vec<_> = func
        .params
        .iter()
        .filter_map(|(_, b)| match b {
            crate::ir::ParamBinding::Scalar(v) => Some(*v),
            _ => None,
        })
        .collect();
    if scalar_params.len() != args.len() {
        return Err(HlsError::Simulation {
            detail: format!(
                "expected {} scalar arguments, got {}",
                scalar_params.len(),
                args.len()
            ),
        });
    }
    for (v, &a) in scalar_params.iter().zip(args) {
        vars[v.0 as usize] = normalize(a, func.vars[v.0 as usize].ty);
    }

    // local array state
    let mut locals: HashMap<ArrayId, Vec<i64>> = HashMap::new();
    for (ai, info) in func.arrays.iter().enumerate() {
        if let ArrayKind::Local { init } = &info.kind {
            let mut data: Vec<i64> = init
                .iter()
                .map(|&v| normalize(v, info.ty))
                .collect();
            data.resize(info.size as usize, 0);
            locals.insert(ArrayId(ai as u32), data);
        }
    }

    let mut temps: HashMap<u32, i64> = HashMap::new();
    let mut current = func.entry();
    let mut states_visited: u64 = 0;
    let mut memory_ops: u64 = 0;
    let mut census = OpCensus::default();
    let mut axi_extra_cycles: i64 = 0;
    let mut axi_bytes: u64 = 0;
    let opts = &sched.options;

    loop {
        let block = func.block(current);
        let bs = &sched.blocks[current.0 as usize];
        states_visited += u64::from(bs.length);
        if states_visited > limits.max_states {
            return Err(HlsError::Simulation {
                detail: format!("watchdog: exceeded {} states", limits.max_states),
            });
        }
        for (ii, instr) in block.instrs.iter().enumerate() {
            let read = |op: Operand, temps: &HashMap<u32, i64>, vars: &[i64]| -> i64 {
                match op {
                    Operand::Const(c) => c,
                    Operand::Temp(t) => temps.get(&t.0).copied().unwrap_or(0),
                    Operand::Var(v) => vars[v.0 as usize],
                }
            };
            match &instr.op {
                IrOp::Bin { op, a, b } => {
                    match op {
                        crate::lang::ast::BinOp::Mul => census.mul += 1,
                        crate::lang::ast::BinOp::Div | crate::lang::ast::BinOp::Mod => {
                            census.div += 1
                        }
                        _ => census.alu += 1,
                    }
                    let ta = operand_ty(func, *a);
                    let tb = operand_ty(func, *b);
                    let ty = match op {
                        crate::lang::ast::BinOp::Shl | crate::lang::ast::BinOp::Shr => ta,
                        _ => ta.unify(tb),
                    };
                    let va = read(*a, &temps, &vars);
                    let vb = read(*b, &temps, &vars);
                    let v = eval_bin(*op, va, vb, ty);
                    temps.insert(instr.dst.expect("bin dst").0, normalize(v, instr.ty));
                }
                IrOp::Un { op, a } => {
                    census.alu += 1;
                    let v = eval_un(*op, read(*a, &temps, &vars), instr.ty);
                    temps.insert(instr.dst.expect("un dst").0, v);
                }
                IrOp::Cast { a, from } => {
                    census.mov += 1;
                    let v = normalize(normalize(read(*a, &temps, &vars), *from), instr.ty);
                    temps.insert(instr.dst.expect("cast dst").0, v);
                }
                IrOp::Load { array, index } => {
                    memory_ops += 1;
                    census.load += 1;
                    let idx = read(*index, &temps, &vars);
                    let info = &func.arrays[array.0 as usize];
                    let v = match &info.kind {
                        ArrayKind::Local { .. } => {
                            let data = &locals[array];
                            *data.get(idx as usize).ok_or_else(|| HlsError::Simulation {
                                detail: format!(
                                    "load out of bounds: {}[{idx}] (size {})",
                                    info.name, info.size
                                ),
                            })?
                        }
                        ArrayKind::External => match ext {
                            ExternalMemory::Buffers(m) => {
                                let data =
                                    m.get(array).ok_or_else(|| HlsError::Simulation {
                                        detail: format!(
                                            "no buffer bound for array `{}`",
                                            info.name
                                        ),
                                    })?;
                                *data.get(idx as usize).ok_or_else(|| {
                                    HlsError::Simulation {
                                        detail: format!(
                                            "load out of bounds: {}[{idx}]",
                                            info.name
                                        ),
                                    }
                                })?
                            }
                            ExternalMemory::Axi { bus, base_addr } => {
                                let eb = elem_bytes(info.ty);
                                let addr = base_addr[array] + idx as u64 * eb;
                                let (bytes, cyc) = bus.read_blocking(addr, eb as usize)?;
                                axi_bytes += eb;
                                axi_extra_cycles += cyc as i64
                                    - i64::from(opts.ext_mem_read_latency);
                                let mut raw = [0u8; 8];
                                raw[..bytes.len()].copy_from_slice(&bytes);
                                normalize(i64::from_le_bytes(raw), info.ty)
                            }
                            ExternalMemory::CachedAxi {
                                cache,
                                bus,
                                base_addr,
                            } => {
                                let eb = elem_bytes(info.ty);
                                let addr = base_addr[array] + idx as u64 * eb;
                                let before = bus.stats().cycles;
                                let bytes = cache.read(bus, addr, eb as usize)?;
                                let cyc = bus.stats().cycles - before;
                                axi_bytes += eb;
                                // cache hits consume one cycle instead of a
                                // full bus round-trip
                                axi_extra_cycles += (cyc.max(1)) as i64
                                    - i64::from(opts.ext_mem_read_latency);
                                let mut raw = [0u8; 8];
                                raw[..bytes.len()].copy_from_slice(&bytes);
                                normalize(i64::from_le_bytes(raw), info.ty)
                            }
                        },
                    };
                    temps.insert(instr.dst.expect("load dst").0, normalize(v, info.ty));
                }
                IrOp::Store {
                    array,
                    index,
                    value,
                } => {
                    memory_ops += 1;
                    census.store += 1;
                    let idx = read(*index, &temps, &vars);
                    let val = read(*value, &temps, &vars);
                    let info = &func.arrays[array.0 as usize];
                    let val = normalize(val, info.ty);
                    match &info.kind {
                        ArrayKind::Local { .. } => {
                            let data = locals.get_mut(array).expect("local array state");
                            let slot =
                                data.get_mut(idx as usize).ok_or_else(|| {
                                    HlsError::Simulation {
                                        detail: format!(
                                            "store out of bounds: {}[{idx}] (size {})",
                                            info.name, info.size
                                        ),
                                    }
                                })?;
                            *slot = val;
                        }
                        ArrayKind::External => match ext {
                            ExternalMemory::Buffers(m) => {
                                let data =
                                    m.get_mut(array).ok_or_else(|| HlsError::Simulation {
                                        detail: format!(
                                            "no buffer bound for array `{}`",
                                            info.name
                                        ),
                                    })?;
                                if idx as usize >= data.len() {
                                    return Err(HlsError::Simulation {
                                        detail: format!(
                                            "store out of bounds: {}[{idx}]",
                                            info.name
                                        ),
                                    });
                                }
                                data[idx as usize] = val;
                            }
                            ExternalMemory::Axi { bus, base_addr } => {
                                let eb = elem_bytes(info.ty);
                                let addr = base_addr[array] + idx as u64 * eb;
                                let bytes = val.to_le_bytes();
                                let cyc =
                                    bus.write_blocking(addr, &bytes[..eb as usize])?;
                                axi_bytes += eb;
                                axi_extra_cycles += cyc as i64
                                    - i64::from(opts.ext_mem_write_latency);
                            }
                            ExternalMemory::CachedAxi {
                                cache,
                                bus,
                                base_addr,
                            } => {
                                let eb = elem_bytes(info.ty);
                                let addr = base_addr[array] + idx as u64 * eb;
                                let bytes = val.to_le_bytes();
                                let before = bus.stats().cycles;
                                cache.write(bus, addr, &bytes[..eb as usize])?;
                                let cyc = bus.stats().cycles - before;
                                axi_bytes += eb;
                                axi_extra_cycles += cyc as i64
                                    - i64::from(opts.ext_mem_write_latency);
                            }
                        },
                    }
                }
                IrOp::SetVar { var, value } => {
                    census.mov += 1;
                    let v = read(*value, &temps, &vars);
                    vars[var.0 as usize] = normalize(v, func.vars[var.0 as usize].ty);
                }
            }
            let _ = ii;
        }
        census.branch += 1;
        match &block.term {
            Terminator::Jump(t) => current = *t,
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                let c = match cond {
                    Operand::Const(c) => *c,
                    Operand::Temp(t) => temps.get(&t.0).copied().unwrap_or(0),
                    Operand::Var(v) => vars[v.0 as usize],
                };
                current = if c != 0 { *then_bb } else { *else_bb };
            }
            Terminator::Return(v) => {
                let return_value = v.map(|op| match op {
                    Operand::Const(c) => c,
                    Operand::Temp(t) => temps.get(&t.0).copied().unwrap_or(0),
                    Operand::Var(vr) => vars[vr.0 as usize],
                });
                let cycles = (states_visited as i64 + axi_extra_cycles)
                    .max(states_visited as i64) as u64;
                return Ok(SimResult {
                    return_value,
                    cycles,
                    states_visited,
                    memory_ops,
                    axi_bytes,
                    op_census: census,
                });
            }
        }
        // temps are block-scoped
        temps.clear();
    }
}

fn operand_ty(func: &IrFunction, op: Operand) -> IntType {
    match op {
        Operand::Temp(t) => func.temp_types[t.0 as usize],
        Operand::Var(v) => func.vars[v.0 as usize].ty,
        Operand::Const(_) => IntType::I32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocate::Allocation;
    use crate::ir::lower;
    use crate::lang::parse;
    use crate::schedule::{schedule, ScheduleOptions};
    use hermes_eucalyptus::{CharacterizationLibrary, Eucalyptus, SweepConfig};
    use hermes_fpga::device::DeviceProfile;
    use std::sync::OnceLock;

    fn lib() -> &'static CharacterizationLibrary {
        static LIB: OnceLock<CharacterizationLibrary> = OnceLock::new();
        LIB.get_or_init(|| {
            Eucalyptus::new(DeviceProfile::ng_medium_like())
                .characterize(&SweepConfig {
                    widths: vec![8, 16, 32],
                    pipeline_stages: vec![0],
                })
                .expect("characterization")
        })
    }

    fn compile(src: &str) -> (IrFunction, FunctionSchedule) {
        let mut f = lower(&parse(src).unwrap(), None).unwrap();
        crate::opt::optimize(&mut f);
        let s = schedule(&f, &Allocation::default(), lib(), &ScheduleOptions::default()).unwrap();
        (f, s)
    }

    fn run_simple(src: &str, args: &[i64]) -> SimResult {
        let (f, s) = compile(src);
        let mut ext = ExternalMemory::buffers(vec![]);
        run(&f, &s, args, &mut ext, SimLimits::default()).unwrap()
    }

    #[test]
    fn arithmetic_matches_reference() {
        let r = run_simple("int f(int a, int b) { return (a + b) * (a - b); }", &[7, 3]);
        assert_eq!(r.return_value, Some(40));
        assert!(r.cycles >= 1);
    }

    #[test]
    fn loop_execution() {
        let r = run_simple(
            "int f(int n) { int s = 0; for (int i = 1; i <= n; i += 1) { s += i; } return s; }",
            &[100],
        );
        assert_eq!(r.return_value, Some(5050));
        assert!(r.states_visited > 100, "loop iterations cost states");
    }

    #[test]
    fn local_array_sum() {
        let r = run_simple(
            "int f() { int m[5] = {10, 20, 30, 40, 50}; int s = 0;
              for (int i = 0; i < 5; i += 1) { s += m[i]; } return s; }",
            &[],
        );
        assert_eq!(r.return_value, Some(150));
        assert!(r.memory_ops >= 5);
    }

    #[test]
    fn external_buffer_roundtrip() {
        let (f, s) = compile(
            "void scale(int *data, int n, int k) {
                for (int i = 0; i < n; i += 1) { data[i] = data[i] * k; } }",
        );
        let mut ext = ExternalMemory::buffers(vec![(ArrayId(0), vec![1, 2, 3, 4])]);
        let r = run(&f, &s, &[4, 10], &mut ext, SimLimits::default()).unwrap();
        assert_eq!(r.return_value, None);
        assert_eq!(ext.buffer(ArrayId(0)).unwrap(), &vec![10, 20, 30, 40]);
    }

    #[test]
    fn axi_cosimulation_roundtrip() {
        let (f, s) = compile(
            "int sum(int *data, int n) {
                int s = 0;
                for (int i = 0; i < n; i += 1) { s += data[i]; }
                return s; }",
        );
        let mut tb = AxiTestbench::new(4096, hermes_axi::memory::MemoryTiming::default());
        // write 8 int32 values at base 0x100
        for (i, v) in [5i32, 10, 15, 20, 25, 30, 35, 40].iter().enumerate() {
            tb.memory_mut().poke(0x100 + i as u64 * 4, &v.to_le_bytes());
        }
        let mut base = HashMap::new();
        base.insert(ArrayId(0), 0x100u64);
        let mut ext = ExternalMemory::Axi {
            bus: &mut tb,
            base_addr: base,
        };
        let r = run(&f, &s, &[8], &mut ext, SimLimits::default()).unwrap();
        assert_eq!(r.return_value, Some(180));
        assert_eq!(r.axi_bytes, 32);
        assert!(tb.violations().is_empty());
    }

    #[test]
    fn slow_axi_memory_increases_cycles() {
        let src = "int sum(int *data, int n) {
            int s = 0;
            for (int i = 0; i < n; i += 1) { s += data[i]; }
            return s; }";
        let (f, s) = compile(src);
        let mut cycles = Vec::new();
        for timing in [
            hermes_axi::memory::MemoryTiming::ideal(),
            hermes_axi::memory::MemoryTiming::slow(),
        ] {
            let mut tb = AxiTestbench::new(4096, timing);
            for i in 0..16u64 {
                tb.memory_mut().poke(i * 4, &(1i32).to_le_bytes());
            }
            let mut base = HashMap::new();
            base.insert(ArrayId(0), 0u64);
            let mut ext = ExternalMemory::Axi {
                bus: &mut tb,
                base_addr: base,
            };
            let r = run(&f, &s, &[16], &mut ext, SimLimits::default()).unwrap();
            assert_eq!(r.return_value, Some(16));
            cycles.push(r.cycles);
        }
        assert!(
            cycles[1] > cycles[0],
            "slow memory must cost more: {cycles:?}"
        );
    }

    #[test]
    fn out_of_bounds_detected() {
        let (f, s) = compile("int f() { int m[4]; return m[9]; }");
        let mut ext = ExternalMemory::buffers(vec![]);
        let err = run(&f, &s, &[], &mut ext, SimLimits::default()).unwrap_err();
        assert!(matches!(err, HlsError::Simulation { .. }));
    }

    #[test]
    fn watchdog_fires_on_infinite_loop() {
        let (f, s) = compile("int f() { int x = 1; while (x > 0) { x = 1; } return x; }");
        let mut ext = ExternalMemory::buffers(vec![]);
        let err = run(
            &f,
            &s,
            &[],
            &mut ext,
            SimLimits { max_states: 10_000 },
        )
        .unwrap_err();
        assert!(matches!(err, HlsError::Simulation { .. }));
    }

    #[test]
    fn wrong_arity_rejected() {
        let (f, s) = compile("int f(int a) { return a; }");
        let mut ext = ExternalMemory::buffers(vec![]);
        assert!(run(&f, &s, &[1, 2], &mut ext, SimLimits::default()).is_err());
    }

    #[test]
    fn narrow_types_wrap_in_simulation() {
        let r = run_simple("uint8 f(uint8 a) { return a + 200; }", &[100]);
        assert_eq!(r.return_value, Some((100 + 200) & 0xFF));
        let r2 = run_simple("int8 f(int8 a) { return a + 1; }", &[127]);
        assert_eq!(r2.return_value, Some(-128));
    }
}
