//! Resource-constrained list scheduling with operator chaining.
//!
//! Each basic block is scheduled independently (the FSM sequences blocks).
//! Operation delays come from the Eucalyptus characterization library, so a
//! tighter clock constraint yields deeper multi-cycle operations and less
//! chaining — the clock-period-aware optimization the paper highlights in
//! the Bambu/NXmap integration.
//!
//! ASAP and ALAP schedules are also provided; list scheduling uses
//! longest-path priorities and honors [`Allocation`] concurrency limits.

use crate::allocate::{char_mnemonic, fu_kind_of, Allocation, FuKind};
use crate::cdfg::{build_block_dfg, BlockDfg};
use crate::ir::{IrFunction, IrOp};
use crate::HlsError;
use hermes_eucalyptus::CharacterizationLibrary;
use std::collections::HashMap;

/// Scheduling options.
#[derive(Debug, Clone)]
pub struct ScheduleOptions {
    /// Target clock period in nanoseconds.
    pub clock_ns: f64,
    /// Whether operator chaining is enabled.
    pub chaining: bool,
    /// Fraction of the clock period usable by a chained path.
    pub chain_fraction: f64,
    /// Static latency estimate (cycles) for external (AXI) memory reads.
    pub ext_mem_read_latency: u32,
    /// Static latency estimate (cycles) for external memory writes.
    pub ext_mem_write_latency: u32,
}

impl Default for ScheduleOptions {
    fn default() -> Self {
        ScheduleOptions {
            clock_ns: 10.0,
            chaining: true,
            chain_fraction: 0.9,
            ext_mem_read_latency: 14,
            ext_mem_write_latency: 8,
        }
    }
}

/// Scheduling result for one instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstrSchedule {
    /// First cycle (state) in which the operation executes, block-relative.
    pub start_cycle: u32,
    /// Cycles occupied (0 = free wiring folded into the producer's cycle).
    pub latency: u32,
    /// Combinational finish offset within the final cycle, ns (chaining).
    pub finish_offset_ns: f64,
}

impl InstrSchedule {
    /// Last cycle the operation occupies.
    pub fn finish_cycle(&self) -> u32 {
        self.start_cycle + self.latency.max(1) - 1
    }
}

/// Schedule of one block.
#[derive(Debug, Clone)]
pub struct BlockSchedule {
    /// Per-instruction schedules (indexed like `Block::instrs`).
    pub instrs: Vec<InstrSchedule>,
    /// States the block occupies (>= 1; the last state also evaluates the
    /// terminator).
    pub length: u32,
}

/// Schedule of the whole function.
#[derive(Debug, Clone)]
pub struct FunctionSchedule {
    /// Per-block schedules.
    pub blocks: Vec<BlockSchedule>,
    /// The options used.
    pub options: ScheduleOptions,
    /// Peak concurrent use of each FU kind (drives binding).
    pub peak_usage: HashMap<FuKind, u32>,
}

impl FunctionSchedule {
    /// Total FSM states implied by the schedule.
    pub fn total_states(&self) -> u32 {
        self.blocks.iter().map(|b| b.length).sum()
    }
}

/// Operation timing derived from the characterization library.
#[derive(Debug, Clone, Copy)]
pub struct OpTiming {
    /// Combinational delay (ns) for chaining decisions.
    pub delay_ns: f64,
    /// Fixed latency in cycles (0 = chainable combinational).
    pub fixed_latency: u32,
    /// Whether the op may chain with neighbours.
    pub chainable: bool,
}

/// Compute the timing of one instruction under the given library and clock.
pub fn op_timing(
    instr: &crate::ir::Instr,
    func: &IrFunction,
    lib: &CharacterizationLibrary,
    opts: &ScheduleOptions,
) -> OpTiming {
    let Some(kind) = fu_kind_of(instr, func) else {
        // casts and variable moves are wiring
        return OpTiming {
            delay_ns: 0.05,
            fixed_latency: 0,
            chainable: true,
        };
    };
    match kind {
        FuKind::LocalMem(_) => {
            let is_load = matches!(instr.op, IrOp::Load { .. });
            OpTiming {
                delay_ns: opts.clock_ns,
                // synchronous BRAM: one cycle to present the address, data
                // captured at the following edge
                fixed_latency: if is_load { 2 } else { 1 },
                chainable: false,
            }
        }
        FuKind::ExtMem => {
            let is_load = matches!(instr.op, IrOp::Load { .. });
            OpTiming {
                delay_ns: opts.clock_ns,
                fixed_latency: if is_load {
                    opts.ext_mem_read_latency.max(2)
                } else {
                    opts.ext_mem_write_latency.max(1)
                },
                chainable: false,
            }
        }
        _ => {
            let width = instr.ty.width.max(
                // comparisons: operand width drives the comparator size
                match &instr.op {
                    IrOp::Bin { a, .. } => func.operand_type(*a).width,
                    _ => 1,
                },
            );
            let mn = char_mnemonic(kind, instr);
            let delay = lib
                .lookup_nearest(mn, width, 0)
                .map(|e| e.delay_ns)
                .unwrap_or(opts.clock_ns * 0.5);
            if delay > opts.clock_ns * opts.chain_fraction {
                OpTiming {
                    delay_ns: delay,
                    fixed_latency: (delay / opts.clock_ns).ceil().max(1.0) as u32,
                    chainable: false,
                }
            } else {
                OpTiming {
                    delay_ns: delay,
                    fixed_latency: 0,
                    chainable: true,
                }
            }
        }
    }
}

/// ASAP schedule of one block (ignores resources; used as a bound and for
/// mobility computation).
pub fn asap_lengths(func: &IrFunction) -> Vec<u32> {
    func.blocks
        .iter()
        .map(|b| {
            let dfg = build_block_dfg(b);
            let mut level = vec![0u32; dfg.len()];
            for i in dfg.topo_order() {
                level[i] = dfg.preds[i]
                    .iter()
                    .map(|&p| level[p] + 1)
                    .max()
                    .unwrap_or(0);
            }
            level.iter().copied().max().map(|m| m + 1).unwrap_or(1)
        })
        .collect()
}

/// Run resource-constrained list scheduling over the whole function.
///
/// # Errors
///
/// Returns [`HlsError::Schedule`] if an instruction cannot be placed within
/// an internal bound (indicates an inconsistent allocation).
pub fn schedule(
    func: &IrFunction,
    alloc: &Allocation,
    lib: &CharacterizationLibrary,
    opts: &ScheduleOptions,
) -> Result<FunctionSchedule, HlsError> {
    let mut blocks = Vec::with_capacity(func.blocks.len());
    let mut peak_usage: HashMap<FuKind, u32> = HashMap::new();
    for block in &func.blocks {
        let dfg = build_block_dfg(block);
        let bs = schedule_block(func, block, &dfg, alloc, lib, opts, &mut peak_usage)?;
        blocks.push(bs);
    }
    Ok(FunctionSchedule {
        blocks,
        options: opts.clone(),
        peak_usage,
    })
}

#[allow(clippy::too_many_arguments)]
fn schedule_block(
    func: &IrFunction,
    block: &crate::ir::Block,
    dfg: &BlockDfg,
    alloc: &Allocation,
    lib: &CharacterizationLibrary,
    opts: &ScheduleOptions,
    peak_usage: &mut HashMap<FuKind, u32>,
) -> Result<BlockSchedule, HlsError> {
    let n = block.instrs.len();
    let mut result: Vec<Option<InstrSchedule>> = vec![None; n];
    let mut usage: HashMap<(FuKind, u32), u32> = HashMap::new();
    let mut indeg: Vec<usize> = dfg.preds.iter().map(Vec::len).collect();
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();

    let mut scheduled = 0usize;
    while scheduled < n {
        // highest-priority ready instruction (ties: program order)
        ready.sort_by_key(|&i| (std::cmp::Reverse(dfg.priority[i]), i));
        let Some(&i) = ready.first() else {
            return Err(HlsError::Schedule {
                detail: "dependence cycle in block DFG".into(),
            });
        };
        ready.remove(0);
        let instr = &block.instrs[i];
        let timing = op_timing(instr, func, lib, opts);
        let kind = fu_kind_of(instr, func);

        // earliest start from dependences, with chaining
        let mut earliest_cycle = 0u32;
        let mut chain_offset = 0.0f64;
        for &p in &dfg.preds[i] {
            let ps = result[p].expect("pred scheduled");
            let can_chain = opts.chaining
                && timing.chainable
                && timing.fixed_latency == 0
                && ps.finish_offset_ns + timing.delay_ns <= opts.clock_ns * opts.chain_fraction
                // memory results and multi-cycle results arrive at a
                // register boundary; they cannot be chained from
                && result[p].map(|s| s.latency <= 1).unwrap_or(true)
                && block.instrs[p].dst.is_some();
            let (c, off) = if can_chain {
                (ps.finish_cycle(), ps.finish_offset_ns)
            } else {
                (ps.finish_cycle() + 1, 0.0)
            };
            if c > earliest_cycle {
                earliest_cycle = c;
                chain_offset = off;
            } else if c == earliest_cycle {
                chain_offset = chain_offset.max(off);
            }
        }

        let occupied = timing.fixed_latency.max(1);
        // find a resource-feasible start cycle
        let mut start = earliest_cycle;
        let mut offset = chain_offset + timing.delay_ns;
        if timing.fixed_latency > 0 {
            offset = timing.delay_ns % opts.clock_ns;
        }
        if let Some(kind) = kind {
            let limit = alloc.limit(kind);
            let mut guard = 0;
            // `start` is re-read on each 'search restart, so mutating it
            // inside the range-driven scan below is intentional
            #[allow(clippy::mut_range_bound)]
            'search: loop {
                for c in start..start + occupied {
                    if usage.get(&(kind, c)).copied().unwrap_or(0) >= limit {
                        start += 1;
                        offset = timing.delay_ns.min(opts.clock_ns);
                        guard += 1;
                        if guard > 100_000 {
                            return Err(HlsError::Schedule {
                                detail: format!("cannot place op {i} under {kind} limit {limit}"),
                            });
                        }
                        continue 'search;
                    }
                }
                break;
            }
            // moving off the chain start resets the offset
            if start > earliest_cycle {
                offset = timing.delay_ns;
            }
            for c in start..start + occupied {
                let u = usage.entry((kind, c)).or_insert(0);
                *u += 1;
                let p = peak_usage.entry(kind).or_insert(0);
                *p = (*p).max(*u);
            }
        }
        let sched = InstrSchedule {
            start_cycle: start,
            latency: timing.fixed_latency.max(1),
            finish_offset_ns: offset.min(opts.clock_ns),
        };
        result[i] = Some(sched);
        scheduled += 1;
        for &s in &dfg.succs[i] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                ready.push(s);
            }
        }
    }

    let instrs: Vec<InstrSchedule> = result.into_iter().map(|s| s.expect("all scheduled")).collect();
    let length = instrs
        .iter()
        .map(|s| s.finish_cycle() + 1)
        .max()
        .unwrap_or(1)
        .max(1);
    Ok(BlockSchedule { instrs, length })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::lower;
    use crate::lang::parse;
    use hermes_eucalyptus::{Eucalyptus, SweepConfig};
    use hermes_fpga::device::DeviceProfile;
    use std::sync::OnceLock;

    fn lib() -> &'static CharacterizationLibrary {
        static LIB: OnceLock<CharacterizationLibrary> = OnceLock::new();
        LIB.get_or_init(|| {
            Eucalyptus::new(DeviceProfile::ng_medium_like())
                .characterize(&SweepConfig {
                    widths: vec![8, 16, 32],
                    pipeline_stages: vec![0],
                })
                .expect("characterization")
        })
    }

    fn sched(src: &str, alloc: Allocation, opts: ScheduleOptions) -> (IrFunction, FunctionSchedule) {
        let mut f = lower(&parse(src).unwrap(), None).unwrap();
        crate::opt::optimize(&mut f);
        let s = schedule(&f, &alloc, lib(), &opts).unwrap();
        (f, s)
    }

    #[test]
    fn dependencies_respected() {
        let (f, s) = sched(
            "int f(int a, int b) { return (a + b) * (a - b); }",
            Allocation::default(),
            ScheduleOptions::default(),
        );
        for (bi, block) in f.blocks.iter().enumerate() {
            let dfg = build_block_dfg(block);
            for i in 0..block.instrs.len() {
                for &p in &dfg.preds[i] {
                    assert!(
                        s.blocks[bi].instrs[i].start_cycle
                            >= s.blocks[bi].instrs[p].start_cycle,
                        "consumer before producer"
                    );
                }
            }
        }
    }

    #[test]
    fn resource_limits_stretch_schedule() {
        let src = "int f(int a, int b, int c, int d) { return a*b + c*d + a*d + b*c; }";
        let (_, wide) = sched(src, Allocation::default(), ScheduleOptions::default());
        let (_, narrow) = sched(
            src,
            Allocation::minimal(),
            ScheduleOptions::default(),
        );
        assert!(
            narrow.total_states() > wide.total_states(),
            "1 multiplier should serialize: {} vs {}",
            narrow.total_states(),
            wide.total_states()
        );
        assert_eq!(narrow.peak_usage.get(&FuKind::Mul), Some(&1));
    }

    #[test]
    fn chaining_reduces_states() {
        let src = "int f(int a, int b, int c) { return a + b + c + 1; }";
        let chained = ScheduleOptions::default();
        let unchained = ScheduleOptions {
            chaining: false,
            ..ScheduleOptions::default()
        };
        let (_, sc) = sched(src, Allocation::default(), chained);
        let (_, su) = sched(src, Allocation::default(), unchained);
        assert!(
            sc.total_states() <= su.total_states(),
            "chaining {} vs unchained {}",
            sc.total_states(),
            su.total_states()
        );
    }

    #[test]
    fn tight_clock_forces_multicycle_divide() {
        let src = "int f(int a, int b) { return a / b; }";
        let fast = ScheduleOptions {
            clock_ns: 2.0,
            ..ScheduleOptions::default()
        };
        let slow = ScheduleOptions {
            clock_ns: 100.0,
            ..ScheduleOptions::default()
        };
        let (_, sf) = sched(src, Allocation::default(), fast);
        let (_, ss) = sched(src, Allocation::default(), slow);
        assert!(
            sf.total_states() > ss.total_states(),
            "2ns clock must multi-cycle the divider: {} vs {}",
            sf.total_states(),
            ss.total_states()
        );
    }

    #[test]
    fn external_memory_latency_counted() {
        let src = "int f(int *m) { return m[0] + m[1]; }";
        let near = ScheduleOptions {
            ext_mem_read_latency: 2,
            ..ScheduleOptions::default()
        };
        let far = ScheduleOptions {
            ext_mem_read_latency: 40,
            ..ScheduleOptions::default()
        };
        let (_, sn) = sched(src, Allocation::default(), near);
        let (_, sf) = sched(src, Allocation::default(), far);
        assert!(sf.total_states() > sn.total_states() + 30);
    }

    #[test]
    fn asap_is_lower_bound() {
        let src = "int f(int a, int b, int c, int d) { return a*b + c*d; }";
        let (f, s) = sched(src, Allocation::minimal(), ScheduleOptions::default());
        let asap = asap_lengths(&f);
        for (bs, al) in s.blocks.iter().zip(asap) {
            assert!(bs.length >= al.min(bs.length));
        }
    }

    #[test]
    fn empty_blocks_have_length_one() {
        let (_, s) = sched(
            "int f(int a) { while (a > 0) { a -= 1; } return a; }",
            Allocation::default(),
            ScheduleOptions::default(),
        );
        for b in &s.blocks {
            assert!(b.length >= 1);
        }
    }
}
