//! # hermes-hls
//!
//! High-Level Synthesis for the HERMES ecosystem — the open Rust analogue of
//! the Bambu HLS tool the paper integrates: a C-subset frontend, a
//! control-and-data-flow-graph middle-end with classic optimizations, and a
//! back-end performing allocation, scheduling, and binding before emitting
//! an FSM + datapath design as Verilog/VHDL, as a coarse netlist for the
//! `hermes-fpga` implementation flow, and as a cycle-accurate executable
//! model for co-simulation (including AXI4 master interfaces with
//! configurable memory delay, as described in Section II of the paper).
//!
//! ## Pipeline (Fig. 2 of the paper)
//!
//! ```text
//!  C source --lang--> AST --typeck/ir--> CFG --opt--> CDFG
//!     --allocate/schedule/bind--> FSM + datapath
//!     --emit--> Verilog / VHDL | netlist | simulation model
//! ```
//!
//! ## Example
//!
//! ```
//! use hermes_hls::HlsFlow;
//!
//! # fn main() -> Result<(), hermes_hls::HlsError> {
//! let src = r#"
//!     int32 accumulate(int32 a, int32 b, int32 c) {
//!         int32 s = a + b;
//!         return s * c;
//!     }
//! "#;
//! let design = HlsFlow::new().clock_ns(10.0).compile(src)?;
//! let result = design.simulate(&[3, 4, 5])?;
//! assert_eq!(result.return_value, Some(35));
//! assert!(result.cycles > 0);
//! let verilog = design.emit_verilog();
//! assert!(verilog.contains("module accumulate"));
//! # Ok(())
//! # }
//! ```

pub mod allocate;
pub mod bind;
pub mod cdfg;
pub mod dataflow;
pub mod datapath;
pub mod emit;
pub mod estimate;
pub mod flow;
pub mod fsm;
pub mod interface;
pub mod ir;
pub mod lang;
pub mod opt;
pub mod schedule;
pub mod simulate;

pub use flow::{Design, HlsFlow};

use std::fmt;

/// Source location (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Loc {
    /// Line number.
    pub line: u32,
    /// Column number.
    pub col: u32,
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Errors produced along the HLS pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum HlsError {
    /// Lexical error.
    Lex {
        /// Location of the bad character.
        loc: Loc,
        /// Detail message.
        detail: String,
    },
    /// Syntax error.
    Parse {
        /// Location of the unexpected token.
        loc: Loc,
        /// Detail message.
        detail: String,
    },
    /// Semantic / type error.
    Type {
        /// Location of the violation.
        loc: Loc,
        /// Detail message.
        detail: String,
    },
    /// A construct outside the synthesizable subset.
    Unsupported {
        /// Location of the construct.
        loc: Loc,
        /// What is unsupported.
        detail: String,
    },
    /// Scheduling could not satisfy the constraints.
    Schedule {
        /// Detail message.
        detail: String,
    },
    /// Simulation fault (bad inputs, out-of-bounds access, watchdog).
    Simulation {
        /// Detail message.
        detail: String,
    },
    /// Error from the AXI bus model during co-simulation.
    Axi(hermes_axi::AxiError),
    /// Error from downstream netlist construction.
    Rtl(hermes_rtl::RtlError),
}

impl fmt::Display for HlsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HlsError::Lex { loc, detail } => write!(f, "lex error at {loc}: {detail}"),
            HlsError::Parse { loc, detail } => write!(f, "parse error at {loc}: {detail}"),
            HlsError::Type { loc, detail } => write!(f, "type error at {loc}: {detail}"),
            HlsError::Unsupported { loc, detail } => {
                write!(f, "unsupported construct at {loc}: {detail}")
            }
            HlsError::Schedule { detail } => write!(f, "scheduling failed: {detail}"),
            HlsError::Simulation { detail } => write!(f, "simulation fault: {detail}"),
            HlsError::Axi(e) => write!(f, "axi co-simulation error: {e}"),
            HlsError::Rtl(e) => write!(f, "netlist generation error: {e}"),
        }
    }
}

impl std::error::Error for HlsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HlsError::Axi(e) => Some(e),
            HlsError::Rtl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hermes_axi::AxiError> for HlsError {
    fn from(e: hermes_axi::AxiError) -> Self {
        HlsError::Axi(e)
    }
}

impl From<hermes_rtl::RtlError> for HlsError {
    fn from(e: hermes_rtl::RtlError) -> Self {
        HlsError::Rtl(e)
    }
}
