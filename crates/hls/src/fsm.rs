//! Finite-state-machine controller construction.
//!
//! One state per (block, cycle) of the schedule, in block order; the final
//! state of a block evaluates its terminator. The FSM size is the paper's
//! headline concern for coarse-grained-parallel applications ("the
//! complexity of the finite state machine controllers … grows
//! exponentially"), quantified by [`Fsm::state_count`] and exercised by the
//! E9 dataflow ablation.

use crate::ir::{BlockId, IrFunction, Terminator};
use crate::schedule::FunctionSchedule;
use std::collections::HashMap;

/// One controller state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsmState {
    /// Owning basic block.
    pub block: BlockId,
    /// Cycle within the block (0-based).
    pub cycle: u32,
}

/// What happens after a state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsmNext {
    /// Unconditionally proceed to a state.
    Goto(u32),
    /// Two-way conditional transition (on the block's branch condition).
    CondGoto {
        /// State entered when the condition holds.
        then_state: u32,
        /// State entered otherwise.
        else_state: u32,
    },
    /// The design asserts `done` and idles.
    Done,
}

/// The controller.
#[derive(Debug, Clone)]
pub struct Fsm {
    /// States in layout order.
    pub states: Vec<FsmState>,
    /// Transition out of each state.
    pub next: Vec<FsmNext>,
    /// First state of each block.
    pub block_entry: HashMap<u32, u32>,
}

impl Fsm {
    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Width of the state register in bits.
    pub fn state_bits(&self) -> u32 {
        (usize::BITS - (self.states.len().max(2) - 1).leading_zeros()).max(1)
    }

    /// Number of conditional transitions.
    pub fn branch_count(&self) -> usize {
        self.next
            .iter()
            .filter(|n| matches!(n, FsmNext::CondGoto { .. }))
            .count()
    }

    /// The state id of `(block, cycle)`.
    pub fn state_of(&self, block: BlockId, cycle: u32) -> u32 {
        self.block_entry[&block.0] + cycle
    }
}

/// Build the controller for a scheduled function.
pub fn build(func: &IrFunction, sched: &FunctionSchedule) -> Fsm {
    let mut states = Vec::new();
    let mut block_entry = HashMap::new();
    for (bi, bs) in sched.blocks.iter().enumerate() {
        block_entry.insert(bi as u32, states.len() as u32);
        for c in 0..bs.length {
            states.push(FsmState {
                block: BlockId(bi as u32),
                cycle: c,
            });
        }
    }
    let mut next = Vec::with_capacity(states.len());
    for (si, st) in states.iter().enumerate() {
        let bs = &sched.blocks[st.block.0 as usize];
        if st.cycle + 1 < bs.length {
            next.push(FsmNext::Goto(si as u32 + 1));
            continue;
        }
        match &func.block(st.block).term {
            Terminator::Jump(t) => next.push(FsmNext::Goto(block_entry[&t.0])),
            Terminator::Branch {
                then_bb, else_bb, ..
            } => next.push(FsmNext::CondGoto {
                then_state: block_entry[&then_bb.0],
                else_state: block_entry[&else_bb.0],
            }),
            Terminator::Return(_) => next.push(FsmNext::Done),
        }
    }
    Fsm {
        states,
        next,
        block_entry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocate::Allocation;
    use crate::ir::lower;
    use crate::lang::parse;
    use crate::schedule::{schedule, ScheduleOptions};
    use hermes_eucalyptus::{CharacterizationLibrary, Eucalyptus, SweepConfig};
    use hermes_fpga::device::DeviceProfile;
    use std::sync::OnceLock;

    fn lib() -> &'static CharacterizationLibrary {
        static LIB: OnceLock<CharacterizationLibrary> = OnceLock::new();
        LIB.get_or_init(|| {
            Eucalyptus::new(DeviceProfile::ng_medium_like())
                .characterize(&SweepConfig {
                    widths: vec![8, 16, 32],
                    pipeline_stages: vec![0],
                })
                .expect("characterization")
        })
    }

    fn fsm_of(src: &str) -> (IrFunction, Fsm) {
        let mut f = lower(&parse(src).unwrap(), None).unwrap();
        crate::opt::optimize(&mut f);
        let s = schedule(&f, &Allocation::default(), lib(), &ScheduleOptions::default()).unwrap();
        let fsm = build(&f, &s);
        (f, fsm)
    }

    #[test]
    fn straight_line_fsm_is_linear() {
        let (_, fsm) = fsm_of("int f(int a, int b) { return a * b + 1; }");
        assert!(fsm.state_count() >= 1);
        assert_eq!(fsm.branch_count(), 0);
        assert!(matches!(fsm.next.last(), Some(FsmNext::Done)));
    }

    #[test]
    fn loop_fsm_has_back_edge_and_branch() {
        let (_, fsm) = fsm_of(
            "int f(int n) { int s = 0; while (n > 0) { s += n; n -= 1; } return s; }",
        );
        assert!(fsm.branch_count() >= 1);
        // some Goto points backwards (the loop back edge)
        let back_edges = fsm
            .next
            .iter()
            .enumerate()
            .filter(|(i, n)| matches!(n, FsmNext::Goto(t) if (*t as usize) < *i))
            .count();
        assert!(back_edges >= 1);
    }

    #[test]
    fn state_bits_log2() {
        let (_, fsm) = fsm_of("int f(int a) { return a + 1; }");
        assert!(fsm.state_bits() >= 1);
        let n = fsm.state_count();
        assert!(1usize << fsm.state_bits() >= n);
    }

    #[test]
    fn state_count_matches_schedule() {
        let (_, fsm) = fsm_of("int f(int a, int b) { return a / b; }");
        assert!(fsm.state_count() as u32 >= 1);
        // divider is multi-cycle at the default 10ns clock: several states
        assert!(fsm.state_count() >= 2, "got {}", fsm.state_count());
    }
}
