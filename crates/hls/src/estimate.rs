//! Pre-implementation area/timing estimation from the characterization
//! library — the "performance estimation of library components is essential
//! to perform aggressive optimizations" loop of Section II.
//!
//! Estimates are derived purely from the binding and the Eucalyptus
//! library, without running logic synthesis; the actual `hermes-fpga` flow
//! can later confirm them (E2/E3 compare the two).

use crate::allocate::FuKind;
use crate::bind::Binding;
use crate::fsm::Fsm;
use crate::ir::{ArrayKind, IrFunction};
use hermes_eucalyptus::CharacterizationLibrary;

/// Estimated implementation cost of a design.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Estimate {
    /// Estimated LUTs.
    pub luts: u64,
    /// Estimated flip-flops.
    pub ffs: u64,
    /// Estimated DSP blocks.
    pub dsps: u64,
    /// Estimated block RAMs.
    pub rams: u64,
    /// Estimated achievable clock period in ns (slowest library unit used).
    pub min_period_ns: f64,
}

/// Mux-tree overhead per register/port input source beyond the first, in
/// LUTs per bit (one 2:1 mux level).
const MUX_LUTS_PER_BIT: f64 = 1.0;

/// Controller overhead per FSM state (state compare + next-state mux).
const CTRL_LUTS_PER_STATE: f64 = 3.0;

/// Estimate the implementation cost of a bound design.
pub fn estimate(
    func: &IrFunction,
    binding: &Binding,
    fsm: &Fsm,
    lib: &CharacterizationLibrary,
) -> Estimate {
    let mut e = Estimate::default();

    // functional units from the library
    for fu in &binding.fus {
        let mn = match fu.kind {
            FuKind::AddSub => "add",
            FuKind::Mul => "mul",
            FuKind::Div => "div",
            FuKind::Shift => "shl",
            FuKind::Logic => "and",
            FuKind::Cmp => "cmplts",
            FuKind::LocalMem(_) | FuKind::ExtMem => continue, // counted below
        };
        if let Some(c) = lib.lookup_nearest(mn, fu.width, 0) {
            e.luts += c.luts;
            e.ffs += c.ffs;
            e.dsps += c.dsps;
            e.min_period_ns = e.min_period_ns.max(c.delay_ns);
        }
    }

    // storage registers
    e.ffs += binding.register_bits();
    // write-mux overhead: one mux level per register (approximation)
    e.luts += (binding.register_bits() as f64 * MUX_LUTS_PER_BIT) as u64;

    // memories
    for info in &func.arrays {
        if let ArrayKind::Local { .. } = info.kind {
            let bits = u64::from(info.size) * u64::from(info.ty.width);
            e.rams += bits.div_ceil(48 * 1024).max(1);
        }
    }

    // controller
    e.ffs += u64::from(fsm.state_bits());
    e.luts += (fsm.state_count() as f64 * CTRL_LUTS_PER_STATE) as u64;

    e
}

#[cfg(test)]
mod tests {
    use crate::flow::HlsFlow;

    #[test]
    fn estimate_scales_with_design_size() {
        let small = HlsFlow::new()
            .compile("int f(int a) { return a + 1; }")
            .unwrap();
        let big = HlsFlow::new()
            .compile(
                "int f(int a, int b, int c, int d) {
                    return a*b + c*d + (a-c)*(b-d) + a/3 + d % 7; }",
            )
            .unwrap();
        let es = small.estimate();
        let eb = big.estimate();
        assert!(eb.luts > es.luts);
        assert!(eb.dsps >= 1);
        assert!(eb.min_period_ns > 0.0);
    }

    #[test]
    fn local_arrays_counted_as_rams() {
        let d = HlsFlow::new()
            .compile("int f() { int m[1024]; m[0] = 1; return m[0]; }")
            .unwrap();
        assert!(d.estimate().rams >= 1);
    }

    #[test]
    fn estimate_within_factor_of_real_flow() {
        use hermes_fpga::device::DeviceProfile;
        use hermes_fpga::flow::{FlowOptions, NxFlow};
        let d = HlsFlow::new()
            .compile("int f(int a, int b) { return a * b + a - b; }")
            .unwrap();
        let est = d.estimate();
        let report = NxFlow::new(DeviceProfile::ng_medium_like(), FlowOptions::default())
            .run(d.netlist())
            .unwrap();
        let real = report.utilization.luts.max(1);
        let ratio = est.luts.max(1) as f64 / real as f64;
        assert!(
            (0.02..=50.0).contains(&ratio),
            "estimate {est:?} wildly off from real {real} LUTs"
        );
    }
}
