//! Structural datapath + controller generation.
//!
//! Lowers a scheduled and bound design to a coarse [`Netlist`] suitable both
//! for cycle-accurate RTL simulation (`hermes-rtl`) and for the full FPGA
//! implementation flow (`hermes-fpga`). The generated structure is the
//! classic FSMD:
//!
//! * a state register plus next-state logic (comparators + mux chains),
//! * one register per bound storage location, with write-enable logic,
//! * shared functional units with input multiplexer trees,
//! * block RAMs for local arrays, I/O pads for scalar arguments, the
//!   return value, a `done` flag, and (for external arrays) the datapath
//!   side of the AXI master interface.
//!
//! An extra `INIT` state (state 0) loads parameter registers from the input
//! ports, so netlist simulation takes `states_visited + 1` cycles.

use crate::bind::{Binding, RegId};
use crate::fsm::{Fsm, FsmNext};
use crate::ir::{ArrayKind, IrFunction, IrOp, Operand, TempId, Terminator, VarId};
use crate::lang::ast::{BinOp, IntType, UnOp};
use crate::schedule::FunctionSchedule;
use crate::HlsError;
use hermes_rtl::component::Comparison;
use hermes_rtl::netlist::{CellOp, Netlist, NetId};
use std::collections::HashMap;

/// The generated structural design.
#[derive(Debug, Clone)]
pub struct DatapathNetlist {
    /// The coarse netlist (FSM + datapath).
    pub netlist: Netlist,
    /// Scalar argument input net per parameter name.
    pub arg_inputs: HashMap<String, NetId>,
    /// The `done` output net.
    pub done: NetId,
    /// The return-value output net (absent for void designs).
    pub ret: Option<NetId>,
    /// Number of FSM states including the INIT state.
    pub state_count: u32,
}

struct Gen<'a> {
    func: &'a IrFunction,
    sched: &'a FunctionSchedule,
    binding: &'a Binding,
    fsm: &'a Fsm,
    nl: Netlist,
    state_q: NetId,
    st_eq: Vec<NetId>,
    consts: HashMap<(u64, u32), NetId>,
    /// combinational output net of each temp's producing cell
    temp_wire: HashMap<TempId, NetId>,
    /// output net of each storage register
    reg_q: Vec<NetId>,
    /// pending writers per register: (state, source net)
    reg_writers: HashMap<RegId, Vec<(u32, NetId)>>,
    /// D-input source of vars written in a given state (for end-of-block
    /// terminator reads)
    var_write_in_state: HashMap<(VarId, u32), NetId>,
}

impl<'a> Gen<'a> {
    fn konst(&mut self, value: u64, width: u32) -> NetId {
        if let Some(&n) = self.consts.get(&(value, width)) {
            return n;
        }
        let n = self.nl.add_net(format!("k{value}_{width}"), width);
        self.nl
            .add_cell(
                format!("konst_{value}_{width}"),
                CellOp::Const { value },
                &[],
                &[n],
            )
            .expect("const arity");
        self.consts.insert((value, width), n);
        n
    }

    /// Adapt a net to `width`, sign- or zero-extending / slicing as needed.
    fn adapt(&mut self, net: NetId, width: u32, signed: bool) -> NetId {
        let w = self.nl.net(net).width;
        if w == width {
            return net;
        }
        let out = self.nl.add_net(format!("adapt_{}_{}", net.0, width), width);
        let op = if width < w {
            CellOp::Slice {
                lo: 0,
                hi: width - 1,
            }
        } else if signed {
            CellOp::SignExtend
        } else {
            CellOp::ZeroExtend
        };
        self.nl
            .add_cell(format!("adapt{}_{}", net.0, width), op, &[net], &[out])
            .expect("adapt arity");
        out
    }

    /// The 1-bit "state == s" signal.
    fn st(&mut self, s: u32) -> NetId {
        self.st_eq[s as usize]
    }

    /// OR a list of 1-bit nets.
    fn or_all(&mut self, name: &str, nets: &[NetId]) -> NetId {
        assert!(!nets.is_empty());
        let mut acc = nets[0];
        for (i, &n) in nets.iter().enumerate().skip(1) {
            let out = self.nl.add_net(format!("{name}_or{i}"), 1);
            self.nl
                .add_cell(format!("{name}_orc{i}"), CellOp::Or, &[acc, n], &[out])
                .expect("or arity");
            acc = out;
        }
        acc
    }

    /// Build a mux chain selecting `sources[i].1` when in state
    /// `sources[i].0`, defaulting to the first source.
    fn state_mux(&mut self, name: &str, sources: &[(u32, NetId)], width: u32) -> NetId {
        // group by source net to share select logic
        let mut by_net: Vec<(NetId, Vec<u32>)> = Vec::new();
        for &(s, n) in sources {
            if let Some(e) = by_net.iter_mut().find(|(net, _)| *net == n) {
                e.1.push(s);
            } else {
                by_net.push((n, vec![s]));
            }
        }
        let mut acc = self.adapt(by_net[0].0, width, false);
        for (i, (net, states)) in by_net.clone().into_iter().enumerate().skip(1) {
            let sts: Vec<NetId> = states.iter().map(|&s| self.st(s)).collect();
            let sel = self.or_all(&format!("{name}_sel{i}"), &sts);
            let val = self.adapt(net, width, false);
            let out = self.nl.add_net(format!("{name}_mx{i}"), width);
            self.nl
                .add_cell(
                    format!("{name}_mux{i}"),
                    CellOp::Mux,
                    &[sel, acc, val],
                    &[out],
                )
                .expect("mux arity");
            acc = out;
        }
        acc
    }

    /// FSM-global state id of (block, cycle), offset by the INIT state.
    fn gstate(&self, block: u32, cycle: u32) -> u32 {
        self.fsm.block_entry[&block] + cycle + 1
    }

    /// The net carrying an operand's value when read in global state `s`.
    fn operand_net(&mut self, op: Operand, reading_state: u32, want: IntType) -> NetId {
        let net = match op {
            Operand::Const(c) => self.konst(c as u64 & mask(want.width), want.width),
            Operand::Var(v) => self.reg_q[self.binding.reg_of_var[v.0 as usize].0 as usize],
            Operand::Temp(t) => {
                if let Some(&reg) = self.binding.reg_of_temp.get(&t) {
                    // chained consumers in the producer's cycle read the wire
                    if let Some(&wire) = self.temp_wire.get(&t) {
                        if self.temp_finish_state(t) == Some(reading_state) {
                            wire
                        } else {
                            self.reg_q[reg.0 as usize]
                        }
                    } else {
                        self.reg_q[reg.0 as usize]
                    }
                } else {
                    *self
                        .temp_wire
                        .get(&t)
                        .expect("wire temp must have a producing net")
                }
            }
        };
        let signed = match op {
            Operand::Temp(t) => self.func.temp_types[t.0 as usize].signed,
            Operand::Var(v) => self.func.vars[v.0 as usize].ty.signed,
            Operand::Const(_) => false,
        };
        self.adapt(net, want.width, signed)
    }

    fn temp_finish_state(&self, t: TempId) -> Option<u32> {
        for (bi, block) in self.func.blocks.iter().enumerate() {
            for (ii, instr) in block.instrs.iter().enumerate() {
                if instr.dst == Some(t) {
                    let s = self.sched.blocks[bi].instrs[ii];
                    return Some(self.gstate(bi as u32, s.finish_cycle()));
                }
            }
        }
        None
    }
}

fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Generate the structural netlist of a scheduled + bound design.
///
/// # Errors
///
/// Returns [`HlsError::Rtl`] if netlist construction fails (indicates an
/// internal inconsistency).
pub fn generate(
    func: &IrFunction,
    sched: &FunctionSchedule,
    binding: &Binding,
    fsm: &Fsm,
) -> Result<DatapathNetlist, HlsError> {
    let total_states = fsm.state_count() as u32 + 1; // + INIT
    let state_w = (32 - (total_states.max(2) - 1).leading_zeros()).max(1);
    let mut nl = Netlist::new(&func.name);

    // state register
    let state_d = nl.add_net("state_d", state_w);
    let state_q = nl.add_net("state_q", state_w);
    nl.add_cell(
        "state_reg",
        CellOp::Register {
            has_enable: false,
            has_reset: true,
        },
        &[state_d],
        &[state_q],
    )?;

    let mut gen = Gen {
        func,
        sched,
        binding,
        fsm,
        nl,
        state_q,
        st_eq: Vec::new(),
        consts: HashMap::new(),
        temp_wire: HashMap::new(),
        reg_q: Vec::new(),
        reg_writers: HashMap::new(),
        var_write_in_state: HashMap::new(),
    };

    // state compare signals
    for s in 0..total_states {
        let k = gen.konst(u64::from(s), state_w);
        let eq = gen.nl.add_net(format!("st{s}"), 1);
        gen.nl
            .add_cell(format!("st_cmp{s}"), CellOp::Cmp(Comparison::Eq), &[gen.state_q, k], &[eq])?;
        gen.st_eq.push(eq);
    }

    // storage registers
    for (ri, reg) in binding.regs.iter().enumerate() {
        let d = gen.nl.add_net(format!("{}_d", reg.name), reg.width);
        let q = gen.nl.add_net(format!("{}_q", reg.name), reg.width);
        let en = gen.nl.add_net(format!("{}_en", reg.name), 1);
        gen.nl.add_cell(
            format!("{}_reg", reg.name),
            CellOp::Register {
                has_enable: true,
                has_reset: true,
            },
            &[d, en],
            &[q],
        )?;
        gen.reg_q.push(q);
        let _ = ri;
    }

    // argument input pads feed parameter registers in the INIT state (0)
    let mut arg_inputs = HashMap::new();
    for (name, pb) in &func.params {
        if let crate::ir::ParamBinding::Scalar(v) = pb {
            let ty = func.vars[v.0 as usize].ty;
            let pad = gen.nl.add_input(format!("arg_{name}"), ty.width);
            arg_inputs.insert(name.clone(), pad);
            let reg = binding.reg_of_var[v.0 as usize];
            gen.reg_writers.entry(reg).or_default().push((0, pad));
        }
    }

    // local arrays -> true dual-port RAM cells with per-port mux trees
    // port assignment: ops on LocalMem(ai) alternate across the 2 ports by
    // FU instance.
    let mut ram_ports: HashMap<(u32, usize), RamPort> = HashMap::new(); // (array, port)
    #[derive(Default)]
    struct RamPort {
        addr_sources: Vec<(u32, NetId)>,
        data_sources: Vec<(u32, NetId)>,
        we_states: Vec<u32>,
        rdata: Option<NetId>,
    }

    // external interface pads (one shared AXI-style port)
    let has_external = func
        .arrays
        .iter()
        .any(|a| matches!(a.kind, ArrayKind::External));
    let (ext_rdata, ext_addr_sources, ext_wdata_sources, ext_req_states) = if has_external {
        let rdata = gen.nl.add_input("m_axi_rdata", 64);
        (
            Some(rdata),
            Some(Vec::<(u32, NetId)>::new()),
            Some(Vec::<(u32, NetId)>::new()),
            Some(Vec::<u32>::new()),
        )
    } else {
        (None, None, None, None)
    };
    let mut ext_addr_sources = ext_addr_sources;
    let mut ext_wdata_sources = ext_wdata_sources;
    let mut ext_req_states = ext_req_states;

    // --- generate operations ---
    for (bi, block) in func.blocks.iter().enumerate() {
        for (ii, instr) in block.instrs.iter().enumerate() {
            let s = sched.blocks[bi].instrs[ii];
            let issue = gen.gstate(bi as u32, s.start_cycle);
            let finish = gen.gstate(bi as u32, s.finish_cycle());
            match &instr.op {
                IrOp::Bin { op, a, b } => {
                    let ta = gen.func.operand_type(*a);
                    let tb = gen.func.operand_type(*b);
                    let opty = match op {
                        BinOp::Shl | BinOp::Shr => ta,
                        _ => ta.unify(tb),
                    };
                    let an = gen.operand_net(*a, issue, opty);
                    let bn = gen.operand_net(*b, issue, opty);
                    // `a > b` is `b < a` and `a <= b` is `b >= a`: swap
                    let (an, bn) = if matches!(op, BinOp::Gt | BinOp::Le) {
                        (bn, an)
                    } else {
                        (an, bn)
                    };
                    let out_w = instr.ty.width;
                    let out = gen.nl.add_net(format!("b{bi}_i{ii}_y"), out_w);
                    let cell = bin_cellop(*op, opty);
                    // comparison cells output 1 bit; others at operand width
                    match cell {
                        CellOp::Cmp(_) => {
                            gen.nl.add_cell(format!("b{bi}_i{ii}"), cell, &[an, bn], &[out])?;
                        }
                        _ => {
                            let wide =
                                gen.nl.add_net(format!("b{bi}_i{ii}_w"), opty.width);
                            gen.nl
                                .add_cell(format!("b{bi}_i{ii}"), cell, &[an, bn], &[wide])?;
                            let adapted = gen.adapt(wide, out_w, opty.signed);
                            // alias: out = adapted via zero-cost extend
                            gen.nl.add_cell(
                                format!("b{bi}_i{ii}_alias"),
                                CellOp::ZeroExtend,
                                &[adapted],
                                &[out],
                            )?;
                        }
                    }
                    let dst = instr.dst.expect("bin dst");
                    gen.temp_wire.insert(dst, out);
                    if let Some(&reg) = binding.reg_of_temp.get(&dst) {
                        gen.reg_writers.entry(reg).or_default().push((finish, out));
                    }
                }
                IrOp::Un { op, a } => {
                    let an = gen.operand_net(*a, issue, instr.ty);
                    let out = gen.nl.add_net(format!("b{bi}_i{ii}_y"), instr.ty.width);
                    match op {
                        UnOp::Neg => {
                            let zero = gen.konst(0, instr.ty.width);
                            gen.nl.add_cell(
                                format!("b{bi}_i{ii}"),
                                CellOp::Sub,
                                &[zero, an],
                                &[out],
                            )?;
                        }
                        UnOp::BitNot => {
                            gen.nl
                                .add_cell(format!("b{bi}_i{ii}"), CellOp::Not, &[an], &[out])?;
                        }
                        UnOp::LogNot => {
                            let zero = gen.konst(0, gen.nl.net(an).width);
                            gen.nl.add_cell(
                                format!("b{bi}_i{ii}"),
                                CellOp::Cmp(Comparison::Eq),
                                &[an, zero],
                                &[out],
                            )?;
                        }
                    }
                    let dst = instr.dst.expect("un dst");
                    gen.temp_wire.insert(dst, out);
                    if let Some(&reg) = binding.reg_of_temp.get(&dst) {
                        gen.reg_writers.entry(reg).or_default().push((finish, out));
                    }
                }
                IrOp::Cast { a, from } => {
                    let src = gen.operand_net(*a, issue, *from);
                    let out = gen.adapt(src, instr.ty.width, from.signed);
                    let dst = instr.dst.expect("cast dst");
                    gen.temp_wire.insert(dst, out);
                    if let Some(&reg) = binding.reg_of_temp.get(&dst) {
                        gen.reg_writers.entry(reg).or_default().push((finish, out));
                    }
                }
                IrOp::Load { array, index } | IrOp::Store { array, index, .. } => {
                    let info = &func.arrays[array.0 as usize];
                    let ew = info.ty.width;
                    match info.kind {
                        ArrayKind::Local { .. } => {
                            let fu = binding.fu_of[&(bi as u32, ii)];
                            // port = parity of the FU instance among this array's
                            let port = binding
                                .fus
                                .iter()
                                .enumerate()
                                .filter(|(_, f)| {
                                    matches!(f.kind, crate::allocate::FuKind::LocalMem(a) if a == *array)
                                })
                                .position(|(fi, _)| fi == fu)
                                .unwrap_or(0)
                                % 2;
                            let aw = addr_width(info.size);
                            let idx_ty = IntType {
                                width: aw,
                                signed: false,
                            };
                            let addr = gen.operand_net(*index, issue, idx_ty);
                            let entry = ram_ports.entry((array.0, port)).or_default();
                            entry.addr_sources.push((issue, addr));
                            if let IrOp::Store { value, .. } = &instr.op {
                                let vn = gen.operand_net(*value, issue, info.ty);
                                let e = ram_ports.entry((array.0, port)).or_default();
                                e.data_sources.push((issue, vn));
                                e.we_states.push(issue);
                            } else {
                                // load: capture RAM output at the finish state
                                let dst = instr.dst.expect("load dst");
                                // rdata net created later when the RAM cell is
                                // instantiated; remember a placeholder via a
                                // dedicated capture net
                                let cap_src =
                                    gen.nl.add_net(format!("b{bi}_i{ii}_ld"), ew);
                                let e = ram_ports.entry((array.0, port)).or_default();
                                // connect after RAM instantiation;
                                // share the port read net if one exists
                                if let Some(shared) = e.rdata {
                                    let reg = binding.reg_of_temp[&dst];
                                    gen.reg_writers
                                        .entry(reg)
                                        .or_default()
                                        .push((finish, shared));
                                    continue;
                                }
                                e.rdata = Some(cap_src);
                                let reg = binding.reg_of_temp[&dst];
                                gen.reg_writers
                                    .entry(reg)
                                    .or_default()
                                    .push((finish, cap_src));
                            }
                        }
                        ArrayKind::External => {
                            let addr_ty = IntType {
                                width: 32,
                                signed: false,
                            };
                            let an = gen.operand_net(*index, issue, addr_ty);
                            if let Some(src) = ext_addr_sources.as_mut() {
                                src.push((issue, an));
                            }
                            if let Some(states) = ext_req_states.as_mut() {
                                states.push(issue);
                            }
                            if let IrOp::Store { value, .. } = &instr.op {
                                let vt = IntType {
                                    width: 64,
                                    signed: info.ty.signed,
                                };
                                let vn = gen.operand_net(*value, issue, vt);
                                if let Some(src) = ext_wdata_sources.as_mut() {
                                    src.push((issue, vn));
                                }
                            } else {
                                let dst = instr.dst.expect("load dst");
                                let rdata = ext_rdata.expect("external pads exist");
                                let sliced = gen.adapt(rdata, ew, info.ty.signed);
                                let reg = binding.reg_of_temp[&dst];
                                gen.reg_writers
                                    .entry(reg)
                                    .or_default()
                                    .push((finish, sliced));
                            }
                        }
                    }
                }
                IrOp::SetVar { var, value } => {
                    let ty = func.vars[var.0 as usize].ty;
                    let vn = gen.operand_net(*value, issue, ty);
                    let reg = binding.reg_of_var[var.0 as usize];
                    gen.reg_writers.entry(reg).or_default().push((issue, vn));
                    gen.var_write_in_state.insert((*var, issue), vn);
                }
            }
        }
    }

    // --- RAM cells ---
    for (ai, info) in func.arrays.iter().enumerate() {
        let ArrayKind::Local { init } = &info.kind else {
            continue;
        };
        let aw = addr_width(info.size);
        let ew = info.ty.width;
        let mut port_nets = Vec::new();
        for port in 0..2usize {
            let p = ram_ports.remove(&(ai as u32, port)).unwrap_or_default();
            let addr = if p.addr_sources.is_empty() {
                gen.konst(0, aw)
            } else {
                gen.state_mux(&format!("ram{ai}_p{port}_addr"), &p.addr_sources, aw)
            };
            let wdata = if p.data_sources.is_empty() {
                gen.konst(0, ew)
            } else {
                gen.state_mux(&format!("ram{ai}_p{port}_wd"), &p.data_sources, ew)
            };
            let we = if p.we_states.is_empty() {
                gen.konst(0, 1)
            } else {
                let sts: Vec<NetId> = p.we_states.iter().map(|&s| gen.st(s)).collect();
                gen.or_all(&format!("ram{ai}_p{port}_we"), &sts)
            };
            port_nets.push((addr, wdata, we, p.rdata));
        }
        let rd_a = port_nets[0]
            .3
            .unwrap_or_else(|| gen.nl.add_net(format!("ram{ai}_rd_a_nc"), ew));
        let rd_b = port_nets[1]
            .3
            .unwrap_or_else(|| gen.nl.add_net(format!("ram{ai}_rd_b_nc"), ew));
        let init_words: Vec<u64> = init
            .iter()
            .map(|&v| (v as u64) & mask(ew))
            .collect();
        gen.nl.add_cell(
            format!("ram{ai}"),
            CellOp::RamTdp {
                depth: info.size.max(1),
                init: init_words,
            },
            &[
                port_nets[0].0,
                port_nets[0].1,
                port_nets[0].2,
                port_nets[1].0,
                port_nets[1].1,
                port_nets[1].2,
            ],
            &[rd_a, rd_b],
        )?;
    }

    // --- external interface outputs ---
    if has_external {
        let addr_src = ext_addr_sources.expect("created");
        let addr = if addr_src.is_empty() {
            gen.konst(0, 32)
        } else {
            gen.state_mux("m_axi_addr", &addr_src, 32)
        };
        gen.nl.mark_output(addr);
        let wd_src = ext_wdata_sources.expect("created");
        let wd = if wd_src.is_empty() {
            gen.konst(0, 64)
        } else {
            gen.state_mux("m_axi_wdata", &wd_src, 64)
        };
        gen.nl.mark_output(wd);
        let req_states = ext_req_states.expect("created");
        let req = if req_states.is_empty() {
            gen.konst(0, 1)
        } else {
            let sts: Vec<NetId> = req_states.iter().map(|&s| gen.st(s)).collect();
            gen.or_all("m_axi_req", &sts)
        };
        gen.nl.mark_output(req);
    }

    // --- next-state logic ---
    // default: stay (used for the Done states)
    let mut next_sources: Vec<(u32, NetId)> = Vec::new();
    // INIT -> first real state
    let first = gen.konst(1, state_w);
    next_sources.push((0, first));
    let mut done_states: Vec<u32> = Vec::new();
    for (si, n) in fsm.next.iter().enumerate() {
        let s = si as u32 + 1;
        match n {
            FsmNext::Goto(t) => {
                let tn = gen.konst(u64::from(*t + 1), state_w);
                next_sources.push((s, tn));
            }
            FsmNext::CondGoto {
                then_state,
                else_state,
            } => {
                // branch condition of the owning block
                let st = fsm.states[si];
                let Terminator::Branch { cond, .. } = &func.block(st.block).term else {
                    unreachable!("CondGoto only from Branch");
                };
                let cond_net = branch_operand_net(&mut gen, *cond, s);
                let tn = gen.konst(u64::from(*then_state + 1), state_w);
                let en = gen.konst(u64::from(*else_state + 1), state_w);
                let out = gen.nl.add_net(format!("next_br{s}"), state_w);
                gen.nl
                    .add_cell(format!("next_brmux{s}"), CellOp::Mux, &[cond_net, en, tn], &[out])?;
                next_sources.push((s, out));
            }
            FsmNext::Done => {
                done_states.push(s);
                let stay = gen.konst(u64::from(s), state_w);
                next_sources.push((s, stay));
            }
        }
    }
    let next = gen.state_mux("next_state", &next_sources, state_w);
    // connect to the state register D input via an alias cell
    gen.nl
        .add_cell("state_d_drv", CellOp::ZeroExtend, &[next], &[state_d])?;

    // --- done output and return value ---
    let done = gen.nl.add_net("done", 1);
    if done_states.is_empty() {
        let zero = gen.konst(0, 1);
        gen.nl.add_cell("done_drv", CellOp::ZeroExtend, &[zero], &[done])?;
    } else {
        let sts: Vec<NetId> = done_states.iter().map(|&s| gen.st(s)).collect();
        let d = gen.or_all("done_sig", &sts);
        gen.nl.add_cell("done_drv", CellOp::ZeroExtend, &[d], &[done])?;
    }
    gen.nl.mark_output(done);

    let ret = if let Some(rty) = func.return_type {
        let mut sources: Vec<(u32, NetId)> = Vec::new();
        for (bi, block) in func.blocks.iter().enumerate() {
            if let Terminator::Return(Some(op)) = &block.term {
                let s = gen.gstate(bi as u32, sched.blocks[bi].length - 1);
                let net = branch_operand_net(&mut gen, *op, s);
                let net = gen.adapt(net, rty.width, rty.signed);
                sources.push((s, net));
            }
        }
        if sources.is_empty() {
            None
        } else {
            // capture into a return register so the value persists after
            // done; during the returning state itself the output shows the
            // live value so `done` and the result are observable together
            let d = gen.nl.add_net("ret_d", rty.width);
            let q = gen.nl.add_net("ret_hold", rty.width);
            let en_sts: Vec<NetId> = sources.iter().map(|&(s, _)| gen.st(s)).collect();
            let en = gen.or_all("ret_en", &en_sts);
            let muxed = gen.state_mux("ret_mux", &sources, rty.width);
            gen.nl
                .add_cell("ret_d_drv", CellOp::ZeroExtend, &[muxed], &[d])?;
            gen.nl.add_cell(
                "ret_reg",
                CellOp::Register {
                    has_enable: true,
                    has_reset: true,
                },
                &[d, en],
                &[q],
            )?;
            let out = gen.nl.add_net("ret_q", rty.width);
            gen.nl
                .add_cell("ret_out_mux", CellOp::Mux, &[en, q, muxed], &[out])?;
            gen.nl.mark_output(out);
            Some(out)
        }
    } else {
        None
    };

    // --- register write logic ---
    // sorted so the emitted mux/enable cells (and thus every downstream
    // net id) come out in the same order on every compile
    let mut writers: Vec<_> = std::mem::take(&mut gen.reg_writers).into_iter().collect();
    writers.sort_unstable_by_key(|(reg, _)| reg.0);
    for (reg, sources) in writers {
        let info = &binding.regs[reg.0 as usize];
        let d_net = gen.nl.net_by_name(&format!("{}_d", info.name)).expect("reg d net");
        let en_net = gen
            .nl
            .net_by_name(&format!("{}_en", info.name))
            .expect("reg en net");
        let muxed = gen.state_mux(&format!("{}_wmux", info.name), &sources, info.width);
        gen.nl
            .add_cell(format!("{}_d_drv", info.name), CellOp::ZeroExtend, &[muxed], &[d_net])?;
        let sts: Vec<NetId> = sources.iter().map(|&(s, _)| gen.st(s)).collect();
        let en = gen.or_all(&format!("{}_wen", info.name), &sts);
        gen.nl
            .add_cell(format!("{}_en_drv", info.name), CellOp::ZeroExtend, &[en], &[en_net])?;
    }
    // registers never written: tie off D and enable
    for (ri, info) in binding.regs.iter().enumerate() {
        let d_name = format!("{}_d", info.name);
        let d_net = gen.nl.net_by_name(&d_name).expect("reg d net");
        if gen.nl.driver_map().map_err(HlsError::Rtl)?.contains_key(&d_net) {
            continue;
        }
        let zero = gen.konst(0, info.width);
        gen.nl.add_cell(
            format!("{}_d_tie", info.name),
            CellOp::ZeroExtend,
            &[zero],
            &[d_net],
        )?;
        let en_net = gen
            .nl
            .net_by_name(&format!("{}_en", info.name))
            .expect("reg en net");
        let z1 = gen.konst(0, 1);
        gen.nl.add_cell(
            format!("{}_en_tie", info.name),
            CellOp::ZeroExtend,
            &[z1],
            &[en_net],
        )?;
        let _ = ri;
    }

    let state_count = total_states;
    let netlist = gen.nl;
    netlist.validate().map_err(HlsError::Rtl)?;
    Ok(DatapathNetlist {
        netlist,
        arg_inputs,
        done,
        ret,
        state_count,
    })
}

/// Resolve a terminator operand in the final state of a block: a variable
/// written in that very state reads the in-flight D value instead of the
/// stale register output.
fn branch_operand_net(gen: &mut Gen<'_>, op: Operand, state: u32) -> NetId {
    match op {
        Operand::Var(v) => {
            if let Some(&d) = gen.var_write_in_state.get(&(v, state)) {
                d
            } else {
                gen.reg_q[gen.binding.reg_of_var[v.0 as usize].0 as usize]
            }
        }
        Operand::Const(c) => gen.konst(c as u64, 64),
        Operand::Temp(_) => {
            let ty = match op {
                Operand::Temp(t) => gen.func.temp_types[t.0 as usize],
                _ => IntType::BOOL,
            };
            gen.operand_net(op, state, ty)
        }
    }
}

fn bin_cellop(op: BinOp, ty: IntType) -> CellOp {
    match op {
        BinOp::Add => CellOp::Add,
        BinOp::Sub => CellOp::Sub,
        BinOp::Mul => CellOp::Mul,
        BinOp::Div => CellOp::Div,
        BinOp::Mod => CellOp::Mod,
        BinOp::And | BinOp::LogAnd => CellOp::And,
        BinOp::Or | BinOp::LogOr => CellOp::Or,
        BinOp::Xor => CellOp::Xor,
        BinOp::Shl => CellOp::Shl,
        BinOp::Shr => {
            if ty.signed {
                CellOp::ShrA
            } else {
                CellOp::ShrL
            }
        }
        BinOp::Lt => CellOp::Cmp(if ty.signed {
            Comparison::LtS
        } else {
            Comparison::LtU
        }),
        BinOp::Ge => CellOp::Cmp(if ty.signed {
            Comparison::GeS
        } else {
            Comparison::GeU
        }),
        // callers swap operands for Gt/Le before instantiating these
        BinOp::Gt => CellOp::Cmp(if ty.signed {
            Comparison::LtS
        } else {
            Comparison::LtU
        }),
        BinOp::Le => CellOp::Cmp(if ty.signed {
            Comparison::GeS
        } else {
            Comparison::GeU
        }),
        BinOp::Eq => CellOp::Cmp(Comparison::Eq),
        BinOp::Ne => CellOp::Cmp(Comparison::Ne),
    }
}

fn addr_width(size: u32) -> u32 {
    (32 - (size.max(2) - 1).leading_zeros()).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    // Full co-simulation tests live in flow.rs where the whole pipeline is
    // assembled; here we only check helper behaviour.

    #[test]
    fn addr_width_covers_depth() {
        assert_eq!(addr_width(2), 1);
        assert_eq!(addr_width(16), 4);
        assert_eq!(addr_width(17), 5);
        assert_eq!(addr_width(1024), 10);
    }

    #[test]
    fn cellop_mapping_signedness() {
        let i32t = IntType::I32;
        let u32t = IntType::U32;
        assert_eq!(
            bin_cellop(BinOp::Shr, i32t),
            CellOp::ShrA
        );
        assert_eq!(bin_cellop(BinOp::Shr, u32t), CellOp::ShrL);
        assert!(matches!(
            bin_cellop(BinOp::Lt, i32t),
            CellOp::Cmp(Comparison::LtS)
        ));
        assert!(matches!(
            bin_cellop(BinOp::Lt, u32t),
            CellOp::Cmp(Comparison::LtU)
        ));
    }
}
