//! Dynamically-controlled (dataflow) accelerator synthesis.
//!
//! Section II: "applications based on artificial intelligence … might
//! contain multiple parallel execution flows (i.e., coarse-grained
//! parallelism); when synthesized through an HLS tool, the complexity of
//! the finite state machine controllers for such applications grows
//! exponentially … Bambu has been extended to efficiently synthesize
//! dynamically controlled accelerators."
//!
//! This module reproduces both synthesis styles over a coarse-grained
//! [`TaskGraph`]:
//!
//! * **Monolithic**: one FSM controls every task — the controller state
//!   space is the *product* of the per-task state counts (for tasks that
//!   can be co-active), and execution of one item runs tasks to completion
//!   in topological order.
//! * **Dataflow**: each task keeps its own small controller and
//!   communicates through handshaked FIFO channels — controller cost is the
//!   *sum* of the parts, and independent tasks overlap (pipeline
//!   parallelism across stream items).

use std::collections::HashMap;

/// One coarse-grained task (e.g. an HLS kernel).
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// Task name.
    pub name: String,
    /// FSM states of the task's own controller.
    pub states: u32,
    /// Cycles to process one stream item.
    pub latency: u64,
}

impl Task {
    /// Build a task descriptor from a compiled [`crate::Design`], using a
    /// representative argument vector to measure latency.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn from_design(
        design: &crate::Design,
        representative_args: &[i64],
    ) -> Result<Task, crate::HlsError> {
        let r = design.simulate(representative_args)?;
        Ok(Task {
            name: design.name().to_string(),
            states: design.fsm.state_count() as u32,
            latency: r.cycles,
        })
    }
}

/// A directed acyclic graph of tasks connected by FIFO channels.
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    /// The tasks.
    pub tasks: Vec<Task>,
    /// Channels `(producer, consumer, fifo_depth)` by task index.
    pub channels: Vec<(usize, usize, u32)>,
}

impl TaskGraph {
    /// Create an empty graph.
    pub fn new() -> Self {
        TaskGraph::default()
    }

    /// Add a task, returning its index.
    pub fn add_task(&mut self, task: Task) -> usize {
        self.tasks.push(task);
        self.tasks.len() - 1
    }

    /// Connect producer → consumer with a FIFO of `depth` items.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range or the edge would make the
    /// graph cyclic.
    pub fn connect(&mut self, producer: usize, consumer: usize, depth: u32) {
        assert!(producer < self.tasks.len() && consumer < self.tasks.len());
        self.channels.push((producer, consumer, depth));
        assert!(
            self.topo_order().is_some(),
            "task graph must stay acyclic"
        );
    }

    /// Topological order, or `None` if cyclic.
    pub fn topo_order(&self) -> Option<Vec<usize>> {
        let n = self.tasks.len();
        let mut indeg = vec![0usize; n];
        let mut succ: HashMap<usize, Vec<usize>> = HashMap::new();
        for &(p, c, _) in &self.channels {
            indeg[c] += 1;
            succ.entry(p).or_default().push(c);
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(t) = ready.pop() {
            order.push(t);
            for &s in succ.get(&t).into_iter().flatten() {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    ready.push(s);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Independent "parallel flows": tasks with no path between them may be
    /// co-active, which is what blows up a monolithic controller.
    fn parallel_groups(&self) -> Vec<Vec<usize>> {
        // connected components treating channels as undirected
        let n = self.tasks.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let r = find(parent, parent[x]);
                parent[x] = r;
            }
            parent[x]
        }
        for &(p, c, _) in &self.channels {
            let (rp, rc) = (find(&mut parent, p), find(&mut parent, c));
            if rp != rc {
                parent[rp] = rc;
            }
        }
        let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
        for i in 0..n {
            let r = find(&mut parent, i);
            groups.entry(r).or_default().push(i);
        }
        groups.into_values().collect()
    }
}

/// Controller cost and throughput of one synthesis style.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerReport {
    /// Total controller states (saturating).
    pub controller_states: u64,
    /// State-register bits.
    pub state_bits: u32,
    /// Cycles to process `items` stream items.
    pub total_cycles: u64,
    /// Steady-state initiation interval (cycles between item completions).
    pub initiation_interval: u64,
}

/// Synthesize the task graph with a single monolithic controller.
///
/// Co-active tasks multiply the state space: within each chain the states
/// add, but across independent parallel flows the monolithic controller
/// must track the cross product.
pub fn synthesize_monolithic(graph: &TaskGraph, items: u64) -> ControllerReport {
    let groups = graph.parallel_groups();
    // states: product over groups of (sum of states within the group)
    let mut states: u64 = 1;
    for g in &groups {
        let group_sum: u64 = g.iter().map(|&t| u64::from(graph.tasks[t].states)).sum();
        states = states.saturating_mul(group_sum.max(1));
    }
    // execution: all tasks run to completion per item, serialized by the
    // single controller
    let per_item: u64 = graph.tasks.iter().map(|t| t.latency).sum();
    ControllerReport {
        controller_states: states,
        state_bits: bits_for(states),
        total_cycles: per_item.saturating_mul(items),
        initiation_interval: per_item,
    }
}

/// Cost of one FIFO handshake controller per channel (states).
const CHANNEL_CTRL_STATES: u64 = 2;

/// Synthesize the task graph in dataflow style: per-task controllers plus
/// FIFO handshakes; pipeline execution across stream items.
pub fn synthesize_dataflow(graph: &TaskGraph, items: u64) -> ControllerReport {
    let states: u64 = graph
        .tasks
        .iter()
        .map(|t| u64::from(t.states))
        .sum::<u64>()
        + graph.channels.len() as u64 * CHANNEL_CTRL_STATES;
    // pipeline: fill = critical path latency; steady state II = slowest task
    let order = graph.topo_order().expect("graph validated acyclic");
    let mut path: HashMap<usize, u64> = HashMap::new();
    for &t in &order {
        let preds: u64 = graph
            .channels
            .iter()
            .filter(|&&(_, c, _)| c == t)
            .map(|&(p, _, _)| path.get(&p).copied().unwrap_or(0))
            .max()
            .unwrap_or(0);
        path.insert(t, preds + graph.tasks[t].latency);
    }
    let fill = path.values().copied().max().unwrap_or(0);
    let ii = graph.tasks.iter().map(|t| t.latency).max().unwrap_or(1);
    let total = if items == 0 {
        0
    } else {
        fill + ii.saturating_mul(items - 1)
    };
    ControllerReport {
        controller_states: states,
        state_bits: bits_for(states),
        total_cycles: total,
        initiation_interval: ii,
    }
}

fn bits_for(states: u64) -> u32 {
    (64 - states.max(2).saturating_sub(1).leading_zeros()).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(name: &str, states: u32, latency: u64) -> Task {
        Task {
            name: name.into(),
            states,
            latency,
        }
    }

    /// N independent parallel flows, the paper's FSM-explosion scenario.
    fn parallel_flows(n: usize) -> TaskGraph {
        let mut g = TaskGraph::new();
        for i in 0..n {
            let a = g.add_task(task(&format!("prod{i}"), 12, 100));
            let b = g.add_task(task(&format!("cons{i}"), 12, 100));
            g.connect(a, b, 4);
        }
        g
    }

    #[test]
    fn monolithic_states_grow_multiplicatively() {
        let s2 = synthesize_monolithic(&parallel_flows(2), 1).controller_states;
        let s4 = synthesize_monolithic(&parallel_flows(4), 1).controller_states;
        let d2 = synthesize_dataflow(&parallel_flows(2), 1).controller_states;
        let d4 = synthesize_dataflow(&parallel_flows(4), 1).controller_states;
        assert!(
            s4 > s2 * s2 / 2,
            "monolithic growth should be multiplicative: {s2} -> {s4}"
        );
        assert_eq!(d4, d2 * 2, "dataflow growth is linear");
        assert!(d4 < s4);
    }

    #[test]
    fn dataflow_pipelines_streams() {
        let mut g = TaskGraph::new();
        let a = g.add_task(task("read", 4, 50));
        let b = g.add_task(task("compute", 8, 80));
        let c = g.add_task(task("write", 4, 50));
        g.connect(a, b, 2);
        g.connect(b, c, 2);
        let items = 100;
        let mono = synthesize_monolithic(&g, items);
        let df = synthesize_dataflow(&g, items);
        assert_eq!(mono.initiation_interval, 180);
        assert_eq!(df.initiation_interval, 80, "II = slowest stage");
        assert!(df.total_cycles < mono.total_cycles / 2);
    }

    #[test]
    fn single_task_equivalent() {
        let mut g = TaskGraph::new();
        g.add_task(task("only", 10, 42));
        let mono = synthesize_monolithic(&g, 10);
        let df = synthesize_dataflow(&g, 10);
        assert_eq!(mono.controller_states, 10);
        assert_eq!(df.controller_states, 10);
        assert_eq!(mono.total_cycles, 420);
        assert_eq!(df.total_cycles, 42 + 42 * 9);
    }

    #[test]
    fn capacity_one_channels_match_deeper_fifos() {
        // channel capacity shapes area, never the timing model: a depth-1
        // handshake pipeline must report the same controller cost and
        // cycle counts as a generously buffered one
        let build = |depth: u32| {
            let mut g = TaskGraph::new();
            let a = g.add_task(task("a", 4, 30));
            let b = g.add_task(task("b", 6, 50));
            let c = g.add_task(task("c", 4, 20));
            g.connect(a, b, depth);
            g.connect(b, c, depth);
            g
        };
        let (shallow, deep) = (build(1), build(16));
        for items in [0u64, 1, 7, 100] {
            assert_eq!(
                synthesize_dataflow(&shallow, items),
                synthesize_dataflow(&deep, items),
                "items={items}"
            );
            assert_eq!(
                synthesize_monolithic(&shallow, items),
                synthesize_monolithic(&deep, items),
                "items={items}"
            );
        }
    }

    #[test]
    fn zero_latency_tasks_agree_across_styles() {
        // zero-latency (combinational pass-through) tasks: both styles
        // must degenerate to zero cycles without dividing by the II
        let mut g = TaskGraph::new();
        let a = g.add_task(task("wire_a", 1, 0));
        let b = g.add_task(task("wire_b", 1, 0));
        g.connect(a, b, 1);
        for items in [0u64, 1, 50] {
            let mono = synthesize_monolithic(&g, items);
            let df = synthesize_dataflow(&g, items);
            assert_eq!(mono.total_cycles, 0, "items={items}");
            assert_eq!(df.total_cycles, 0, "items={items}");
            assert_eq!(mono.initiation_interval, 0);
            assert_eq!(df.initiation_interval, 0);
        }
        // a zero-latency stage inside a real pipeline is absorbed: the
        // dataflow II is set by the slowest stage alone
        let mut g = TaskGraph::new();
        let a = g.add_task(task("load", 2, 40));
        let b = g.add_task(task("wire", 1, 0));
        let c = g.add_task(task("store", 2, 40));
        g.connect(a, b, 1);
        g.connect(b, c, 1);
        let df = synthesize_dataflow(&g, 10);
        assert_eq!(df.initiation_interval, 40);
        assert_eq!(df.total_cycles, 80 + 40 * 9, "fill 80 then II per item");
    }

    #[test]
    fn single_task_graph_styles_identical() {
        // with one task there is nothing to pipeline and nothing to
        // multiply: the two styles must produce the identical report
        for (states, latency) in [(1u32, 1u64), (10, 42), (7, 0)] {
            let mut g = TaskGraph::new();
            g.add_task(task("only", states, latency));
            for items in [0u64, 1, 13, 500] {
                let mono = synthesize_monolithic(&g, items);
                let df = synthesize_dataflow(&g, items);
                assert_eq!(mono, df, "states={states} latency={latency} items={items}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "acyclic")]
    fn cycles_rejected() {
        let mut g = TaskGraph::new();
        let a = g.add_task(task("a", 2, 1));
        let b = g.add_task(task("b", 2, 1));
        g.connect(a, b, 1);
        g.connect(b, a, 1);
    }

    #[test]
    fn zero_items() {
        let g = parallel_flows(1);
        assert_eq!(synthesize_dataflow(&g, 0).total_cycles, 0);
        assert_eq!(synthesize_monolithic(&g, 0).total_cycles, 0);
    }

    #[test]
    fn task_from_design() {
        let d = crate::HlsFlow::new()
            .compile("int f(int a) { return a * 3 + 1; }")
            .unwrap();
        let t = Task::from_design(&d, &[5]).unwrap();
        assert_eq!(t.name, "f");
        assert!(t.states >= 1);
        assert!(t.latency >= 1);
    }
}
