//! Abstract syntax tree of the C subset.

use crate::Loc;
use std::fmt;

/// A sized integer type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IntType {
    /// Width in bits (1 for `bool`, 8/16/32/64 otherwise).
    pub width: u32,
    /// Whether values are two's-complement signed.
    pub signed: bool,
}

impl IntType {
    /// 32-bit signed (`int`, `int32`).
    pub const I32: IntType = IntType {
        width: 32,
        signed: true,
    };
    /// 32-bit unsigned.
    pub const U32: IntType = IntType {
        width: 32,
        signed: false,
    };
    /// 1-bit boolean.
    pub const BOOL: IntType = IntType {
        width: 1,
        signed: false,
    };

    /// The usual arithmetic conversion of two operand types (C-style:
    /// widen to the larger width; unsigned wins at equal width).
    pub fn unify(self, other: IntType) -> IntType {
        let width = self.width.max(other.width);
        let signed = if self.width == other.width {
            self.signed && other.signed
        } else if self.width > other.width {
            self.signed
        } else {
            other.signed
        };
        IntType { width, signed }
    }

    /// Parse a type keyword.
    pub fn from_keyword(kw: &str) -> Option<IntType> {
        let t = |width, signed| Some(IntType { width, signed });
        match kw {
            "bool" => t(1, false),
            "char" | "int8" => t(8, true),
            "uint8" | "uchar" => t(8, false),
            "short" | "int16" => t(16, true),
            "uint16" | "ushort" => t(16, false),
            "int" | "int32" => t(32, true),
            "uint32" | "unsigned" | "uint" => t(32, false),
            "long" | "int64" => t(64, true),
            "uint64" | "ulong" => t(64, false),
            _ => None,
        }
    }
}

impl fmt::Display for IntType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.width == 1 {
            write!(f, "bool")
        } else {
            write!(f, "{}int{}", if self.signed { "" } else { "u" }, self.width)
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&` (lowered to bitwise on 1-bit values)
    LogAnd,
    /// `||`
    LogOr,
}

impl BinOp {
    /// Whether the result is a 1-bit boolean.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// Symbol for diagnostics and emitted HDL comments.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::LogAnd => "&&",
            BinOp::LogOr => "||",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `~`
    BitNot,
    /// `!`
    LogNot,
}

/// An expression node.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Literal {
        /// The value (sign-extended).
        value: i64,
        /// Source location.
        loc: Loc,
    },
    /// Variable reference.
    Var {
        /// Variable name.
        name: String,
        /// Source location.
        loc: Loc,
    },
    /// Array element read: `name[index]`.
    Index {
        /// Array name.
        name: String,
        /// Index expression.
        index: Box<Expr>,
        /// Source location.
        loc: Loc,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source location.
        loc: Loc,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
        /// Source location.
        loc: Loc,
    },
    /// Function call: `name(args…)`.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source location.
        loc: Loc,
    },
    /// Explicit cast: `(type) expr`.
    Cast {
        /// Target type.
        ty: IntType,
        /// Operand.
        operand: Box<Expr>,
        /// Source location.
        loc: Loc,
    },
}

impl Expr {
    /// Source location of the expression.
    pub fn loc(&self) -> Loc {
        match self {
            Expr::Literal { loc, .. }
            | Expr::Var { loc, .. }
            | Expr::Index { loc, .. }
            | Expr::Binary { loc, .. }
            | Expr::Unary { loc, .. }
            | Expr::Call { loc, .. }
            | Expr::Cast { loc, .. } => *loc,
        }
    }
}

/// A statement node.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Variable declaration with optional initializer.
    Decl {
        /// Declared type.
        ty: IntType,
        /// Variable name.
        name: String,
        /// Initializer, if present.
        init: Option<Expr>,
        /// Source location.
        loc: Loc,
    },
    /// Local array declaration: `type name[size];`.
    ArrayDecl {
        /// Element type.
        ty: IntType,
        /// Array name.
        name: String,
        /// Element count.
        size: u32,
        /// Optional initializer list.
        init: Vec<i64>,
        /// Source location.
        loc: Loc,
    },
    /// Scalar assignment: `name = expr;`.
    Assign {
        /// Target variable.
        name: String,
        /// Value expression.
        value: Expr,
        /// Source location.
        loc: Loc,
    },
    /// Array element assignment: `name[index] = expr;`.
    Store {
        /// Target array.
        name: String,
        /// Index expression.
        index: Expr,
        /// Value expression.
        value: Expr,
        /// Source location.
        loc: Loc,
    },
    /// Conditional.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch (may be empty).
        else_body: Vec<Stmt>,
        /// Source location.
        loc: Loc,
    },
    /// While loop.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
        /// Source location.
        loc: Loc,
    },
    /// For loop (desugared by the parser into init + while when lowering).
    For {
        /// Init statement (decl or assign).
        init: Box<Stmt>,
        /// Condition.
        cond: Expr,
        /// Step statement (assign).
        step: Box<Stmt>,
        /// Body.
        body: Vec<Stmt>,
        /// Source location.
        loc: Loc,
    },
    /// Exit the innermost loop.
    Break {
        /// Source location.
        loc: Loc,
    },
    /// Jump to the innermost loop's next iteration (running a `for` loop's
    /// step expression).
    Continue {
        /// Source location.
        loc: Loc,
    },
    /// Return with optional value.
    Return {
        /// Returned expression (absent for `void`).
        value: Option<Expr>,
        /// Source location.
        loc: Loc,
    },
    /// Expression statement (e.g. a call for its side effects — only
    /// permitted for calls).
    ExprStmt {
        /// The expression.
        expr: Expr,
        /// Source location.
        loc: Loc,
    },
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Element type.
    pub ty: IntType,
    /// `Some(hint)` if declared as an array/pointer (`type name[]` or
    /// `type *name`); the hint is a size if given, else 0.
    pub array: Option<u32>,
    /// Source location.
    pub loc: Loc,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Return type; `None` for `void`.
    pub return_type: Option<IntType>,
    /// Parameters.
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source location.
    pub loc: Loc,
}

/// A translation unit: one or more functions. The last function (or the one
/// named by the user) is the synthesis top.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Functions in declaration order.
    pub functions: Vec<Function>,
}

impl Program {
    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_unification() {
        let i8t = IntType {
            width: 8,
            signed: true,
        };
        let u16t = IntType {
            width: 16,
            signed: false,
        };
        assert_eq!(i8t.unify(u16t), u16t);
        assert_eq!(IntType::I32.unify(IntType::U32), IntType::U32);
        assert_eq!(IntType::I32.unify(IntType::I32), IntType::I32);
    }

    #[test]
    fn keyword_types() {
        assert_eq!(IntType::from_keyword("int"), Some(IntType::I32));
        assert_eq!(
            IntType::from_keyword("uint8"),
            Some(IntType {
                width: 8,
                signed: false
            })
        );
        assert_eq!(IntType::from_keyword("float"), None);
        assert_eq!(IntType::from_keyword("bool"), Some(IntType::BOOL));
    }

    #[test]
    fn display_forms() {
        assert_eq!(IntType::I32.to_string(), "int32");
        assert_eq!(IntType::BOOL.to_string(), "bool");
        assert_eq!(BinOp::Shl.symbol(), "<<");
    }
}
