//! Hand-written lexer for the C subset.

use crate::{HlsError, Loc};

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Integer literal (decimal or `0x` hex).
    Int(i64),
    /// Identifier or keyword.
    Ident(String),
    /// Punctuation / operator, e.g. `+`, `<<=`, `{`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// A token with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind.
    pub kind: TokenKind,
    /// Where it starts.
    pub loc: Loc,
}

/// The lexer.
#[derive(Debug)]
pub struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    line: u32,
    col: u32,
}

const PUNCTS: &[&str] = &[
    "<<=", ">>=", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=", "++", "--", "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "(", ")", "{", "}", "[", "]", ";", ",",
];

impl<'s> Lexer<'s> {
    /// Create a lexer over `src`.
    pub fn new(src: &'s str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn loc(&self) -> Loc {
        Loc {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) -> Result<(), HlsError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'*') => {
                    let start = self.loc();
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.src.get(self.pos + 1)) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(HlsError::Lex {
                                    loc: start,
                                    detail: "unterminated block comment".into(),
                                })
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Produce the next token.
    ///
    /// # Errors
    ///
    /// Returns [`HlsError::Lex`] on unrecognized characters or malformed
    /// literals.
    pub fn next_token(&mut self) -> Result<Token, HlsError> {
        self.skip_trivia()?;
        let loc = self.loc();
        let Some(c) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                loc,
            });
        };
        if c.is_ascii_digit() {
            return self.lex_number(loc);
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = self.pos;
            while self
                .peek()
                .map(|c| c.is_ascii_alphanumeric() || c == b'_')
                .unwrap_or(false)
            {
                self.bump();
            }
            let text = std::str::from_utf8(&self.src[start..self.pos])
                .expect("ascii ident")
                .to_string();
            return Ok(Token {
                kind: TokenKind::Ident(text),
                loc,
            });
        }
        for &p in PUNCTS {
            if self.src[self.pos..].starts_with(p.as_bytes()) {
                for _ in 0..p.len() {
                    self.bump();
                }
                return Ok(Token {
                    kind: TokenKind::Punct(p),
                    loc,
                });
            }
        }
        Err(HlsError::Lex {
            loc,
            detail: format!("unexpected character `{}`", c as char),
        })
    }

    fn lex_number(&mut self, loc: Loc) -> Result<Token, HlsError> {
        let start = self.pos;
        let hex = self.src[self.pos..].starts_with(b"0x") || self.src[self.pos..].starts_with(b"0X");
        if hex {
            self.bump();
            self.bump();
        }
        while self
            .peek()
            .map(|c| c.is_ascii_alphanumeric() || c == b'_')
            .unwrap_or(false)
        {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii number");
        let cleaned = text.replace('_', "");
        let value = if hex {
            u64::from_str_radix(&cleaned[2..], 16).map(|v| v as i64)
        } else {
            cleaned.parse::<i64>()
        };
        match value {
            Ok(v) => Ok(Token {
                kind: TokenKind::Int(v),
                loc,
            }),
            Err(_) => Err(HlsError::Lex {
                loc,
                detail: format!("malformed integer literal `{text}`"),
            }),
        }
    }

    /// Lex the entire input into a vector (including the trailing EOF).
    ///
    /// # Errors
    ///
    /// Propagates the first lexical error.
    pub fn tokenize(mut self) -> Result<Vec<Token>, HlsError> {
        let mut out = Vec::new();
        loop {
            let t = self.next_token()?;
            let eof = t.kind == TokenKind::Eof;
            out.push(t);
            if eof {
                return Ok(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn basic_tokens() {
        let k = kinds("int x = 42;");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("int".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Punct("="),
                TokenKind::Int(42),
                TokenKind::Punct(";"),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn maximal_munch_operators() {
        let k = kinds("a <<= b << c <= d");
        let puncts: Vec<_> = k
            .iter()
            .filter_map(|t| match t {
                TokenKind::Punct(p) => Some(*p),
                _ => None,
            })
            .collect();
        assert_eq!(puncts, vec!["<<=", "<<", "<="]);
    }

    #[test]
    fn hex_and_underscores() {
        assert_eq!(kinds("0xFF")[0], TokenKind::Int(255));
        assert_eq!(kinds("1_000_000")[0], TokenKind::Int(1_000_000));
    }

    #[test]
    fn comments_skipped() {
        let k = kinds("a // line\n /* block\n comment */ b");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(matches!(
            Lexer::new("/* nope").tokenize(),
            Err(HlsError::Lex { .. })
        ));
    }

    #[test]
    fn locations_track_lines() {
        let toks = Lexer::new("a\n  b").tokenize().unwrap();
        assert_eq!(toks[0].loc, Loc { line: 1, col: 1 });
        assert_eq!(toks[1].loc, Loc { line: 2, col: 3 });
    }

    #[test]
    fn unknown_character_errors() {
        assert!(matches!(
            Lexer::new("a @ b").tokenize(),
            Err(HlsError::Lex { .. })
        ));
    }
}
