//! Recursive-descent parser for the C subset.

use super::ast::*;
use super::lexer::{Lexer, Token, TokenKind};
use crate::{HlsError, Loc};

/// Parse a full translation unit.
///
/// # Errors
///
/// Returns [`HlsError::Lex`] / [`HlsError::Parse`] on malformed input.
pub fn parse(src: &str) -> Result<Program, HlsError> {
    let tokens = Lexer::new(src).tokenize()?;
    let mut p = Parser { tokens, pos: 0 };
    let mut program = Program::default();
    while !p.at_eof() {
        program.functions.push(p.function()?);
    }
    if program.functions.is_empty() {
        return Err(HlsError::Parse {
            loc: Loc::default(),
            detail: "no functions in translation unit".into(),
        });
    }
    Ok(program)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn at_eof(&self) -> bool {
        self.peek().kind == TokenKind::Eof
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, detail: impl Into<String>) -> Result<T, HlsError> {
        Err(HlsError::Parse {
            loc: self.peek().loc,
            detail: detail.into(),
        })
    }

    fn eat_punct(&mut self, p: &str) -> Result<Loc, HlsError> {
        match &self.peek().kind {
            TokenKind::Punct(q) if *q == p => Ok(self.bump().loc),
            other => self.err(format!("expected `{p}`, found {other:?}")),
        }
    }

    fn try_punct(&mut self, p: &str) -> bool {
        if matches!(&self.peek().kind, TokenKind::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<(String, Loc), HlsError> {
        match &self.peek().kind {
            TokenKind::Ident(_) => {
                let t = self.bump();
                match t.kind {
                    TokenKind::Ident(s) => Ok((s, t.loc)),
                    _ => unreachable!(),
                }
            }
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn peek_type(&self) -> Option<IntType> {
        match &self.peek().kind {
            TokenKind::Ident(s) => IntType::from_keyword(s),
            _ => None,
        }
    }

    fn peek_is_void(&self) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s == "void")
    }

    fn function(&mut self) -> Result<Function, HlsError> {
        let loc = self.peek().loc;
        let return_type = if self.peek_is_void() {
            self.bump();
            None
        } else if let Some(ty) = self.peek_type() {
            self.bump();
            Some(ty)
        } else {
            return self.err("expected return type");
        };
        let (name, _) = self.ident()?;
        self.eat_punct("(")?;
        let mut params = Vec::new();
        if !self.try_punct(")") {
            loop {
                let ploc = self.peek().loc;
                let Some(ty) = self.peek_type() else {
                    return self.err("expected parameter type");
                };
                self.bump();
                let pointer = self.try_punct("*");
                let (pname, _) = self.ident()?;
                let mut array = if pointer { Some(0) } else { None };
                if self.try_punct("[") {
                    let size = if let TokenKind::Int(n) = self.peek().kind {
                        self.bump();
                        n as u32
                    } else {
                        0
                    };
                    self.eat_punct("]")?;
                    array = Some(size);
                }
                params.push(Param {
                    name: pname,
                    ty,
                    array,
                    loc: ploc,
                });
                if self.try_punct(")") {
                    break;
                }
                self.eat_punct(",")?;
            }
        }
        let body = self.block()?;
        Ok(Function {
            name,
            return_type,
            params,
            body,
            loc,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, HlsError> {
        self.eat_punct("{")?;
        let mut stmts = Vec::new();
        while !self.try_punct("}") {
            if self.at_eof() {
                return self.err("unexpected end of input in block");
            }
            stmts.push(self.statement()?);
        }
        Ok(stmts)
    }

    fn stmt_or_block(&mut self) -> Result<Vec<Stmt>, HlsError> {
        if matches!(&self.peek().kind, TokenKind::Punct("{")) {
            self.block()
        } else {
            Ok(vec![self.statement()?])
        }
    }

    fn statement(&mut self) -> Result<Stmt, HlsError> {
        let loc = self.peek().loc;
        // declaration
        if let Some(ty) = self.peek_type() {
            self.bump();
            let (name, _) = self.ident()?;
            if self.try_punct("[") {
                let size = match self.peek().kind {
                    TokenKind::Int(n) if n > 0 => {
                        self.bump();
                        n as u32
                    }
                    _ => return self.err("local array needs a positive constant size"),
                };
                self.eat_punct("]")?;
                let mut init = Vec::new();
                if self.try_punct("=") {
                    self.eat_punct("{")?;
                    if !self.try_punct("}") {
                        loop {
                            let neg = self.try_punct("-");
                            match self.peek().kind {
                                TokenKind::Int(v) => {
                                    self.bump();
                                    init.push(if neg { -v } else { v });
                                }
                                _ => return self.err("array initializers must be constants"),
                            }
                            if self.try_punct("}") {
                                break;
                            }
                            self.eat_punct(",")?;
                        }
                    }
                }
                self.eat_punct(";")?;
                return Ok(Stmt::ArrayDecl {
                    ty,
                    name,
                    size,
                    init,
                    loc,
                });
            }
            let init = if self.try_punct("=") {
                Some(self.expr()?)
            } else {
                None
            };
            self.eat_punct(";")?;
            return Ok(Stmt::Decl {
                ty,
                name,
                init,
                loc,
            });
        }
        // keywords
        if let TokenKind::Ident(kw) = &self.peek().kind {
            match kw.as_str() {
                "if" => {
                    self.bump();
                    self.eat_punct("(")?;
                    let cond = self.expr()?;
                    self.eat_punct(")")?;
                    let then_body = self.stmt_or_block()?;
                    let else_body = if matches!(&self.peek().kind, TokenKind::Ident(s) if s == "else")
                    {
                        self.bump();
                        self.stmt_or_block()?
                    } else {
                        Vec::new()
                    };
                    return Ok(Stmt::If {
                        cond,
                        then_body,
                        else_body,
                        loc,
                    });
                }
                "while" => {
                    self.bump();
                    self.eat_punct("(")?;
                    let cond = self.expr()?;
                    self.eat_punct(")")?;
                    let body = self.stmt_or_block()?;
                    return Ok(Stmt::While { cond, body, loc });
                }
                "for" => {
                    self.bump();
                    self.eat_punct("(")?;
                    let init = Box::new(self.statement()?); // consumes `;`
                    let cond = self.expr()?;
                    self.eat_punct(";")?;
                    let step = Box::new(self.simple_statement(false)?);
                    self.eat_punct(")")?;
                    let body = self.stmt_or_block()?;
                    return Ok(Stmt::For {
                        init,
                        cond,
                        step,
                        body,
                        loc,
                    });
                }
                "break" => {
                    self.bump();
                    self.eat_punct(";")?;
                    return Ok(Stmt::Break { loc });
                }
                "continue" => {
                    self.bump();
                    self.eat_punct(";")?;
                    return Ok(Stmt::Continue { loc });
                }
                "return" => {
                    self.bump();
                    let value = if self.try_punct(";") {
                        None
                    } else {
                        let v = self.expr()?;
                        self.eat_punct(";")?;
                        Some(v)
                    };
                    return Ok(Stmt::Return { value, loc });
                }
                _ => {}
            }
        }
        let s = self.simple_statement(true)?;
        Ok(s)
    }

    /// Assignment / call / inc-dec statement; `want_semi` controls whether a
    /// trailing `;` is consumed (false inside `for(...)` steps).
    fn simple_statement(&mut self, want_semi: bool) -> Result<Stmt, HlsError> {
        let loc = self.peek().loc;
        let (name, nloc) = self.ident()?;
        let stmt = if self.try_punct("[") {
            let index = self.expr()?;
            self.eat_punct("]")?;
            // compound ops on array elements
            let op = self.assign_op()?;
            let rhs = self.expr()?;
            let value = match op {
                None => rhs,
                Some(binop) => Expr::Binary {
                    op: binop,
                    lhs: Box::new(Expr::Index {
                        name: name.clone(),
                        index: Box::new(index.clone()),
                        loc: nloc,
                    }),
                    rhs: Box::new(rhs),
                    loc,
                },
            };
            Stmt::Store {
                name,
                index,
                value,
                loc,
            }
        } else if self.try_punct("(") {
            let mut args = Vec::new();
            if !self.try_punct(")") {
                loop {
                    args.push(self.expr()?);
                    if self.try_punct(")") {
                        break;
                    }
                    self.eat_punct(",")?;
                }
            }
            Stmt::ExprStmt {
                expr: Expr::Call {
                    name,
                    args,
                    loc: nloc,
                },
                loc,
            }
        } else if self.try_punct("++") || {
            // peek for -- without consuming on failure
            matches!(&self.peek().kind, TokenKind::Punct("--")) && {
                self.bump();
                true
            }
        } {
            // `x++` / `x--`: which one did we consume? Inspect previous token.
            let prev = &self.tokens[self.pos - 1];
            let op = if matches!(prev.kind, TokenKind::Punct("++")) {
                BinOp::Add
            } else {
                BinOp::Sub
            };
            Stmt::Assign {
                name: name.clone(),
                value: Expr::Binary {
                    op,
                    lhs: Box::new(Expr::Var {
                        name,
                        loc: nloc,
                    }),
                    rhs: Box::new(Expr::Literal { value: 1, loc }),
                    loc,
                },
                loc,
            }
        } else {
            let op = self.assign_op()?;
            let rhs = self.expr()?;
            let value = match op {
                None => rhs,
                Some(binop) => Expr::Binary {
                    op: binop,
                    lhs: Box::new(Expr::Var {
                        name: name.clone(),
                        loc: nloc,
                    }),
                    rhs: Box::new(rhs),
                    loc,
                },
            };
            Stmt::Assign { name, value, loc }
        };
        if want_semi {
            self.eat_punct(";")?;
        }
        Ok(stmt)
    }

    /// Consume `=` or a compound assignment operator, returning the
    /// underlying binary op for compound forms.
    fn assign_op(&mut self) -> Result<Option<BinOp>, HlsError> {
        let ops: &[(&str, BinOp)] = &[
            ("+=", BinOp::Add),
            ("-=", BinOp::Sub),
            ("*=", BinOp::Mul),
            ("/=", BinOp::Div),
            ("%=", BinOp::Mod),
            ("&=", BinOp::And),
            ("|=", BinOp::Or),
            ("^=", BinOp::Xor),
            ("<<=", BinOp::Shl),
            (">>=", BinOp::Shr),
        ];
        for (sym, op) in ops {
            if self.try_punct(sym) {
                return Ok(Some(*op));
            }
        }
        self.eat_punct("=")?;
        Ok(None)
    }

    fn expr(&mut self) -> Result<Expr, HlsError> {
        self.binary_expr(0)
    }

    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr, HlsError> {
        let mut lhs = self.unary_expr()?;
        while let Some((op, prec)) = self.peek_binop() {
            if prec < min_prec {
                break;
            }
            let loc = self.bump().loc;
            let rhs = self.binary_expr(prec + 1)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                loc,
            };
        }
        Ok(lhs)
    }

    fn peek_binop(&self) -> Option<(BinOp, u8)> {
        let p = match &self.peek().kind {
            TokenKind::Punct(p) => *p,
            _ => return None,
        };
        Some(match p {
            "||" => (BinOp::LogOr, 1),
            "&&" => (BinOp::LogAnd, 2),
            "|" => (BinOp::Or, 3),
            "^" => (BinOp::Xor, 4),
            "&" => (BinOp::And, 5),
            "==" => (BinOp::Eq, 6),
            "!=" => (BinOp::Ne, 6),
            "<" => (BinOp::Lt, 7),
            "<=" => (BinOp::Le, 7),
            ">" => (BinOp::Gt, 7),
            ">=" => (BinOp::Ge, 7),
            "<<" => (BinOp::Shl, 8),
            ">>" => (BinOp::Shr, 8),
            "+" => (BinOp::Add, 9),
            "-" => (BinOp::Sub, 9),
            "*" => (BinOp::Mul, 10),
            "/" => (BinOp::Div, 10),
            "%" => (BinOp::Mod, 10),
            _ => return None,
        })
    }

    fn unary_expr(&mut self) -> Result<Expr, HlsError> {
        let loc = self.peek().loc;
        if self.try_punct("-") {
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                operand: Box::new(self.unary_expr()?),
                loc,
            });
        }
        if self.try_punct("~") {
            return Ok(Expr::Unary {
                op: UnOp::BitNot,
                operand: Box::new(self.unary_expr()?),
                loc,
            });
        }
        if self.try_punct("!") {
            return Ok(Expr::Unary {
                op: UnOp::LogNot,
                operand: Box::new(self.unary_expr()?),
                loc,
            });
        }
        if self.try_punct("+") {
            return self.unary_expr();
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, HlsError> {
        let loc = self.peek().loc;
        match self.peek().kind.clone() {
            TokenKind::Int(value) => {
                self.bump();
                Ok(Expr::Literal { value, loc })
            }
            TokenKind::Punct("(") => {
                self.bump();
                // cast or parenthesized expression
                if let Some(ty) = self.peek_type() {
                    // lookahead: `(type)` followed by expression
                    if matches!(
                        self.tokens.get(self.pos + 1).map(|t| &t.kind),
                        Some(TokenKind::Punct(")"))
                    ) {
                        self.bump(); // type
                        self.eat_punct(")")?;
                        let operand = self.unary_expr()?;
                        return Ok(Expr::Cast {
                            ty,
                            operand: Box::new(operand),
                            loc,
                        });
                    }
                }
                let e = self.expr()?;
                self.eat_punct(")")?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if name == "true" || name == "false" {
                    self.bump();
                    return Ok(Expr::Literal {
                        value: i64::from(name == "true"),
                        loc,
                    });
                }
                self.bump();
                if self.try_punct("[") {
                    let index = self.expr()?;
                    self.eat_punct("]")?;
                    Ok(Expr::Index {
                        name,
                        index: Box::new(index),
                        loc,
                    })
                } else if self.try_punct("(") {
                    let mut args = Vec::new();
                    if !self.try_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.try_punct(")") {
                                break;
                            }
                            self.eat_punct(",")?;
                        }
                    }
                    Ok(Expr::Call { name, args, loc })
                } else {
                    Ok(Expr::Var { name, loc })
                }
            }
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_function() {
        let p = parse("int f(int a) { return a + 1; }").unwrap();
        assert_eq!(p.functions.len(), 1);
        let f = &p.functions[0];
        assert_eq!(f.name, "f");
        assert_eq!(f.params.len(), 1);
        assert_eq!(f.return_type, Some(IntType::I32));
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse("int f() { return 1 + 2 * 3; }").unwrap();
        let Stmt::Return { value: Some(e), .. } = &p.functions[0].body[0] else {
            panic!("expected return");
        };
        let Expr::Binary { op: BinOp::Add, rhs, .. } = e else {
            panic!("expected + at top, got {e:?}");
        };
        assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn for_loop_and_arrays() {
        let src = r#"
            void f(int32 *src, int32 dst[64]) {
                int32 acc = 0;
                for (int i = 0; i < 64; i++) {
                    dst[i] = src[i] * 2;
                    acc += src[i];
                }
            }
        "#;
        let p = parse(src).unwrap();
        let f = &p.functions[0];
        assert!(f.return_type.is_none());
        assert_eq!(f.params[0].array, Some(0));
        assert_eq!(f.params[1].array, Some(64));
        assert!(matches!(f.body[1], Stmt::For { .. }));
    }

    #[test]
    fn local_array_with_init() {
        let src = "int f() { int16 coef[4] = {1, -2, 3, 4}; return coef[0]; }";
        let p = parse(src).unwrap();
        let Stmt::ArrayDecl { size, init, .. } = &p.functions[0].body[0] else {
            panic!("expected array decl");
        };
        assert_eq!(*size, 4);
        assert_eq!(init, &vec![1, -2, 3, 4]);
    }

    #[test]
    fn if_else_and_compound_assign() {
        let src = r#"
            int f(int a) {
                int x = 0;
                if (a > 10) { x += a; } else x -= a;
                while (x > 0) x >>= 1;
                return x;
            }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.functions[0].body.len(), 4);
    }

    #[test]
    fn casts_parse() {
        let p = parse("int f(int a) { return (int8)a + (uint32)5; }").unwrap();
        let Stmt::Return { value: Some(e), .. } = &p.functions[0].body[0] else {
            panic!()
        };
        let Expr::Binary { lhs, .. } = e else { panic!() };
        assert!(matches!(**lhs, Expr::Cast { .. }));
    }

    #[test]
    fn multiple_functions_and_calls() {
        let src = r#"
            int sq(int x) { return x * x; }
            int f(int a, int b) { return sq(a) + sq(b); }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.functions.len(), 2);
        assert!(p.function("sq").is_some());
    }

    #[test]
    fn error_messages_have_locations() {
        let err = parse("int f( { }").unwrap_err();
        match err {
            HlsError::Parse { loc, .. } => assert_eq!(loc.line, 1),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(parse("").is_err());
        assert!(parse("int f() { return 1 }").is_err()); // missing ;
    }

    #[test]
    fn logical_operators() {
        let p = parse("bool f(int a, int b) { return a > 0 && b > 0 || !a; }").unwrap();
        let Stmt::Return { value: Some(e), .. } = &p.functions[0].body[0] else {
            panic!()
        };
        assert!(matches!(e, Expr::Binary { op: BinOp::LogOr, .. }));
    }
}
