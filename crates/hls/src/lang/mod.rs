//! The synthesizable C-subset frontend: lexer, AST, and parser.
//!
//! The accepted language covers the constructs the paper's use-case kernels
//! need: sized integer types (`int8`/`uint8` … `int64`/`uint64`, plus C's
//! `int`/`unsigned` as 32-bit aliases and `bool`/`char`), one-dimensional
//! arrays (local or parameters), `if`/`else`, `while`, `for`, `return`,
//! compound assignment, full C operator precedence, and calls to other
//! functions defined in the same translation unit (inlined by the
//! middle-end).

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::*;
pub use lexer::{Lexer, Token, TokenKind};
pub use parser::parse;
