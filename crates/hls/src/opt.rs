//! Middle-end optimizations over the IR: constant folding and propagation,
//! common-subexpression elimination, strength reduction, dead-code
//! elimination, CFG simplification, and (at the AST level) full loop
//! unrolling for constant-trip `for` loops.
//!
//! This module also owns the *evaluation semantics* of the subset
//! ([`eval_bin`] / [`eval_un`] / [`normalize`]): the optimizer, the
//! cycle-accurate simulator, and the datapath all agree on these semantics,
//! which is what makes HLS-vs-software co-simulation meaningful.
//! Division by zero yields all-ones (quotient) / the dividend (remainder),
//! matching the hardware divider in `hermes-rtl`.

use crate::ir::{Instr, IrFunction, IrOp, Operand, TempId, Terminator, VarId};
use crate::lang::ast::{BinOp, IntType, Stmt, UnOp};
use std::collections::{HashMap, HashSet};

/// Normalize a raw value to the canonical representation of `ty`:
/// masked to `ty.width` bits, then sign- or zero-extended into `i64`.
pub fn normalize(value: i64, ty: IntType) -> i64 {
    let w = ty.width;
    if w >= 64 {
        return value;
    }
    let masked = (value as u64) & ((1u64 << w) - 1);
    if ty.signed {
        let shift = 64 - w;
        ((masked << shift) as i64) >> shift
    } else {
        masked as i64
    }
}

/// Evaluate a binary operation on canonical values of `ty` (the unified
/// operand type), returning a canonical result.
pub fn eval_bin(op: BinOp, a: i64, b: i64, ty: IntType) -> i64 {
    let ua = normalize(a, ty) as u64 & mask(ty.width);
    let ub = normalize(b, ty) as u64 & mask(ty.width);
    let sa = normalize(a, ty);
    let sb = normalize(b, ty);
    let raw: i64 = match op {
        BinOp::Add => sa.wrapping_add(sb),
        BinOp::Sub => sa.wrapping_sub(sb),
        BinOp::Mul => sa.wrapping_mul(sb),
        BinOp::Div => {
            if ub == 0 || (ty.signed && sb == 0) {
                -1 // all-ones
            } else if ty.signed {
                sa.wrapping_div(sb)
            } else {
                (ua / ub) as i64
            }
        }
        BinOp::Mod => {
            if ub == 0 || (ty.signed && sb == 0) {
                sa
            } else if ty.signed {
                sa.wrapping_rem(sb)
            } else {
                (ua % ub) as i64
            }
        }
        BinOp::And => sa & sb,
        BinOp::Or => sa | sb,
        BinOp::Xor => sa ^ sb,
        BinOp::Shl => {
            let sh = (ub & 0x3F).min(63) as u32;
            ((ua << sh) & mask(ty.width)) as i64
        }
        BinOp::Shr => {
            let sh = (ub & 0x3F).min(63) as u32;
            if ty.signed {
                sa >> sh
            } else {
                (ua >> sh) as i64
            }
        }
        BinOp::Lt => i64::from(if ty.signed { sa < sb } else { ua < ub }),
        BinOp::Le => i64::from(if ty.signed { sa <= sb } else { ua <= ub }),
        BinOp::Gt => i64::from(if ty.signed { sa > sb } else { ua > ub }),
        BinOp::Ge => i64::from(if ty.signed { sa >= sb } else { ua >= ub }),
        BinOp::Eq => i64::from(ua == ub),
        BinOp::Ne => i64::from(ua != ub),
        BinOp::LogAnd => i64::from(sa != 0 && sb != 0),
        BinOp::LogOr => i64::from(sa != 0 || sb != 0),
    };
    let result_ty = if op.is_comparison() || matches!(op, BinOp::LogAnd | BinOp::LogOr) {
        IntType::BOOL
    } else {
        ty
    };
    normalize(raw, result_ty)
}

/// Evaluate a unary operation on a canonical value.
pub fn eval_un(op: UnOp, a: i64, ty: IntType) -> i64 {
    match op {
        UnOp::Neg => normalize(normalize(a, ty).wrapping_neg(), ty),
        UnOp::BitNot => normalize(!normalize(a, ty), ty),
        UnOp::LogNot => i64::from(normalize(a, ty) == 0),
    }
}

fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Optimization statistics (for flow reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Instructions folded to constants.
    pub folded: usize,
    /// Instructions removed as dead.
    pub dce_removed: usize,
    /// Duplicate expressions eliminated.
    pub cse_hits: usize,
    /// Multiplications/divisions strength-reduced to shifts/masks.
    pub strength_reduced: usize,
    /// Blocks removed by CFG simplification.
    pub blocks_removed: usize,
}

/// Run the full optimization pipeline to a fixpoint (bounded).
pub fn optimize(func: &mut IrFunction) -> OptStats {
    let mut stats = OptStats::default();
    for _ in 0..8 {
        let mut changed = false;
        changed |= constant_fold(func, &mut stats);
        changed |= strength_reduce(func, &mut stats);
        changed |= cse(func, &mut stats);
        changed |= dce(func, &mut stats);
        changed |= simplify_cfg(func, &mut stats);
        if !changed {
            break;
        }
    }
    stats
}

/// Per-block constant folding and propagation (temps and block-local
/// variable values), plus constant-branch elimination.
pub fn constant_fold(func: &mut IrFunction, stats: &mut OptStats) -> bool {
    let mut changed = false;
    let temp_types = func.temp_types.clone();
    for block in &mut func.blocks {
        let mut temp_const: HashMap<TempId, i64> = HashMap::new();
        let mut var_const: HashMap<VarId, i64> = HashMap::new();
        let subst = |op: Operand,
                     temp_const: &HashMap<TempId, i64>,
                     var_const: &HashMap<VarId, i64>| match op {
            Operand::Temp(t) => temp_const
                .get(&t)
                .map(|&v| Operand::Const(v))
                .unwrap_or(op),
            Operand::Var(v) => var_const
                .get(&v)
                .map(|&c| Operand::Const(c))
                .unwrap_or(op),
            c => c,
        };
        let mut new_instrs = Vec::with_capacity(block.instrs.len());
        for mut instr in block.instrs.drain(..) {
            // substitute known-constant operands
            match &mut instr.op {
                IrOp::Bin { a, b, .. } => {
                    *a = subst(*a, &temp_const, &var_const);
                    *b = subst(*b, &temp_const, &var_const);
                }
                IrOp::Un { a, .. } | IrOp::Cast { a, .. } => {
                    *a = subst(*a, &temp_const, &var_const);
                }
                IrOp::Load { index, .. } => {
                    *index = subst(*index, &temp_const, &var_const);
                }
                IrOp::Store { index, value, .. } => {
                    *index = subst(*index, &temp_const, &var_const);
                    *value = subst(*value, &temp_const, &var_const);
                }
                IrOp::SetVar { value, .. } => {
                    *value = subst(*value, &temp_const, &var_const);
                }
            }
            // evaluate
            match &instr.op {
                IrOp::Bin {
                    op,
                    a: Operand::Const(a),
                    b: Operand::Const(b),
                } => {
                    let operand_ty = instr_operand_ty(&instr, &temp_types);
                    let v = eval_bin(*op, *a, *b, operand_ty);
                    temp_const.insert(instr.dst.expect("bin has dst"), v);
                    stats.folded += 1;
                    changed = true;
                    continue; // instruction removed
                }
                IrOp::Un {
                    op,
                    a: Operand::Const(a),
                } => {
                    let v = eval_un(*op, *a, instr.ty);
                    temp_const.insert(instr.dst.expect("un has dst"), v);
                    stats.folded += 1;
                    changed = true;
                    continue;
                }
                IrOp::Cast {
                    a: Operand::Const(a),
                    from,
                } => {
                    let v = normalize(normalize(*a, *from), instr.ty);
                    temp_const.insert(instr.dst.expect("cast has dst"), v);
                    stats.folded += 1;
                    changed = true;
                    continue;
                }
                IrOp::SetVar { var, value } => {
                    match value {
                        Operand::Const(c) => {
                            let c = normalize(*c, func.vars[var.0 as usize].ty);
                            var_const.insert(*var, c);
                        }
                        _ => {
                            var_const.remove(var);
                        }
                    }
                }
                _ => {}
            }
            new_instrs.push(instr);
        }
        block.instrs = new_instrs;
        // fold constant branches
        if let Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        } = block.term.clone()
        {
            let c = subst(cond, &temp_const, &var_const);
            match c {
                Operand::Const(v) => {
                    block.term = Terminator::Jump(if v != 0 { then_bb } else { else_bb });
                    changed = true;
                }
                other if other != cond => {
                    block.term = Terminator::Branch {
                        cond: other,
                        then_bb,
                        else_bb,
                    };
                    changed = true;
                }
                _ => {}
            }
        }
        // substitute constants into Jump/Return terminators
        if let Terminator::Return(Some(v)) = block.term.clone() {
            let s = subst(v, &temp_const, &var_const);
            if s != v {
                block.term = Terminator::Return(Some(s));
                changed = true;
            }
        }
    }
    changed
}

fn instr_operand_ty(instr: &Instr, temp_types: &[IntType]) -> IntType {
    // For comparisons the unified operand type is not the result type;
    // reconstruct it from the operand temps if possible.
    if let IrOp::Bin { op, a, b } = &instr.op {
        if op.is_comparison() || matches!(op, BinOp::LogAnd | BinOp::LogOr) {
            let ty_of = |o: &Operand| match o {
                Operand::Temp(t) => Some(temp_types[t.0 as usize]),
                _ => None,
            };
            return match (ty_of(a), ty_of(b)) {
                (Some(x), Some(y)) => x.unify(y),
                (Some(x), None) | (None, Some(x)) => x,
                // Both operands are canonical constants: compare them as
                // 64-bit signed, which is exact for canonical values.
                (None, None) => IntType {
                    width: 64,
                    signed: true,
                },
            };
        }
    }
    instr.ty
}

/// Rewrite multiply/divide/modulo by powers of two into shifts/masks
/// (unsigned only for division, as in C semantics for non-negative values).
pub fn strength_reduce(func: &mut IrFunction, stats: &mut OptStats) -> bool {
    let mut changed = false;
    for block in &mut func.blocks {
        for instr in &mut block.instrs {
            let IrOp::Bin { op, a, b } = &instr.op else {
                continue;
            };
            let Operand::Const(c) = *b else { continue };
            if c <= 0 || (c as u64).count_ones() != 1 {
                continue;
            }
            let log2 = (c as u64).trailing_zeros() as i64;
            let new = match op {
                BinOp::Mul => Some(IrOp::Bin {
                    op: BinOp::Shl,
                    a: *a,
                    b: Operand::Const(log2),
                }),
                BinOp::Div if !instr.ty.signed => Some(IrOp::Bin {
                    op: BinOp::Shr,
                    a: *a,
                    b: Operand::Const(log2),
                }),
                BinOp::Mod if !instr.ty.signed => Some(IrOp::Bin {
                    op: BinOp::And,
                    a: *a,
                    b: Operand::Const(c - 1),
                }),
                _ => None,
            };
            if let Some(new_op) = new {
                instr.op = new_op;
                stats.strength_reduced += 1;
                changed = true;
            }
        }
    }
    changed
}

/// Per-block common-subexpression elimination over pure ops.
pub fn cse(func: &mut IrFunction, stats: &mut OptStats) -> bool {
    let mut changed = false;
    for block in &mut func.blocks {
        let mut seen: HashMap<String, TempId> = HashMap::new();
        let mut alias: HashMap<TempId, TempId> = HashMap::new();
        let resolve = |op: Operand, alias: &HashMap<TempId, TempId>| match op {
            Operand::Temp(t) => Operand::Temp(alias.get(&t).copied().unwrap_or(t)),
            o => o,
        };
        let mut kept = Vec::with_capacity(block.instrs.len());
        for mut instr in block.instrs.drain(..) {
            // rewrite operands through aliases
            match &mut instr.op {
                IrOp::Bin { a, b, .. } => {
                    *a = resolve(*a, &alias);
                    *b = resolve(*b, &alias);
                }
                IrOp::Un { a, .. } | IrOp::Cast { a, .. } => *a = resolve(*a, &alias),
                IrOp::Load { index, .. } => *index = resolve(*index, &alias),
                IrOp::Store { index, value, .. } => {
                    *index = resolve(*index, &alias);
                    *value = resolve(*value, &alias);
                }
                IrOp::SetVar { value, .. } => *value = resolve(*value, &alias),
            }
            let key = match &instr.op {
                IrOp::Bin { op, a, b } => Some(format!("b{op:?}{a:?}{b:?}")),
                IrOp::Un { op, a } => Some(format!("u{op:?}{a:?}")),
                IrOp::Cast { a, from } => Some(format!("c{from:?}{a:?}{:?}", instr.ty)),
                _ => None,
            };
            // Keys involving Var operands are only valid until that var is
            // rewritten; invalidate conservatively on SetVar.
            if let IrOp::SetVar { var, .. } = &instr.op {
                let var_str = format!("{:?}", Operand::Var(*var));
                seen.retain(|k, _| !k.contains(&var_str));
            }
            if let (Some(key), Some(dst)) = (key, instr.dst) {
                if let Some(&prev) = seen.get(&key) {
                    alias.insert(dst, prev);
                    stats.cse_hits += 1;
                    changed = true;
                    continue;
                }
                seen.insert(key, dst);
            }
            kept.push(instr);
        }
        block.instrs = kept;
        // terminators
        if changed {
            match &mut block.term {
                Terminator::Branch { cond, .. } => *cond = resolve(*cond, &alias),
                Terminator::Return(Some(v)) => *v = resolve(*v, &alias),
                _ => {}
            }
        }
    }
    changed
}

/// Remove instructions whose results are never used and `SetVar`s to
/// variables never read (excluding stores, which are side effects).
pub fn dce(func: &mut IrFunction, stats: &mut OptStats) -> bool {
    let mut used_temps: HashSet<TempId> = HashSet::new();
    let mut read_vars: HashSet<VarId> = HashSet::new();
    let mut note = |op: &Operand| match op {
        Operand::Temp(t) => {
            used_temps.insert(*t);
        }
        Operand::Var(v) => {
            read_vars.insert(*v);
        }
        _ => {}
    };
    for block in &func.blocks {
        for instr in &block.instrs {
            match &instr.op {
                IrOp::Bin { a, b, .. } => {
                    note(a);
                    note(b);
                }
                IrOp::Un { a, .. } | IrOp::Cast { a, .. } => note(a),
                IrOp::Load { index, .. } => note(index),
                IrOp::Store { index, value, .. } => {
                    note(index);
                    note(value);
                }
                IrOp::SetVar { value, .. } => note(value),
            }
        }
        match &block.term {
            Terminator::Branch { cond, .. } => note(cond),
            Terminator::Return(Some(v)) => note(v),
            _ => {}
        }
    }
    let mut changed = false;
    for block in &mut func.blocks {
        let before = block.instrs.len();
        block.instrs.retain(|instr| match (&instr.op, instr.dst) {
            (IrOp::Store { .. }, _) => true,
            (IrOp::SetVar { var, .. }, _) => read_vars.contains(var),
            (_, Some(dst)) => used_temps.contains(&dst),
            _ => true,
        });
        let removed = before - block.instrs.len();
        if removed > 0 {
            stats.dce_removed += removed;
            changed = true;
        }
    }
    changed
}

/// Remove empty forwarding blocks and unreachable blocks.
pub fn simplify_cfg(func: &mut IrFunction, stats: &mut OptStats) -> bool {
    use crate::ir::BlockId;
    let mut changed = false;
    // Forwarding map: empty block with Jump(t) forwards to t.
    let mut forward: HashMap<BlockId, BlockId> = HashMap::new();
    for (i, b) in func.blocks.iter().enumerate() {
        if i != 0 && b.instrs.is_empty() {
            if let Terminator::Jump(t) = b.term {
                if t.0 as usize != i {
                    forward.insert(BlockId(i as u32), t);
                }
            }
        }
    }
    let chase = |mut b: BlockId, forward: &HashMap<BlockId, BlockId>| {
        let mut hops = 0;
        while let Some(&t) = forward.get(&b) {
            b = t;
            hops += 1;
            if hops > forward.len() {
                break;
            }
        }
        b
    };
    if !forward.is_empty() {
        for b in &mut func.blocks {
            match &mut b.term {
                Terminator::Jump(t) => {
                    let nt = chase(*t, &forward);
                    if nt != *t {
                        *t = nt;
                        changed = true;
                    }
                }
                Terminator::Branch {
                    then_bb, else_bb, ..
                } => {
                    let (nt, ne) = (chase(*then_bb, &forward), chase(*else_bb, &forward));
                    if nt != *then_bb || ne != *else_bb {
                        *then_bb = nt;
                        *else_bb = ne;
                        changed = true;
                    }
                }
                _ => {}
            }
        }
    }
    // Unreachable-block elimination: mark from entry.
    let mut reachable = vec![false; func.blocks.len()];
    let mut stack = vec![BlockId(0)];
    while let Some(b) = stack.pop() {
        if std::mem::replace(&mut reachable[b.0 as usize], true) {
            continue;
        }
        match &func.block(b).term {
            Terminator::Jump(t) => stack.push(*t),
            Terminator::Branch {
                then_bb, else_bb, ..
            } => {
                stack.push(*then_bb);
                stack.push(*else_bb);
            }
            Terminator::Return(_) => {}
        }
    }
    if reachable.iter().any(|&r| !r) {
        // compact blocks, remapping ids
        let mut remap: HashMap<u32, u32> = HashMap::new();
        let mut new_blocks = Vec::new();
        for (i, b) in func.blocks.drain(..).enumerate() {
            if reachable[i] {
                remap.insert(i as u32, new_blocks.len() as u32);
                new_blocks.push(b);
            } else {
                stats.blocks_removed += 1;
                changed = true;
            }
        }
        for b in &mut new_blocks {
            match &mut b.term {
                Terminator::Jump(t) => t.0 = remap[&t.0],
                Terminator::Branch {
                    then_bb, else_bb, ..
                } => {
                    then_bb.0 = remap[&then_bb.0];
                    else_bb.0 = remap[&else_bb.0];
                }
                _ => {}
            }
        }
        func.blocks = new_blocks;
    }
    changed
}

/// AST-level full unrolling of `for` loops with compile-time-constant
/// bounds and step, up to `limit` iterations. Returns how many loops were
/// unrolled.
pub fn unroll_for_loops(stmts: &mut Vec<Stmt>, limit: u32) -> usize {
    let mut count = 0;
    let mut i = 0;
    while i < stmts.len() {
        // recurse into nested bodies first
        match &mut stmts[i] {
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                count += unroll_for_loops(then_body, limit);
                count += unroll_for_loops(else_body, limit);
            }
            Stmt::While { body, .. } => {
                count += unroll_for_loops(body, limit);
            }
            Stmt::For { body, .. } => {
                count += unroll_for_loops(body, limit);
            }
            _ => {}
        }
        if let Some(trip) = const_trip_count(&stmts[i], limit) {
            let Stmt::For {
                init, step, body, ..
            } = stmts.remove(i)
            else {
                unreachable!()
            };
            let mut expansion = Vec::with_capacity(1 + trip as usize * (body.len() + 1));
            expansion.push(*init);
            for _ in 0..trip {
                expansion.extend(body.iter().cloned());
                expansion.push((*step).clone());
            }
            let n = expansion.len();
            stmts.splice(i..i, expansion);
            i += n;
            count += 1;
        } else {
            i += 1;
        }
    }
    count
}

/// Compute the trip count of a canonical counted `for` loop
/// (`for (T i = c0; i < cN; i += s)` and friends) when all three parts are
/// constants, body does not reassign the induction variable, and the count
/// does not exceed `limit`.
fn const_trip_count(stmt: &Stmt, limit: u32) -> Option<u64> {
    use crate::lang::ast::Expr;
    let Stmt::For {
        init,
        cond,
        step,
        body,
        ..
    } = stmt
    else {
        return None;
    };
    let (ivar, start) = match &**init {
        Stmt::Decl {
            name,
            init: Some(Expr::Literal { value, .. }),
            ..
        } => (name.clone(), *value),
        Stmt::Assign {
            name,
            value: Expr::Literal { value, .. },
            ..
        } => (name.clone(), *value),
        _ => return None,
    };
    let (op, bound) = match cond {
        Expr::Binary {
            op,
            lhs,
            rhs,
            ..
        } => match (&**lhs, &**rhs) {
            (Expr::Var { name, .. }, Expr::Literal { value, .. }) if *name == ivar => {
                (*op, *value)
            }
            _ => return None,
        },
        _ => return None,
    };
    let stride = match &**step {
        Stmt::Assign {
            name,
            value:
                Expr::Binary {
                    op: BinOp::Add,
                    lhs,
                    rhs,
                    ..
                },
            ..
        } if *name == ivar => match (&**lhs, &**rhs) {
            (Expr::Var { name: n2, .. }, Expr::Literal { value, .. }) if *n2 == ivar => *value,
            _ => return None,
        },
        Stmt::Assign {
            name,
            value:
                Expr::Binary {
                    op: BinOp::Sub,
                    lhs,
                    rhs,
                    ..
                },
            ..
        } if *name == ivar => match (&**lhs, &**rhs) {
            (Expr::Var { name: n2, .. }, Expr::Literal { value, .. }) if *n2 == ivar => -*value,
            _ => return None,
        },
        _ => return None,
    };
    if stride == 0 {
        return None;
    }
    // induction variable must not be written in the body
    fn writes_var(stmts: &[Stmt], var: &str) -> bool {
        stmts.iter().any(|s| match s {
            Stmt::Assign { name, .. } | Stmt::Decl { name, .. } => name == var,
            Stmt::If {
                then_body,
                else_body,
                ..
            } => writes_var(then_body, var) || writes_var(else_body, var),
            Stmt::While { body, .. } => writes_var(body, var),
            Stmt::For {
                init, step, body, ..
            } => {
                writes_var(std::slice::from_ref(init), var)
                    || writes_var(std::slice::from_ref(step), var)
                    || writes_var(body, var)
            }
            _ => false,
        })
    }
    if writes_var(body, &ivar) {
        return None;
    }
    // break/continue change the trip count dynamically: never unroll
    fn has_loop_ctl(stmts: &[Stmt]) -> bool {
        stmts.iter().any(|s| match s {
            Stmt::Break { .. } | Stmt::Continue { .. } => true,
            Stmt::If {
                then_body,
                else_body,
                ..
            } => has_loop_ctl(then_body) || has_loop_ctl(else_body),
            // nested loops own their break/continue
            _ => false,
        })
    }
    if has_loop_ctl(body) {
        return None;
    }
    let mut trips: u64 = 0;
    let mut x = start;
    loop {
        let cont = match op {
            BinOp::Lt => x < bound,
            BinOp::Le => x <= bound,
            BinOp::Gt => x > bound,
            BinOp::Ge => x >= bound,
            BinOp::Ne => x != bound,
            _ => return None,
        };
        if !cont {
            break;
        }
        trips += 1;
        if trips > u64::from(limit) {
            return None;
        }
        x += stride;
    }
    Some(trips)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::lower;
    use crate::lang::parse;

    fn optimized(src: &str) -> (IrFunction, OptStats) {
        let p = parse(src).unwrap();
        let mut f = lower(&p, None).unwrap();
        let stats = optimize(&mut f);
        (f, stats)
    }

    #[test]
    fn folds_constant_expressions() {
        let (f, stats) = optimized("int f() { return 2 + 3 * 4; }");
        assert!(stats.folded >= 2);
        assert_eq!(f.instr_count(), 0, "everything folds away");
        assert!(matches!(
            f.block(crate::ir::BlockId(0)).term,
            Terminator::Return(Some(Operand::Const(14)))
        ));
    }

    #[test]
    fn eval_semantics_wrap() {
        let u8t = IntType {
            width: 8,
            signed: false,
        };
        assert_eq!(eval_bin(BinOp::Add, 250, 10, u8t), 4);
        let i8t = IntType {
            width: 8,
            signed: true,
        };
        assert_eq!(eval_bin(BinOp::Add, 127, 1, i8t), -128);
        assert_eq!(eval_bin(BinOp::Div, 5, 0, i8t), -1);
        assert_eq!(eval_bin(BinOp::Mod, 5, 0, i8t), 5);
        assert_eq!(eval_bin(BinOp::Shr, -8, 1, i8t), -4, "arithmetic shift");
        assert_eq!(eval_bin(BinOp::Shr, 0xF0, 4, u8t), 0xF);
        assert_eq!(eval_un(UnOp::Neg, -128, i8t), -128, "INT_MIN negation wraps");
    }

    #[test]
    fn signed_vs_unsigned_compare() {
        let i8t = IntType {
            width: 8,
            signed: true,
        };
        let u8t = IntType {
            width: 8,
            signed: false,
        };
        assert_eq!(eval_bin(BinOp::Lt, -1, 1, i8t), 1);
        assert_eq!(eval_bin(BinOp::Lt, 255, 1, u8t), 0);
    }

    #[test]
    fn strength_reduces_mul_by_pow2() {
        let (f, stats) = optimized("int f(int a) { return a * 8; }");
        assert_eq!(stats.strength_reduced, 1);
        let has_shl = f
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .any(|i| matches!(i.op, IrOp::Bin { op: BinOp::Shl, .. }));
        assert!(has_shl);
    }

    #[test]
    fn unsigned_div_becomes_shift() {
        let (_, stats) = optimized("uint32 f(uint32 a) { return a / 16 + a % 16; }");
        assert_eq!(stats.strength_reduced, 2);
        // signed division must NOT be reduced
        let (_, s2) = optimized("int f(int a) { return a / 16; }");
        assert_eq!(s2.strength_reduced, 0);
    }

    #[test]
    fn cse_removes_duplicates() {
        let (f, stats) = optimized("int f(int a, int b) { return (a + b) * (a + b); }");
        assert!(stats.cse_hits >= 1);
        let adds = f
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i.op, IrOp::Bin { op: BinOp::Add, .. }))
            .count();
        assert_eq!(adds, 1);
    }

    #[test]
    fn dce_removes_unused() {
        let (f, stats) = optimized("int f(int a) { int unused = a * 77; return a; }");
        assert!(stats.dce_removed >= 1);
        assert_eq!(f.instr_count(), 0);
    }

    #[test]
    fn constant_branch_elided() {
        let (f, _) = optimized("int f(int a) { if (1 < 2) { return a; } return 0 - a; }");
        // after folding the branch and CFG cleanup only the taken path remains
        assert!(f.blocks.len() <= 2, "got {} blocks", f.blocks.len());
    }

    #[test]
    fn unroll_counted_loop() {
        let p = parse("int f(int a) { int s = 0; for (int i = 0; i < 4; i++) { s += a; } return s; }")
            .unwrap();
        let mut func_ast = p.functions[0].clone();
        let n = unroll_for_loops(&mut func_ast.body, 64);
        assert_eq!(n, 1);
        // no For statements remain
        assert!(!func_ast
            .body
            .iter()
            .any(|s| matches!(s, Stmt::For { .. })));
    }

    #[test]
    fn unroll_respects_limit_and_dynamic_bounds() {
        let p = parse("int f(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } return s; }")
            .unwrap();
        let mut body = p.functions[0].body.clone();
        assert_eq!(unroll_for_loops(&mut body, 64), 0, "dynamic bound kept");
        let p2 = parse("int f() { int s = 0; for (int i = 0; i < 1000; i++) { s += i; } return s; }")
            .unwrap();
        let mut body2 = p2.functions[0].body.clone();
        assert_eq!(unroll_for_loops(&mut body2, 64), 0, "over-limit kept");
    }

    #[test]
    fn unrolled_loop_fully_folds() {
        let p = parse("int f() { int s = 0; for (int i = 1; i <= 5; i++) { s += i; } return s; }")
            .unwrap();
        let mut func_ast = p.functions[0].clone();
        unroll_for_loops(&mut func_ast.body, 64);
        let prog = crate::lang::ast::Program {
            functions: vec![func_ast],
        };
        let mut f = lower(&prog, None).unwrap();
        optimize(&mut f);
        assert!(matches!(
            f.block(crate::ir::BlockId(0)).term,
            Terminator::Return(Some(Operand::Const(15)))
        ));
    }

    #[test]
    fn nested_loops_unroll() {
        let src = "int f() { int s = 0; for (int i = 0; i < 3; i++) { for (int j = 0; j < 2; j++) { s += 1; } } return s; }";
        let p = parse(src).unwrap();
        let mut func_ast = p.functions[0].clone();
        let n = unroll_for_loops(&mut func_ast.body, 64);
        assert_eq!(n, 2, "inner unrolled once (pre-clone), then outer");
        let prog = crate::lang::ast::Program {
            functions: vec![func_ast],
        };
        let mut f = lower(&prog, None).unwrap();
        optimize(&mut f);
        assert!(matches!(
            f.block(crate::ir::BlockId(0)).term,
            Terminator::Return(Some(Operand::Const(6)))
        ));
    }
}
