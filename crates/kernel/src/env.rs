//! The `HERMES_EVENT_KERNEL` knob.
//!
//! Strict discipline (PR 8, `hermes-obs::env`): a typo must never
//! silently select the wrong scheduler and invalidate a golden run.
//! Binaries call [`event_kernel_env`] up front and refuse to start on a
//! malformed value; library call sites that cannot surface an error use
//! [`event_kernel_enabled`], which falls back to the default **loudly**
//! (once, through the shared warning sink).

use hermes_obs::env::{bool_lenient, bool_strict, EnvKnobError};

/// The scheduler-selection knob: `on` (default) runs every event-stepped
/// loop on the unified timer wheel, `off` runs the sorted reference
/// scheduler and the legacy per-cycle polling loops. A results no-op by
/// contract — CI diffs both paths byte-for-byte.
pub const EVENT_KERNEL_VAR: &str = "HERMES_EVENT_KERNEL";

/// Parse a raw knob value (`None` = unset = on).
///
/// Split out from [`event_kernel_env`] so the vocabulary is testable
/// without touching the process environment.
///
/// # Errors
///
/// [`EnvKnobError`] when the value is outside `on`/`1`/`true` /
/// `off`/`0`/`false`.
pub fn parse_event_kernel_knob(raw: Option<&str>) -> Result<bool, EnvKnobError> {
    bool_strict(EVENT_KERNEL_VAR, raw, true)
}

/// Read the knob strictly from the environment.
///
/// # Errors
///
/// [`EnvKnobError`] on a malformed value (binaries reject it up front).
pub fn event_kernel_env() -> Result<bool, EnvKnobError> {
    parse_event_kernel_knob(std::env::var(EVENT_KERNEL_VAR).ok().as_deref())
}

/// Lenient library-side read: a malformed value falls back to `on` with
/// a one-shot warning. Engines constructed without an explicit override
/// use this; the experiment binaries have already validated strictly.
pub fn event_kernel_enabled() -> bool {
    bool_lenient(
        EVENT_KERNEL_VAR,
        std::env::var(EVENT_KERNEL_VAR).ok().as_deref(),
        true,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabulary_is_strict_and_defaults_on() {
        assert_eq!(parse_event_kernel_knob(None), Ok(true));
        for on in ["on", "1", "true", " ON "] {
            assert_eq!(parse_event_kernel_knob(Some(on)), Ok(true), "{on}");
        }
        for off in ["off", "0", "false", "OFF"] {
            assert_eq!(parse_event_kernel_knob(Some(off)), Ok(false), "{off}");
        }
        for bad in ["banana", "yes", "2", ""] {
            let err = parse_event_kernel_knob(Some(bad)).unwrap_err();
            assert_eq!(err.name, EVENT_KERNEL_VAR);
            assert_eq!(err.value, bad);
        }
    }
}
