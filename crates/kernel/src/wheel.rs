//! The hierarchical timer wheel, its sorted reference twin, and the
//! shared scheduler façade.
//!
//! Layout (DESIGN.md §14): a power-of-two array of slots covers the
//! window `[now, now + slots)`; slot `time & (slots - 1)` holds exactly
//! the events due at `time`, so posting inside the window is a push and
//! popping is a bitmap skip to the first occupied slot. Events beyond
//! the window wait in the **overflow calendar** and cascade into slots
//! lazily as the hand advances. The pop order is the total order
//! `(time, domain, seq)`; `seq` is the per-wheel monotone post counter,
//! which doubles as the cancellation token.

use hermes_obs::Recorder;
use std::collections::HashMap;
use std::fmt;

/// Simulated time (ticks/cycles — the poster's clock domain).
pub type Time = u64;

/// Default slot count: covers 256 ticks around the hand, which holds the
/// near-term timers of every current subsystem; longer timers cascade.
const DEFAULT_SLOTS: usize = 256;

/// A registered event domain — the middle key of the `(time, domain,
/// seq)` tie-break, so subsystems have a stable, named priority among
/// same-tick events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainId(pub u16);

/// Name registry for [`DomainId`]s. Registration order fixes the
/// same-tick priority; re-registering a name returns the existing id.
#[derive(Debug, Clone, Default)]
pub struct DomainRegistry {
    names: Vec<String>,
}

impl DomainRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        DomainRegistry::default()
    }

    /// Register `name` (idempotent), returning its id.
    ///
    /// # Panics
    ///
    /// Panics past 65 536 domains.
    pub fn register(&mut self, name: &str) -> DomainId {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return DomainId(i as u16);
        }
        let id = u16::try_from(self.names.len()).expect("domain registry full");
        self.names.push(name.to_string());
        DomainId(id)
    }

    /// The name behind an id, if registered.
    pub fn name(&self, id: DomainId) -> Option<&str> {
        self.names.get(usize::from(id.0)).map(String::as_str)
    }

    /// Number of registered domains.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no domain is registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// One scheduled event, as returned by `pop_next`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event<P> {
    /// Due time.
    pub time: Time,
    /// Posting domain.
    pub domain: DomainId,
    /// Monotone post sequence (also the cancellation token).
    pub seq: u64,
    /// The poster's payload.
    pub payload: P,
}

/// A subsystem that consumes due events from the kernel.
pub trait EventSink<P> {
    /// Handle one due event (events arrive in `(time, domain, seq)`
    /// order).
    fn deliver(&mut self, ev: Event<P>);
}

/// Why a post or reschedule was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PostError {
    /// The requested time is behind the hand — the wheel never runs
    /// backwards.
    InPast {
        /// Requested due time.
        time: Time,
        /// Current hand position.
        now: Time,
    },
    /// The token does not name a pending event (already popped,
    /// cancelled, or never posted).
    UnknownToken(u64),
}

impl fmt::Display for PostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PostError::InPast { time, now } => {
                write!(f, "event time {time} is behind the wheel hand {now}")
            }
            PostError::UnknownToken(t) => write!(f, "token {t} names no pending event"),
        }
    }
}

impl std::error::Error for PostError {}

/// Wheel health counters — exported through `hermes-obs` so E18 can
/// gate occupancy and cascade behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WheelStats {
    /// Events accepted by `post` (including reschedules).
    pub posted: u64,
    /// Events returned by `pop_next`.
    pub popped: u64,
    /// Events removed by `cancel` (and the removal half of reschedule).
    pub cancelled: u64,
    /// Cascade sweeps that moved at least one event overflow → slots.
    pub cascades: u64,
    /// Events moved overflow → slots across all cascades.
    pub cascaded_events: u64,
    /// Peak events resident in the slot window.
    pub max_occupancy: u64,
    /// Peak events resident in the overflow calendar.
    pub max_overflow: u64,
}

impl WheelStats {
    /// Export the counters and peaks under `sub` (E18's `kernel` sub).
    pub fn export(&self, obs: &Recorder, sub: &str) {
        for (name, v) in [
            ("posted", self.posted),
            ("popped", self.popped),
            ("cancelled", self.cancelled),
            ("cascades", self.cascades),
            ("cascaded_events", self.cascaded_events),
        ] {
            obs.counter_add(sub, name, v);
        }
        obs.gauge_set(sub, "max_occupancy", self.max_occupancy as i64);
        obs.gauge_set(sub, "max_overflow", self.max_overflow as i64);
    }
}

#[derive(Debug, Clone)]
struct Entry<P> {
    time: Time,
    domain: DomainId,
    seq: u64,
    payload: P,
}

impl<P> Entry<P> {
    fn key(&self) -> (Time, DomainId, u64) {
        (self.time, self.domain, self.seq)
    }
}

/// The hierarchical timer wheel.
#[derive(Debug, Clone)]
pub struct TimerWheel<P> {
    now: Time,
    slots: Vec<Vec<Entry<P>>>,
    /// Occupancy bitmap over the slots (one bit per slot).
    occupied: Vec<u64>,
    /// Live events in the slot window.
    in_window: usize,
    /// Far-future events, unordered; scanned on cascade/peek (small by
    /// construction — only timers beyond the window land here).
    overflow: Vec<Entry<P>>,
    /// token -> due time, for O(1)-ish cancel routing.
    pending: HashMap<u64, Time>,
    next_seq: u64,
    stats: WheelStats,
}

impl<P> Default for TimerWheel<P> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

impl<P> TimerWheel<P> {
    /// A wheel with the default window ([`DEFAULT_SLOTS`] ticks).
    pub fn new() -> Self {
        TimerWheel::with_slots(DEFAULT_SLOTS)
    }

    /// A wheel with a custom window.
    ///
    /// # Panics
    ///
    /// Panics unless `slots` is a power of two ≥ 64.
    pub fn with_slots(slots: usize) -> Self {
        assert!(
            slots.is_power_of_two() && slots >= 64,
            "slot count must be a power of two >= 64"
        );
        TimerWheel {
            now: 0,
            slots: (0..slots).map(|_| Vec::new()).collect(),
            occupied: vec![0; slots / 64],
            in_window: 0,
            overflow: Vec::new(),
            pending: HashMap::new(),
            next_seq: 0,
            stats: WheelStats::default(),
        }
    }

    /// The hand position (time of the last popped event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Pending events (window + overflow).
    pub fn len(&self) -> usize {
        self.in_window + self.overflow.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Health counters.
    pub fn stats(&self) -> &WheelStats {
        &self.stats
    }

    fn mask(&self) -> u64 {
        self.slots.len() as u64 - 1
    }

    fn set_bit(&mut self, idx: usize) {
        self.occupied[idx >> 6] |= 1 << (idx & 63);
    }

    fn clear_bit(&mut self, idx: usize) {
        self.occupied[idx >> 6] &= !(1 << (idx & 63));
    }

    /// Smallest set bit index in `[lo, hi)`, word-skipped.
    fn first_set_in(&self, lo: usize, hi: usize) -> Option<usize> {
        let mut w = lo >> 6;
        let end_w = (hi + 63) >> 6;
        while w < end_w {
            let base = w << 6;
            let mut word = self.occupied[w];
            if base < lo {
                word &= !0u64 << (lo - base);
            }
            if base + 64 > hi {
                word &= !0u64 >> (base + 64 - hi);
            }
            if word != 0 {
                return Some(base + word.trailing_zeros() as usize);
            }
            w += 1;
        }
        None
    }

    /// First occupied slot at or after the hand, in ring order.
    fn next_occupied(&self) -> Option<usize> {
        let start = (self.now & self.mask()) as usize;
        self.first_set_in(start, self.slots.len())
            .or_else(|| self.first_set_in(0, start))
    }

    /// Schedule `payload` at `time` (≥ the hand), returning the token.
    ///
    /// # Errors
    ///
    /// [`PostError::InPast`] when `time` is behind the hand.
    pub fn post(&mut self, time: Time, domain: DomainId, payload: P) -> Result<u64, PostError> {
        if time < self.now {
            return Err(PostError::InPast { time, now: self.now });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Entry { time, domain, seq, payload };
        self.pending.insert(seq, time);
        self.stats.posted += 1;
        if time - self.now < self.slots.len() as u64 {
            let idx = (time & self.mask()) as usize;
            self.slots[idx].push(entry);
            self.set_bit(idx);
            self.in_window += 1;
            self.stats.max_occupancy = self.stats.max_occupancy.max(self.in_window as u64);
        } else {
            self.overflow.push(entry);
            self.stats.max_overflow = self.stats.max_overflow.max(self.overflow.len() as u64);
        }
        Ok(seq)
    }

    /// Pull every overflow event now inside the window into its slot.
    fn cascade(&mut self) {
        let horizon = self.now + self.slots.len() as u64;
        let mut moved = 0u64;
        let mut i = 0;
        while i < self.overflow.len() {
            if self.overflow[i].time < horizon {
                let entry = self.overflow.swap_remove(i);
                let idx = (entry.time & self.mask()) as usize;
                self.slots[idx].push(entry);
                self.set_bit(idx);
                self.in_window += 1;
                moved += 1;
            } else {
                i += 1;
            }
        }
        if moved > 0 {
            self.stats.cascades += 1;
            self.stats.cascaded_events += moved;
            self.stats.max_occupancy = self.stats.max_occupancy.max(self.in_window as u64);
        }
    }

    /// Due time of the earliest pending event, without popping.
    pub fn peek_time(&self) -> Option<Time> {
        if self.in_window > 0 {
            let idx = self.next_occupied().expect("window occupancy tracked");
            let start = (self.now & self.mask()) as usize;
            let n = self.slots.len();
            let offset = (idx + n - start) % n;
            return Some(self.now + offset as u64);
        }
        self.overflow.iter().map(|e| e.time).min()
    }

    /// Pop the earliest pending event — minimum `(time, domain, seq)` —
    /// advancing the hand to its time.
    pub fn pop_next(&mut self) -> Option<Event<P>> {
        if self.in_window == 0 {
            // jump the hand to the overflow minimum and cascade
            let t = self.overflow.iter().map(|e| e.time).min()?;
            self.now = t;
            self.cascade();
        }
        let idx = self.next_occupied().expect("window occupancy tracked");
        let start = (self.now & self.mask()) as usize;
        let n = self.slots.len();
        let offset = (idx + n - start) % n;
        let time = self.now + offset as u64;
        let slot = &mut self.slots[idx];
        debug_assert!(slot.iter().all(|e| e.time == time), "window invariant");
        let best = (1..slot.len()).fold(0, |b, i| if slot[i].key() < slot[b].key() { i } else { b });
        let entry = slot.swap_remove(best);
        if slot.is_empty() {
            self.clear_bit(idx);
        }
        self.in_window -= 1;
        self.pending.remove(&entry.seq);
        self.now = time;
        self.cascade();
        self.stats.popped += 1;
        Some(Event {
            time: entry.time,
            domain: entry.domain,
            seq: entry.seq,
            payload: entry.payload,
        })
    }

    /// Remove a pending event by its slot/overflow location.
    fn take(&mut self, token: u64, time: Time) -> Entry<P> {
        if time.saturating_sub(self.now) < self.slots.len() as u64 && time >= self.now {
            let idx = (time & self.mask()) as usize;
            let pos = self.slots[idx]
                .iter()
                .position(|e| e.seq == token)
                .expect("pending index points into window");
            let entry = self.slots[idx].swap_remove(pos);
            if self.slots[idx].is_empty() {
                self.clear_bit(idx);
            }
            self.in_window -= 1;
            entry
        } else {
            let pos = self.overflow
                .iter()
                .position(|e| e.seq == token)
                .expect("pending index points into overflow");
            self.overflow.swap_remove(pos)
        }
    }

    /// Cancel a pending event. Returns whether the token was pending.
    pub fn cancel(&mut self, token: u64) -> bool {
        let Some(time) = self.pending.remove(&token) else {
            return false;
        };
        self.take(token, time);
        self.stats.cancelled += 1;
        true
    }

    /// Move a pending event to `new_time`, returning the fresh token
    /// (reschedule re-enters the `(time, domain, seq)` order with a new
    /// sequence number).
    ///
    /// # Errors
    ///
    /// [`PostError::UnknownToken`] if nothing pends under `token`;
    /// [`PostError::InPast`] if `new_time` is behind the hand (the event
    /// stays pending at its old time).
    pub fn reschedule(&mut self, token: u64, new_time: Time) -> Result<u64, PostError> {
        let Some(&time) = self.pending.get(&token) else {
            return Err(PostError::UnknownToken(token));
        };
        if new_time < self.now {
            return Err(PostError::InPast { time: new_time, now: self.now });
        }
        self.pending.remove(&token);
        let entry = self.take(token, time);
        self.stats.cancelled += 1;
        self.post(new_time, entry.domain, entry.payload)
    }

    /// Pop-and-deliver every event due at or before `until`, in kernel
    /// order; returns how many were delivered.
    pub fn drain_due(&mut self, until: Time, sink: &mut impl EventSink<P>) -> usize {
        let mut n = 0;
        while self.peek_time().is_some_and(|t| t <= until) {
            let ev = self.pop_next().expect("peeked event pops");
            sink.deliver(ev);
            n += 1;
        }
        n
    }
}

/// The sorted reference scheduler: same API and pop order as
/// [`TimerWheel`], implemented as a flat min-scan. This is the
/// `HERMES_EVENT_KERNEL=off` path and the property-test oracle.
#[derive(Debug, Clone)]
pub struct ReferenceQueue<P> {
    now: Time,
    entries: Vec<Entry<P>>,
    next_seq: u64,
    stats: WheelStats,
}

impl<P> Default for ReferenceQueue<P> {
    fn default() -> Self {
        ReferenceQueue::new()
    }
}

impl<P> ReferenceQueue<P> {
    /// An empty reference queue.
    pub fn new() -> Self {
        ReferenceQueue {
            now: 0,
            entries: Vec::new(),
            next_seq: 0,
            stats: WheelStats::default(),
        }
    }

    /// The hand position.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Health counters (no cascades on this path).
    pub fn stats(&self) -> &WheelStats {
        &self.stats
    }

    /// Schedule `payload` at `time` (≥ the hand), returning the token.
    ///
    /// # Errors
    ///
    /// [`PostError::InPast`] when `time` is behind the hand.
    pub fn post(&mut self, time: Time, domain: DomainId, payload: P) -> Result<u64, PostError> {
        if time < self.now {
            return Err(PostError::InPast { time, now: self.now });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push(Entry { time, domain, seq, payload });
        self.stats.posted += 1;
        self.stats.max_occupancy = self.stats.max_occupancy.max(self.entries.len() as u64);
        Ok(seq)
    }

    /// Due time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        self.entries.iter().map(|e| e.time).min()
    }

    /// Pop the minimum `(time, domain, seq)` event, advancing the hand.
    pub fn pop_next(&mut self) -> Option<Event<P>> {
        if self.entries.is_empty() {
            return None;
        }
        let best = (1..self.entries.len())
            .fold(0, |b, i| if self.entries[i].key() < self.entries[b].key() { i } else { b });
        let entry = self.entries.swap_remove(best);
        self.now = entry.time;
        self.stats.popped += 1;
        Some(Event {
            time: entry.time,
            domain: entry.domain,
            seq: entry.seq,
            payload: entry.payload,
        })
    }

    /// Cancel a pending event. Returns whether the token was pending.
    pub fn cancel(&mut self, token: u64) -> bool {
        match self.entries.iter().position(|e| e.seq == token) {
            Some(pos) => {
                self.entries.swap_remove(pos);
                self.stats.cancelled += 1;
                true
            }
            None => false,
        }
    }

    /// Move a pending event to `new_time`, returning the fresh token.
    ///
    /// # Errors
    ///
    /// Same contract as [`TimerWheel::reschedule`].
    pub fn reschedule(&mut self, token: u64, new_time: Time) -> Result<u64, PostError> {
        let Some(pos) = self.entries.iter().position(|e| e.seq == token) else {
            return Err(PostError::UnknownToken(token));
        };
        if new_time < self.now {
            return Err(PostError::InPast { time: new_time, now: self.now });
        }
        let entry = self.entries.swap_remove(pos);
        self.stats.cancelled += 1;
        self.post(new_time, entry.domain, entry.payload)
    }

    /// Pop-and-deliver every event due at or before `until`.
    pub fn drain_due(&mut self, until: Time, sink: &mut impl EventSink<P>) -> usize {
        let mut n = 0;
        while self.peek_time().is_some_and(|t| t <= until) {
            let ev = self.pop_next().expect("peeked event pops");
            sink.deliver(ev);
            n += 1;
        }
        n
    }
}

/// The scheduler façade engines hold: the timer wheel when the event
/// kernel is on, the sorted reference when it is off. One API, byte-
/// identical pop order — the knob is a speed choice, never a results
/// choice.
#[derive(Debug, Clone)]
pub enum Scheduler<P> {
    /// `HERMES_EVENT_KERNEL=on`: the hierarchical timer wheel.
    Wheel(TimerWheel<P>),
    /// `HERMES_EVENT_KERNEL=off`: the sorted reference queue.
    Reference(ReferenceQueue<P>),
}

impl<P> Scheduler<P> {
    /// A scheduler on the selected path.
    pub fn new(event_kernel: bool) -> Self {
        if event_kernel {
            Scheduler::Wheel(TimerWheel::new())
        } else {
            Scheduler::Reference(ReferenceQueue::new())
        }
    }

    /// The hand position.
    pub fn now(&self) -> Time {
        match self {
            Scheduler::Wheel(w) => w.now(),
            Scheduler::Reference(r) => r.now(),
        }
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        match self {
            Scheduler::Wheel(w) => w.len(),
            Scheduler::Reference(r) => r.len(),
        }
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Health counters of the active path.
    pub fn stats(&self) -> &WheelStats {
        match self {
            Scheduler::Wheel(w) => w.stats(),
            Scheduler::Reference(r) => r.stats(),
        }
    }

    /// Schedule `payload` at `time`.
    ///
    /// # Errors
    ///
    /// [`PostError::InPast`] when `time` is behind the hand.
    pub fn post(&mut self, time: Time, domain: DomainId, payload: P) -> Result<u64, PostError> {
        match self {
            Scheduler::Wheel(w) => w.post(time, domain, payload),
            Scheduler::Reference(r) => r.post(time, domain, payload),
        }
    }

    /// Due time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        match self {
            Scheduler::Wheel(w) => w.peek_time(),
            Scheduler::Reference(r) => r.peek_time(),
        }
    }

    /// Pop the minimum `(time, domain, seq)` event.
    pub fn pop_next(&mut self) -> Option<Event<P>> {
        match self {
            Scheduler::Wheel(w) => w.pop_next(),
            Scheduler::Reference(r) => r.pop_next(),
        }
    }

    /// Cancel a pending event.
    pub fn cancel(&mut self, token: u64) -> bool {
        match self {
            Scheduler::Wheel(w) => w.cancel(token),
            Scheduler::Reference(r) => r.cancel(token),
        }
    }

    /// Move a pending event to `new_time`.
    ///
    /// # Errors
    ///
    /// Same contract as [`TimerWheel::reschedule`].
    pub fn reschedule(&mut self, token: u64, new_time: Time) -> Result<u64, PostError> {
        match self {
            Scheduler::Wheel(w) => w.reschedule(token, new_time),
            Scheduler::Reference(r) => r.reschedule(token, new_time),
        }
    }

    /// Pop-and-deliver every event due at or before `until`.
    pub fn drain_due(&mut self, until: Time, sink: &mut impl EventSink<P>) -> usize {
        match self {
            Scheduler::Wheel(w) => w.drain_due(until, sink),
            Scheduler::Reference(r) => r.drain_due(until, sink),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_rtl::rng::DetRng;

    fn ids() -> (DomainId, DomainId, DomainId) {
        let mut reg = DomainRegistry::new();
        let a = reg.register("alpha");
        let b = reg.register("beta");
        let c = reg.register("gamma");
        assert_eq!(reg.register("beta"), b, "registration is idempotent");
        assert_eq!(reg.name(a), Some("alpha"));
        assert_eq!(reg.len(), 3);
        (a, b, c)
    }

    #[test]
    fn same_tick_orders_by_domain_then_seq() {
        let (a, b, _) = ids();
        let mut w = TimerWheel::new();
        // post in scrambled order; all due at tick 7
        w.post(7, b, "b0").unwrap();
        w.post(7, a, "a0").unwrap();
        w.post(7, b, "b1").unwrap();
        w.post(7, a, "a1").unwrap();
        let order: Vec<&str> = std::iter::from_fn(|| w.pop_next().map(|e| e.payload)).collect();
        assert_eq!(order, ["a0", "a1", "b0", "b1"], "domain first, then seq");
        assert_eq!(w.now(), 7);
    }

    #[test]
    fn far_future_events_cascade_from_overflow() {
        let (a, _, _) = ids();
        let mut w = TimerWheel::with_slots(64);
        w.post(3, a, 3u64).unwrap();
        w.post(1_000, a, 1_000).unwrap(); // far outside the 64-slot window
        w.post(70, a, 70).unwrap();
        w.post(1_001, a, 1_001).unwrap();
        assert_eq!(w.stats().max_overflow, 3, "beyond-window posts wait in overflow");
        let popped: Vec<u64> = std::iter::from_fn(|| w.pop_next().map(|e| e.payload)).collect();
        assert_eq!(popped, [3, 70, 1_000, 1_001]);
        assert!(w.stats().cascades >= 1, "hand advance must cascade");
        assert_eq!(w.stats().cascaded_events, 3);
        assert!(w.is_empty());
    }

    #[test]
    fn cancel_and_reschedule_pending_events() {
        let (a, b, _) = ids();
        let mut w = TimerWheel::with_slots(64);
        let dead = w.post(10, a, "dead").unwrap();
        let keep = w.post(20, a, "keep").unwrap();
        let far = w.post(500, b, "far").unwrap(); // overflow resident
        assert!(w.cancel(dead));
        assert!(!w.cancel(dead), "double cancel is a no-op");
        let moved = w.reschedule(far, 15).unwrap(); // overflow → window, ahead of `keep`
        assert_ne!(moved, far, "reschedule mints a fresh token");
        assert_eq!(w.reschedule(9_999, 30), Err(PostError::UnknownToken(9_999)));
        let order: Vec<&str> = std::iter::from_fn(|| w.pop_next().map(|e| e.payload)).collect();
        assert_eq!(order, ["far", "keep"]);
        assert!(!w.cancel(keep), "popped events are no longer pending");
        assert_eq!(w.stats().cancelled, 2, "cancel + the removal half of reschedule");
    }

    #[test]
    fn post_in_the_past_is_rejected() {
        let (a, _, _) = ids();
        let mut w = TimerWheel::new();
        w.post(50, a, ()).unwrap();
        w.pop_next().unwrap();
        assert_eq!(w.now(), 50);
        assert_eq!(w.post(49, a, ()), Err(PostError::InPast { time: 49, now: 50 }));
        w.post(50, a, ()).unwrap(); // the hand's own tick is still postable
        let tok = w.post(60, a, ()).unwrap();
        assert_eq!(
            w.reschedule(tok, 10),
            Err(PostError::InPast { time: 10, now: 50 }),
        );
        assert_eq!(w.len(), 2, "failed reschedule leaves the event pending");
    }

    #[test]
    fn seeded_wheel_matches_sorted_reference() {
        // property-style: a seeded op stream (posts across the whole
        // horizon, interleaved pops and cancels) must pop in exactly the
        // reference order, tokens and all metadata included.
        let mut rng = DetRng::new(0xE18);
        let mut wheel = TimerWheel::with_slots(128);
        let mut reference = ReferenceQueue::new();
        let mut live = Vec::new(); // parallel (wheel_token, ref_token)
        for round in 0..2_000u64 {
            match rng.below(10) {
                // mostly posts: near-term, far-future, and same-tick ties
                0..=5 => {
                    let t = wheel.now() + rng.below(400);
                    let d = DomainId(rng.below(4) as u16);
                    let wt = wheel.post(t, d, round).unwrap();
                    let rt = reference.post(t, d, round).unwrap();
                    assert_eq!(wt, rt, "token streams stay aligned");
                    live.push(wt);
                }
                6 => {
                    if !live.is_empty() {
                        let tok = live.swap_remove(rng.below(live.len() as u64) as usize);
                        assert_eq!(wheel.cancel(tok), reference.cancel(tok));
                    }
                }
                7 => {
                    if !live.is_empty() {
                        let i = rng.below(live.len() as u64) as usize;
                        let t = wheel.now() + rng.below(600);
                        let wr = wheel.reschedule(live[i], t);
                        let rr = reference.reschedule(live[i], t);
                        assert_eq!(wr, rr);
                        if let Ok(tok) = wr {
                            live[i] = tok;
                        }
                    }
                }
                _ => {
                    let we = wheel.pop_next();
                    let re = reference.pop_next();
                    assert_eq!(we, re, "pop order must match the sorted reference");
                    if let Some(e) = we {
                        live.retain(|&t| t != e.seq);
                    }
                }
            }
            assert_eq!(wheel.len(), reference.len());
            assert_eq!(wheel.peek_time(), reference.peek_time());
        }
        // drain both fully
        loop {
            let (we, re) = (wheel.pop_next(), reference.pop_next());
            assert_eq!(we, re);
            if we.is_none() {
                break;
            }
        }
        assert_eq!(wheel.stats().posted, reference.stats().posted);
        assert_eq!(wheel.stats().popped, reference.stats().popped);
        assert_eq!(wheel.stats().cancelled, reference.stats().cancelled);
        assert!(wheel.stats().cascades > 0, "the op stream must exercise the calendar");
    }

    #[test]
    fn event_sink_drains_in_order() {
        struct Log(Vec<(Time, u16, u64)>);
        impl EventSink<u64> for Log {
            fn deliver(&mut self, ev: Event<u64>) {
                self.0.push((ev.time, ev.domain.0, ev.payload));
            }
        }
        let (a, b, _) = ids();
        for kernel in [true, false] {
            let mut s = Scheduler::new(kernel);
            s.post(5, b, 50).unwrap();
            s.post(2, a, 20).unwrap();
            s.post(5, a, 51).unwrap();
            s.post(9, a, 90).unwrap();
            let mut log = Log(Vec::new());
            assert_eq!(s.drain_due(5, &mut log), 3);
            assert_eq!(log.0, [(2, 0, 20), (5, 0, 51), (5, 1, 50)]);
            assert_eq!(s.len(), 1, "the tick-9 event stays pending");
            assert_eq!(s.peek_time(), Some(9));
        }
    }
}
