//! # hermes-kernel
//!
//! The unified discrete-event kernel: one hierarchical timer wheel every
//! layer of the co-simulation posts into, instead of each crate running
//! its own lock-step polling loop (ROADMAP item 2, DESIGN.md §14).
//!
//! The wheel is a power-of-two slot array covering the window
//! `[now, now + slots)` plus an overflow calendar for events beyond it.
//! Posting and popping inside the window are O(1) (an occupancy bitmap
//! skips empty slots); far-future events cascade lazily from the calendar
//! as the hand advances. Pop order is **total and deterministic**:
//! `(time, domain, seq)` — time first, then the posting [`DomainId`],
//! then the monotone per-wheel sequence number, so two events on the same
//! tick always replay in the same order regardless of post order.
//!
//! Determinism is the contract: the wheel is a speed structure, never a
//! results structure. [`ReferenceQueue`] implements the identical API by
//! linear min-scan over a flat vector; [`Scheduler`] selects between the
//! two from the strict `HERMES_EVENT_KERNEL` knob, and the CI golden
//! gates require byte-identical output from both paths.

pub mod env;
pub mod wheel;

pub use env::{event_kernel_enabled, event_kernel_env, parse_event_kernel_knob, EVENT_KERNEL_VAR};
pub use wheel::{
    DomainId, DomainRegistry, Event, EventSink, PostError, ReferenceQueue, Scheduler, Time,
    TimerWheel, WheelStats,
};
