//! Deterministic post-hoc profiler over a recorder [`Snapshot`].
//!
//! Works entirely on simulated-clock spans and their causal-trace links
//! ([`crate::TraceLink`]), so the same snapshot always yields the same
//! profile, byte for byte, at any worker count:
//!
//! - **Per-span self-time**: a span's duration minus the summed duration
//!   of its direct children (linked via `parent_span`), aggregated per
//!   `(subsystem, name, clock)`.
//! - **Top-k hot spans**: the aggregate rows sorted by self-time.
//! - **Per-request critical paths**: every trace-root span with its
//!   direct child segments, plus the accounting flag `exact` — whether
//!   the segment durations sum to the root's end-to-end duration. The
//!   serving engine emits roots whose segments (queue wait, batch
//!   overhead, service, DMA, stall) are constructed to sum exactly.
//! - **Collapsed stacks**: `root;child;leaf self_time` lines, the
//!   classic flamegraph input format.
//!
//! Instants are leaves with no duration; they never contribute time.

use crate::{EventKind, Snapshot};
use std::collections::HashMap;

/// Aggregate timing of one `(subsystem, name, clock)` span family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// Subsystem the spans were recorded under.
    pub subsystem: String,
    /// Span name.
    pub name: String,
    /// Clock-domain short name (families never mix clocks).
    pub clock: &'static str,
    /// Number of spans in the family.
    pub count: u64,
    /// Summed span durations (ticks).
    pub total: u64,
    /// Summed self-time: duration minus direct traced children (ticks).
    pub self_time: u64,
}

/// One segment of a request's critical-path decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Segment name (e.g. `queue-wait`, `service`, `dma`).
    pub name: String,
    /// Segment duration in ticks of the root's clock.
    pub dur: u64,
}

/// The critical-path decomposition of one trace root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestPath {
    /// The trace the root belongs to.
    pub trace_id: u64,
    /// Root span name (the serving engine uses `request`).
    pub name: String,
    /// Root start tick.
    pub start: u64,
    /// Root duration — for serve roots, the end-to-end latency.
    pub latency: u64,
    /// Direct child segments in recording order.
    pub segments: Vec<Segment>,
    /// Whether the segment durations sum exactly to `latency`
    /// (vacuously true for roots without segments).
    pub exact: bool,
}

/// The result of one profiling pass (see [`profile`]).
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Span families sorted by self-time (desc), then subsystem/name.
    pub spans: Vec<SpanStat>,
    /// Trace-root decompositions in event order.
    pub requests: Vec<RequestPath>,
    /// Collapsed stacks (`a;b;c`, summed self-time), sorted by stack.
    pub folded: Vec<(String, u64)>,
    /// Events dropped from rings before the snapshot was taken —
    /// non-zero means this profile is computed from a truncated record.
    pub dropped_events: u64,
}

impl Profile {
    /// The `k` hottest span families by self-time.
    pub fn hot(&self, k: usize) -> &[SpanStat] {
        &self.spans[..k.min(self.spans.len())]
    }

    /// `(exact, total)` counts over request roots named `name` — the
    /// critical-path accounting gate: `exact == total` means every such
    /// request's segments summed to its end-to-end latency.
    pub fn exact_paths(&self, name: &str) -> (u64, u64) {
        let mut exact = 0;
        let mut total = 0;
        for r in &self.requests {
            if r.name == name {
                total += 1;
                if r.exact {
                    exact += 1;
                }
            }
        }
        (exact, total)
    }

    /// Summed duration per segment name across all request roots, in
    /// first-seen order — the fleet-level "where does latency go" view.
    pub fn segment_totals(&self) -> Vec<(String, u64)> {
        let mut order: Vec<String> = Vec::new();
        let mut sums: HashMap<String, u64> = HashMap::new();
        for r in &self.requests {
            for s in &r.segments {
                if !sums.contains_key(&s.name) {
                    order.push(s.name.clone());
                }
                *sums.entry(s.name.clone()).or_insert(0) += s.dur;
            }
        }
        order.into_iter().map(|n| (n.clone(), sums[&n])).collect()
    }
}

/// Run the profiling pass over a snapshot.
pub fn profile(snap: &Snapshot) -> Profile {
    // one linear pass collecting every span with its location
    struct Row<'a> {
        sub: &'a str,
        name: &'a str,
        clock: &'static str,
        ts: u64,
        dur: u64,
        trace: Option<crate::TraceLink>,
    }
    let mut rows: Vec<Row<'_>> = Vec::new();
    for sub in &snap.subsystems {
        for ev in &sub.events {
            if let EventKind::Span { dur } = ev.kind {
                rows.push(Row {
                    sub: &sub.name,
                    name: &ev.name,
                    clock: ev.clock.as_str(),
                    ts: ev.ts,
                    dur,
                    trace: ev.trace,
                });
            }
        }
    }

    // direct children per parent span id (in event order), and their
    // summed duration for self-time subtraction
    let mut children: HashMap<u64, Vec<Segment>> = HashMap::new();
    let mut child_dur: HashMap<u64, u64> = HashMap::new();
    for r in &rows {
        if let Some(link) = r.trace {
            if link.parent_span != 0 {
                *child_dur.entry(link.parent_span).or_insert(0) += r.dur;
                children
                    .entry(link.parent_span)
                    .or_default()
                    .push(Segment { name: r.name.to_string(), dur: r.dur });
            }
        }
    }

    // span-id -> (label, parent) for stack reconstruction
    let mut by_id: HashMap<u64, (String, u64)> = HashMap::new();
    for r in &rows {
        if let Some(link) = r.trace {
            if link.span_id != 0 {
                by_id.insert(link.span_id, (format!("{}:{}", r.sub, r.name), link.parent_span));
            }
        }
    }

    // aggregate per (sub, name, clock) in first-seen order
    let mut order: Vec<(String, String, &'static str)> = Vec::new();
    let mut agg: HashMap<(String, String, &'static str), (u64, u64, u64)> = HashMap::new();
    let mut folded_sums: HashMap<String, u64> = HashMap::new();
    let mut requests: Vec<RequestPath> = Vec::new();
    for r in &rows {
        let self_time = match r.trace {
            Some(link) if link.span_id != 0 => {
                r.dur.saturating_sub(child_dur.get(&link.span_id).copied().unwrap_or(0))
            }
            _ => r.dur,
        };
        let key = (r.sub.to_string(), r.name.to_string(), r.clock);
        if !agg.contains_key(&key) {
            order.push(key.clone());
        }
        let e = agg.entry(key).or_insert((0, 0, 0));
        e.0 += 1;
        e.1 += r.dur;
        e.2 += self_time;

        // collapsed stack: walk the parent chain (bounded; a parent id
        // that fell out of the ring truncates the stack at that frame)
        if self_time > 0 {
            let mut frames = vec![format!("{}:{}", r.sub, r.name)];
            if let Some(link) = r.trace {
                let mut up = link.parent_span;
                let mut depth = 0;
                while up != 0 && depth < 64 {
                    match by_id.get(&up) {
                        Some((label, parent)) => {
                            frames.push(label.clone());
                            up = *parent;
                        }
                        None => break,
                    }
                    depth += 1;
                }
            }
            frames.reverse();
            *folded_sums.entry(frames.join(";")).or_insert(0) += self_time;
        }

        // trace roots become request paths
        if let Some(link) = r.trace {
            if link.parent_span == 0 && link.span_id != 0 {
                let segments: Vec<Segment> =
                    children.get(&link.span_id).cloned().unwrap_or_default();
                let sum: u64 = segments.iter().map(|s| s.dur).sum();
                let exact = segments.is_empty() || sum == r.dur;
                requests.push(RequestPath {
                    trace_id: link.trace_id,
                    name: r.name.to_string(),
                    start: r.ts,
                    latency: r.dur,
                    segments,
                    exact,
                });
            }
        }
    }

    let mut spans: Vec<SpanStat> = order
        .into_iter()
        .map(|key| {
            let (count, total, self_time) = agg[&key];
            SpanStat { subsystem: key.0, name: key.1, clock: key.2, count, total, self_time }
        })
        .collect();
    spans.sort_by(|a, b| {
        b.self_time
            .cmp(&a.self_time)
            .then_with(|| a.subsystem.cmp(&b.subsystem))
            .then_with(|| a.name.cmp(&b.name))
    });

    let mut folded: Vec<(String, u64)> = folded_sums.into_iter().collect();
    folded.sort_by(|a, b| a.0.cmp(&b.0));

    Profile { spans, requests, folded, dropped_events: snap.dropped_total() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClockDomain, Recorder, WallMark};

    /// Build the canonical request shape the serving engine emits.
    fn serve_like() -> Recorder {
        let r = Recorder::new();
        let ctx = r.mint_trace();
        let root =
            r.trace_span("serve", "request", ClockDomain::Cpu, 100, 50, &[], WallMark::none(), ctx);
        let c = ctx.child(root);
        r.trace_span("serve", "queue-wait", ClockDomain::Cpu, 100, 20, &[], WallMark::none(), c);
        r.trace_span("serve", "batch-overhead", ClockDomain::Cpu, 120, 5, &[], WallMark::none(), c);
        r.trace_span("serve", "service", ClockDomain::Cpu, 125, 15, &[], WallMark::none(), c);
        r.trace_span("serve", "dma", ClockDomain::Cpu, 140, 10, &[], WallMark::none(), c);
        r
    }

    #[test]
    fn self_time_subtracts_direct_children() {
        let p = profile(&serve_like().snapshot());
        let root = p.spans.iter().find(|s| s.name == "request").expect("root aggregated");
        assert_eq!(root.total, 50);
        assert_eq!(root.self_time, 0, "fully decomposed root has no self-time");
        let svc = p.spans.iter().find(|s| s.name == "service").expect("leaf");
        assert_eq!(svc.self_time, 15);
    }

    #[test]
    fn request_paths_are_exact_when_segments_sum() {
        let p = profile(&serve_like().snapshot());
        assert_eq!(p.exact_paths("request"), (1, 1));
        let req = &p.requests[0];
        assert_eq!(req.latency, 50);
        assert_eq!(req.segments.len(), 4);
        assert!(req.exact);
        assert_eq!(
            p.segment_totals(),
            vec![
                ("queue-wait".to_string(), 20),
                ("batch-overhead".to_string(), 5),
                ("service".to_string(), 15),
                ("dma".to_string(), 10),
            ]
        );

        // a root whose children do NOT cover it is flagged inexact
        let r = Recorder::new();
        let ctx = r.mint_trace();
        let root =
            r.trace_span("s", "request", ClockDomain::Cpu, 0, 100, &[], WallMark::none(), ctx);
        r.trace_span("s", "service", ClockDomain::Cpu, 0, 30, &[], WallMark::none(), ctx.child(root));
        let p = profile(&r.snapshot());
        assert_eq!(p.exact_paths("request"), (0, 1));
    }

    #[test]
    fn folded_stacks_walk_parent_chains() {
        let r = serve_like();
        // an untraced span folds as a single frame
        r.span("hls", "compile", ClockDomain::Seq, 0, 7, &[], WallMark::none());
        let p = profile(&r.snapshot());
        let stacks: Vec<&str> = p.folded.iter().map(|(s, _)| s.as_str()).collect();
        assert!(stacks.contains(&"serve:request;serve:service"), "{stacks:?}");
        assert!(stacks.contains(&"hls:compile"), "{stacks:?}");
        // root has zero self-time, so no bare "serve:request" line
        assert!(!stacks.contains(&"serve:request"), "{stacks:?}");
        let svc = p.folded.iter().find(|(s, _)| s.ends_with("serve:service")).unwrap();
        assert_eq!(svc.1, 15);
    }

    #[test]
    fn profile_is_deterministic_and_tracks_drops() {
        let a = profile(&serve_like().snapshot());
        let b = profile(&serve_like().snapshot());
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(a.dropped_events, 0);
        let r = Recorder::new().with_capacity(2);
        for i in 0..5 {
            r.span("s", "x", ClockDomain::Seq, i, 1, &[], WallMark::none());
        }
        assert_eq!(profile(&r.snapshot()).dropped_events, 3);
    }
}
