//! # hermes-obs
//!
//! The deterministic flight recorder of the HERMES workspace: cross-layer
//! span/event tracing, a metrics registry, and bounded per-subsystem ring
//! buffers — std-only, no external dependencies.
//!
//! ## Determinism contract
//!
//! Every event timestamp comes from a **simulated clock domain**
//! ([`ClockDomain`]): RTL cycles, CPU cycles, hypervisor cycles, boot
//! microsteps, or a plain deterministic sequence number. Wall-clock time is
//! an *optional side channel* ([`Recorder::with_wall`]): it rides along on
//! each event as `wall_ns` and is stripped from deterministic output, so a
//! trace taken at `HERMES_JOBS=1` is bit-identical to one taken at
//! `HERMES_JOBS=4` once the wall channel is removed.
//!
//! Parallel fan-outs keep the contract by giving each independent unit of
//! work its own [`Recorder::child`] and merging the children back **in
//! input order** with [`Recorder::absorb`] — the same discipline
//! `hermes_par::par_map` applies to its result vector.
//!
//! ## Flight-recorder semantics
//!
//! Events are stored per subsystem in a bounded ring: once a subsystem
//! holds `capacity` events, recording a new one drops the oldest at O(1)
//! cost and bumps the subsystem's `dropped` counter. Long campaigns
//! therefore keep the *last N* events per subsystem — the black-box
//! behaviour a post-mortem wants — while metrics (counters, gauges,
//! histograms) aggregate over the whole run and never drop.
//!
//! A disabled recorder ([`Recorder::disabled`]) early-returns from every
//! recording call after a single branch, so instrumentation can stay in
//! hot paths unconditionally.

pub mod env;
pub mod profile;
pub mod slo;
pub mod warnings;

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default per-subsystem ring capacity.
pub const DEFAULT_RING_CAPACITY: usize = 8192;

/// The simulated clock domain an event timestamp belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockDomain {
    /// RTL simulator clock cycles.
    Rtl,
    /// CPU cluster cycles.
    Cpu,
    /// Hypervisor cycles (minor-frame time base).
    Hv,
    /// Boot-chain microsteps (cumulative BL1 stage cycles).
    Boot,
    /// A plain deterministic sequence (stage index, epoch index, …).
    Seq,
}

impl ClockDomain {
    /// Stable short name used in trace documents.
    pub fn as_str(self) -> &'static str {
        match self {
            ClockDomain::Rtl => "rtl",
            ClockDomain::Cpu => "cpu",
            ClockDomain::Hv => "hv",
            ClockDomain::Boot => "boot",
            ClockDomain::Seq => "seq",
        }
    }
}

/// What kind of record an [`Event`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An interval: starts at `ts`, lasts `dur` ticks of its clock domain.
    Span {
        /// Duration in ticks of the event's clock domain.
        dur: u64,
    },
    /// A point event.
    Instant,
    /// A point event flagging an anomaly worth surfacing.
    Warning,
}

impl EventKind {
    /// Stable short name used in trace documents.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Span { .. } => "span",
            EventKind::Instant => "instant",
            EventKind::Warning => "warning",
        }
    }
}

/// Salt folded into span-id sequences so span ids and trace ids minted
/// from the same recorder domain never collide numerically.
const SPAN_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// FNV-1a over two words, pinned away from zero (`0` is the "untraced"
/// sentinel everywhere). Used to mix a recorder's domain number with a
/// per-recorder sequence so ids minted by different children are unique
/// while staying a pure function of construction order — the property
/// that keeps traces byte-identical across worker counts.
fn fnv_mix(domain: u64, seq: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in domain.to_le_bytes().into_iter().chain(seq.to_le_bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h.max(1)
}

/// Causal trace identity minted at a request boundary (admission, a
/// measurement campaign, a partition activation) and propagated through
/// every layer the work touches. Copy it freely — it is two words.
///
/// `trace_id == 0` means "untraced": recording calls taking a `TraceCtx`
/// degrade to their plain equivalents, so call sites stay unconditional.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCtx {
    /// The request-scoped trace id (`0` = untraced).
    pub trace_id: u64,
    /// The span this work is causally nested under (`0` = trace root).
    pub parent_span: u64,
}

impl TraceCtx {
    /// The inert context: recording with it is a plain (untraced) record.
    pub const fn untraced() -> Self {
        TraceCtx { trace_id: 0, parent_span: 0 }
    }

    /// Whether this context carries a real trace id.
    pub fn is_traced(&self) -> bool {
        self.trace_id != 0
    }

    /// The same trace, nested under `span_id` (as returned by
    /// [`Recorder::trace_span`]).
    #[must_use]
    pub fn child(&self, span_id: u64) -> TraceCtx {
        TraceCtx { trace_id: self.trace_id, parent_span: span_id }
    }

    /// Deterministic sampling decision: whether this trace falls inside a
    /// `permille`-per-1000 sample. Keyed on a hash of the trace id — not
    /// on any counter — so the sampled subset is identical at any worker
    /// count and any interleaving. Untraced contexts never sample in.
    pub fn sampled(&self, permille: u64) -> bool {
        if self.trace_id == 0 {
            return false;
        }
        if permille >= 1000 {
            return true;
        }
        fnv_mix(self.trace_id, 0x5a) % 1000 < permille
    }
}

/// The causal-trace linkage carried by a traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceLink {
    /// The trace this event belongs to (never `0` on a stored link).
    pub trace_id: u64,
    /// This event's own span id (`0` for instants, which are leaves).
    pub span_id: u64,
    /// The enclosing span (`0` = this event is a trace root).
    pub parent_span: u64,
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Global sequence number (total order across all subsystems of one
    /// recorder, assigned at record/merge time).
    pub seq: u64,
    /// Event name.
    pub name: String,
    /// Span / instant / warning.
    pub kind: EventKind,
    /// Clock domain of `ts`.
    pub clock: ClockDomain,
    /// Timestamp in ticks of `clock` — always deterministic.
    pub ts: u64,
    /// Key/value payload (values pre-rendered to strings by the caller).
    pub args: Vec<(String, String)>,
    /// Causal-trace linkage (`None` for untraced events).
    pub trace: Option<TraceLink>,
    /// Wall-clock side channel: span duration (spans) or nanoseconds since
    /// the recorder's epoch (instants). `None` unless the recorder was
    /// built with [`Recorder::with_wall`]. Stripped from deterministic
    /// output.
    pub wall_ns: Option<u64>,
}

/// A wall-clock measurement started by [`Recorder::mark`]; pass it back to
/// [`Recorder::span`] to attach the elapsed time to the wall channel.
/// Zero-cost (`None` inside) when the wall channel is off.
#[derive(Debug, Clone, Copy)]
pub struct WallMark(Option<Instant>);

impl WallMark {
    /// A mark that records nothing (for call sites without timing).
    pub fn none() -> Self {
        WallMark(None)
    }
}

/// A fixed-bucket histogram: `counts[i]` holds observations `<= bounds[i]`,
/// with one extra overflow bucket at the end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Upper bucket bounds, ascending.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Largest observed value (0 when empty); bounds the overflow bucket
    /// so percentile readouts stay finite.
    pub max: u64,
}

impl Histogram {
    /// An empty histogram over the given ascending upper bucket bounds
    /// (plus the implicit overflow bucket) — public so subsystems that
    /// need local percentile readouts (e.g. per-class serving latency)
    /// can aggregate with the same deterministic geometry the recorder
    /// uses.
    pub fn new(bounds: &[u64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Fold another histogram's observations into this one (bucket-wise
    /// when the geometries match, into the overflow bucket otherwise).
    pub fn merge(&mut self, other: &Histogram) {
        if self.bounds == other.bounds {
            for (a, b) in self.counts.iter_mut().zip(&other.counts) {
                *a += b;
            }
        } else {
            // mismatched geometry: fold the other side's observations into
            // the overflow bucket rather than losing them silently
            if let Some(last) = self.counts.last_mut() {
                *last += other.count;
            }
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Merge a whole set of histograms into one (fleet-level aggregation:
    /// per-shard latency histograms fold into a single distribution the
    /// autoscaler reads p99 from). Geometry comes from the first
    /// histogram; later mismatched geometries fold into the overflow
    /// bucket exactly as [`Histogram::merge`] does. An empty slice yields
    /// an empty zero-bucket histogram.
    pub fn merge_all(hists: &[&Histogram]) -> Histogram {
        let Some((first, rest)) = hists.split_first() else {
            return Histogram::new(&[]);
        };
        let mut out = (*first).clone();
        for h in rest {
            out.merge(h);
        }
        out
    }

    /// Deterministic percentile readout from the fixed buckets.
    ///
    /// Locates the rank-`ceil(q · count)` observation (`q` clamped to
    /// `(0, 1]`) and linearly interpolates its value between the enclosing
    /// bucket's lower and upper bounds in pure integer arithmetic, so two
    /// histograms with equal bucket counts answer byte-identically on any
    /// worker count or platform. The open-ended overflow bucket
    /// interpolates between the last bound and the observed [`max`], which
    /// keeps tail percentiles finite. Returns `None` on an empty
    /// histogram.
    ///
    /// Total observations (same value as the public `count` field, as a
    /// readout for generic metric consumers).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed values (readout form of the public `sum` field).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean observed value in fixed-point thousandths (`sum * 1000 /
    /// count`), or `None` on an empty histogram. Integer arithmetic so the
    /// readout is byte-stable across platforms.
    pub fn mean_x1000(&self) -> Option<u64> {
        self.sum.saturating_mul(1000).checked_div(self.count)
    }

    /// [`max`]: Histogram::max
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        // clamp out-of-range (and NaN, which fails every comparison)
        // quantiles instead of silently misbehaving: q <= 0 reads the
        // first observation, q >= 1 the max, NaN behaves like 0
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 && cum + c >= rank {
                let lower = if i == 0 { 0 } else { self.bounds[i - 1] };
                let upper = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                };
                // the topmost non-empty bucket cannot hold anything above
                // the observed max, so tighten its upper edge to it
                let upper = upper.min(self.max).max(lower);
                let pos = rank - cum; // 1..=c within this bucket
                return Some(lower + (upper - lower).saturating_mul(pos) / c);
            }
            cum += c;
        }
        Some(self.max) // unreachable: rank <= count
    }
}

/// Bounded per-subsystem event buffer.
#[derive(Debug, Default)]
struct SubBuf {
    events: VecDeque<Event>,
    dropped: u64,
}

#[derive(Debug, Default)]
struct Metrics {
    counters: Vec<(String, String, u64)>,
    counter_idx: HashMap<String, usize>,
    gauges: Vec<(String, String, i64)>,
    gauge_idx: HashMap<String, usize>,
    hists: Vec<(String, String, Histogram)>,
    hist_idx: HashMap<String, usize>,
    /// Reusable composite-key buffer for index lookups: steady-state
    /// metric updates (the serving hot path observes a histogram per
    /// served request) allocate nothing — the key is only cloned out on
    /// a metric's first touch.
    scratch: String,
}

impl Metrics {
    /// Build the `sub`/`name` composite key in the scratch buffer.
    fn fill_key(&mut self, sub: &str, name: &str) {
        self.scratch.clear();
        self.scratch.push_str(sub);
        self.scratch.push('\u{1f}');
        self.scratch.push_str(name);
    }
}

#[derive(Debug, Default)]
struct State {
    /// Subsystem names in first-seen order (deterministic registration).
    order: Vec<String>,
    subs: HashMap<String, SubBuf>,
    metrics: Metrics,
    next_seq: u64,
    /// Total events ever recorded (including ones since dropped).
    total_events: u64,
    /// Trace ids minted so far ([`Recorder::mint_trace`]).
    next_trace_seq: u64,
    /// Span ids minted so far ([`Recorder::trace_span`]).
    next_span_seq: u64,
    /// Child domains allocated so far ([`Recorder::child`]).
    next_child_domain: u64,
}

#[derive(Debug)]
struct Inner {
    enabled: bool,
    wall: bool,
    capacity: usize,
    /// Trace-id domain: `0` for a root recorder, a deterministic mix of
    /// the parent's domain and the child index for children — so ids
    /// minted by independent children never collide yet depend only on
    /// construction order, never on scheduling.
    domain: u64,
    /// Subsystem-name namespace: every recorded subsystem is stored as
    /// `"<ns>/<sub>"` when non-empty ([`Recorder::child_named`]), so a
    /// fleet of shard recorders absorbs into one snapshot without name
    /// collisions. Names are fully qualified at record time; absorbing
    /// never re-prefixes.
    ns: String,
    epoch: Instant,
    state: Mutex<State>,
}

/// The flight recorder. Cheap to clone (`Arc` inside); clones share the
/// same buffers. Use [`Recorder::child`] for an *independent* recorder to
/// hand to a parallel work unit, then [`Recorder::absorb`] the children in
/// input order.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.inner.enabled)
            .field("wall", &self.inner.wall)
            .field("capacity", &self.inner.capacity)
            .finish()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::disabled()
    }
}

impl Recorder {
    fn build(enabled: bool, wall: bool, capacity: usize, domain: u64, ns: String) -> Self {
        Recorder {
            inner: Arc::new(Inner {
                enabled,
                wall,
                capacity,
                domain,
                ns,
                epoch: Instant::now(),
                state: Mutex::new(State::default()),
            }),
        }
    }

    /// An enabled recorder with the deterministic channels only.
    pub fn new() -> Self {
        Recorder::build(true, false, DEFAULT_RING_CAPACITY, 0, String::new())
    }

    /// An enabled recorder that additionally captures the wall-clock side
    /// channel (`wall_ns` on every event).
    pub fn with_wall() -> Self {
        Recorder::build(true, true, DEFAULT_RING_CAPACITY, 0, String::new())
    }

    /// A recorder whose every recording call is a no-op after one branch.
    pub fn disabled() -> Self {
        Recorder::build(false, false, DEFAULT_RING_CAPACITY, 0, String::new())
    }

    /// Same configuration, different ring capacity (events per subsystem).
    #[must_use]
    pub fn with_capacity(self, capacity: usize) -> Self {
        Recorder::build(
            self.inner.enabled,
            self.inner.wall,
            capacity.max(1),
            self.inner.domain,
            self.inner.ns.clone(),
        )
    }

    /// The subsystem name as this recorder stores it: prefixed with the
    /// namespace when one is set, borrowed untouched otherwise (the hot
    /// path of un-namespaced recorders allocates nothing here).
    fn scoped<'a>(&self, sub: &'a str) -> std::borrow::Cow<'a, str> {
        if self.inner.ns.is_empty() {
            std::borrow::Cow::Borrowed(sub)
        } else {
            std::borrow::Cow::Owned(format!("{}/{sub}", self.inner.ns))
        }
    }

    /// Whether recording calls store anything.
    pub fn enabled(&self) -> bool {
        self.inner.enabled
    }

    /// Whether the wall-clock side channel is captured.
    pub fn wall_enabled(&self) -> bool {
        self.inner.wall
    }

    /// An independent recorder with this one's configuration and empty
    /// state — hand one to each parallel work unit, then [`absorb`] them
    /// in input order. A child of a disabled recorder is disabled.
    ///
    /// [`absorb`]: Recorder::absorb
    ///
    /// Each child gets its own trace-id domain, allocated from the
    /// parent's deterministic sequence: the k-th child of a given
    /// recorder always mints the same trace/span ids, no matter how the
    /// children are scheduled.
    pub fn child(&self) -> Recorder {
        self.child_scoped(self.inner.ns.clone())
    }

    /// A [`child`](Recorder::child) whose recorded subsystem names are
    /// prefixed `"<name>/"` (nested under this recorder's own namespace,
    /// if any) — the fleet pattern: give each shard
    /// `fleet_obs.child_named("shard3")`, let its engine record plain
    /// `"serve"` metrics, and absorb every shard into one snapshot whose
    /// `shard3/serve` entries never collide. Namespacing happens at
    /// record time, so absorbing is the same in-input-order merge as for
    /// unnamed children.
    pub fn child_named(&self, name: &str) -> Recorder {
        let ns = if self.inner.ns.is_empty() {
            name.to_string()
        } else {
            format!("{}/{name}", self.inner.ns)
        };
        self.child_scoped(ns)
    }

    fn child_scoped(&self, ns: String) -> Recorder {
        if !self.inner.enabled {
            return Recorder::build(false, false, self.inner.capacity, 0, String::new());
        }
        let n = {
            let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            st.next_child_domain += 1;
            st.next_child_domain
        };
        let domain = fnv_mix(self.inner.domain, n);
        Recorder::build(self.inner.enabled, self.inner.wall, self.inner.capacity, domain, ns)
    }

    /// Mint a fresh [`TraceCtx`] rooted at this recorder. Ids come from a
    /// per-recorder sequence mixed with the recorder's domain, so the n-th
    /// mint of the k-th child is a pure function of (k, n) — stable under
    /// [`Recorder::child`]/[`Recorder::absorb`] and therefore identical at
    /// any worker count. A disabled recorder mints the untraced context.
    pub fn mint_trace(&self) -> TraceCtx {
        if !self.inner.enabled {
            return TraceCtx::untraced();
        }
        let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        st.next_trace_seq += 1;
        TraceCtx { trace_id: fnv_mix(self.inner.domain, st.next_trace_seq), parent_span: 0 }
    }

    /// Start a wall-clock measurement for a later [`Recorder::span`].
    /// Returns an inert mark when the wall channel is off.
    pub fn mark(&self) -> WallMark {
        if self.inner.enabled && self.inner.wall {
            WallMark(Some(Instant::now()))
        } else {
            WallMark(None)
        }
    }

    fn now_wall(&self) -> Option<u64> {
        if self.inner.wall {
            Some(u64::try_from(self.inner.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX))
        } else {
            None
        }
    }

    fn push(&self, sub: &str, ev: Event) {
        self.push_alloc(sub, ev, false);
    }

    /// Append one event under a single lock acquisition; when
    /// `alloc_span` is set, also allocate the next span id (stamped into
    /// the event's trace link) so span-id order always matches event
    /// order. Returns the allocated span id (`0` otherwise).
    fn push_alloc(&self, sub: &str, mut ev: Event, alloc_span: bool) -> u64 {
        let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        let span_id = if alloc_span {
            st.next_span_seq += 1;
            let id = fnv_mix(self.inner.domain ^ SPAN_SALT, st.next_span_seq);
            if let Some(link) = ev.trace.as_mut() {
                link.span_id = id;
            }
            id
        } else {
            0
        };
        ev.seq = st.next_seq;
        st.next_seq += 1;
        st.total_events += 1;
        if !st.subs.contains_key(sub) {
            st.order.push(sub.to_string());
            st.subs.insert(sub.to_string(), SubBuf::default());
        }
        let cap = self.inner.capacity;
        let buf = st.subs.get_mut(sub).expect("just inserted");
        if buf.events.len() >= cap {
            buf.events.pop_front();
            buf.dropped += 1;
            if buf.dropped == 1 {
                // surface truncation exactly once per subsystem so a
                // clipped trace is never mistaken for a complete one
                warnings::warn_once(
                    &format!("obs-ring-drop:{sub}"),
                    &format!(
                        "subsystem {sub:?} event ring reached capacity {cap}; \
                         oldest events are being dropped (trace truncated)"
                    ),
                );
            }
        }
        buf.events.push_back(ev);
        span_id
    }

    /// Record a span: an interval starting at `ts` lasting `dur` ticks of
    /// `clock`. `mark` (from [`Recorder::mark`]) attaches the elapsed wall
    /// time to the wall channel.
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &self,
        sub: &str,
        name: &str,
        clock: ClockDomain,
        ts: u64,
        dur: u64,
        args: &[(&str, String)],
        mark: WallMark,
    ) {
        if !self.inner.enabled {
            return;
        }
        let wall_ns = mark
            .0
            .map(|t| u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
        self.push(
            &self.scoped(sub),
            Event {
                seq: 0,
                name: name.to_string(),
                kind: EventKind::Span { dur },
                clock,
                ts,
                args: args.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
                trace: None,
                wall_ns,
            },
        );
    }

    /// Record a span carrying causal-trace linkage from `ctx`; returns the
    /// span's freshly allocated id (hand `ctx.child(id)` to nested work).
    /// With an untraced `ctx` this records a plain span and returns `0`.
    #[allow(clippy::too_many_arguments)]
    pub fn trace_span(
        &self,
        sub: &str,
        name: &str,
        clock: ClockDomain,
        ts: u64,
        dur: u64,
        args: &[(&str, String)],
        mark: WallMark,
        ctx: TraceCtx,
    ) -> u64 {
        if !self.inner.enabled {
            return 0;
        }
        if !ctx.is_traced() {
            self.span(sub, name, clock, ts, dur, args, mark);
            return 0;
        }
        let wall_ns = mark
            .0
            .map(|t| u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
        self.push_alloc(
            &self.scoped(sub),
            Event {
                seq: 0,
                name: name.to_string(),
                kind: EventKind::Span { dur },
                clock,
                ts,
                args: args.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
                trace: Some(TraceLink {
                    trace_id: ctx.trace_id,
                    span_id: 0, // stamped by push_alloc
                    parent_span: ctx.parent_span,
                }),
                wall_ns,
            },
            true,
        )
    }

    /// Record a point event at `ts` in `clock`.
    pub fn instant(&self, sub: &str, name: &str, clock: ClockDomain, ts: u64, args: &[(&str, String)]) {
        if !self.inner.enabled {
            return;
        }
        let wall_ns = self.now_wall();
        self.push(
            &self.scoped(sub),
            Event {
                seq: 0,
                name: name.to_string(),
                kind: EventKind::Instant,
                clock,
                ts,
                args: args.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
                trace: None,
                wall_ns,
            },
        );
    }

    /// Record a point event carrying causal-trace linkage from `ctx`
    /// (a leaf: instants get no span id). With an untraced `ctx` this
    /// records a plain instant.
    pub fn trace_instant(
        &self,
        sub: &str,
        name: &str,
        clock: ClockDomain,
        ts: u64,
        args: &[(&str, String)],
        ctx: TraceCtx,
    ) {
        if !self.inner.enabled {
            return;
        }
        if !ctx.is_traced() {
            self.instant(sub, name, clock, ts, args);
            return;
        }
        let wall_ns = self.now_wall();
        self.push(
            &self.scoped(sub),
            Event {
                seq: 0,
                name: name.to_string(),
                kind: EventKind::Instant,
                clock,
                ts,
                args: args.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
                trace: Some(TraceLink {
                    trace_id: ctx.trace_id,
                    span_id: 0,
                    parent_span: ctx.parent_span,
                }),
                wall_ns,
            },
        );
    }

    /// Record a warning event (sequence-clocked, message in the args).
    pub fn warning(&self, sub: &str, message: &str) {
        if !self.inner.enabled {
            return;
        }
        let wall_ns = self.now_wall();
        self.push(
            &self.scoped(sub),
            Event {
                seq: 0,
                name: "warning".to_string(),
                kind: EventKind::Warning,
                clock: ClockDomain::Seq,
                ts: 0,
                args: vec![("message".to_string(), message.to_string())],
                trace: None,
                wall_ns,
            },
        );
    }

    /// Add `delta` to a counter, registering it on first touch.
    pub fn counter_add(&self, sub: &str, name: &str, delta: u64) {
        if !self.inner.enabled {
            return;
        }
        let sub = self.scoped(sub);
        let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        let m = &mut st.metrics;
        m.fill_key(&sub, name);
        match m.counter_idx.get(&m.scratch) {
            Some(&i) => m.counters[i].2 += delta,
            None => {
                let key = m.scratch.clone();
                m.counter_idx.insert(key, m.counters.len());
                m.counters.push((sub.into_owned(), name.to_string(), delta));
            }
        }
    }

    /// Set a gauge to `v`, registering it on first touch.
    pub fn gauge_set(&self, sub: &str, name: &str, v: i64) {
        if !self.inner.enabled {
            return;
        }
        let sub = self.scoped(sub);
        let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        let m = &mut st.metrics;
        m.fill_key(&sub, name);
        match m.gauge_idx.get(&m.scratch) {
            Some(&i) => m.gauges[i].2 = v,
            None => {
                let key = m.scratch.clone();
                m.gauge_idx.insert(key, m.gauges.len());
                m.gauges.push((sub.into_owned(), name.to_string(), v));
            }
        }
    }

    /// Observe `v` in a fixed-bucket histogram (bounds fixed at first
    /// touch), registering it on first touch.
    pub fn observe(&self, sub: &str, name: &str, bounds: &[u64], v: u64) {
        if !self.inner.enabled {
            return;
        }
        let sub = self.scoped(sub);
        let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        let m = &mut st.metrics;
        m.fill_key(&sub, name);
        match m.hist_idx.get(&m.scratch) {
            Some(&i) => m.hists[i].2.observe(v),
            None => {
                let mut h = Histogram::new(bounds);
                h.observe(v);
                let key = m.scratch.clone();
                m.hist_idx.insert(key, m.hists.len());
                m.hists.push((sub.into_owned(), name.to_string(), h));
            }
        }
    }

    /// Merge a child's state into this recorder, draining the child.
    /// Events append in the child's order (re-sequenced); counters and
    /// histograms add; gauges take the child's latest value. Calling
    /// `absorb` on children **in input order** keeps the merged stream
    /// deterministic regardless of how the children ran.
    pub fn absorb(&self, child: &Recorder) {
        if !self.inner.enabled || !child.inner.enabled {
            return;
        }
        let mut taken = {
            let mut cst = child.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *cst)
        };
        // gather the child's events in global seq order so interleavings
        // across its subsystems are preserved
        let mut all: Vec<(String, Event)> = Vec::new();
        for sub in &taken.order {
            if let Some(buf) = taken.subs.get_mut(sub) {
                for ev in buf.events.drain(..) {
                    all.push((sub.clone(), ev));
                }
            }
        }
        all.sort_by_key(|(_, ev)| ev.seq);
        for (sub, ev) in all {
            self.push(&sub, ev);
        }
        // carry dropped counts across the merge
        {
            let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            for sub in &taken.order {
                let dropped = taken.subs.get(sub).map_or(0, |b| b.dropped);
                if dropped > 0 {
                    if !st.subs.contains_key(sub) {
                        st.order.push(sub.clone());
                        st.subs.insert(sub.clone(), SubBuf::default());
                    }
                    st.subs.get_mut(sub).expect("present").dropped += dropped;
                }
            }
        }
        // metric names were fully qualified when the child recorded them
        // (child_named prefixes at record time), so the merge is raw —
        // never re-scoped through this recorder's own namespace
        {
            let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            let m = &mut st.metrics;
            for (sub, name, v) in &taken.metrics.counters {
                m.fill_key(sub, name);
                match m.counter_idx.get(&m.scratch) {
                    Some(&i) => m.counters[i].2 += v,
                    None => {
                        let key = m.scratch.clone();
                        m.counter_idx.insert(key, m.counters.len());
                        m.counters.push((sub.clone(), name.clone(), *v));
                    }
                }
            }
            for (sub, name, v) in &taken.metrics.gauges {
                m.fill_key(sub, name);
                match m.gauge_idx.get(&m.scratch) {
                    Some(&i) => m.gauges[i].2 = *v,
                    None => {
                        let key = m.scratch.clone();
                        m.gauge_idx.insert(key, m.gauges.len());
                        m.gauges.push((sub.clone(), name.clone(), *v));
                    }
                }
            }
            for (sub, name, h) in &taken.metrics.hists {
                m.fill_key(sub, name);
                match m.hist_idx.get(&m.scratch) {
                    Some(&i) => m.hists[i].2.merge(h),
                    None => {
                        let key = m.scratch.clone();
                        m.hist_idx.insert(key, m.hists.len());
                        m.hists.push((sub.clone(), name.clone(), h.clone()));
                    }
                }
            }
        }
    }

    /// Total events ever recorded (including ones dropped from rings).
    pub fn event_count(&self) -> u64 {
        self.inner
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .total_events
    }

    /// A consistent copy of everything recorded so far, ordered
    /// deterministically (subsystems in first-seen order, events in ring
    /// order, metrics in registration order).
    pub fn snapshot(&self) -> Snapshot {
        let st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        let subsystems = st
            .order
            .iter()
            .map(|name| {
                let buf = &st.subs[name];
                SubsystemSnapshot {
                    name: name.clone(),
                    dropped: buf.dropped,
                    events: buf.events.iter().cloned().collect(),
                }
            })
            .collect();
        Snapshot {
            subsystems,
            counters: st.metrics.counters.clone(),
            gauges: st.metrics.gauges.clone(),
            histograms: st.metrics.hists.clone(),
        }
    }
}

/// Snapshot of one subsystem's ring.
#[derive(Debug, Clone)]
pub struct SubsystemSnapshot {
    /// Subsystem name.
    pub name: String,
    /// Events dropped from the ring (oldest-first eviction).
    pub dropped: u64,
    /// Retained events, oldest first.
    pub events: Vec<Event>,
}

/// A deterministic copy of a recorder's state (see [`Recorder::snapshot`]).
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Subsystems in first-seen order.
    pub subsystems: Vec<SubsystemSnapshot>,
    /// Counters `(subsystem, name, value)` in registration order.
    pub counters: Vec<(String, String, u64)>,
    /// Gauges `(subsystem, name, value)` in registration order.
    pub gauges: Vec<(String, String, i64)>,
    /// Histograms `(subsystem, name, histogram)` in registration order.
    pub histograms: Vec<(String, String, Histogram)>,
}

impl Snapshot {
    /// Total retained events across all subsystems.
    pub fn event_count(&self) -> usize {
        self.subsystems.iter().map(|s| s.events.len()).sum()
    }

    /// Total registered metrics (counters + gauges + histograms).
    pub fn metric_count(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// Total events dropped from rings across all subsystems — non-zero
    /// means the event streams (and anything derived from them, like a
    /// profile) are truncated.
    pub fn dropped_total(&self) -> u64 {
        self.subsystems.iter().map(|s| s.dropped).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let r = Recorder::disabled();
        r.span("s", "x", ClockDomain::Seq, 0, 1, &[], r.mark());
        r.instant("s", "y", ClockDomain::Seq, 1, &[]);
        r.counter_add("s", "c", 5);
        assert_eq!(r.event_count(), 0);
        assert_eq!(r.snapshot().metric_count(), 0);
        assert!(!r.enabled());
    }

    #[test]
    fn events_keep_order_and_seq() {
        let r = Recorder::new();
        r.instant("a", "first", ClockDomain::Seq, 0, &[]);
        r.instant("b", "second", ClockDomain::Seq, 1, &[]);
        r.instant("a", "third", ClockDomain::Seq, 2, &[]);
        let s = r.snapshot();
        assert_eq!(s.subsystems.len(), 2);
        assert_eq!(s.subsystems[0].name, "a");
        assert_eq!(s.subsystems[0].events.len(), 2);
        assert_eq!(s.subsystems[0].events[0].seq, 0);
        assert_eq!(s.subsystems[0].events[1].seq, 2);
        assert_eq!(s.subsystems[1].events[0].seq, 1);
    }

    #[test]
    fn ring_drops_oldest_at_capacity() {
        let r = Recorder::new().with_capacity(3);
        for i in 0..10u64 {
            r.instant("s", &format!("e{i}"), ClockDomain::Seq, i, &[]);
        }
        let s = r.snapshot();
        assert_eq!(s.subsystems[0].events.len(), 3);
        assert_eq!(s.subsystems[0].dropped, 7);
        assert_eq!(s.subsystems[0].events[0].name, "e7");
        assert_eq!(r.event_count(), 10, "total count survives eviction");
    }

    #[test]
    fn metrics_register_in_first_touch_order() {
        let r = Recorder::new();
        r.counter_add("x", "b", 1);
        r.counter_add("x", "a", 2);
        r.counter_add("x", "b", 3);
        r.gauge_set("x", "g", -7);
        r.gauge_set("x", "g", 9);
        r.observe("x", "h", &[10, 100], 5);
        r.observe("x", "h", &[10, 100], 50);
        r.observe("x", "h", &[10, 100], 5000);
        let s = r.snapshot();
        assert_eq!(s.counters[0].1, "b");
        assert_eq!(s.counters[0].2, 4);
        assert_eq!(s.counters[1].1, "a");
        assert_eq!(s.gauges[0].2, 9);
        let h = &s.histograms[0].2;
        assert_eq!(h.counts, vec![1, 1, 1]);
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 5055);
    }

    #[test]
    fn absorb_merges_in_call_order() {
        let parent = Recorder::new();
        let c1 = parent.child();
        let c2 = parent.child();
        // children record "concurrently"; merge order decides the stream
        c2.instant("s", "from-c2", ClockDomain::Seq, 0, &[]);
        c1.instant("s", "from-c1", ClockDomain::Seq, 0, &[]);
        c1.counter_add("s", "n", 1);
        c2.counter_add("s", "n", 10);
        parent.absorb(&c1);
        parent.absorb(&c2);
        let s = parent.snapshot();
        assert_eq!(s.subsystems[0].events[0].name, "from-c1");
        assert_eq!(s.subsystems[0].events[1].name, "from-c2");
        assert_eq!(s.counters[0].2, 11);
        // the child is drained
        assert_eq!(c1.snapshot().event_count(), 0);
    }

    #[test]
    fn absorb_preserves_cross_subsystem_interleaving() {
        let parent = Recorder::new();
        let c = parent.child();
        c.instant("a", "1", ClockDomain::Seq, 0, &[]);
        c.instant("b", "2", ClockDomain::Seq, 0, &[]);
        c.instant("a", "3", ClockDomain::Seq, 0, &[]);
        parent.absorb(&c);
        let s = parent.snapshot();
        let seqs: Vec<(String, u64)> = s
            .subsystems
            .iter()
            .flat_map(|sub| sub.events.iter().map(|e| (e.name.clone(), e.seq)))
            .collect();
        let mut sorted = seqs.clone();
        sorted.sort_by_key(|(_, s)| *s);
        assert_eq!(
            sorted.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
            vec!["1", "2", "3"]
        );
    }

    #[test]
    fn wall_channel_only_when_enabled() {
        let dry = Recorder::new();
        dry.instant("s", "x", ClockDomain::Seq, 0, &[]);
        assert!(dry.snapshot().subsystems[0].events[0].wall_ns.is_none());

        let wet = Recorder::with_wall();
        let m = wet.mark();
        wet.span("s", "x", ClockDomain::Seq, 0, 1, &[], m);
        wet.instant("s", "y", ClockDomain::Seq, 1, &[]);
        let s = wet.snapshot();
        assert!(s.subsystems[0].events[0].wall_ns.is_some());
        assert!(s.subsystems[0].events[1].wall_ns.is_some());
    }

    #[test]
    fn child_of_disabled_is_disabled() {
        let r = Recorder::disabled();
        let c = r.child();
        c.instant("s", "x", ClockDomain::Seq, 0, &[]);
        r.absorb(&c);
        assert_eq!(r.event_count(), 0);
    }

    #[test]
    fn percentile_hand_computed_values() {
        // uniform 1..=100 over quartile buckets: percentiles land exactly
        let mut h = Histogram::new(&[25, 50, 75, 100]);
        for v in 1..=100 {
            h.observe(v);
        }
        assert_eq!(h.percentile(0.50), Some(50));
        assert_eq!(h.percentile(0.95), Some(95));
        assert_eq!(h.percentile(0.99), Some(99));
        assert_eq!(h.percentile(0.01), Some(1));
        assert_eq!(h.percentile(1.0), Some(100));

        // skewed set with an overflow observation: p50 interpolates inside
        // bucket (10,20], the tail reads up to the observed max
        let mut h = Histogram::new(&[10, 20, 30]);
        for v in [5u64, 10, 15, 25, 100] {
            h.observe(v);
        }
        assert_eq!(h.max, 100);
        // rank ceil(0.5*5)=3 -> 3rd observation, bucket (10,20], pos 1 of 1
        assert_eq!(h.percentile(0.50), Some(20));
        // rank 5 -> overflow bucket, interpolated to max
        assert_eq!(h.percentile(0.95), Some(100));
        assert_eq!(h.percentile(0.99), Some(100));
    }

    #[test]
    fn percentile_empty_and_single() {
        let h = Histogram::new(&[10]);
        assert_eq!(h.percentile(0.5), None, "empty histogram has no rank");
        let mut h = Histogram::new(&[10]);
        h.observe(7);
        // a single observation answers every quantile with itself: the
        // bucket's upper edge is tightened to the observed max
        assert_eq!(h.percentile(0.01), Some(7));
        assert_eq!(h.percentile(0.5), Some(7));
        assert_eq!(h.percentile(0.99), Some(7));
    }

    #[test]
    fn percentile_survives_merge() {
        let mut a = Histogram::new(&[100, 200]);
        let mut b = Histogram::new(&[100, 200]);
        for v in 1..=50 {
            a.observe(v * 2); // 2..=100
            b.observe(100 + v * 2); // 102..=200
        }
        a.merge(&b);
        assert_eq!(a.count, 100);
        assert_eq!(a.percentile(0.50), Some(100));
        assert_eq!(a.percentile(0.95), Some(100 + 100 * 45 / 50));
        assert_eq!(a.max, 200);
    }

    #[test]
    fn percentile_clamps_out_of_range_quantiles() {
        let mut h = Histogram::new(&[25, 50, 75, 100]);
        for v in 1..=100 {
            h.observe(v);
        }
        // out-of-range and non-finite quantiles clamp instead of
        // misbehaving: below 0 reads like the smallest rank, above 1 the max
        assert_eq!(h.percentile(-3.0), h.percentile(0.0));
        assert_eq!(h.percentile(42.0), h.percentile(1.0));
        assert_eq!(h.percentile(f64::INFINITY), Some(100));
        assert_eq!(h.percentile(f64::NEG_INFINITY), h.percentile(0.0));
        assert_eq!(h.percentile(f64::NAN), h.percentile(0.0));
        // and the empty histogram still answers None for every input
        let empty = Histogram::new(&[10]);
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0, f64::NAN] {
            assert_eq!(empty.percentile(q), None);
        }
    }

    #[test]
    fn histogram_readouts() {
        let empty = Histogram::new(&[10]);
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.sum(), 0);
        assert_eq!(empty.mean_x1000(), None);
        let mut h = Histogram::new(&[10, 100]);
        h.observe(4);
        h.observe(5);
        h.observe(6);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 15);
        assert_eq!(h.mean_x1000(), Some(5000));
    }

    #[test]
    fn ring_drop_is_warned_once_and_surfaced_in_snapshot() {
        let r = Recorder::new().with_capacity(2);
        r.instant("droppy-sub", "a", ClockDomain::Seq, 0, &[]);
        r.instant("droppy-sub", "b", ClockDomain::Seq, 1, &[]);
        assert!(!warnings::snapshot().iter().any(|(k, _)| k.contains("droppy-sub")));
        r.instant("droppy-sub", "c", ClockDomain::Seq, 2, &[]);
        r.instant("droppy-sub", "d", ClockDomain::Seq, 3, &[]);
        let hits: Vec<_> = warnings::snapshot()
            .into_iter()
            .filter(|(k, _)| k == "obs-ring-drop:droppy-sub")
            .collect();
        assert_eq!(hits.len(), 1, "exactly one warning per subsystem");
        assert!(hits[0].1.contains("truncated"));
        assert_eq!(r.snapshot().dropped_total(), 2);
    }

    #[test]
    fn mint_trace_ids_are_stable_and_domain_unique() {
        let mk = || {
            let parent = Recorder::new();
            let c1 = parent.child();
            let c2 = parent.child();
            (parent.mint_trace(), c1.mint_trace(), c1.mint_trace(), c2.mint_trace())
        };
        let (p, a1, a2, b1) = mk();
        // stable: rebuilding the same recorder tree re-mints the same ids
        assert_eq!((p, a1, a2, b1), mk());
        // unique: ids from distinct domains/sequences never collide
        let ids = [p.trace_id, a1.trace_id, a2.trace_id, b1.trace_id];
        let mut dedup = ids.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "{ids:?}");
        assert!(ids.iter().all(|&id| id != 0));
        // disabled recorders mint the untraced context
        assert_eq!(Recorder::disabled().mint_trace(), TraceCtx::untraced());
    }

    #[test]
    fn trace_spans_link_parent_and_child() {
        let r = Recorder::new();
        let ctx = r.mint_trace();
        let root = r.trace_span("s", "request", ClockDomain::Cpu, 0, 10, &[], WallMark::none(), ctx);
        assert_ne!(root, 0);
        let leaf =
            r.trace_span("s", "service", ClockDomain::Cpu, 2, 5, &[], WallMark::none(), ctx.child(root));
        r.trace_instant("s", "done", ClockDomain::Cpu, 10, &[], ctx.child(leaf));
        let snap = r.snapshot();
        let evs = &snap.subsystems[0].events;
        let l0 = evs[0].trace.expect("root linked");
        let l1 = evs[1].trace.expect("child linked");
        let l2 = evs[2].trace.expect("instant linked");
        assert_eq!(l0.parent_span, 0);
        assert_eq!(l0.span_id, root);
        assert_eq!(l1.parent_span, root);
        assert_eq!(l1.span_id, leaf);
        assert_eq!((l2.parent_span, l2.span_id), (leaf, 0));
        assert!([l0, l1, l2].iter().all(|l| l.trace_id == ctx.trace_id));
        // untraced ctx degrades to a plain event and returns no span id
        let r2 = Recorder::new();
        let none = r2.trace_span(
            "s",
            "x",
            ClockDomain::Seq,
            0,
            1,
            &[],
            WallMark::none(),
            TraceCtx::untraced(),
        );
        assert_eq!(none, 0);
        assert!(r2.snapshot().subsystems[0].events[0].trace.is_none());
    }

    #[test]
    fn sampling_is_a_pure_function_of_the_trace_id() {
        let r = Recorder::new();
        let ctxs: Vec<TraceCtx> = (0..200).map(|_| r.mint_trace()).collect();
        for permille in [0u64, 125, 500, 1000] {
            let picked: Vec<bool> = ctxs.iter().map(|c| c.sampled(permille)).collect();
            let again: Vec<bool> = ctxs.iter().map(|c| c.sampled(permille)).collect();
            assert_eq!(picked, again);
            let n = picked.iter().filter(|&&b| b).count();
            match permille {
                0 => assert_eq!(n, 0),
                1000 => assert_eq!(n, ctxs.len()),
                _ => assert!(n > 0 && n < ctxs.len(), "permille {permille} picked {n}"),
            }
        }
        assert!(!TraceCtx::untraced().sampled(1000), "untraced never samples in");
    }

    #[test]
    fn merge_all_folds_a_fleet_of_histograms() {
        assert_eq!(Histogram::merge_all(&[]).count, 0);
        let mut shards: Vec<Histogram> = (0..4).map(|_| Histogram::new(&[100, 200])).collect();
        for (i, h) in shards.iter_mut().enumerate() {
            for v in 1..=50u64 {
                h.observe(v + 50 * i as u64);
            }
        }
        let refs: Vec<&Histogram> = shards.iter().collect();
        let merged = Histogram::merge_all(&refs);
        assert_eq!(merged.count, 200);
        assert_eq!(merged.max, 200);
        // identical to the pairwise merge in any grouping
        let mut pairwise = shards[0].clone();
        for h in &shards[1..] {
            pairwise.merge(h);
        }
        assert_eq!(merged, pairwise);
        assert_eq!(merged.percentile(0.50), pairwise.percentile(0.50));
    }

    #[test]
    fn child_named_namespaces_events_and_metrics() {
        let fleet = Recorder::new();
        let s0 = fleet.child_named("shard0");
        let s1 = fleet.child_named("shard1");
        s0.instant("serve", "arrive", ClockDomain::Cpu, 1, &[]);
        s0.counter_add("serve", "served", 5);
        s0.observe("serve", "latency", &[10, 100], 42);
        s1.counter_add("serve", "served", 7);
        // absorb order is the deterministic merge order
        fleet.absorb(&s0);
        fleet.absorb(&s1);
        let snap = fleet.snapshot();
        assert_eq!(snap.subsystems[0].name, "shard0/serve");
        let counters: Vec<_> = snap
            .counters
            .iter()
            .map(|(s, n, v)| (s.as_str(), n.as_str(), *v))
            .collect();
        assert_eq!(
            counters,
            vec![("shard0/serve", "served", 5), ("shard1/serve", "served", 7)],
            "per-shard counters never collide"
        );
        assert_eq!(snap.histograms[0].0, "shard0/serve");
        // nesting composes namespaces
        let nested = s1.child_named("pool");
        nested.counter_add("slots", "busy", 1);
        fleet.absorb(&nested);
        let snap = fleet.snapshot();
        assert!(snap
            .counters
            .iter()
            .any(|(s, n, _)| s == "shard1/pool/slots" && n == "busy"));
        // a plain child of a named child inherits the namespace
        let sibling = s0.child();
        sibling.counter_add("serve", "served", 1);
        fleet.absorb(&sibling);
        let snap = fleet.snapshot();
        let served0: u64 = snap
            .counters
            .iter()
            .filter(|(s, n, _)| s == "shard0/serve" && n == "served")
            .map(|&(_, _, v)| v)
            .sum();
        assert_eq!(served0, 6);
    }

    #[test]
    fn child_named_snapshot_is_independent_of_recording_interleave() {
        // the fleet discipline: shards record "concurrently" in any
        // interleave; absorbing in shard order yields one deterministic
        // snapshot — the jobs=1 ≡ jobs=4 identity at the recorder level
        let run = |flip: bool| {
            let fleet = Recorder::new();
            let shards: Vec<Recorder> =
                (0..4).map(|i| fleet.child_named(&format!("shard{i}"))).collect();
            let record = |i: usize| {
                let s = &shards[i];
                let ctx = s.mint_trace();
                s.trace_instant("serve", "arrive", ClockDomain::Cpu, i as u64, &[], ctx);
                s.counter_add("serve", "served", i as u64 + 1);
                s.observe("serve", "latency", &[10, 100], 7 * (i as u64 + 1));
            };
            if flip {
                for i in (0..4).rev() {
                    record(i);
                }
            } else {
                for i in 0..4 {
                    record(i);
                }
            }
            for s in &shards {
                fleet.absorb(s);
            }
            format!("{:?}", fleet.snapshot())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn histogram_mismatched_bounds_fold_into_overflow() {
        let mut a = Histogram::new(&[10]);
        a.observe(1);
        let mut b = Histogram::new(&[99]);
        b.observe(1);
        b.observe(2);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.counts, vec![1, 2]);
    }
}
