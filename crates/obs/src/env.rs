//! Shared environment-knob parsing.
//!
//! Every `HERMES_*` knob in the workspace goes through this module so the
//! accepted vocabulary is identical everywhere. Two disciplines exist, on
//! purpose:
//!
//! - **Strict** ([`bool_strict`], [`permille_strict`]): a value outside
//!   the vocabulary is an error. Used where a typo would silently select
//!   the wrong engine or sample rate and invalidate a whole run
//!   (`HERMES_PACKED_SETTLE`, `HERMES_TRACE_SAMPLE`).
//! - **Lenient** ([`bool_lenient`], [`usize_positive`] at its call
//!   sites): an unrecognized value falls back to a documented default —
//!   but never *silently*: the fallback is recorded through
//!   [`warnings::warn_once`] so it surfaces in trace documents and once
//!   on stderr. Used for long-standing knobs whose callers tolerate
//!   garbage (`HERMES_EVENT_SETTLE`, `HERMES_JOBS`, `HERMES_CHAR_CACHE`).

use crate::warnings;
use std::fmt;

/// The trace-sampling knob: permille (0..=1000) of minted traces whose
/// events are recorded. Strict parse; unset means 1000 (sample all).
pub const TRACE_SAMPLE_VAR: &str = "HERMES_TRACE_SAMPLE";

/// An environment knob held a value outside its accepted vocabulary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvKnobError {
    /// The environment variable name.
    pub name: String,
    /// The rejected value.
    pub value: String,
    /// What the knob accepts, for the message.
    pub expected: &'static str,
}

impl fmt::Display for EnvKnobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}={:?} is not a recognized setting (use {})",
            self.name, self.value, self.expected
        )
    }
}

impl std::error::Error for EnvKnobError {}

/// The shared on/off vocabulary: `Some(true)` for `on`/`1`/`true`,
/// `Some(false)` for `off`/`0`/`false` (trimmed, case-insensitive),
/// `None` for anything else.
fn bool_vocab(raw: &str) -> Option<bool> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "on" | "1" | "true" => Some(true),
        "off" | "0" | "false" => Some(false),
        _ => None,
    }
}

/// Strict boolean knob: unset means `default`, a value outside the
/// on/off vocabulary is an error.
///
/// # Errors
///
/// [`EnvKnobError`] when the value is outside `on`/`1`/`true` /
/// `off`/`0`/`false`.
pub fn bool_strict(name: &str, raw: Option<&str>, default: bool) -> Result<bool, EnvKnobError> {
    match raw {
        None => Ok(default),
        Some(raw) => bool_vocab(raw).ok_or_else(|| EnvKnobError {
            name: name.to_string(),
            value: raw.to_string(),
            expected: "on/1/true or off/0/false",
        }),
    }
}

/// Lenient boolean knob: unset means `default`; a value outside the
/// on/off vocabulary also means `default`, but is surfaced once through
/// the warning sink instead of being swallowed.
pub fn bool_lenient(name: &str, raw: Option<&str>, default: bool) -> bool {
    match raw {
        None => default,
        Some(raw) => bool_vocab(raw).unwrap_or_else(|| {
            let state = if default { "on" } else { "off" };
            let msg = format!(
                "{name}={:?} is not a recognized setting (use on/1/true or off/0/false); \
                 defaulting to {state}",
                raw.trim()
            );
            if warnings::warn_once(name, &msg) {
                eprintln!("warning: {msg}");
            }
            default
        }),
    }
}

/// Positive-integer knob (worker counts): unset means `None`, zero and
/// unparsable values are errors — the *caller* decides whether to treat
/// the error strictly (CLI flags) or fall back with a warning
/// (`HERMES_JOBS` resolution).
///
/// # Errors
///
/// [`EnvKnobError`] on zero or an unparsable value.
pub fn usize_positive(name: &str, raw: Option<&str>) -> Result<Option<usize>, EnvKnobError> {
    let Some(raw) = raw else { return Ok(None) };
    let trimmed = raw.trim();
    match trimmed.parse::<usize>() {
        Ok(0) => Err(EnvKnobError {
            name: name.to_string(),
            value: trimmed.to_string(),
            expected: "a positive integer (0 requests zero workers)",
        }),
        Ok(n) => Ok(Some(n)),
        Err(_) => Err(EnvKnobError {
            name: name.to_string(),
            value: trimmed.to_string(),
            expected: "a positive integer",
        }),
    }
}

/// Strict permille knob (0..=1000): unset means `default`, anything
/// unparsable or above 1000 is an error.
///
/// # Errors
///
/// [`EnvKnobError`] on an unparsable value or one above 1000.
pub fn permille_strict(name: &str, raw: Option<&str>, default: u64) -> Result<u64, EnvKnobError> {
    let Some(raw) = raw else { return Ok(default) };
    let trimmed = raw.trim();
    match trimmed.parse::<u64>() {
        Ok(v) if v <= 1000 => Ok(v),
        _ => Err(EnvKnobError {
            name: name.to_string(),
            value: trimmed.to_string(),
            expected: "an integer permille in 0..=1000",
        }),
    }
}

/// Read `HERMES_TRACE_SAMPLE` from the process environment (strict;
/// unset means 1000 = sample every trace).
///
/// # Errors
///
/// [`EnvKnobError`] when the variable is set to anything but an integer
/// permille in `0..=1000`.
pub fn trace_sample_env() -> Result<u64, EnvKnobError> {
    let raw = std::env::var(TRACE_SAMPLE_VAR).ok();
    permille_strict(TRACE_SAMPLE_VAR, raw.as_deref(), 1000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_bool_accepts_the_vocabulary_and_rejects_the_rest() {
        for (v, want) in [("on", true), ("1", true), ("TRUE", true), (" off ", false), ("0", false)] {
            assert_eq!(bool_strict("K", Some(v), false), Ok(want));
        }
        assert_eq!(bool_strict("K", None, true), Ok(true));
        let err = bool_strict("K", Some("banana"), true).unwrap_err();
        assert_eq!(err.name, "K");
        assert_eq!(err.value, "banana");
        assert!(err.to_string().contains("on/1/true"));
    }

    #[test]
    fn lenient_bool_falls_back_with_a_warning() {
        assert!(bool_lenient("HERMES_TEST_LENIENT", Some("yes-please"), true));
        let warned = crate::warnings::snapshot()
            .into_iter()
            .find(|(k, _)| k == "HERMES_TEST_LENIENT")
            .expect("fallback is surfaced");
        assert!(warned.1.contains("yes-please"));
        // recognized values never warn
        assert!(!bool_lenient("HERMES_TEST_LENIENT_OK", Some("off"), true));
        assert!(!crate::warnings::snapshot().iter().any(|(k, _)| k == "HERMES_TEST_LENIENT_OK"));
    }

    #[test]
    fn usize_positive_contract() {
        assert_eq!(usize_positive("J", None), Ok(None));
        assert_eq!(usize_positive("J", Some(" 16 ")), Ok(Some(16)));
        assert!(usize_positive("J", Some("0")).unwrap_err().to_string().contains("zero"));
        assert!(usize_positive("J", Some("many")).is_err());
    }

    #[test]
    fn permille_strict_contract() {
        assert_eq!(permille_strict("S", None, 1000), Ok(1000));
        assert_eq!(permille_strict("S", Some("0"), 1000), Ok(0));
        assert_eq!(permille_strict("S", Some(" 125 "), 1000), Ok(125));
        assert_eq!(permille_strict("S", Some("1000"), 1000), Ok(1000));
        for bad in ["1001", "-1", "12.5", "banana", ""] {
            let err = permille_strict("S", Some(bad), 1000).unwrap_err();
            assert!(err.to_string().contains("0..=1000"), "{err}");
        }
    }
}
