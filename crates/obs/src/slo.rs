//! Declarative SLOs evaluated as multi-window burn rates on the
//! simulated clock.
//!
//! An [`SloSpec`] names an objective (deadline-hit ratio, availability,
//! or a p99-style latency bound) with an error budget. Each request
//! outcome is classified good/bad and folded into two sliding windows —
//! a long one that measures sustained burn and a short one that makes
//! alerts responsive and lets them de-assert quickly. The **burn rate**
//! is the observed error rate over the window divided by the budget
//! rate (×100, integer): burning budget exactly as fast as allowed is
//! 100. An alert pages only when *both* windows exceed the page
//! threshold — the classic multi-window multi-burn-rate construction —
//! so one unlucky short window never pages, and a long-past incident
//! stops paging as soon as the short window clears.
//!
//! Everything is integer arithmetic on simulated ticks: the whole
//! engine is a pure function of the outcome stream, so alert verdicts
//! are byte-identical at any worker count.

/// Buckets per sliding window (ring reuse; higher = finer expiry).
const WINDOW_BUCKETS: u64 = 8;

/// Alert severity, ordered (`Ok < Warn < Page`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum AlertState {
    /// Burn is within budget.
    #[default]
    Ok,
    /// Both windows exceed the warn threshold.
    Warn,
    /// Both windows exceed the page threshold.
    Page,
}

impl AlertState {
    /// Stable label used in reports and traces.
    pub fn as_str(self) -> &'static str {
        match self {
            AlertState::Ok => "ok",
            AlertState::Warn => "warn",
            AlertState::Page => "page",
        }
    }

    /// Gauge encoding (`0`/`1`/`2`) for metric export.
    pub fn as_gauge(self) -> i64 {
        match self {
            AlertState::Ok => 0,
            AlertState::Warn => 1,
            AlertState::Page => 2,
        }
    }
}

/// The outcome of one request, as the SLO engine sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestOutcome {
    /// Completed by its deadline.
    pub served: bool,
    /// Turned away at admission (never entered service).
    pub rejected: bool,
    /// End-to-end latency in ticks, when served.
    pub latency: Option<u64>,
}

/// What an SLO promises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloObjective {
    /// At least `min_permille` of *admitted* requests complete by their
    /// deadline (rejections are an admission-policy question, not a
    /// deadline miss — they are excluded from this objective).
    DeadlineHitRatio {
        /// Minimum served share of admitted requests, permille.
        min_permille: u64,
    },
    /// At least `min_permille` of *offered* requests are served
    /// (rejections count against availability).
    Availability {
        /// Minimum served share of offered requests, permille.
        min_permille: u64,
    },
    /// At most 1% of admitted requests exceed `max_ticks` end-to-end —
    /// a p99 latency bound expressed as a 10-permille error budget so it
    /// composes with burn-rate alerting. A shed request has unbounded
    /// latency and counts as a miss.
    P99LatencyBound {
        /// Latency bound in ticks.
        max_ticks: u64,
    },
}

impl SloObjective {
    /// The error budget in permille (the allowed bad-request rate).
    pub fn budget_permille(self) -> u64 {
        match self {
            SloObjective::DeadlineHitRatio { min_permille }
            | SloObjective::Availability { min_permille } => {
                (1000 - min_permille.min(999)).max(1)
            }
            SloObjective::P99LatencyBound { .. } => 10,
        }
    }

    /// Classify one outcome: `Some(true)` = bad, `Some(false)` = good,
    /// `None` = not applicable to this objective.
    pub fn classify(self, outcome: &RequestOutcome) -> Option<bool> {
        match self {
            SloObjective::DeadlineHitRatio { .. } => {
                if outcome.rejected {
                    None
                } else {
                    Some(!outcome.served)
                }
            }
            SloObjective::Availability { .. } => Some(!outcome.served),
            SloObjective::P99LatencyBound { max_ticks } => {
                if outcome.rejected {
                    None
                } else if outcome.served {
                    Some(outcome.latency.unwrap_or(0) > max_ticks)
                } else {
                    Some(true)
                }
            }
        }
    }

    /// Stable label used in reports and traces.
    pub fn as_str(self) -> &'static str {
        match self {
            SloObjective::DeadlineHitRatio { .. } => "deadline-hit-ratio",
            SloObjective::Availability { .. } => "availability",
            SloObjective::P99LatencyBound { .. } => "p99-latency-bound",
        }
    }
}

/// One declarative SLO: objective, windows, and alert thresholds.
#[derive(Debug, Clone)]
pub struct SloSpec {
    /// Spec name (stable key in verdicts, gauges, reports).
    pub name: String,
    /// The promised objective.
    pub objective: SloObjective,
    /// Long (sustained-burn) window, ticks.
    pub long_window: u64,
    /// Short (responsiveness) window, ticks.
    pub short_window: u64,
    /// Warn when both windows burn at or above this (×100; 100 = burning
    /// exactly at budget rate).
    pub warn_burn_x100: u64,
    /// Page when both windows burn at or above this.
    pub page_burn_x100: u64,
}

impl SloSpec {
    /// A spec with the conventional defaults: short window = 1/12 of the
    /// long one, warn at 1× budget burn, page at 2×.
    pub fn new(name: &str, objective: SloObjective, long_window: u64) -> Self {
        let long_window = long_window.max(WINDOW_BUCKETS);
        SloSpec {
            name: name.to_string(),
            objective,
            long_window,
            short_window: (long_window / 12).max(WINDOW_BUCKETS),
            warn_burn_x100: 100,
            page_burn_x100: 200,
        }
    }
}

/// A bucketed sliding window over the simulated clock: counts good/bad
/// outcomes per epoch bucket and expires whole buckets as time advances.
#[derive(Debug, Clone)]
struct BurnWindow {
    bucket: u64,
    /// `(epoch, bad, total)` per slot, indexed by `epoch % len`.
    slots: Vec<(u64, u64, u64)>,
}

impl BurnWindow {
    fn new(window: u64) -> Self {
        BurnWindow {
            bucket: (window / WINDOW_BUCKETS).max(1),
            slots: vec![(0, 0, 0); WINDOW_BUCKETS as usize],
        }
    }

    fn record(&mut self, ts: u64, bad: bool) {
        let epoch = ts / self.bucket;
        let idx = (epoch % WINDOW_BUCKETS) as usize;
        let slot = &mut self.slots[idx];
        if slot.0 != epoch {
            *slot = (epoch, 0, 0);
        }
        slot.2 += 1;
        if bad {
            slot.1 += 1;
        }
    }

    /// Burn rate ×100 over the window ending at `ts`: observed error
    /// permille divided by the budget permille. Empty windows burn 0.
    fn burn_x100(&self, ts: u64, budget_permille: u64) -> u64 {
        let epoch = ts / self.bucket;
        let min_epoch = epoch.saturating_sub(WINDOW_BUCKETS - 1);
        let (mut bad, mut total) = (0u64, 0u64);
        for &(e, b, t) in &self.slots {
            if e >= min_epoch && e <= epoch {
                bad += b;
                total += t;
            }
        }
        if total == 0 {
            return 0;
        }
        let error_permille = bad * 1000 / total;
        error_permille * 100 / budget_permille.max(1)
    }
}

/// One alert-state transition, emitted when a spec changes state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloVerdict {
    /// The spec that transitioned.
    pub spec: String,
    /// Simulated tick of the transition.
    pub at: u64,
    /// Previous state.
    pub from: AlertState,
    /// New state.
    pub to: AlertState,
    /// Short-window burn ×100 at the transition.
    pub short_burn_x100: u64,
    /// Long-window burn ×100 at the transition.
    pub long_burn_x100: u64,
}

#[derive(Debug, Clone)]
struct Entry {
    spec: SloSpec,
    short: BurnWindow,
    long: BurnWindow,
    state: AlertState,
    worst: AlertState,
}

/// Evaluates a set of [`SloSpec`]s over a request-outcome stream.
#[derive(Debug, Clone, Default)]
pub struct SloEngine {
    entries: Vec<Entry>,
    verdicts: Vec<SloVerdict>,
}

impl SloEngine {
    /// An engine over `specs` (all start in [`AlertState::Ok`]).
    pub fn new(specs: Vec<SloSpec>) -> Self {
        SloEngine {
            entries: specs
                .into_iter()
                .map(|spec| Entry {
                    short: BurnWindow::new(spec.short_window),
                    long: BurnWindow::new(spec.long_window),
                    state: AlertState::Ok,
                    worst: AlertState::Ok,
                    spec,
                })
                .collect(),
            verdicts: Vec::new(),
        }
    }

    /// Fold one outcome at simulated tick `ts` into every applicable
    /// spec and re-evaluate; returns the transitions this outcome caused
    /// (usually none).
    pub fn record(&mut self, ts: u64, outcome: &RequestOutcome) -> Vec<SloVerdict> {
        let mut transitions = Vec::new();
        for e in &mut self.entries {
            let Some(bad) = e.spec.objective.classify(outcome) else {
                continue;
            };
            e.short.record(ts, bad);
            e.long.record(ts, bad);
            let budget = e.spec.objective.budget_permille();
            let short = e.short.burn_x100(ts, budget);
            let long = e.long.burn_x100(ts, budget);
            let next = if short >= e.spec.page_burn_x100 && long >= e.spec.page_burn_x100 {
                AlertState::Page
            } else if short >= e.spec.warn_burn_x100 && long >= e.spec.warn_burn_x100 {
                AlertState::Warn
            } else {
                AlertState::Ok
            };
            if next != e.state {
                let v = SloVerdict {
                    spec: e.spec.name.clone(),
                    at: ts,
                    from: e.state,
                    to: next,
                    short_burn_x100: short,
                    long_burn_x100: long,
                };
                transitions.push(v.clone());
                self.verdicts.push(v);
                e.state = next;
                e.worst = e.worst.max(next);
            }
        }
        transitions
    }

    /// Current `(spec name, state)` per spec, in spec order.
    pub fn states(&self) -> Vec<(&str, AlertState)> {
        self.entries.iter().map(|e| (e.spec.name.as_str(), e.state)).collect()
    }

    /// The worst state each spec ever reached, in spec order — the gate
    /// E17 asserts ("the alert fired / never fired during this run").
    pub fn worst_states(&self) -> Vec<(&str, AlertState)> {
        self.entries.iter().map(|e| (e.spec.name.as_str(), e.worst)).collect()
    }

    /// Every transition so far, in emission order.
    pub fn verdicts(&self) -> &[SloVerdict] {
        &self.verdicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn served(latency: u64) -> RequestOutcome {
        RequestOutcome { served: true, rejected: false, latency: Some(latency) }
    }
    fn shed() -> RequestOutcome {
        RequestOutcome { served: false, rejected: false, latency: None }
    }
    fn rejected() -> RequestOutcome {
        RequestOutcome { served: false, rejected: true, latency: None }
    }

    fn deadline_spec() -> SloSpec {
        // 5% budget, long window 1200 ticks (short = 100)
        SloSpec::new("deadline", SloObjective::DeadlineHitRatio { min_permille: 950 }, 1200)
    }

    #[test]
    fn healthy_stream_never_alerts() {
        let mut slo = SloEngine::new(vec![deadline_spec()]);
        for i in 0..500u64 {
            assert!(slo.record(i * 10, &served(40)).is_empty());
        }
        assert_eq!(slo.states()[0].1, AlertState::Ok);
        assert_eq!(slo.worst_states()[0].1, AlertState::Ok);
        assert!(slo.verdicts().is_empty());
    }

    #[test]
    fn sustained_overload_pages_and_deasserts_after_recovery() {
        let mut slo = SloEngine::new(vec![deadline_spec()]);
        let mut t = 0;
        // healthy warm-up
        for _ in 0..200 {
            slo.record(t, &served(40));
            t += 10;
        }
        // sustained 30% shed: burn 300/50 = 6x >> 2x page on both windows
        for i in 0..400u64 {
            let o = if i % 10 < 3 { shed() } else { served(40) };
            slo.record(t, &o);
            t += 10;
        }
        assert_eq!(slo.states()[0].1, AlertState::Page, "sustained burn must page");
        // recovery: healthy traffic long enough to clear both windows
        for _ in 0..2000 {
            slo.record(t, &served(40));
            t += 10;
        }
        assert_eq!(slo.states()[0].1, AlertState::Ok, "alert de-asserts after recovery");
        let worst = slo.worst_states()[0].1;
        assert_eq!(worst, AlertState::Page, "worst state remembers the incident");
        // transitions are monotone in time and alternate coherently
        let v = slo.verdicts();
        assert!(!v.is_empty());
        assert!(v.windows(2).all(|w| w[0].at <= w[1].at));
        assert_eq!(v.last().unwrap().to, AlertState::Ok);
    }

    #[test]
    fn one_bad_short_window_does_not_page() {
        let mut slo = SloEngine::new(vec![deadline_spec()]);
        let mut t = 0;
        for _ in 0..500 {
            slo.record(t, &served(40));
            t += 10;
        }
        // a short burst of sheds inside one short window; the long
        // window stays far under budget
        for _ in 0..4 {
            slo.record(t, &shed());
            t += 2;
        }
        assert_ne!(slo.states()[0].1, AlertState::Page, "transient burst must not page");
    }

    #[test]
    fn objectives_classify_rejections_differently() {
        let dl = SloObjective::DeadlineHitRatio { min_permille: 950 };
        let av = SloObjective::Availability { min_permille: 900 };
        let p99 = SloObjective::P99LatencyBound { max_ticks: 100 };
        assert_eq!(dl.classify(&rejected()), None);
        assert_eq!(av.classify(&rejected()), Some(true));
        assert_eq!(p99.classify(&rejected()), None);
        assert_eq!(dl.classify(&shed()), Some(true));
        assert_eq!(p99.classify(&shed()), Some(true));
        assert_eq!(p99.classify(&served(99)), Some(false));
        assert_eq!(p99.classify(&served(101)), Some(true));
        assert_eq!(dl.budget_permille(), 50);
        assert_eq!(av.budget_permille(), 100);
        assert_eq!(p99.budget_permille(), 10);
    }

    #[test]
    fn engine_is_deterministic() {
        let run = || {
            let mut slo = SloEngine::new(vec![deadline_spec()]);
            let mut t = 0;
            for i in 0..1000u64 {
                let o = if i % 7 == 0 { shed() } else { served(30 + i % 50) };
                slo.record(t, &o);
                t += 3 + i % 5;
            }
            format!("{:?} {:?}", slo.states(), slo.verdicts())
        };
        assert_eq!(run(), run());
    }
}
