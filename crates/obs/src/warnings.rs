//! Process-wide, once-per-key warning sink.
//!
//! Library crates sometimes hit an anomaly (a bad `HERMES_JOBS` value, a
//! deprecated knob) before any [`Recorder`](crate::Recorder) exists — and
//! must not spam it once per call site invocation. `warn_once` records a
//! warning the *first* time each key is seen in the process and tells the
//! caller whether it was the first, so the caller can mirror it to stderr
//! exactly once. Trace exporters drain [`snapshot`] into the document's
//! warnings section.

use std::sync::{Mutex, OnceLock};

fn sink() -> &'static Mutex<Vec<(String, String)>> {
    static SINK: OnceLock<Mutex<Vec<(String, String)>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Vec::new()))
}

/// Record `(key, message)` if `key` has not been warned about yet in this
/// process. Returns `true` on the first occurrence of `key`.
pub fn warn_once(key: &str, message: &str) -> bool {
    let mut w = sink().lock().unwrap_or_else(|e| e.into_inner());
    if w.iter().any(|(k, _)| k == key) {
        return false;
    }
    w.push((key.to_string(), message.to_string()));
    true
}

/// All `(key, message)` warnings recorded so far, in first-seen order.
pub fn snapshot() -> Vec<(String, String)> {
    sink().lock().unwrap_or_else(|e| e.into_inner()).clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_occurrence_wins() {
        assert!(warn_once("obs-test-key", "first message"));
        assert!(!warn_once("obs-test-key", "second message"));
        let snap = snapshot();
        let hits: Vec<_> = snap.iter().filter(|(k, _)| k == "obs-test-key").collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1, "first message");
    }
}
