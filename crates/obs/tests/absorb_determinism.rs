//! Property-style test of the `child()`/`absorb()` determinism contract:
//! with nested children recording under different simulated thread
//! interleavings, absorbing in input order must yield a byte-identical
//! merged stream, and trace/span ids minted by each child must not
//! depend on the interleaving at all.

use hermes_obs::{ClockDomain, Recorder, WallMark};

/// Tiny deterministic LCG (obs cannot depend on the RTL crate's RNG).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// A canonical rendering of a snapshot covering everything the
/// determinism contract promises: subsystem order, event order, names,
/// timestamps, and trace links.
fn fingerprint(rec: &Recorder) -> String {
    let snap = rec.snapshot();
    let mut s = String::new();
    for sub in &snap.subsystems {
        s.push_str(&format!("[{} dropped={}]\n", sub.name, sub.dropped));
        for ev in &sub.events {
            s.push_str(&format!(
                "{} {} {} ts={} trace={:?}\n",
                ev.seq,
                ev.name,
                ev.kind.as_str(),
                ev.ts,
                ev.trace
            ));
        }
    }
    for (sub, name, v) in &snap.counters {
        s.push_str(&format!("c {sub} {name} {v}\n"));
    }
    s
}

/// One unit of work a (simulated) thread performs on its child recorder.
fn record_unit(rec: &Recorder, unit: usize, step: u64) {
    let sub = if step.is_multiple_of(3) { "alpha" } else { "beta" };
    let ctx = rec.mint_trace();
    let root = rec.trace_span(
        sub,
        &format!("u{unit}-root"),
        ClockDomain::Cpu,
        step * 10,
        8,
        &[],
        WallMark::none(),
        ctx,
    );
    rec.trace_span(
        sub,
        &format!("u{unit}-leaf"),
        ClockDomain::Cpu,
        step * 10,
        3,
        &[],
        WallMark::none(),
        ctx.child(root),
    );
    rec.counter_add(sub, "units", 1);
}

/// Run the whole scenario: a parent with `n` children, one of which has
/// two nested grandchildren. `schedule_seed` drives *only* the simulated
/// interleaving (which child records next); the per-child content is
/// fixed. Children are absorbed in input order regardless.
fn run_scenario(n: usize, steps: u64, schedule_seed: u64) -> (String, Vec<u64>) {
    let parent = Recorder::new();
    let children: Vec<Recorder> = (0..n).map(|_| parent.child()).collect();
    let grand: Vec<Recorder> = (0..2).map(|_| children[0].child()).collect();

    // interleave: each lane keeps its own step counter; the schedule
    // decides which lane advances next
    let mut rng = Lcg(schedule_seed);
    let lanes = n + 2;
    let mut done = vec![0u64; lanes];
    while done.iter().any(|&d| d < steps) {
        let lane = (rng.next() as usize) % lanes;
        if done[lane] >= steps {
            continue;
        }
        let step = done[lane];
        done[lane] += 1;
        if lane < n {
            record_unit(&children[lane], lane, step);
        } else {
            record_unit(&grand[lane - n], 100 + lane - n, step);
        }
    }

    // trace ids minted by each lane are a pure function of construction
    // order — capture the next mint from each child to prove it
    let minted: Vec<u64> = children
        .iter()
        .chain(grand.iter())
        .map(|c| c.mint_trace().trace_id)
        .collect();

    // merge in input order: grandchildren into child 0, children into parent
    for g in &grand {
        children[0].absorb(g);
    }
    for c in &children {
        parent.absorb(c);
    }
    (fingerprint(&parent), minted)
}

#[test]
fn absorb_is_invariant_under_interleaving() {
    let (baseline_fp, baseline_ids) = run_scenario(3, 5, 0xfeed);
    assert!(baseline_fp.contains("trace=Some"), "traced events present");
    for seed in 1..32u64 {
        let (fp, ids) = run_scenario(3, 5, 0xfeed ^ seed.wrapping_mul(0x9e3779b97f4a7c15));
        assert_eq!(fp, baseline_fp, "merged stream diverged under schedule seed {seed}");
        assert_eq!(ids, baseline_ids, "minted trace ids diverged under schedule seed {seed}");
    }
}

#[test]
fn nested_absorb_preserves_event_order_and_ids() {
    // deeper nesting, fixed schedule: parent -> c -> (g1, g2); verify the
    // event order after a two-level merge is the recording order of each
    // recorder, children appended at their absorb point
    let parent = Recorder::new();
    let c = parent.child();
    let g1 = c.child();
    let g2 = c.child();
    let t_parent = parent.mint_trace();
    let t_g2 = g2.mint_trace();
    parent.instant("s", "p1", ClockDomain::Seq, 0, &[]);
    c.instant("s", "c1", ClockDomain::Seq, 1, &[]);
    g1.instant("s", "g1a", ClockDomain::Seq, 2, &[]);
    g2.trace_instant("s", "g2a", ClockDomain::Seq, 3, &[], t_g2);
    c.instant("s", "c2", ClockDomain::Seq, 4, &[]);
    c.absorb(&g1);
    c.absorb(&g2);
    parent.absorb(&c);
    parent.trace_instant("s", "p2", ClockDomain::Seq, 5, &[], t_parent);

    let snap = parent.snapshot();
    let names: Vec<&str> =
        snap.subsystems[0].events.iter().map(|e| e.name.as_str()).collect();
    assert_eq!(names, vec!["p1", "c1", "c2", "g1a", "g2a", "p2"]);
    let seqs: Vec<u64> = snap.subsystems[0].events.iter().map(|e| e.seq).collect();
    let mut sorted = seqs.clone();
    sorted.sort_unstable();
    assert_eq!(seqs, sorted, "re-sequenced in merge order");
    // trace links survive the merge verbatim and never collide
    let g2_ev = &snap.subsystems[0].events[4];
    assert_eq!(g2_ev.trace.unwrap().trace_id, t_g2.trace_id);
    assert_ne!(t_g2.trace_id, t_parent.trace_id);
}
