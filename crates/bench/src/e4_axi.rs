//! E4 — AXI4 interface and memory-delay sensitivity (Section II).
//!
//! (a) Bus-accurate co-simulation of a streaming kernel against slave
//! memories of increasing latency — the "memory delay estimates … to
//! assess the performance of the application considering also data
//! transfers"; (b) aligned vs unaligned transfer cost; (c) burst-length
//! bandwidth sweep.

use crate::cells;
use crate::table::Table;
use crate::ExperimentOutput;
use hermes_axi::cache::{AxiCache, CacheConfig};
use hermes_axi::memory::MemoryTiming;
use hermes_axi::testbench::AxiTestbench;
use hermes_hls::ir::ArrayId;
use hermes_hls::simulate::ExternalMemory;
use hermes_hls::HlsFlow;
use std::collections::HashMap;

const SUM_SOURCE: &str = r#"
int sum(int *data, int n) {
    int s = 0;
    for (int i = 0; i < n; i += 1) { s += data[i]; }
    return s;
}
"#;

/// Run E4 and render its tables.
pub fn run() -> ExperimentOutput {
    run_traced(&hermes_obs::Recorder::disabled())
}

/// Run E4 with a flight recorder: every co-simulation promotes its
/// [`hermes_axi::testbench::BusStats`] into obs counters and the
/// read-latency histogram under the `axi` subsystem.
pub fn run_traced(obs: &hermes_obs::Recorder) -> ExperimentOutput {
    // compile with an optimistic static memory estimate so the
    // bus-accurate co-simulation (not the static schedule) sets the pace
    let design = HlsFlow::new()
        .unroll_limit(0)
        .ext_mem_latency(2, 1)
        .compile(SUM_SOURCE)
        .expect("sum compiles");
    let n = 64usize;

    let mut a = Table::new(&["memory", "read_lat", "cycles", "cycles/elem", "bus_util"]);
    for (name, timing) in [
        ("ideal", MemoryTiming::ideal()),
        ("default-ddr", MemoryTiming::default()),
        ("slow-radtol", MemoryTiming::slow()),
    ] {
        let mut tb = AxiTestbench::new(4096, timing);
        for i in 0..n {
            tb.memory_mut()
                .poke(i as u64 * 4, &(1i32).to_le_bytes());
        }
        let mut base = HashMap::new();
        base.insert(ArrayId(0), 0u64);
        let mut ext = ExternalMemory::Axi {
            bus: &mut tb,
            base_addr: base,
        };
        let r = design
            .simulate_with_memory(&[n as i64], &mut ext)
            .expect("co-simulation");
        assert_eq!(r.return_value, Some(n as i64));
        let stats = tb.stats();
        stats.obs_export(obs, "axi");
        a.row(cells![
            name,
            timing.read_latency,
            r.cycles,
            format!("{:.1}", r.cycles as f64 / n as f64),
            format!("{:.3} B/cy", stats.bytes_per_cycle()),
        ]);
        assert!(tb.violations().is_empty(), "protocol must stay clean");
    }

    // aligned vs unaligned raw transfers
    let mut b = Table::new(&["transfer", "bytes", "cycles", "bursts"]);
    for (name, addr) in [("aligned", 0x1000u64), ("unaligned+3", 0x1003u64)] {
        let mut tb = AxiTestbench::new(16 * 1024, MemoryTiming::default());
        let (_, cycles) = tb.read_blocking(addr, 512).expect("read");
        let s = tb.stats();
        s.obs_export(obs, "axi");
        b.row(cells![name, 512, cycles, s.read_bursts]);
    }

    // burst length sweep: bandwidth of reading 4 KiB in chunks
    let mut c = Table::new(&["chunk_bytes", "cycles", "bandwidth_B/cy"]);
    for chunk in [8usize, 32, 128, 512, 2048] {
        let mut tb = AxiTestbench::new(16 * 1024, MemoryTiming::default());
        let total = 4096usize;
        let mut cycles = 0u64;
        for off in (0..total).step_by(chunk) {
            let (_, cy) = tb.read_blocking(off as u64, chunk).expect("read");
            cycles += cy;
        }
        c.row(cells![
            chunk,
            cycles,
            format!("{:.3}", total as f64 / cycles as f64),
        ]);
    }

    // E4d: the planned cache/prefetch extension — sum(256) with the
    // accelerator-side cache at several geometries
    let mut d = Table::new(&["cache", "capacity_B", "cycles", "hit_rate", "prefetch_hits"]);
    let n2 = 256usize;
    {
        // cache-less baseline
        let mut tb = AxiTestbench::new(16 * 1024, MemoryTiming::default());
        for i in 0..n2 {
            tb.memory_mut().poke(i as u64 * 4, &(1i32).to_le_bytes());
        }
        let mut base = HashMap::new();
        base.insert(ArrayId(0), 0u64);
        let mut ext = ExternalMemory::Axi {
            bus: &mut tb,
            base_addr: base,
        };
        let r = design
            .simulate_with_memory(&[n2 as i64], &mut ext)
            .expect("baseline");
        d.row(cells!["none", 0, r.cycles, "-", "-"]);
    }
    for (name, cfg) in [
        (
            "small direct",
            CacheConfig {
                line_bytes: 32,
                sets: 8,
                ways: 1,
                prefetch_next_line: false,
            },
        ),
        (
            "2-way+prefetch",
            CacheConfig {
                line_bytes: 64,
                sets: 16,
                ways: 2,
                prefetch_next_line: true,
            },
        ),
        (
            "4-way+prefetch",
            CacheConfig {
                line_bytes: 64,
                sets: 32,
                ways: 4,
                prefetch_next_line: true,
            },
        ),
    ] {
        let mut tb = AxiTestbench::new(16 * 1024, MemoryTiming::default());
        for i in 0..n2 {
            tb.memory_mut().poke(i as u64 * 4, &(1i32).to_le_bytes());
        }
        let mut cache = AxiCache::new(cfg);
        let mut base = HashMap::new();
        base.insert(ArrayId(0), 0u64);
        let mut ext = ExternalMemory::CachedAxi {
            cache: &mut cache,
            bus: &mut tb,
            base_addr: base,
        };
        let r = design
            .simulate_with_memory(&[n2 as i64], &mut ext)
            .expect("cached run");
        assert_eq!(r.return_value, Some(n2 as i64));
        d.row(cells![
            name,
            cfg.capacity(),
            r.cycles,
            format!("{:.2}", cache.stats.hit_rate()),
            cache.stats.prefetch_hits,
        ]);
    }

    let text = format!(
        "E4a: sum(64) accelerator vs slave-memory latency (bus-accurate)\n{}\n\
         E4b: aligned vs unaligned 512-byte reads\n{}\n\
         E4c: burst-length sweep reading 4 KiB\n{}\n\
         E4d: accelerator-side cache (the paper's planned extension), sum(256)\n{}",
        a.render(),
        b.render(),
        c.render(),
        d.render()
    );
    ExperimentOutput::new(text)
        .with("e4a", "latency sensitivity", a)
        .with("e4b", "aligned vs unaligned reads", b)
        .with("e4c", "burst-length sweep", c)
        .with("e4d", "accelerator-side cache", d)
}

#[cfg(test)]
mod tests {
    #[test]
    fn e4_latency_ordering_holds() {
        let out = super::run().text;
        assert!(out.contains("ideal"));
        assert!(out.contains("slow-radtol"));
        // bandwidth rises with chunk size: last row must beat the first
        let lines: Vec<&str> = out
            .lines()
            .skip_while(|l| !l.contains("chunk_bytes"))
            .skip(2)
            .take(5)
            .collect();
        let bw = |line: &str| -> f64 {
            line.split_whitespace().last().unwrap().parse().unwrap()
        };
        assert!(bw(lines[4]) > bw(lines[0]), "bigger bursts more efficient");
    }
}
