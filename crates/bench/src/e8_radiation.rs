//! E8 — Radiation-hardening effectiveness (the Section I platform claims:
//! "triple modular redundancy, error correction mechanisms, and memory
//! integrity checks").
//!
//! Protection × scrub-interval × flux sweeps under identical seeded upset
//! sequences, plus the configuration-bitstream CRC audit.

use crate::cells;
use crate::table::Table;
use crate::ExperimentOutput;
use hermes_rad::campaign::{bitstream_campaign, Campaign, Protection};

/// Harness entry point; E8 has no instrumented layers yet, so the
/// recorder is unused.
pub fn run_traced(_obs: &hermes_obs::Recorder) -> ExperimentOutput {
    run()
}

/// Run E8 and render its tables.
pub fn run() -> ExperimentOutput {
    let mut a = Table::new(&[
        "protection", "upsets", "silent", "detected", "corrected", "overhead%",
    ]);
    for protection in [Protection::None, Protection::Tmr, Protection::Edac] {
        let r = Campaign::new(4096, 0xABCD)
            .upsets(400)
            .scrub_interval(Some(1000))
            .run(protection);
        a.row(cells![
            format!("{:?}", r.protection),
            r.upsets,
            r.silent_corruptions,
            r.detected_uncorrectable,
            r.corrected,
            r.storage_overhead_pct,
        ]);
    }

    let mut b = Table::new(&["scrub_interval", "tmr_silent", "edac_silent+detected"]);
    for interval in [None, Some(100_000u64), Some(10_000), Some(1_000), Some(100)] {
        let tmr = Campaign::new(256, 0x77)
            .upsets(3000)
            .scrub_interval(interval)
            .run(Protection::Tmr);
        let edac = Campaign::new(256, 0x77)
            .upsets(3000)
            .scrub_interval(interval)
            .run(Protection::Edac);
        b.row(cells![
            interval.map(|i| i.to_string()).unwrap_or_else(|| "never".into()),
            tmr.silent_corruptions,
            edac.silent_corruptions + edac.detected_uncorrectable,
        ]);
    }

    let mut c = Table::new(&["upsets", "none_silent", "tmr_silent", "edac_silent"]);
    for upsets in [50usize, 200, 800, 3200] {
        let run_p = |p| {
            Campaign::new(1024, 0x5A5A)
                .upsets(upsets)
                .scrub_interval(Some(2_000))
                .run(p)
        };
        c.row(cells![
            upsets,
            run_p(Protection::None).silent_corruptions,
            run_p(Protection::Tmr).silent_corruptions,
            run_p(Protection::Edac).silent_corruptions,
        ]);
    }

    // configuration-plane audit
    let artifact = hermes_core::accelerator::AcceleratorFlow::new()
        .build("int f(int a, int b) { return a * b + a; }")
        .expect("accelerator builds");
    let r = bitstream_campaign(&artifact.bitstream, 100, 0xF00D);
    let mut d = Table::new(&["metric", "value"]);
    d.row(cells!["config upsets injected", r.upsets]);
    d.row(cells!["corrupted frames detected by CRC", r.detected_frames]);
    d.row(cells!["corrupted frames undetected", r.undetected_frames]);

    let text = format!(
        "E8a: protection comparison (4096 words, 400 upsets, scrub@1000)\n{}\n\
         E8b: scrub-interval sweep (256 words, 3000 upsets)\n{}\n\
         E8c: flux sweep (1024 words, scrub@2000)\n{}\n\
         E8d: eFPGA configuration-memory CRC audit\n{}",
        a.render(),
        b.render(),
        c.render(),
        d.render()
    );
    ExperimentOutput::new(text)
        .with("e8a", "protection comparison", a)
        .with("e8b", "scrub-interval sweep", b)
        .with("e8c", "flux sweep", c)
        .with("e8d", "config CRC audit", d)
}

#[cfg(test)]
mod tests {
    #[test]
    fn e8_protection_ordering() {
        let out = super::run().text;
        assert!(out.contains("Tmr"));
        assert!(out.contains("Edac"));
        assert!(out.contains("corrupted frames undetected"));
        // the undetected row must end in 0
        let undetected = out
            .lines()
            .find(|l| l.contains("undetected"))
            .unwrap()
            .split_whitespace()
            .last()
            .unwrap();
        assert_eq!(undetected, "0");
    }
}
