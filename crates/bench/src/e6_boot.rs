//! E6 — Boot sequence timing and recovery (Fig. 5, Section IV).
//!
//! Stage-by-stage cycle breakdown of the BL0→BL1→application sequence from
//! flash and from SpaceWire; redundancy-mode ablation under injected flash
//! corruption.

use crate::cells;
use crate::table::Table;
use crate::ExperimentOutput;
use hermes_boot::bl1::{Bl1, BootSource};
use hermes_boot::flash::{Flash, FlashImageBuilder, RedundancyMode};
use hermes_boot::loadlist::LoadList;
use hermes_cpu::isa::assemble;
use hermes_cpu::memmap::layout;

fn mission_flash(mode: RedundancyMode) -> (Flash, LoadList) {
    let app = assemble("addi r1, r0, 7\nhalt").expect("asm");
    let mut b = FlashImageBuilder::new();
    let payload: Vec<u8> = (0..2048u32).flat_map(|v| v.to_le_bytes()).collect();
    let e1 = b.add_data(layout::DDR_BASE + 0x10_0000, &payload);
    let e2 = b.add_software(layout::DDR_BASE, layout::DDR_BASE, &app);
    let list = LoadList {
        entries: vec![e1, e2],
    };
    let flash = b.build(&list, mode);
    (flash, list)
}

/// Run E6 and render its tables.
pub fn run() -> ExperimentOutput {
    run_traced(&hermes_obs::Recorder::disabled())
}

/// Run E6 with a flight recorder: the flash and SpaceWire boot timelines
/// export one `Boot`-clocked span per BL1 stage (under `boot.flash` and
/// `boot.spw`) plus the recovery counters of each [`BootReport`].
///
/// [`BootReport`]: hermes_boot::report::BootReport
pub fn run_traced(obs: &hermes_obs::Recorder) -> ExperimentOutput {
    // stage breakdown, flash vs spacewire
    let mut a = Table::new(&["stage", "flash_cycles", "spw_cycles"]);
    let (flash, list) = mission_flash(RedundancyMode::Tmr);
    let link = BootSource::spacewire_from_flash(
        mission_flash(RedundancyMode::Tmr).0,
        &list,
    )
    .expect("remote publish");
    let mut bl1_flash = Bl1::new(BootSource::Flash(flash));
    bl1_flash.app_run_budget = 0;
    let flash_out = bl1_flash.boot().expect("flash boot");
    let mut bl1_spw = Bl1::new(BootSource::SpaceWire(link));
    bl1_spw.app_run_budget = 0;
    let spw_out = bl1_spw.boot().expect("spw boot");
    flash_out.report.obs_export(obs, "boot.flash");
    spw_out.report.obs_export(obs, "boot.spw");
    for (f, s) in flash_out.report.stages.iter().zip(&spw_out.report.stages) {
        a.row(cells![f.name, f.cycles, s.cycles]);
    }
    a.row(cells![
        "TOTAL",
        flash_out.report.total_cycles(),
        spw_out.report.total_cycles()
    ]);

    // redundancy ablation with corruption of one copy
    let mut b = Table::new(&["redundancy", "boot", "corrected_bytes", "total_cycles"]);
    for mode in [
        RedundancyMode::None,
        RedundancyMode::Sequential,
        RedundancyMode::Tmr,
    ] {
        let (mut flash, list) = mission_flash(mode);
        // pepper copy 0 of the first payload with upsets
        for i in 0..64u32 {
            flash.flip_bit(0, list.entries[0].offset + i * 17, (i % 8) as u8);
        }
        let mut bl1 = Bl1::new(BootSource::Flash(flash));
        bl1.app_run_budget = 0;
        match bl1.boot() {
            Ok(out) => b.row(cells![
                format!("{mode:?}"),
                "SUCCESS",
                out.report.flash_corrected_bytes,
                out.report.total_cycles(),
            ]),
            Err(e) => b.row(cells![format!("{mode:?}"), format!("FAILED ({e})"), 0, 0]),
        }
    }

    let text = format!(
        "E6a: boot stage breakdown, flash vs SpaceWire (cycles)\n{}\n\
         E6b: redundancy ablation with 64 upsets in flash copy 0\n{}",
        a.render(),
        b.render()
    );
    ExperimentOutput::new(text)
        .with("e6a", "boot stage breakdown", a)
        .with("e6b", "redundancy ablation", b)
}

#[cfg(test)]
mod tests {
    #[test]
    fn e6_shapes_hold() {
        let out = super::run().text;
        assert!(out.contains("ddr-init"));
        // unprotected boot fails, protected ones succeed
        assert!(out.contains("FAILED"));
        let successes = out.matches("SUCCESS").count();
        assert_eq!(successes, 2, "Sequential and TMR recover:\n{out}");
    }
}
