//! E15 — Adversarial spatial isolation (the qualification claim behind
//! Section III's space partitioning): a seeded hostile partition probes
//! its neighbors' memory, ports, and privileged services, and **every
//! probe must land as an attributed health-monitor event** — probe count
//! equals trap count, victim sentinels survive bit-for-bit, and no trap is
//! ever blamed on a victim (zero silent leaks).
//!
//! The experiment also quantifies the *cost* of spatial isolation by
//! sweeping both mechanisms under identical guest schedules: full MPU
//! reprogramming on every guest dispatch (cost scaling with the region
//! count) vs. protection-key domains (one union table installed per core,
//! then a constant-cost active-key swap per dispatch).

use crate::cells;
use crate::table::Table;
use crate::ExperimentOutput;
use hermes_chaos::hostile::{
    hostile_campaign_traced, hypercall_fuzz_campaign, HostileCampaignConfig, REGION_SIZE,
};
use hermes_chaos::plan::ProbeClass;
use hermes_cpu::isa::assemble;
use hermes_cpu::memmap::layout;
use hermes_cpu::mpu::{reprogram_cost, GATE_CROSS_CYCLES};
use hermes_xng::config::{IsolationMode, MemRegion, PartitionConfig, Plan, Slot, XngConfig};
use hermes_xng::hypervisor::Hypervisor;

/// Probes per hostile campaign in the sweep.
const PROBES: u32 = 12;

/// Stable label for an isolation mode.
fn mode_label(mode: IsolationMode) -> &'static str {
    match mode {
        IsolationMode::MpuReprogram => "mpu-reprogram",
        IsolationMode::ProtectionKeys => "protection-keys",
    }
}

/// Run E15 and render its tables.
pub fn run() -> ExperimentOutput {
    run_with_jobs(hermes_par::jobs())
}

/// Run E15 with an explicit worker count (campaigns in parallel).
pub fn run_with_jobs(jobs: usize) -> ExperimentOutput {
    run_traced_jobs(jobs, &hermes_obs::Recorder::disabled())
}

/// Run E15 on the default worker count, tracing into `obs`.
pub fn run_traced(obs: &hermes_obs::Recorder) -> ExperimentOutput {
    run_traced_jobs(hermes_par::jobs(), obs)
}

/// Run E15 with an explicit worker count and a flight recorder. Each
/// campaign traces into its own child recorder, absorbed in sweep order,
/// so any worker count renders bit-identical tables.
pub fn run_traced_jobs(jobs: usize, obs: &hermes_obs::Recorder) -> ExperimentOutput {
    // ---- E15a: hostile campaign sweep ------------------------------------
    let seeds = [7u64, 21, 42, 99];
    let mut campaigns = Vec::new();
    for &seed in &seeds {
        for victims in [2usize, 4] {
            for isolation in [IsolationMode::MpuReprogram, IsolationMode::ProtectionKeys] {
                campaigns.push(HostileCampaignConfig {
                    seed,
                    victims,
                    probes: PROBES,
                    isolation,
                });
            }
        }
    }
    let reports = hermes_par::par_map_jobs(jobs, &campaigns, |cfg| {
        let child = obs.child();
        let report = hostile_campaign_traced(cfg, &child);
        (report, child)
    })
    .expect("campaigns are infallible");
    let reports: Vec<_> = reports
        .into_iter()
        .map(|(report, child)| {
            obs.absorb(&child);
            report
        })
        .collect();

    let mut a = Table::new(&[
        "seed",
        "victims",
        "isolation",
        "probes",
        "trapped",
        "silent",
        "sentinels",
        "victim_blamed",
        "escalations",
        "failovers",
        "leak_free",
    ]);
    for r in &reports {
        a.row(cells![
            r.seed,
            r.victims,
            mode_label(r.isolation),
            r.probes,
            r.trapped,
            r.silent,
            if r.sentinels_intact { "intact" } else { "BREACHED" },
            r.victim_blamed,
            r.hm_escalations,
            r.spare_failovers,
            if r.zero_silent_leaks() { "yes" } else { "NO" },
        ]);
    }

    // ---- E15b: probe-class breakdown (seed 42, 4 victims, keys) ----------
    let reference = reports
        .iter()
        .find(|r| {
            r.seed == 42 && r.victims == 4 && r.isolation == IsolationMode::ProtectionKeys
        })
        .expect("reference campaign is in the sweep");
    let mut b = Table::new(&["probe class", "probes", "trapped"]);
    for (class, stats) in ProbeClass::ALL.iter().zip(reference.by_class.iter()) {
        b.row(cells![class.label(), stats.probes, stats.trapped]);
    }

    // ---- E15c: isolation overhead, gate crossing vs MPU reprogram --------
    let shapes = [(2usize, 1usize), (4, 1), (8, 1), (4, 2), (8, 2)];
    let mut c = Table::new(&[
        "partitions",
        "regions/part",
        "isolation",
        "guest_dispatches",
        "isolation_cycles",
        "cycles/dispatch",
        "model",
    ]);
    let overhead = hermes_par::par_map_jobs(jobs, &shapes, |&(parts, regions)| {
        [IsolationMode::MpuReprogram, IsolationMode::ProtectionKeys]
            .map(|mode| overhead_run(parts, regions, mode))
    })
    .expect("overhead runs are infallible");
    for (&(parts, regions), row) in shapes.iter().zip(&overhead) {
        for &(mode, dispatches, cycles) in row {
            let per = cycles.checked_div(dispatches).unwrap_or(0);
            let model = match mode {
                IsolationMode::MpuReprogram => {
                    format!("{} (6+4r)", reprogram_cost(regions))
                }
                IsolationMode::ProtectionKeys => format!("{GATE_CROSS_CYCLES} (const)"),
            };
            c.row(cells![
                parts,
                regions,
                mode_label(mode),
                dispatches,
                cycles,
                per,
                model
            ]);
        }
    }

    // ---- E15d: undefined-hypercall fuzzing -------------------------------
    let fuzz = hermes_par::par_map_jobs(jobs, &seeds, |&seed| {
        hypercall_fuzz_campaign(seed, 48)
    })
    .expect("fuzz sweeps are infallible");
    let mut d = Table::new(&["seed", "attempts", "attributed", "silent"]);
    for f in &fuzz {
        d.row(cells![f.seed, f.attempts, f.attributed, f.silent]);
    }

    let text = format!(
        "E15a: hostile campaign sweep (zero-silent-leak gate)\n{}\n\
         E15b: probe-class breakdown (seed 42, 4 victims, protection keys)\n{}\n\
         E15c: isolation overhead, MPU reprogram vs protection-key gate crossing\n{}\n\
         E15d: undefined-hypercall fuzzing (every attempt attributed)\n{}",
        a.render(),
        b.render(),
        c.render(),
        d.render(),
    );
    ExperimentOutput::new(text)
        .with("e15a", "hostile campaign sweep", a)
        .with("e15b", "probe-class breakdown (seed 42)", b)
        .with("e15c", "isolation overhead", c)
        .with("e15d", "hypercall fuzzing", d)
}

/// Run `parts` spinning guest partitions (each with `regions` MPU regions)
/// for a fixed schedule with isolation cycles charged, and return the
/// guest dispatch count and total isolation cycles for `mode`.
fn overhead_run(parts: usize, regions: usize, mode: IsolationMode) -> (IsolationMode, u64, u64) {
    let mut cfg = XngConfig::new("overhead");
    let chunk = REGION_SIZE / regions as u32;
    let mut pids = Vec::with_capacity(parts);
    for i in 0..parts {
        let base = layout::SRAM_BASE + REGION_SIZE * i as u32;
        let mut p = PartitionConfig::new(format!("p{i}"));
        for r in 0..regions {
            p = p.with_memory(MemRegion {
                base: base + chunk * r as u32,
                size: chunk,
                writable: true,
            });
        }
        pids.push(cfg.add_partition(p));
    }
    cfg.set_plan(
        0,
        Plan::new(pids.iter().map(|&p| Slot::new(p, 40)).collect()),
    );
    cfg.context_switch_cycles = 4;
    cfg.isolation = mode;
    cfg.charge_isolation_cycles = true;
    let mut hv = Hypervisor::new(cfg).expect("static overhead config validates");
    let spin = assemble("spin:\necall 0x08\njal r0, spin").expect("static program");
    for (i, &pid) in pids.iter().enumerate() {
        let base = layout::SRAM_BASE + REGION_SIZE * i as u32;
        hv.attach_guest(pid, base, vec![(base, spin.clone())])
            .expect("partition exists");
    }
    hv.run(20_000).expect("spin guests are benign");
    let iso = hv.isolation_stats();
    match mode {
        IsolationMode::MpuReprogram => (mode, iso.mpu_reprograms, iso.mpu_reprogram_cycles),
        IsolationMode::ProtectionKeys => (mode, iso.gate_crossings, iso.gate_cross_cycles),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e15_gate_holds_and_costs_are_ordered() {
        let out = run_with_jobs(2);
        assert!(out.text.contains("E15a"));
        assert!(!out.text.contains("BREACHED"));
        assert!(!out.text.contains(" NO"));
        // keys mode must be cheaper per dispatch than reprogramming
        let c = &out.tables.iter().find(|(id, _, _)| id == "e15c").unwrap().2;
        assert!(out.text.contains("(const)"));
        assert!(c.to_json().render().contains("protection-keys"));
    }

    #[test]
    fn e15_is_deterministic_across_jobs() {
        assert_eq!(run_with_jobs(1).text, run_with_jobs(4).text);
    }
}
