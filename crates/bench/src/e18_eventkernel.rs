//! E18 — Unified discrete-event kernel: cross-layer fast-forward wins.
//!
//! PR 9 replaced the three biggest polling loops — the serving engine's
//! per-tick arrival/completion scan, the XNG hypervisor's quiet-tick
//! march, and the AXI testbench's latency/timeout wait loops — with one
//! hierarchical timer-wheel kernel (`crates/kernel`, DESIGN.md §14).
//! The host is a single shared core, so E18 proves the win the only way
//! that is deterministic there: **algorithmically**, by counting the
//! scheduler passes each layer actually executes (polled ticks) against
//! the simulated ticks it fast-forwards over (skipped ticks).
//!
//! (a) runs each layer's co-sim leg with the event kernel on — serve at
//! 50% offered load under a pool chaos campaign, an XNG schedule with
//! native tasks + a yielding guest + an expiring watchdog, and an AXI
//! command sequence with slow memory, error retries, a stall-tripped
//! timeout, and an idle window — and gates the cross-layer polled-tick
//! reduction at **>= 10x**. Row order is itself produced by the kernel:
//! each leg's completion is posted to a [`TimerWheel`] and drained
//! through an [`EventSink`] in `(time, domain, seq)` order.
//! (b) exports the wheel health counters (occupancy, overflow, cascades)
//! per layer and in aggregate through `hermes-obs` under `kernel`.
//! (c) re-runs every leg with `HERMES_EVENT_KERNEL=off` semantics (the
//! sorted-reference scheduler for serve, the original per-tick loops for
//! XNG and AXI) and asserts the results are byte-identical — the knob
//! moves *when work happens on the host*, never *what the simulation
//! computes*.

use crate::cells;
use crate::e14_serving::{mlp_model, serve_cfg, workload_cfg, SEED};
use crate::table::Table;
use crate::ExperimentOutput;
use hermes_axi::memory::MemoryTiming;
use hermes_axi::testbench::{AxiTestbench, RetryPolicy};
use hermes_chaos::plan::{FaultPlan, FaultPlanConfig};
use hermes_cpu::memmap::layout;
use hermes_kernel::{DomainRegistry, Event, EventSink, TimerWheel, WheelStats};
use hermes_serve::engine::ServeEngine;
use hermes_serve::workload;
use hermes_xng::config::{MemRegion, PartitionConfig, Plan, Slot, XngConfig};
use hermes_xng::hypervisor::Hypervisor;
use hermes_xng::partition::native_task;
use hermes_xng::PartitionId;

/// Offered load for the serving leg (percent of pool saturation).
const SERVE_LOAD: u64 = 50;
/// Chaos seed for the serving leg's pool campaign.
const CHAOS_SEED: u64 = 18;
/// Hypervisor budget for the XNG leg, in ticks.
const XNG_BUDGET: u64 = 120_000;

/// One layer's polled/skipped ledger, both knob positions compared.
struct LayerRun {
    name: &'static str,
    /// Simulated ticks the leg spans.
    span: u64,
    /// Scheduler passes executed with the kernel on.
    polled_on: u64,
    /// Ticks fast-forwarded with the kernel on.
    skipped_on: u64,
    /// Scheduler passes executed with the kernel off.
    polled_off: u64,
    /// Wheel health counters of the kernel-on run.
    wheel: WheelStats,
}

impl LayerRun {
    /// Polled-tick reduction vs a per-tick baseline over the same span.
    fn reduction(&self) -> u64 {
        self.span.checked_div(self.polled_on).unwrap_or(0)
    }
}

/// One serving run of the E18 leg (50% offered load, pool chaos) with
/// the payload worker count and the event-kernel knob explicit. Public
/// so the determinism suite can replay it across both knobs.
pub fn serve_run(
    jobs: usize,
    event_kernel: bool,
) -> (hermes_serve::engine::ServeReport, ServeEngine) {
    let model = mlp_model();
    let base = workload_cfg(&model, &serve_cfg());
    let wl = base.at_load_pct(SERVE_LOAD);
    let arrivals = workload::generate(SEED, &wl);
    let span = arrivals.last().expect("workload non-empty").arrival;
    let plan = FaultPlan::generate(
        CHAOS_SEED,
        &FaultPlanConfig::pool_only(span, 2, 2, span as u32 / 8, 2),
    );
    let cfg = hermes_serve::engine::ServeConfig { jobs, ..serve_cfg() };
    let mut engine = ServeEngine::new(cfg, model, arrivals)
        .with_chaos(plan)
        .with_event_kernel(event_kernel);
    let report = engine.run();
    assert!(
        report.accounted(),
        "serve leg accounting (jobs={jobs}, kernel={event_kernel}): {report:?}"
    );
    (report, engine)
}

/// Serving leg: 50% offered load with a chaos campaign on the pool.
/// The off position is the sorted-reference scheduler — same wake
/// instants by construction, so the wake counts must match exactly.
fn serve_leg(jobs: usize) -> LayerRun {
    let (r_off, e_off) = serve_run(jobs, false);
    let (r_on, e_on) = serve_run(jobs, true);
    assert_eq!(r_off, r_on, "serve reports identical across the knob");
    assert_eq!(r_off.render(), r_on.render(), "serve renders byte-identical");
    assert_eq!(e_off.wakes(), e_on.wakes(), "wheel and reference wake on the same ticks");
    LayerRun {
        name: "serve",
        span: r_on.makespan,
        polled_on: e_on.wakes(),
        skipped_on: r_on.makespan.saturating_sub(e_on.wakes()),
        polled_off: e_off.wakes(),
        wheel: *e_on.kernel_stats(),
    }
}

/// XNG leg: a silent partition with an expiring watchdog, a flaky native
/// task that crashes into HM restarts mid-run, and a yielding guest, on
/// a two-core plan. The off position is the original per-tick loop.
fn xng_build() -> Hypervisor {
    let mut cfg = XngConfig::new("e18");
    let silent = cfg.add_partition(PartitionConfig::new("silent").with_watchdog(1_500));
    let flaky = cfg.add_partition(PartitionConfig::new("flaky").with_restart_limit(3));
    let guest = cfg.add_partition(PartitionConfig::new("guest").with_memory(MemRegion {
        base: layout::SRAM_BASE,
        size: 0x1000,
        writable: true,
    }));
    cfg.set_plan(
        0,
        Plan::new(vec![Slot::new(silent, 900), Slot::new(flaky, 700), Slot::new(guest, 1_100)]),
    );
    cfg.set_plan(1, Plan::new(vec![Slot::new(flaky, 1_300)]));
    let mut hv = Hypervisor::new(cfg).expect("config");
    hv.attach_native(
        flaky,
        native_task("flaky", |c| {
            c.consume(40);
            if c.now() > 4_000 && c.now() < 9_000 {
                Err("boom".into())
            } else {
                Ok(())
            }
        }),
    )
    .expect("attach");
    let prog = hermes_cpu::isa::assemble("spin:\necall 0x08\njal r0, spin").expect("asm");
    hv.attach_guest(guest, layout::SRAM_BASE, vec![(layout::SRAM_BASE, prog)])
        .expect("attach");
    hv
}

/// One hypervisor run of the E18 leg with the knob explicit (public
/// for the determinism suite).
pub fn xng_run(event_kernel: bool) -> Hypervisor {
    let mut hv = xng_build();
    hv.set_event_kernel(event_kernel);
    hv.run(XNG_BUDGET).expect("xng leg runs");
    hv
}

fn xng_leg() -> LayerRun {
    let off = xng_run(false);
    let on = xng_run(true);
    for pid in (0..3u32).map(PartitionId) {
        assert_eq!(off.stats(pid), on.stats(pid), "partition {pid:?} stats");
        assert_eq!(off.mode(pid), on.mode(pid), "partition {pid:?} mode");
    }
    assert_eq!(off.hm_escalations, on.hm_escalations);
    assert_eq!(off.health().log(), on.health().log(), "HM timeline identical");
    assert_eq!(off.time(), on.time());
    assert_eq!(
        on.ticks_polled() + on.ticks_skipped(),
        off.ticks_polled(),
        "every hypervisor tick is either polled or skipped"
    );
    LayerRun {
        name: "xng",
        span: on.time(),
        polled_on: on.ticks_polled(),
        skipped_on: on.ticks_skipped(),
        polled_off: off.ticks_polled(),
        wheel: *on.kernel_stats(),
    }
}

/// AXI leg: writes and reads against slow memory with injected SLVERRs
/// (retried with backoff), a 700-cycle stall that trips the 200-cycle
/// timeout, and an idle window. The off position steps every cycle.
fn axi_run(on: bool) -> (AxiTestbench, Vec<u64>) {
    let mut tb = AxiTestbench::new(8192, MemoryTiming::slow())
        .with_retry(RetryPolicy { max_retries: 3, backoff_base: 16 })
        .with_event_kernel(on);
    tb.timeout_cycles = 200;
    let mut costs = Vec::new();
    tb.memory_mut().poke(0x100, &[0x5A; 64]);
    costs.push(tb.write_blocking(0x400, &[7u8; 48]).expect("write"));
    tb.memory_mut().inject_read_slverr(2);
    let (data, c) = tb.read_blocking(0x100, 64).expect("read after retries");
    assert_eq!(data, vec![0x5A; 64]);
    costs.push(c);
    tb.idle(500);
    tb.memory_mut().inject_stall(700);
    let (data, c) = tb.read_blocking(0x400, 48).expect("read after timeout retry");
    assert_eq!(data, vec![7u8; 48]);
    costs.push(c);
    tb.memory_mut().inject_write_slverr(1);
    costs.push(tb.write_blocking(0x800, &[9u8; 32]).expect("write after retry"));
    (tb, costs)
}

fn axi_leg() -> LayerRun {
    let (off, costs_off) = axi_run(false);
    let (on, costs_on) = axi_run(true);
    assert_eq!(costs_off, costs_on, "per-operation cycle costs identical");
    assert_eq!(off.stats(), on.stats(), "bus statistics identical");
    assert_eq!(off.violations().len(), on.violations().len());
    assert_eq!(
        on.ticks_polled() + on.ticks_skipped(),
        off.ticks_polled(),
        "every bus cycle is either polled or skipped"
    );
    LayerRun {
        name: "axi",
        span: on.stats().cycles,
        polled_on: on.ticks_polled(),
        skipped_on: on.ticks_skipped(),
        polled_off: off.ticks_polled(),
        wheel: *on.kernel_stats(),
    }
}

/// Run E18 and render its tables.
pub fn run() -> ExperimentOutput {
    run_traced(&hermes_obs::Recorder::disabled())
}

/// Run E18 with a flight recorder (wheel counters under `kernel`).
/// `jobs = 0` inherits the harness worker count.
pub fn run_traced(obs: &hermes_obs::Recorder) -> ExperimentOutput {
    run_traced_jobs(0, obs)
}

/// Run E18 with the serving leg's payload pool pinned to `jobs`
/// workers (the determinism suite diffs 1 vs 4).
pub fn run_with_jobs(jobs: usize) -> ExperimentOutput {
    run_traced_jobs(jobs, &hermes_obs::Recorder::disabled())
}

fn run_traced_jobs(jobs: usize, obs: &hermes_obs::Recorder) -> ExperimentOutput {
    let legs = [serve_leg(jobs), xng_leg(), axi_leg()];

    // The kernel merges its own result rows: one completion event per
    // layer, posted at that layer's span and drained through an
    // EventSink — E18a's row order is the wheel's deterministic
    // `(time, domain, seq)` pop order, exercising the sink contract in
    // production rather than only in unit tests.
    let mut registry = DomainRegistry::new();
    let mut wheel: TimerWheel<usize> = TimerWheel::new();
    for (idx, leg) in legs.iter().enumerate() {
        let domain = registry.register(leg.name);
        wheel.post(leg.span, domain, idx).expect("leg spans are positive");
    }
    struct MergeOrder(Vec<usize>);
    impl EventSink<usize> for MergeOrder {
        fn deliver(&mut self, ev: Event<usize>) {
            self.0.push(ev.payload);
        }
    }
    let mut merged = MergeOrder(Vec::new());
    let horizon = legs.iter().map(|l| l.span).max().expect("three legs");
    let delivered = wheel.drain_due(horizon, &mut merged);
    assert_eq!(delivered, legs.len(), "every layer completion drains");

    // E18a: polled-vs-skipped ledger per layer, in kernel merge order.
    let mut ledger = Table::new(&["layer", "span_ticks", "polled", "skipped", "reduction_x"]);
    let (mut total_span, mut total_polled, mut total_skipped) = (0u64, 0u64, 0u64);
    for &idx in &merged.0 {
        let leg = &legs[idx];
        assert!(leg.skipped_on > 0, "{} leg must fast-forward", leg.name);
        ledger.row(cells![leg.name, leg.span, leg.polled_on, leg.skipped_on, leg.reduction()]);
        total_span += leg.span;
        total_polled += leg.polled_on;
        total_skipped += leg.skipped_on;
    }
    let total_reduction = total_span / total_polled.max(1);
    ledger.row(cells!["total", total_span, total_polled, total_skipped, total_reduction]);
    assert!(
        total_reduction >= 10,
        "event kernel must cut cross-layer scheduler passes >= 10x \
         (span {total_span}, polled {total_polled})"
    );

    // E18b: wheel health counters, per layer and aggregated, exported
    // through hermes-obs under `kernel`.
    let mut health = Table::new(&[
        "layer",
        "posted",
        "popped",
        "cancelled",
        "cascades",
        "max_occupancy",
        "max_overflow",
    ]);
    let mut agg = WheelStats::default();
    for leg in &legs {
        let w = &leg.wheel;
        assert!(w.posted > 0 && w.popped > 0, "{} leg uses the wheel: {w:?}", leg.name);
        health.row(cells![
            leg.name,
            w.posted,
            w.popped,
            w.cancelled,
            w.cascades,
            w.max_occupancy,
            w.max_overflow
        ]);
        agg.posted += w.posted;
        agg.popped += w.popped;
        agg.cancelled += w.cancelled;
        agg.cascades += w.cascades;
        agg.cascaded_events += w.cascaded_events;
        agg.max_occupancy = agg.max_occupancy.max(w.max_occupancy);
        agg.max_overflow = agg.max_overflow.max(w.max_overflow);
    }
    health.row(cells![
        "total",
        agg.posted,
        agg.popped,
        agg.cancelled,
        agg.cascades,
        agg.max_occupancy,
        agg.max_overflow
    ]);
    assert!(
        agg.max_overflow > 0 && agg.cascades > 0,
        "long horizons must exercise the overflow calendar: {agg:?}"
    );
    agg.export(obs, "kernel");

    // E18c: the knob is a scheduling knob, never a results knob — each
    // leg already asserted byte-identical results above.
    let mut knob = Table::new(&["layer", "polled_off", "polled_on", "skipped_on", "identical"]);
    for leg in &legs {
        knob.row(cells![leg.name, leg.polled_off, leg.polled_on, leg.skipped_on, "yes"]);
    }

    let text = format!(
        "E18a: polled vs skipped scheduler passes per layer (kernel on), \
         rows in the wheel's own merge order; gate: total reduction >= 10x\n{}\n\
         E18b: timer-wheel health counters (kernel on), exported under `kernel`\n{}\n\
         E18c: HERMES_EVENT_KERNEL=off replay, byte-identical results per layer\n{}",
        ledger.render(),
        health.render(),
        knob.render(),
    );
    ExperimentOutput::new(text)
        .with("e18a", "event-kernel polled-tick reduction", ledger)
        .with("e18b", "timer-wheel health counters", health)
        .with("e18c", "event-kernel off-knob identity", knob)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_leg_fast_forwards_and_matches_the_polling_engine() {
        for leg in [serve_leg(1), xng_leg(), axi_leg()] {
            assert!(leg.skipped_on > 0, "{} must skip", leg.name);
            assert!(leg.wheel.posted >= leg.wheel.popped);
        }
    }

    #[test]
    fn cross_layer_reduction_clears_the_gate() {
        let legs = [serve_leg(1), xng_leg(), axi_leg()];
        let span: u64 = legs.iter().map(|l| l.span).sum();
        let polled: u64 = legs.iter().map(|l| l.polled_on).sum();
        assert!(span / polled.max(1) >= 10, "span {span} polled {polled}");
    }
}
