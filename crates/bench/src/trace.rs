//! Trace export: render a [`hermes_obs::Recorder`] snapshot as the
//! `hermes-trace/v1` JSON document behind `experiments --trace <path>`,
//! plus a Chrome `trace_event`-compatible rendering for `about:tracing` /
//! Perfetto.
//!
//! ## Determinism contract
//!
//! Every wall-clock-derived field in the document lives under a key that
//! starts with `wall` — `wall_ns`, `wall_channel` — and [`Json`] renders
//! one key per line, so stripping lines that contain `"wall` (as ci.sh
//! does with `grep -v '"wall'`) leaves only the deterministic channels: a
//! trace taken at `HERMES_JOBS=1` then matches a trace taken at
//! `HERMES_JOBS=4` byte for byte.

use crate::json::Json;
use hermes_obs::{Event, EventKind, Recorder};

/// Render the recorder's state as a `hermes-trace/v1` document.
pub fn trace_document(rec: &Recorder) -> Json {
    let snap = rec.snapshot();
    let subsystems = snap
        .subsystems
        .iter()
        .map(|sub| {
            Json::obj(vec![
                ("name", Json::Str(sub.name.clone())),
                ("dropped", Json::Int(sub.dropped as i64)),
                (
                    "events",
                    Json::Arr(sub.events.iter().map(event_json).collect()),
                ),
            ])
        })
        .collect();
    let counters = snap
        .counters
        .iter()
        .map(|(sub, name, v)| {
            Json::obj(vec![
                ("subsystem", Json::Str(sub.clone())),
                ("name", Json::Str(name.clone())),
                ("value", Json::Int(*v as i64)),
            ])
        })
        .collect();
    let gauges = snap
        .gauges
        .iter()
        .map(|(sub, name, v)| {
            Json::obj(vec![
                ("subsystem", Json::Str(sub.clone())),
                ("name", Json::Str(name.clone())),
                ("value", Json::Int(*v)),
            ])
        })
        .collect();
    let histograms = snap
        .histograms
        .iter()
        .map(|(sub, name, h)| {
            Json::obj(vec![
                ("subsystem", Json::Str(sub.clone())),
                ("name", Json::Str(name.clone())),
                (
                    "bounds",
                    Json::Arr(h.bounds.iter().map(|&b| Json::Int(b as i64)).collect()),
                ),
                (
                    "counts",
                    Json::Arr(h.counts.iter().map(|&c| Json::Int(c as i64)).collect()),
                ),
                ("count", Json::Int(h.count as i64)),
                ("sum", Json::Int(h.sum as i64)),
            ])
        })
        .collect();
    let warnings = hermes_obs::warnings::snapshot()
        .into_iter()
        .map(|(key, message)| {
            Json::obj(vec![
                ("key", Json::Str(key)),
                ("message", Json::Str(message)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("schema", Json::Str("hermes-trace/v1".into())),
        ("wall_channel", Json::Bool(rec.wall_enabled())),
        ("dropped_events", Json::Int(snap.dropped_total() as i64)),
        ("subsystems", Json::Arr(subsystems)),
        ("counters", Json::Arr(counters)),
        ("gauges", Json::Arr(gauges)),
        ("histograms", Json::Arr(histograms)),
        ("warnings", Json::Arr(warnings)),
    ])
}

fn event_json(ev: &Event) -> Json {
    let mut pairs = vec![
        ("seq", Json::Int(ev.seq as i64)),
        ("name", Json::Str(ev.name.clone())),
        ("kind", Json::Str(ev.kind.as_str().into())),
        ("clock", Json::Str(ev.clock.as_str().into())),
        ("ts", Json::Int(ev.ts as i64)),
    ];
    if let EventKind::Span { dur } = ev.kind {
        pairs.push(("dur", Json::Int(dur as i64)));
    }
    if let Some(link) = ev.trace {
        pairs.push(("trace_id", Json::Int(link.trace_id as i64)));
        if link.span_id != 0 {
            pairs.push(("span_id", Json::Int(link.span_id as i64)));
        }
        if link.parent_span != 0 {
            pairs.push(("parent_span", Json::Int(link.parent_span as i64)));
        }
    }
    if !ev.args.is_empty() {
        pairs.push((
            "args",
            Json::Obj(
                ev.args
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                    .collect(),
            ),
        ));
    }
    if let Some(ns) = ev.wall_ns {
        pairs.push(("wall_ns", Json::Int(ns as i64)));
    }
    Json::obj(pairs)
}

/// Render the recorder's events in the Chrome `trace_event` JSON format
/// (load in `about:tracing` or Perfetto). Each subsystem becomes one
/// process row (named via `process_name` metadata); spans are complete
/// events (`ph: "X"`, `ts`/`dur` in the event's simulated clock ticks),
/// instants and warnings are instant events (`ph: "i"`).
pub fn chrome_trace(rec: &Recorder) -> Json {
    let snap = rec.snapshot();
    let mut events: Vec<Json> = Vec::new();
    for (idx, sub) in snap.subsystems.iter().enumerate() {
        let pid = idx as i64 + 1;
        events.push(Json::obj(vec![
            ("name", Json::Str("process_name".into())),
            ("ph", Json::Str("M".into())),
            ("pid", Json::Int(pid)),
            ("tid", Json::Int(0)),
            (
                "args",
                Json::obj(vec![("name", Json::Str(sub.name.clone()))]),
            ),
        ]));
        for ev in &sub.events {
            let args = Json::Obj(
                std::iter::once(("clock".to_string(), Json::Str(ev.clock.as_str().into())))
                    .chain(
                        ev.args
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::Str(v.clone()))),
                    )
                    .collect(),
            );
            let mut pairs = vec![
                ("name", Json::Str(ev.name.clone())),
                ("cat", Json::Str(ev.clock.as_str().into())),
                ("pid", Json::Int(pid)),
                ("tid", Json::Int(0)),
                ("ts", Json::Int(ev.ts as i64)),
            ];
            match ev.kind {
                EventKind::Span { dur } => {
                    pairs.push(("ph", Json::Str("X".into())));
                    pairs.push(("dur", Json::Int(dur.max(1) as i64)));
                }
                EventKind::Instant | EventKind::Warning => {
                    pairs.push(("ph", Json::Str("i".into())));
                    pairs.push(("s", Json::Str("t".into())));
                }
            }
            pairs.push(("args", args));
            events.push(Json::obj(pairs));
        }
    }
    Json::obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ms".into())),
    ])
}

/// The sibling path the Chrome rendering is written to:
/// `t.json` → `t.chrome.json` (an extensionless path gets `.chrome.json`
/// appended).
pub fn chrome_path(path: &str) -> String {
    match path.strip_suffix(".json") {
        Some(stem) => format!("{stem}.chrome.json"),
        None => format!("{path}.chrome.json"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_obs::{ClockDomain, WallMark};

    fn sample() -> Recorder {
        let r = Recorder::new();
        r.span(
            "hls",
            "parse",
            ClockDomain::Seq,
            0,
            1,
            &[("functions", "3".to_string())],
            WallMark::none(),
        );
        r.instant("fpga", "anneal-epoch", ClockDomain::Seq, 0, &[]);
        r.counter_add("hls", "compiles", 1);
        r.gauge_set("fpga", "best_hpwl_x10", 123);
        r.observe("axi", "read_latency", &[8, 16], 9);
        r
    }

    #[test]
    fn trace_document_shape() {
        let doc = trace_document(&sample()).render();
        assert!(doc.contains("\"schema\": \"hermes-trace/v1\""));
        assert!(doc.contains("\"wall_channel\": false"));
        assert!(doc.contains("\"name\": \"parse\""));
        assert!(doc.contains("\"kind\": \"span\""));
        assert!(doc.contains("\"dur\": 1"));
        assert!(doc.contains("\"best_hpwl_x10\""));
        assert!(doc.contains("\"read_latency\""));
    }

    #[test]
    fn wall_fields_live_on_wall_prefixed_keys() {
        let r = Recorder::with_wall();
        r.instant("s", "x", ClockDomain::Seq, 0, &[]);
        let doc = trace_document(&r).render();
        // the determinism gate strips lines containing `"wall`; every
        // wall-derived field must sit alone on such a line
        let stripped: Vec<&str> = doc.lines().filter(|l| !l.contains("\"wall")).collect();
        assert!(!stripped.iter().any(|l| l.contains("wall")));
        assert!(doc.lines().any(|l| l.contains("\"wall_ns\"")));
    }

    #[test]
    fn trace_links_and_drop_totals_are_exported() {
        let r = Recorder::new();
        let ctx = r.mint_trace();
        let root = r.trace_span("s", "request", ClockDomain::Cpu, 0, 10, &[], WallMark::none(), ctx);
        r.trace_span("s", "seg", ClockDomain::Cpu, 0, 10, &[], WallMark::none(), ctx.child(root));
        let doc = trace_document(&r).render();
        assert!(doc.contains("\"trace_id\""));
        assert!(doc.contains("\"span_id\""));
        assert!(doc.contains("\"parent_span\""));
        assert!(doc.contains("\"dropped_events\": 0"));
    }

    #[test]
    fn chrome_rendering_has_metadata_and_phases() {
        let doc = chrome_trace(&sample()).render();
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains("\"process_name\""));
        assert!(doc.contains("\"ph\": \"X\""));
        assert!(doc.contains("\"ph\": \"i\""));
    }

    #[test]
    fn chrome_path_is_sibling() {
        assert_eq!(chrome_path("t.json"), "t.chrome.json");
        assert_eq!(chrome_path("/tmp/a/trace.json"), "/tmp/a/trace.chrome.json");
        assert_eq!(chrome_path("trace"), "trace.chrome.json");
    }
}
