//! Minimal JSON document model and writer (std-only, no dependencies).
//!
//! Just enough JSON for the structured experiment output behind the
//! `experiments --json <path>` flag and the `BENCH_hermes.json` perf
//! trajectory: objects, arrays, strings, integers, and floats, rendered
//! deterministically (insertion order, fixed float formatting).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A string.
    Str(String),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A float (serialized via Rust's shortest-roundtrip formatting).
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object builder from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Parse a table cell into the most specific scalar: integer, float,
    /// then string (so `"12"` serializes as a number but `"2.00x"` stays
    /// text).
    pub fn cell(s: &str) -> Json {
        if let Ok(i) = s.parse::<i64>() {
            return Json::Int(i);
        }
        if let Ok(f) = s.parse::<f64>() {
            if f.is_finite() {
                return Json::Num(f);
            }
        }
        Json::Str(s.to_string())
    }

    /// Serialize with 2-space indentation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Json::Str(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(f) => {
                if f.is_finite() {
                    // shortest-roundtrip formatting; a whole float prints
                    // without a decimal point, which is still a JSON number
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(&pad_in);
                    out.push('"');
                    escape_into(k, out);
                    out.push_str("\": ");
                    v.write(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let doc = Json::obj(vec![
            ("name", Json::Str("e11".into())),
            ("workers", Json::Arr(vec![Json::Int(1), Json::Int(2), Json::Int(4)])),
            ("speedup", Json::Num(2.5)),
            ("ok", Json::Bool(true)),
        ]);
        let s = doc.render();
        assert!(s.contains("\"name\": \"e11\""));
        assert!(s.contains("\"speedup\": 2.5"));
        assert!(s.contains("\"ok\": true"));
        assert!(s.trim_start().starts_with('{') && s.trim_end().ends_with('}'));
    }

    #[test]
    fn cell_picks_most_specific_type() {
        assert_eq!(Json::cell("42"), Json::Int(42));
        assert_eq!(Json::cell("-7"), Json::Int(-7));
        assert_eq!(Json::cell("3.25"), Json::Num(3.25));
        assert_eq!(Json::cell("2.00x"), Json::Str("2.00x".into()));
        assert_eq!(Json::cell("ok"), Json::Str("ok".into()));
    }

    #[test]
    fn escapes_strings() {
        let s = Json::Str("a\"b\\c\nd".into()).render();
        assert_eq!(s.trim(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn escaping_round_trips_through_a_json_parser() {
        // every escape class the writer knows: quote, backslash, the named
        // control characters, and a bare control character (\u0007)
        let nasty = "q:\" b:\\ n:\n r:\r t:\t bell:\u{7} unicode:é";
        let rendered = Json::obj(vec![(nasty, Json::Str(nasty.into()))]).render();
        // hand-rolled unescape of the rendered string literal: the exact
        // inverse of `escape_into` proves the writer emits valid JSON
        // string syntax without an external parser
        let unescape = |lit: &str| -> String {
            let mut out = String::new();
            let mut chars = lit.chars();
            while let Some(c) = chars.next() {
                if c != '\\' {
                    out.push(c);
                    continue;
                }
                match chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => {
                        let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                        let code = u32::from_str_radix(&hex, 16).expect("4 hex digits");
                        out.push(char::from_u32(code).expect("valid scalar"));
                    }
                    other => panic!("unknown escape \\{other:?}"),
                }
            }
            out
        };
        // rendered form: {\n  "<key>": "<value>"\n}\n — pull out both
        // string literals and invert them
        let body = rendered.trim();
        let inner = body
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .expect("object")
            .trim();
        let (key_lit, val_lit) = {
            let mid = inner.find("\": \"").expect("separator");
            (&inner[1..mid], &inner[mid + 4..inner.len() - 1])
        };
        assert_eq!(unescape(key_lit), nasty);
        assert_eq!(unescape(val_lit), nasty);
        assert!(rendered.contains("\\u0007"), "bare control char escaped");
        assert!(!rendered.contains('\u{7}'), "no raw control char emitted");
    }

    #[test]
    fn cell_rejects_non_finite_floats() {
        // "NaN" and "inf" parse as f64 but are not valid JSON numbers —
        // they must stay strings, never become `null` or bare NaN tokens
        assert_eq!(Json::cell("NaN"), Json::Str("NaN".into()));
        assert_eq!(Json::cell("inf"), Json::Str("inf".into()));
        assert_eq!(Json::cell("-inf"), Json::Str("-inf".into()));
        assert_eq!(Json::cell("Infinity"), Json::Str("Infinity".into()));
        assert_eq!(Json::cell("NaN").render().trim(), "\"NaN\"");
        // a directly constructed non-finite Num renders as null, not NaN
        assert_eq!(Json::Num(f64::NAN).render().trim(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render().trim(), "null");
    }
}
