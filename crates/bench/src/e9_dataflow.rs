//! E9 — Dynamically-controlled (dataflow) accelerators vs monolithic FSM
//! synthesis (Section II).
//!
//! The paper: "when synthesized through an HLS tool, the complexity of the
//! finite state machine controllers for such applications grows
//! exponentially … Bambu has been extended to efficiently synthesize
//! dynamically controlled accelerators". This experiment builds task
//! graphs of real compiled kernels with N parallel flows and compares
//! controller size and stream throughput of the two synthesis styles.

use crate::cells;
use crate::table::Table;
use crate::ExperimentOutput;
use hermes_hls::dataflow::{synthesize_dataflow, synthesize_monolithic, Task, TaskGraph};
use hermes_hls::HlsFlow;

fn pipeline_tasks() -> (Task, Task) {
    let flow = HlsFlow::new().unroll_limit(0);
    let producer = flow
        .compile(
            "int stage_a(int x) { int s = 0; for (int i = 0; i < 8; i += 1) { s += x * i; } return s; }",
        )
        .expect("stage_a compiles");
    let consumer = flow
        .compile(
            "int stage_b(int x) { int s = x; for (int i = 0; i < 6; i += 1) { s = s + (s >> 1); } return s; }",
        )
        .expect("stage_b compiles");
    (
        Task::from_design(&producer, &[3]).expect("measure a"),
        Task::from_design(&consumer, &[3]).expect("measure b"),
    )
}

/// Build a graph of `n` parallel producer→consumer flows.
fn flows(n: usize, a: &Task, b: &Task) -> TaskGraph {
    let mut g = TaskGraph::new();
    for i in 0..n {
        let mut ta = a.clone();
        ta.name = format!("prod{i}");
        let mut tb = b.clone();
        tb.name = format!("cons{i}");
        let pa = g.add_task(ta);
        let pb = g.add_task(tb);
        g.connect(pa, pb, 4);
    }
    g
}

/// Harness entry point; E9 has no instrumented layers yet, so the
/// recorder is unused.
pub fn run_traced(_obs: &hermes_obs::Recorder) -> ExperimentOutput {
    run()
}

/// Run E9 and render its table.
pub fn run() -> ExperimentOutput {
    let (a, b) = pipeline_tasks();
    let items = 200u64;
    let mut t = Table::new(&[
        "parallel_flows",
        "mono_states",
        "df_states",
        "mono_bits",
        "df_bits",
        "mono_cycles",
        "df_cycles",
        "df_speedup",
    ]);
    for n in 1..=6 {
        let g = flows(n, &a, &b);
        let mono = synthesize_monolithic(&g, items);
        let df = synthesize_dataflow(&g, items);
        t.row(cells![
            n,
            mono.controller_states,
            df.controller_states,
            mono.state_bits,
            df.state_bits,
            mono.total_cycles,
            df.total_cycles,
            format!("{:.2}x", mono.total_cycles as f64 / df.total_cycles as f64),
        ]);
    }
    let text = format!(
        "E9: monolithic vs dataflow controller synthesis \
         ({} items streamed; task FSMs: {} and {} states)\n{}",
        items, a.states, b.states, t.render()
    );
    ExperimentOutput::new(text).with("e9", "monolithic vs dataflow", t)
}

#[cfg(test)]
mod tests {
    #[test]
    fn e9_controller_explosion_visible() {
        let out = super::run().text;
        let rows: Vec<Vec<u64>> = out
            .lines()
            .filter(|l| l.trim().starts_with(|c: char| c.is_ascii_digit()))
            .map(|l| {
                l.split_whitespace()
                    .take(7)
                    .filter_map(|w| w.parse().ok())
                    .collect()
            })
            .collect();
        assert!(rows.len() >= 6);
        let (mono1, df1) = (rows[0][1], rows[0][2]);
        let (mono6, df6) = (rows[5][1], rows[5][2]);
        // monolithic grows super-linearly, dataflow linearly
        assert!(
            mono6 > mono1 * 100,
            "monolithic explosion: {mono1} -> {mono6}"
        );
        assert!(df6 <= df1 * 8, "dataflow stays near-linear: {df1} -> {df6}");
    }
}
