//! Minimal fixed-width table renderer for experiment outputs, with a
//! structured-JSON view for the `experiments --json` machine-readable path.

use crate::json::Json;

/// A simple text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (converted to strings by the caller).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }

    /// The table as a JSON array of row objects keyed by column header,
    /// with cells typed as numbers where they parse as such.
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.rows
                .iter()
                .map(|r| {
                    Json::Obj(
                        self.header
                            .iter()
                            .zip(r.iter())
                            .map(|(h, c)| (h.clone(), Json::cell(c)))
                            .collect(),
                    )
                })
                .collect(),
        )
    }
}

/// Shorthand: format anything displayable into a cell.
#[macro_export]
macro_rules! cells {
    ($($v:expr),* $(,)?) => {
        vec![$(format!("{}", $v)),*]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(cells!["x", 1]);
        t.row(cells!["longer", 123456]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.contains("longer"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn json_rows_typed_by_cell() {
        let mut t = Table::new(&["name", "value"]);
        t.row(cells!["x", 1]);
        let j = t.to_json().render();
        assert!(j.contains("\"name\": \"x\""));
        assert!(j.contains("\"value\": 1"));
    }
}
