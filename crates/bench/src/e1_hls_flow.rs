//! E1 — HLS flow metrics (Fig. 2 of the paper).
//!
//! For every suite kernel: front-end CDFG size, optimizer activity,
//! schedule length, binding results, FSM size, and cycle count on the
//! standard stimulus — the per-stage artifacts of the Bambu pipeline.

use crate::kernels::suite;
use crate::table::Table;
use crate::{cells, ExperimentOutput};
use hermes_hls::HlsFlow;

/// Run E1 on the default worker count and render its table.
pub fn run() -> ExperimentOutput {
    run_with_jobs(hermes_par::jobs())
}

/// Run E1 with an explicit worker count; every count renders the same
/// table (the per-kernel HLS flows are independent and results merge in
/// suite order).
pub fn run_with_jobs(jobs: usize) -> ExperimentOutput {
    run_traced_jobs(jobs, &hermes_obs::Recorder::disabled())
}

/// Run E1 on the default worker count, tracing into `obs`.
pub fn run_traced(obs: &hermes_obs::Recorder) -> ExperimentOutput {
    run_traced_jobs(hermes_par::jobs(), obs)
}

/// Run E1 with an explicit worker count and a flight recorder: each
/// kernel compiles against its own [`hermes_obs::Recorder::child`], and
/// the children merge back in suite order, so the trace is identical at
/// every worker count.
pub fn run_traced_jobs(jobs: usize, obs: &hermes_obs::Recorder) -> ExperimentOutput {
    let flow = HlsFlow::new().unroll_limit(0);
    let mut t = Table::new(&[
        "kernel", "blocks", "nodes", "edges", "chain", "folded", "cse", "states",
        "fus", "regs", "fsm_bits", "cycles",
    ]);
    let rows = hermes_par::par_map_jobs(jobs, &suite(), |k| {
        let child = obs.child();
        let d = k.compile_traced(&flow, &child);
        let r = k.simulate(&d);
        let row = cells![
            k.name,
            d.cdfg_stats.blocks,
            d.cdfg_stats.nodes,
            d.cdfg_stats.data_edges,
            d.cdfg_stats.critical_chain,
            d.opt_stats.folded,
            d.opt_stats.cse_hits,
            d.sched.total_states(),
            d.binding.fus.len(),
            d.binding.reg_count(),
            d.fsm.state_bits(),
            r.cycles,
        ];
        (row, child)
    })
    .expect("suite kernels are known-good");
    for (row, child) in rows {
        obs.absorb(&child);
        t.row(row);
    }
    let text = format!(
        "E1: HLS flow metrics (clock 10 ns, default allocation)\n{}",
        t.render()
    );
    ExperimentOutput::new(text).with("e1", "HLS flow metrics", t)
}

#[cfg(test)]
mod tests {
    #[test]
    fn e1_produces_all_kernels() {
        let out = super::run().text;
        for k in [
            "sobel", "conv3", "histogram", "fir", "correlate", "dft", "centroid", "mlp",
        ] {
            assert!(out.contains(k), "missing {k} in:\n{out}");
        }
    }
}
