//! E1 — HLS flow metrics (Fig. 2 of the paper).
//!
//! For every suite kernel: front-end CDFG size, optimizer activity,
//! schedule length, binding results, FSM size, and cycle count on the
//! standard stimulus — the per-stage artifacts of the Bambu pipeline.

use crate::kernels::suite;
use crate::table::Table;
use crate::cells;
use hermes_hls::HlsFlow;

/// Run E1 and render its table.
pub fn run() -> String {
    let flow = HlsFlow::new().unroll_limit(0);
    let mut t = Table::new(&[
        "kernel", "blocks", "nodes", "edges", "chain", "folded", "cse", "states",
        "fus", "regs", "fsm_bits", "cycles",
    ]);
    for k in suite() {
        let d = k.compile(&flow);
        let r = k.simulate(&d);
        t.row(cells![
            k.name,
            d.cdfg_stats.blocks,
            d.cdfg_stats.nodes,
            d.cdfg_stats.data_edges,
            d.cdfg_stats.critical_chain,
            d.opt_stats.folded,
            d.opt_stats.cse_hits,
            d.sched.total_states(),
            d.binding.fus.len(),
            d.binding.reg_count(),
            d.fsm.state_bits(),
            r.cycles,
        ]);
    }
    format!(
        "E1: HLS flow metrics (clock 10 ns, default allocation)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn e1_produces_all_kernels() {
        let out = super::run();
        for k in [
            "sobel", "conv3", "histogram", "fir", "correlate", "dft", "centroid", "mlp",
        ] {
            assert!(out.contains(k), "missing {k} in:\n{out}");
        }
    }
}
