//! E14 — Deadline-aware accelerator serving under an offered-load sweep.
//!
//! The serving runtime (`crates/serve`) fronts a pool of simulated MLP
//! inference accelerators with admission control, dynamic batching, EDF
//! scheduling within priority classes, and load shedding. E14 drives it
//! with an open-loop seeded arrival process at offered loads from
//! underload to 2x the pool's saturation rate and reports throughput,
//! tail latency, and the shed/reject split at each point (E14a).
//!
//! The accelerator's per-item cost is *measured*, not assumed: one
//! cycle-accurate co-simulation of the synthesized MLP kernel (apps use
//! case #3) prices the datapath, and one AXI round trip prices per-item
//! DMA. E14b repeats a past-saturation point under a chaos campaign that
//! kills and stalls pool instances mid-batch; the accounting invariant
//! `served + shed + rejected == offered` is asserted there too — a kill
//! re-queues in-flight work, it never loses it. E14c re-runs a sweep
//! point with 1 and 4 payload workers and asserts the rendered report and
//! output checksum are byte-identical: worker count is a throughput knob,
//! never a results knob.

use crate::cells;
use crate::table::Table;
use crate::ExperimentOutput;
use hermes_apps::ai;
use hermes_chaos::plan::{FaultPlan, FaultPlanConfig};
use hermes_hls::ir::ArrayId;
use hermes_hls::simulate::ExternalMemory;
use hermes_hls::HlsFlow;
use hermes_serve::engine::{ServeConfig, ServeEngine, ServeReport};
use hermes_serve::model::AcceleratorModel;
use hermes_serve::workload::{self, ClassProfile, WorkloadConfig};

/// MLP topology served by the pool (matches the apps use case).
const INPUTS: usize = 6;
const HIDDEN: usize = 8;
const OUTPUTS: usize = 3;
/// Offered loads swept, in percent of the pool's saturation rate
/// (shared with E17, which replays the same sweep under tracing + SLOs).
pub(crate) const LOADS: [u64; 5] = [50, 80, 100, 150, 200];
/// Requests offered per sweep point.
const REQUESTS: usize = 400;
/// Workload seed (arrivals, tenants, payloads).
pub(crate) const SEED: u64 = 14;

/// Build the measured MLP accelerator model: per-item cycles from one
/// cycle-accurate co-simulation, DMA cycles from one AXI round trip.
pub(crate) fn mlp_model() -> AcceleratorModel {
    let design = HlsFlow::new()
        .unroll_limit(0)
        .compile(ai::MLP_SOURCE)
        .expect("MLP kernel compiles");
    let (w1, b1, w2, b2) = ai::synth_weights(INPUTS, HIDDEN, OUTPUTS, 17);
    let x = vec![1 << (ai::Q - 1); INPUTS];
    let mut ext = ExternalMemory::buffers(vec![
        (ArrayId(0), x),
        (ArrayId(1), w1.clone()),
        (ArrayId(2), b1.clone()),
        (ArrayId(3), w2.clone()),
        (ArrayId(4), b2.clone()),
        (ArrayId(5), vec![0; OUTPUTS]),
    ]);
    let measured = design
        .simulate_with_memory(&[INPUTS as i64, HIDDEN as i64, OUTPUTS as i64], &mut ext)
        .expect("MLP co-simulation");
    AcceleratorModel::new("mlp-6-8-3", 32, measured.cycles, move |input| {
        ai::mlp_ref(input, &w1, &b1, &w2, &b2, INPUTS, HIDDEN, OUTPUTS)
    })
    // Q8.8 words move as 4-byte beats: inputs in, scores out
    .with_measured_dma((INPUTS + OUTPUTS) * 4)
}

pub(crate) fn serve_cfg() -> ServeConfig {
    ServeConfig {
        queue_depth: 64,
        tenant_quota: 24,
        classes: 2,
        batch_max: 8,
        instances: 2,
        ..ServeConfig::default()
    }
}

/// Workload shaped to the measured model: the mean inter-arrival gap at
/// 100% equals the pool's per-item service time at full batches, and
/// deadline budgets scale with the single-item service time.
pub(crate) fn workload_cfg(model: &AcceleratorModel, cfg: &ServeConfig) -> WorkloadConfig {
    let svc1 = model.service_cycles(1);
    let full = model.service_cycles(cfg.batch_max);
    // saturation: instances * batch_max items per `full` ticks
    let sat_gap = (full / (cfg.instances as u64 * cfg.batch_max as u64)).max(1);
    WorkloadConfig {
        requests: REQUESTS,
        mean_interarrival: sat_gap,
        tenants: 4,
        classes: vec![
            ClassProfile {
                weight: 1,
                deadline_budget: svc1 * 4,
                deadline_jitter: svc1 / 2,
            },
            ClassProfile {
                weight: 3,
                deadline_budget: svc1 * 24,
                deadline_jitter: svc1 * 4,
            },
        ],
        payload_words: INPUTS,
    }
}

fn run_point(
    model: &AcceleratorModel,
    base: &WorkloadConfig,
    load_pct: u64,
    jobs: usize,
    plan: Option<FaultPlan>,
    obs: &hermes_obs::Recorder,
) -> ServeReport {
    let wl = base.clone().at_load_pct(load_pct);
    let arrivals = workload::generate(SEED, &wl);
    let cfg = ServeConfig {
        jobs,
        ..serve_cfg()
    };
    let mut engine = ServeEngine::new(cfg, model.clone(), arrivals).with_recorder(obs.child());
    if let Some(plan) = plan {
        engine = engine.with_chaos(plan);
    }
    let report = engine.run();
    assert!(
        report.accounted(),
        "accounting invariant violated at load {load_pct}%: {report:?}"
    );
    obs.absorb(engine.recorder());
    report
}

/// Run E14 and render its tables.
pub fn run() -> ExperimentOutput {
    run_traced(&hermes_obs::Recorder::disabled())
}

/// Run E14 with a flight recorder (serve metrics under `serve`).
pub fn run_traced(obs: &hermes_obs::Recorder) -> ExperimentOutput {
    let model = mlp_model();
    let base = workload_cfg(&model, &serve_cfg());

    // E14a: offered-load sweep, underload -> 2x saturation.
    let mut sweep = Table::new(&[
        "load_pct",
        "offered",
        "served",
        "shed",
        "rejected",
        "served_per_mtick",
        "c0_p50",
        "c0_p99",
        "c1_p99",
        "mean_batch_x100",
        "checksum",
    ]);
    let mut reports = Vec::new();
    for &load in &LOADS {
        let r = run_point(&model, &base, load, 0, None, obs);
        let throughput = (r.served * 1_000_000).checked_div(r.makespan).unwrap_or(0);
        let mean_batch_x100 = (r.batch_items * 100).checked_div(r.batches).unwrap_or(0);
        sweep.row(cells![
            load,
            r.offered,
            r.served,
            r.shed(),
            r.rejected(),
            throughput,
            r.per_class[0].p50,
            r.per_class[0].p99,
            r.per_class[1].p99,
            mean_batch_x100,
            format!("{:#018x}", r.output_checksum),
        ]);
        reports.push((load, r));
    }
    let under = &reports[0].1;
    let over = &reports.last().expect("sweep ran").1;
    assert!(
        under.shed() + under.rejected() <= over.shed() + over.rejected(),
        "shedding must not shrink as offered load doubles"
    );
    assert!(
        over.shed() + over.rejected() > 0,
        "2x saturation must shed or reject"
    );
    for (_, r) in &reports {
        assert!(r.served > 0, "every sweep point serves some requests");
    }

    // E14b: past saturation with a chaos campaign on the pool.
    let chaos_load = 150;
    let wl = base.clone().at_load_pct(chaos_load);
    let span = workload::generate(SEED, &wl)
        .last()
        .expect("workload non-empty")
        .arrival;
    let plan = FaultPlan::generate(99, &FaultPlanConfig::pool_only(span, 5, 3, span as u32 / 8, 2));
    let chaos = run_point(&model, &base, chaos_load, 0, Some(plan), obs);
    let clean = &reports.iter().find(|(l, _)| *l == chaos_load).expect("150% ran").1;
    assert_eq!(chaos.kills, 5, "all scheduled kills applied");
    assert_eq!(chaos.stalls, 3, "all scheduled stalls applied");
    assert!(
        chaos.requeued > 0,
        "a kill must land mid-batch and re-queue work: {chaos:?}"
    );
    assert!(chaos.availability_permille() < 1000);
    let mut chaos_t = Table::new(&[
        "campaign",
        "served",
        "shed",
        "rejected",
        "requeued",
        "kills",
        "stalls",
        "avail_permille",
        "accounted",
    ]);
    for (name, r) in [("clean @150%", clean), ("chaos @150%", &chaos)] {
        chaos_t.row(cells![
            name,
            r.served,
            r.shed(),
            r.rejected(),
            r.requeued,
            r.kills,
            r.stalls,
            r.availability_permille(),
            if r.accounted() { "yes" } else { "NO" },
        ]);
    }

    // E14c: worker count is a throughput knob, never a results knob.
    let r1 = run_point(&model, &base, 150, 1, None, obs);
    let r4 = run_point(&model, &base, 150, 4, None, obs);
    assert_eq!(r1, r4, "reports must be identical across jobs");
    assert_eq!(r1.render(), r4.render(), "renders must be byte-identical");
    let mut jobs_t = Table::new(&["jobs", "served", "p99_c1", "checksum", "identical"]);
    for (jobs, r) in [(1u64, &r1), (4, &r4)] {
        jobs_t.row(cells![
            jobs,
            r.served,
            r.per_class[1].p99,
            format!("{:#018x}", r.output_checksum),
            "yes",
        ]);
    }

    let text = format!(
        "E14a: offered-load sweep, {} requests per point, measured MLP model \
         (per-item {} + DMA {} ticks, batch overhead {})\n{}\n\
         E14b: chaos campaign on the pool at 150% load (kills re-queue in-flight work)\n{}\n\
         E14c: payload workers 1 vs 4, byte-identical reports\n{}",
        REQUESTS,
        model.per_item,
        model.dma_per_item,
        model.batch_overhead,
        sweep.render(),
        chaos_t.render(),
        jobs_t.render(),
    );
    ExperimentOutput::new(text)
        .with("e14a", "serving offered-load sweep", sweep)
        .with("e14b", "serving chaos campaign", chaos_t)
        .with("e14c", "serving jobs invariance", jobs_t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_points_account_and_shed_monotonically_at_extremes() {
        let model = mlp_model();
        let base = workload_cfg(&model, &serve_cfg());
        let obs = hermes_obs::Recorder::disabled();
        let under = run_point(&model, &base, 50, 0, None, &obs);
        let over = run_point(&model, &base, 200, 0, None, &obs);
        assert!(under.accounted() && over.accounted());
        assert!(over.shed() + over.rejected() > under.shed() + under.rejected());
    }

    #[test]
    fn chaos_point_stays_accounted() {
        let model = mlp_model();
        let base = workload_cfg(&model, &serve_cfg());
        let obs = hermes_obs::Recorder::disabled();
        let wl = base.clone().at_load_pct(150);
        let span = workload::generate(SEED, &wl).last().unwrap().arrival;
        let plan =
            FaultPlan::generate(99, &FaultPlanConfig::pool_only(span, 5, 3, span as u32 / 8, 2));
        let r = run_point(&model, &base, 150, 0, Some(plan), &obs);
        assert!(r.accounted());
        assert!(r.requeued > 0);
    }
}
