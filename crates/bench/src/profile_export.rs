//! Profile export: render the deterministic post-hoc profiling pass
//! ([`hermes_obs::profile`]) as the `hermes-profile/v1` JSON document
//! behind `experiments --profile <path>`, plus a collapsed-stack
//! flamegraph sibling (`<path minus .json>.folded`, one
//! `sub:name;sub:name value` line per stack — feed it straight to
//! `flamegraph.pl` or speedscope).
//!
//! Everything in a [`Profile`] derives from simulated clocks and
//! construction-order trace ids, so the rendered document is
//! byte-identical across worker counts — ci.sh diffs a `--jobs 1`
//! profile against a `--jobs 4` one with no stripping at all.

use crate::json::Json;
use hermes_obs::profile::Profile;

/// Render a profile as the `hermes-profile/v1` document.
pub fn profile_document(prof: &Profile) -> Json {
    let spans = prof
        .spans
        .iter()
        .map(|s| {
            Json::obj(vec![
                ("subsystem", Json::Str(s.subsystem.clone())),
                ("name", Json::Str(s.name.clone())),
                ("clock", Json::Str(s.clock.into())),
                ("count", Json::Int(s.count as i64)),
                ("total", Json::Int(s.total as i64)),
                ("self_time", Json::Int(s.self_time as i64)),
            ])
        })
        .collect();
    let requests = prof
        .requests
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("trace_id", Json::Int(r.trace_id as i64)),
                ("name", Json::Str(r.name.clone())),
                ("start", Json::Int(r.start as i64)),
                ("latency", Json::Int(r.latency as i64)),
                ("exact", Json::Bool(r.exact)),
                (
                    "segments",
                    Json::Arr(
                        r.segments
                            .iter()
                            .map(|seg| {
                                Json::obj(vec![
                                    ("name", Json::Str(seg.name.clone())),
                                    ("dur", Json::Int(seg.dur as i64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let segment_totals = prof
        .segment_totals()
        .into_iter()
        .map(|(name, total)| {
            Json::obj(vec![
                ("name", Json::Str(name)),
                ("total", Json::Int(total as i64)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("schema", Json::Str("hermes-profile/v1".into())),
        ("dropped_events", Json::Int(prof.dropped_events as i64)),
        ("spans", Json::Arr(spans)),
        ("requests", Json::Arr(requests)),
        ("segment_totals", Json::Arr(segment_totals)),
    ])
}

/// Render the collapsed-stack flamegraph body: one `stack value` line
/// per folded stack, sorted (as [`Profile::folded`] already is) so the
/// rendering is deterministic.
pub fn folded_stacks(prof: &Profile) -> String {
    let mut s = String::new();
    for (stack, value) in &prof.folded {
        s.push_str(stack);
        s.push(' ');
        s.push_str(&value.to_string());
        s.push('\n');
    }
    s
}

/// The sibling path the folded rendering is written to:
/// `p.json` → `p.folded` (an extensionless path gets `.folded`
/// appended).
pub fn folded_path(path: &str) -> String {
    match path.strip_suffix(".json") {
        Some(stem) => format!("{stem}.folded"),
        None => format!("{path}.folded"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_obs::profile::profile;
    use hermes_obs::{ClockDomain, Recorder, WallMark};

    fn sample_profile() -> Profile {
        let r = Recorder::new();
        let ctx = r.mint_trace();
        let root =
            r.trace_span("serve", "request", ClockDomain::Cpu, 0, 30, &[], WallMark::none(), ctx);
        let child = ctx.child(root);
        r.trace_span("serve", "queue-wait", ClockDomain::Cpu, 0, 10, &[], WallMark::none(), child);
        r.trace_span("serve", "service", ClockDomain::Cpu, 10, 20, &[], WallMark::none(), child);
        profile(&r.snapshot())
    }

    #[test]
    fn document_shape_and_determinism() {
        let prof = sample_profile();
        let doc = profile_document(&prof).render();
        assert!(doc.contains("\"schema\": \"hermes-profile/v1\""));
        assert!(doc.contains("\"name\": \"request\""));
        assert!(doc.contains("\"exact\": true"));
        assert!(doc.contains("\"segment_totals\""));
        assert!(doc.contains("\"dropped_events\": 0"));
        assert_eq!(doc, profile_document(&sample_profile()).render());
        assert!(!doc.contains("wall"), "profiles carry no wall-clock channel");
    }

    #[test]
    fn folded_rendering_is_flamegraph_shaped() {
        let prof = sample_profile();
        let folded = folded_stacks(&prof);
        assert!(folded.contains("serve:request;serve:queue-wait 10\n"));
        assert!(folded.contains("serve:request;serve:service 20\n"));
        // root has zero self-time here (fully decomposed): not emitted
        assert!(!folded.lines().any(|l| l.starts_with("serve:request ")));
    }

    #[test]
    fn folded_path_is_sibling() {
        assert_eq!(folded_path("p.json"), "p.folded");
        assert_eq!(folded_path("/tmp/x/profile.json"), "/tmp/x/profile.folded");
        assert_eq!(folded_path("prof"), "prof.folded");
    }
}
