//! E2 — FPGA implementation flow (Fig. 3 of the paper).
//!
//! Every suite kernel through synthesis → place → route → STA → bitstream
//! on the NG-MEDIUM-like device, plus the device-generation ablation
//! behind the paper's headline claim that NG-ULTRA's 28 nm FD-SOI runs
//! "twice as fast as current rad-hard FPGAs with a power consumption four
//! times smaller".

use crate::cells;
use crate::kernels::suite;
use crate::table::Table;
use crate::ExperimentOutput;
use hermes_fpga::device::DeviceProfile;
use hermes_fpga::flow::{FlowOptions, NxFlow};
use hermes_fpga::place::Effort;
use hermes_hls::HlsFlow;

/// Run E2 on the default worker count and render its tables.
pub fn run() -> ExperimentOutput {
    run_with_jobs(hermes_par::jobs())
}

/// Run E2 with an explicit worker count; the per-kernel HLS→FPGA flows
/// are independent and merge in suite order, so every count renders the
/// same tables.
pub fn run_with_jobs(jobs: usize) -> ExperimentOutput {
    run_traced_jobs(jobs, &hermes_obs::Recorder::disabled())
}

/// Run E2 on the default worker count, tracing into `obs`.
pub fn run_traced(obs: &hermes_obs::Recorder) -> ExperimentOutput {
    run_traced_jobs(hermes_par::jobs(), obs)
}

/// Run E2 with an explicit worker count and a flight recorder: each
/// kernel's HLS→FPGA flow traces into its own child recorder, absorbed
/// back in suite order.
pub fn run_traced_jobs(jobs: usize, obs: &hermes_obs::Recorder) -> ExperimentOutput {
    let hls = HlsFlow::new().unroll_limit(0);
    let device = DeviceProfile::ng_medium_like();
    let opts = FlowOptions {
        effort: Effort::Low,
        ..FlowOptions::default()
    };
    let mut t = Table::new(&[
        "kernel", "luts", "ffs", "dsps", "rams", "wirelen", "fmax_mhz", "power_mw",
        "bitstream_B",
    ]);
    let rows = hermes_par::par_map_jobs(jobs, &suite(), |k| {
        let child = obs.child();
        let d = k.compile_traced(&hls, &child);
        let mut kopts = opts.clone();
        kopts.multicycle = d.multicycle_hints();
        let report = NxFlow::new(device.clone(), kopts)
            .run_traced(d.netlist(), &child)
            .unwrap_or_else(|e| panic!("{}: {e}", k.name));
        let row = cells![
            k.name,
            report.utilization.luts,
            report.utilization.ffs,
            report.utilization.dsps,
            report.utilization.rams,
            format!("{:.0}", report.route.wirelength),
            format!("{:.1}", report.timing.fmax_mhz),
            format!("{:.1}", report.power.total_mw()),
            report.bitstream_bytes,
        ];
        (row, child)
    })
    .expect("suite kernels implement");
    for (row, child) in rows {
        obs.absorb(&child);
        t.row(row);
    }

    // device-generation ablation on a representative kernel
    let d = suite().remove(3).compile(&hls); // fir
    let mut gen = Table::new(&["device", "fmax_mhz", "power_mw", "ratio_vs_legacy"]);
    let mut results = Vec::new();
    for device in [
        DeviceProfile::ng_medium_like(),
        DeviceProfile::legacy_radhard_like(),
    ] {
        let report = NxFlow::new(device.clone(), opts.clone())
            .run(d.netlist())
            .expect("fir implements");
        results.push((device.name.clone(), report.timing.fmax_mhz, report.power.total_mw()));
    }
    let legacy = results[1].clone();
    for (name, fmax, power) in &results {
        gen.row(cells![
            name,
            format!("{fmax:.1}"),
            format!("{power:.1}"),
            format!(
                "{:.2}x speed, {:.2}x power",
                fmax / legacy.1,
                power / legacy.2
            ),
        ]);
    }
    let text = format!(
        "E2: implementation results on {} @ 100 MHz constraint\n{}\n\
         E2b: device-generation ablation (paper claim: 2x faster, 4x lower power)\n{}",
        device.name,
        t.render(),
        gen.render()
    );
    ExperimentOutput::new(text)
        .with("e2", "implementation results", t)
        .with("e2b", "device-generation ablation", gen)
}

#[cfg(test)]
mod tests {
    #[test]
    fn e2_reports_generation_gap() {
        let out = super::run().text;
        assert!(out.contains("NG-MEDIUM-like"));
        assert!(out.contains("Legacy-65nm-like"));
        // speed ratio ~2x must appear on the modern device row
        assert!(out.contains("x speed"));
    }
}
