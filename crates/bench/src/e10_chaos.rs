//! E10 — Cross-layer chaos campaigns (the robustness claim behind
//! Sections III–IV: faults are survived *transparently to the
//! application* by staged recovery — flash TMR and boot-source failover
//! in BL1, AXI retry on the interconnect, SpaceWire retransmission, and
//! health-monitor restart/escalation/spare-failover in the hypervisor).
//!
//! One seeded `FaultPlan` drives faults into every layer at once; the
//! report measures availability, MTTR, and — the qualification gate —
//! zero silent corruptions.

use crate::cells;
use crate::table::Table;
use crate::ExperimentOutput;
use hermes_chaos::scenario;

/// Run E10 and render its tables.
pub fn run() -> ExperimentOutput {
    run_with_jobs(hermes_par::jobs())
}

/// Run E10 with an explicit worker count (per-seed campaigns in parallel).
pub fn run_with_jobs(jobs: usize) -> ExperimentOutput {
    run_traced_jobs(jobs, &hermes_obs::Recorder::disabled())
}

/// Run E10 on the default worker count, tracing into `obs`.
pub fn run_traced(obs: &hermes_obs::Recorder) -> ExperimentOutput {
    run_traced_jobs(hermes_par::jobs(), obs)
}

/// Run E10 with an explicit worker count and a flight recorder: every
/// seeded campaign traces its injections, boot timeline, and recovery
/// verdict into its own child recorder, absorbed in seed order.
pub fn run_traced_jobs(jobs: usize, obs: &hermes_obs::Recorder) -> ExperimentOutput {
    let seeds = [7u64, 11, 21, 42, 99, 1234];

    let mut a = Table::new(&[
        "seed",
        "injected",
        "boot",
        "availability",
        "mttr_cycles",
        "silent",
        "all_stages",
    ]);
    // each campaign is seeded and independent; results come back in seed order
    let outcomes = hermes_par::par_map_jobs(jobs, &seeds, |&seed| {
        let child = obs.child();
        let out = scenario::full_campaign_traced(seed, &child);
        (out, child)
    })
    .expect("campaigns are infallible");
    let outcomes: Vec<_> = outcomes
        .into_iter()
        .map(|(out, child)| {
            obs.absorb(&child);
            out
        })
        .collect();
    for (&seed, out) in seeds.iter().zip(&outcomes) {
        let r = &out.report;
        a.row(cells![
            seed,
            r.total_injected(),
            if r.boot_succeeded { "ok" } else { "safe-mode" },
            format!("{:.4}", r.availability()),
            format!("{:.0}", r.mttr()),
            r.silent_corruptions,
            if r.all_stages_exercised() { "yes" } else { "no" },
        ]);
    }

    // recovery-stage counters for the reference seed
    let reference = &outcomes[3].report; // seed 42
    let mut b = Table::new(&["recovery stage", "count"]);
    let s = &reference.recovered;
    for (label, n) in [
        ("axi-retry", s.axi_retries),
        ("flash-tmr-vote (bytes)", s.flash_voted_bytes),
        ("flash-copy-fallback", s.flash_copy_fallbacks),
        ("spw-retransmission", s.spw_retransmissions),
        ("boot-source-failover", s.boot_source_failovers),
        ("partition-restart", s.partition_restarts),
        ("hm-escalation", s.hm_escalations),
        ("spare-failover", s.spare_failovers),
        ("watchdog-expiry", s.watchdog_expiries),
        ("edac-correction", s.edac_corrections),
    ] {
        b.row(cells![label, n]);
    }

    let mut c = Table::new(&["fault class", "injected"]);
    for (label, n) in &reference.injected {
        c.row(cells![label, n]);
    }

    let text = format!(
        "E10a: chaos campaign sweep (full stack: boot, bus, link, mission)\n{}\n\
         E10b: recovery stages exercised (seed 42)\n{}\n\
         E10c: faults injected by class (seed 42)\n{}",
        a.render(),
        b.render(),
        c.render(),
    );
    ExperimentOutput::new(text)
        .with("e10a", "chaos campaign sweep", a)
        .with("e10b", "recovery stages (seed 42)", b)
        .with("e10c", "fault classes (seed 42)", c)
}
