//! E12 — Observability overhead: the flight recorder must be close to
//! free when enabled and strictly behavior-preserving.
//!
//! Each instrumented experiment (E1/E2/E7/E10) runs twice — once against
//! [`Recorder::disabled`] (every recording call returns after one
//! branch) and once against a fresh enabled [`Recorder::new`] — taking
//! the best of three wall-clock measurements per side. Two properties are
//! checked:
//!
//! * **zero behavioral diff** — the rendered text of the traced run must
//!   equal the untraced run byte for byte (asserted; a mismatch panics);
//! * **<5% wall-clock overhead** — reported as a verdict column rather
//!   than asserted, because wall-clock on a shared build host is noisy;
//!   `BENCH_hermes.json` records the measured figure.

use crate::cells;
use crate::table::Table;
use crate::ExperimentOutput;
use hermes_obs::Recorder;
use std::time::Instant;

const BEST_OF: u32 = 5;

/// One overhead target: id plus its recorder-taking runner.
type Target = (&'static str, fn(&Recorder) -> ExperimentOutput);

fn targets() -> Vec<Target> {
    vec![
        ("e1", crate::e1_hls_flow::run_traced),
        ("e2", crate::e2_fpga_flow::run_traced),
        ("e7", crate::e7_usecases::run_traced),
        ("e10", crate::e10_chaos::run_traced),
    ]
}

/// One timed repetition of `runner` against a recorder built by `make`;
/// returns `(secs, text, events_recorded)`.
fn rep(
    runner: fn(&Recorder) -> ExperimentOutput,
    make: fn() -> Recorder,
) -> (f64, String, u64) {
    let obs = make();
    let start = Instant::now();
    let out = runner(&obs);
    (start.elapsed().as_secs_f64(), out.text, obs.event_count())
}

/// Best-of-N wall time for the disabled and the enabled recorder, with
/// the repetitions **interleaved** (off/on pairs) so clock-frequency and
/// cache drift across the measurement window cancels instead of landing
/// on one side; returns `(off_best, on_best, off_text, on_text, events)`.
fn measure(runner: fn(&Recorder) -> ExperimentOutput) -> (f64, f64, String, String, u64) {
    // untimed warm-up so neither side pays first-touch costs
    let _ = rep(runner, Recorder::disabled);
    let (mut off_best, mut on_best) = (f64::MAX, f64::MAX);
    let (mut off_text, mut on_text) = (String::new(), String::new());
    let mut events = 0u64;
    for _ in 0..BEST_OF {
        let (secs, text, _) = rep(runner, Recorder::disabled);
        off_best = off_best.min(secs);
        off_text = text;
        let (secs, text, ev) = rep(runner, Recorder::new);
        on_best = on_best.min(secs);
        on_text = text;
        events = ev;
    }
    (off_best, on_best, off_text, on_text, events)
}

/// Run E12 and render its table.
pub fn run() -> ExperimentOutput {
    run_traced(&Recorder::disabled())
}

/// Run E12; the session recorder only receives the (deterministic)
/// per-target event counts, never the wall-clock measurements.
pub fn run_traced(session: &Recorder) -> ExperimentOutput {
    let mut t = Table::new(&[
        "experiment",
        "off_ms",
        "on_ms",
        "overhead_pct",
        "events",
        "identical",
        "under_5pct",
    ]);
    let mut worst = f64::MIN;
    for (id, runner) in targets() {
        let (off_secs, on_secs, off_text, on_text, events) = measure(runner);
        assert_eq!(
            off_text, on_text,
            "{id}: tracing must not change experiment output"
        );
        assert!(events > 0, "{id}: instrumented run recorded no events");
        let overhead = (on_secs / off_secs - 1.0) * 100.0;
        worst = worst.max(overhead);
        session.counter_add("bench.e12", &format!("{id}_events"), events);
        t.row(cells![
            id,
            format!("{:.1}", off_secs * 1e3),
            format!("{:.1}", on_secs * 1e3),
            format!("{overhead:.2}"),
            events,
            "yes",
            if overhead < 5.0 { "yes" } else { "no" },
        ]);
    }
    let text = format!(
        "E12: flight-recorder overhead, instrumented (Recorder::new) vs \
         disabled (Recorder::disabled), best of {BEST_OF}\n{}\n\
         worst-case overhead: {worst:.2}% (target < 5%); traced and \
         untraced outputs byte-identical (asserted)",
        t.render()
    );
    ExperimentOutput::new(text).with("e12", "observability overhead", t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_traced_output_matches_untraced_and_records_events() {
        let obs = Recorder::new();
        let traced = crate::e1_hls_flow::run_traced(&obs);
        let plain = crate::e1_hls_flow::run();
        assert_eq!(traced.text, plain.text);
        assert!(obs.event_count() > 0);
    }
}
