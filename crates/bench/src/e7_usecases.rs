//! E7 — Use-case evaluation (Section V): HLS accelerators vs the software
//! baseline on the processor subsystem.
//!
//! The hardware number is the accelerator's cycle count from cycle-accurate
//! co-simulation. The software baseline is a single-issue in-order CPU
//! model over the same executed operations (MUL=3, DIV=20, MEM=6 cycles,
//! R52-class figures), cross-validated below against an actual
//! hand-written assembly kernel running on the `hermes-cpu` cluster.
//! A data-size scaling sweep shows the accelerator gap growing with frame
//! size — the on-board-processing motivation of the paper's introduction.

use crate::cells;
use crate::kernels::suite;
use crate::table::Table;
use crate::ExperimentOutput;
use hermes_cpu::cluster::Cluster;
use hermes_cpu::isa::assemble;
use hermes_cpu::memmap::layout;
use hermes_hls::ir::ArrayId;
use hermes_hls::simulate::ExternalMemory;
use hermes_hls::HlsFlow;

const CPU_MUL: u64 = 3;
const CPU_DIV: u64 = 20;
const CPU_MEM: u64 = 6;

/// Validate the CPU cost model against real ISA execution of an
/// accumulation loop; returns (model_cycles, measured_cycles).
fn validate_cost_model() -> (u64, u64) {
    let n = 64u32;
    // HLS-side census of the same loop
    let design = HlsFlow::new()
        .unroll_limit(0)
        .compile("int acc(int n) { int s = 0; for (int i = 0; i < n; i += 1) { s += i; } return s; }")
        .expect("compiles");
    let r = design.simulate(&[i64::from(n)]).expect("simulates");
    let model = r.op_census.cpu_cycles(CPU_MUL, CPU_DIV, CPU_MEM);
    // the same loop in assembly on the cluster
    let prog = assemble(&format!(
        r#"
        addi r1, r0, {n}
        addi r2, r0, 0
        addi r3, r0, 0
    loop:
        bge  r3, r1, done
        add  r2, r2, r3
        addi r3, r3, 1
        jal  r0, loop
    done:
        halt
        "#
    ))
    .expect("asm");
    let mut cluster = Cluster::new();
    cluster
        .load_program(0, layout::SRAM_BASE, &prog)
        .expect("load");
    cluster.start_core(0, layout::SRAM_BASE);
    cluster.run(1_000_000).expect("run");
    assert_eq!(cluster.core(0).reg(2), n * (n - 1) / 2);
    (model, cluster.core(0).cycles)
}

/// Run E7 and render its tables.
pub fn run() -> ExperimentOutput {
    run_with_jobs(hermes_par::jobs())
}

/// Run E7 with an explicit worker count (per-kernel flows in parallel).
pub fn run_with_jobs(jobs: usize) -> ExperimentOutput {
    run_traced_jobs(jobs, &hermes_obs::Recorder::disabled())
}

/// Run E7 on the default worker count, tracing into `obs`.
pub fn run_traced(obs: &hermes_obs::Recorder) -> ExperimentOutput {
    run_traced_jobs(hermes_par::jobs(), obs)
}

/// Run E7 with an explicit worker count and a flight recorder (child
/// recorder per kernel, absorbed in suite order).
pub fn run_traced_jobs(jobs: usize, obs: &hermes_obs::Recorder) -> ExperimentOutput {
    let (model, measured) = validate_cost_model();
    let mut v = Table::new(&["baseline validation", "cycles"]);
    v.row(cells!["cost model (acc loop, n=64)", model]);
    v.row(cells!["ISA execution (same loop)", measured]);
    v.row(cells![
        "model / measured",
        format!("{:.2}", model as f64 / measured as f64)
    ]);

    // accelerators stream their arrays over AXI bursts: near-memory
    // latency (prefetched), while the CPU model pays blended-cache cost
    let flow = HlsFlow::new().unroll_limit(0).ext_mem_latency(2, 1);
    let mut t = Table::new(&["kernel", "hw_cycles", "sw_cycles", "speedup", "ops"]);
    let rows = hermes_par::par_map_jobs(jobs, &suite(), |k| {
        let child = obs.child();
        let d = k.compile_traced(&flow, &child);
        let r = k.simulate(&d);
        let sw = r.op_census.cpu_cycles(CPU_MUL, CPU_DIV, CPU_MEM);
        let row = cells![
            k.name,
            r.cycles,
            sw,
            format!("{:.2}x", sw as f64 / r.cycles as f64),
            r.op_census.total(),
        ];
        (row, child)
    })
    .expect("suite kernels are known-good");
    for (row, child) in rows {
        obs.absorb(&child);
        t.row(row);
    }

    // scaling sweep: histogram over growing frames
    let mut s = Table::new(&["pixels", "hw_cycles", "sw_cycles", "speedup"]);
    let design = flow
        .compile(hermes_apps::image::HISTOGRAM_SOURCE)
        .expect("compiles");

    for n in [64usize, 256, 1024, 4096] {
        let img = hermes_apps::image::star_field(n / 8, 8, 4, 1);
        let mut ext = ExternalMemory::buffers(vec![
            (ArrayId(0), img),
            (ArrayId(1), vec![0; 256]),
        ]);
        let r = design
            .simulate_with_memory(&[n as i64], &mut ext)
            .expect("simulates");
        let sw = r.op_census.cpu_cycles(CPU_MUL, CPU_DIV, CPU_MEM);
        s.row(cells![
            n,
            r.cycles,
            sw,
            format!("{:.2}x", sw as f64 / r.cycles as f64)
        ]);
    }

    let text = format!(
        "E7: software-baseline cost-model validation\n{}\n\
         E7a: HLS accelerator vs software baseline (standard stimuli)\n{}\n\
         E7b: histogram scaling with frame size\n{}",
        v.render(),
        t.render(),
        s.render()
    );
    ExperimentOutput::new(text)
        .with("e7", "cost-model validation", v)
        .with("e7a", "accelerator vs software baseline", t)
        .with("e7b", "histogram scaling", s)
}

#[cfg(test)]
mod tests {
    #[test]
    fn e7_model_within_2x_of_isa() {
        let (model, measured) = super::validate_cost_model();
        let ratio = model as f64 / measured as f64;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "cost model should track the ISA within 2x: {ratio:.2}"
        );
    }

    #[test]
    fn e7_accelerators_win() {
        let out = super::run().text;
        // every suite row reports a >= 1x speedup
        for line in out.lines().filter(|l| l.contains('x') && l.contains("  ")) {
            if let Some(sp) = line
                .split_whitespace()
                .find(|w| w.ends_with('x') && w.len() > 1)
            {
                if let Ok(v) = sp.trim_end_matches('x').parse::<f64>() {
                    assert!(v >= 0.5, "pathological slowdown in: {line}");
                }
            }
        }
        assert!(out.contains("histogram"));
    }
}
