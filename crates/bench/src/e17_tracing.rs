//! E17 — Causal tracing, deterministic critical-path profiling, and SLO
//! burn-rate alerting over the serving runtime.
//!
//! E17a replays E14's offered-load sweep with per-request causal traces
//! and a deadline-hit SLO attached, and gates the two hard invariants of
//! the observability layer: every served request's critical-path segments
//! (queue wait, batch overhead, service, DMA, stall) sum *exactly* to its
//! end-to-end latency, and the multi-window burn-rate alert pages at and
//! only at the designed overload threshold (150% of saturation — the
//! first sweep point where shedding is systemic rather than incidental:
//! committed E14a shows 1 shed at 100% vs 84 at 150%). E17b measures the
//! wall-clock overhead of tracing at sampling rates 0/16/1000‰ against
//! an untraced run, asserting the rendered reports are byte-identical —
//! sampling bounds the recording cost but never touches results. E17c
//! renders the full trace and profile documents at 1 and 4 payload
//! workers and gates byte-identity via FNV checksums: ids come from
//! per-recorder sequences, not threads. E17d threads one minted trace
//! context through the cross-layer surface — HLS co-simulation, AXI DMA
//! measurement, and XNG partition dispatch — and checks all three
//! subsystems link their events into the same trace id.
//!
//! The committed E17b row at 16‰ sampling is the overhead bound ci.sh
//! enforces: sampled tracing must add <5% over the untraced recorder
//! (the sample-0 row), which is how `HERMES_TRACE_SAMPLE` keeps
//! always-on tracing affordable.

use crate::cells;
use crate::e14_serving::{self, LOADS, SEED};
use crate::profile_export::profile_document;
use crate::table::Table;
use crate::trace::trace_document;
use crate::ExperimentOutput;
use hermes_cpu::memmap::layout;
use hermes_obs::profile::profile;
use hermes_obs::slo::{AlertState, SloEngine, SloObjective, SloSpec};
use hermes_obs::Recorder;
use hermes_serve::engine::{ServeConfig, ServeEngine, ServeReport};
use hermes_serve::model::AcceleratorModel;
use hermes_serve::workload::{self, WorkloadConfig};
use hermes_xng::config::{MemRegion, PartitionConfig, Plan, Slot, XngConfig};
use hermes_xng::hypervisor::Hypervisor;
use hermes_xng::partition::native_task;

/// The designed overload threshold: the lowest sweep load (percent of
/// saturation) at which the deadline-hit SLO must page. Justified by the
/// committed E14a sweep — shedding at 100% is incidental (1 request),
/// at 150% it is systemic (84 requests, 21% of offered vs the 5% error
/// budget).
const PAGE_LOAD_PCT: u64 = 150;
/// Deadline-hit SLO: ≥95% of resolved admissions meet their deadline.
const HIT_MIN_PERMILLE: u64 = 950;

fn slo_for(span: u64) -> SloEngine {
    SloEngine::new(vec![SloSpec::new(
        "deadline-hit",
        SloObjective::DeadlineHitRatio { min_permille: HIT_MIN_PERMILLE },
        (span / 4).max(8),
    )])
}

/// One traced sweep point: E14's measured model and workload, with the
/// supplied recorder (callers pick traced vs disabled), sampling rate,
/// and the deadline-hit SLO attached. Returns the finished engine so
/// callers can profile its recorder and read its SLO state.
fn traced_point(
    model: &AcceleratorModel,
    base: &WorkloadConfig,
    load_pct: u64,
    jobs: usize,
    sample_permille: u64,
    recorder: Recorder,
) -> (ServeReport, ServeEngine) {
    let wl = base.clone().at_load_pct(load_pct);
    let arrivals = workload::generate(SEED, &wl);
    let span = arrivals.last().expect("workload non-empty").arrival;
    let cfg = ServeConfig {
        jobs,
        trace_sample_permille: sample_permille,
        ..e14_serving::serve_cfg()
    };
    let mut engine = ServeEngine::new(cfg, model.clone(), arrivals)
        .with_recorder(recorder)
        .with_slo(slo_for(span));
    let report = engine.run();
    assert!(
        report.accounted(),
        "accounting invariant violated at load {load_pct}%: {report:?}"
    );
    (report, engine)
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Thread one minted trace through HLS co-sim, AXI DMA measurement, and
/// XNG dispatch; return `(trace_id, per-subsystem traced event counts)`.
fn cross_layer_chain(rec: &Recorder) -> (u64, Vec<(String, u64)>) {
    let ctx = rec.mint_trace();

    // hls: the model-pricing co-simulation records under this trace
    let design = hermes_hls::HlsFlow::new()
        .compile("int triple(int x) { return x * 3; }")
        .expect("kernel compiles");
    let model = AcceleratorModel::from_design_traced(design, &[5], 8, rec, ctx)
        .expect("traced measurement")
        // dma: the bus round trip exports its stats under the same trace
        .with_measured_dma_traced(64, rec, ctx);
    assert!(model.per_item >= 1 && model.dma_per_item > 0);

    // xng: partition dispatch links its context switches into the trace
    let mut cfg = XngConfig::new("e17");
    let p = cfg.add_partition(PartitionConfig::new("ctrl").with_memory(MemRegion {
        base: layout::SRAM_BASE,
        size: 0x1000,
        writable: true,
    }));
    cfg.set_plan(0, Plan::new(vec![Slot::new(p, 3_200)]));
    let mut hv = Hypervisor::new(cfg).expect("config");
    hv.set_obs(rec.clone());
    hv.attach_native(p, native_task("ctrl", |c| {
        c.consume(500);
        Ok(())
    }))
    .expect("attach");
    hv.set_trace_ctx(Some(ctx));
    hv.run(9_600).expect("run");

    let snap = rec.snapshot();
    let mut counts = Vec::new();
    for sub in &snap.subsystems {
        let traced = sub
            .events
            .iter()
            .filter(|ev| ev.trace.is_some_and(|l| l.trace_id == ctx.trace_id))
            .count() as u64;
        if traced > 0 {
            counts.push((sub.name.clone(), traced));
        }
    }
    (ctx.trace_id, counts)
}

/// Run E17 and render its tables.
pub fn run() -> ExperimentOutput {
    run_traced(&hermes_obs::Recorder::disabled())
}

/// Run E17 with a flight recorder. The gates need real traces even in an
/// untraced session, so each sweep point records into its own recorder;
/// the session recorder receives the absorbed copies.
pub fn run_traced(obs: &hermes_obs::Recorder) -> ExperimentOutput {
    let model = e14_serving::mlp_model();
    let base = e14_serving::workload_cfg(&model, &e14_serving::serve_cfg());

    // Every recorder whose events flow back into the session hangs off
    // this one root, so each gets its own trace-id domain — two absorbed
    // recorders must never reuse span ids, or profile parent chains
    // cross-wire. In an untraced session the root is a local stand-in
    // (the gates need real traces either way, so points can't just use
    // a disabled `obs.child()`).
    let root = if obs.enabled() {
        obs.child()
    } else {
        Recorder::new().with_capacity(1 << 16)
    };

    // E17a: traced sweep with critical-path and SLO gates.
    let mut sweep = Table::new(&[
        "load_pct",
        "served",
        "shed",
        "rejected",
        "cp_exact",
        "cp_total",
        "alert",
        "transitions",
    ]);
    for &load in &LOADS {
        let (report, engine) = traced_point(&model, &base, load, 0, 1000, root.child());
        let prof = profile(&engine.recorder().snapshot());
        assert_eq!(prof.dropped_events, 0, "gates need an untruncated record");
        let (exact, total) = prof.exact_paths("request");
        assert_eq!(
            total, report.served,
            "every served request must leave a critical path at load {load}%"
        );
        assert_eq!(
            exact, total,
            "critical-path segments must sum to latency at load {load}%"
        );
        let slo = engine.slo().expect("SLO engine attached");
        let worst = slo.worst_states()[0].1;
        if load >= PAGE_LOAD_PCT {
            assert_eq!(worst, AlertState::Page, "SLO must page at load {load}%");
        } else {
            assert_ne!(worst, AlertState::Page, "SLO must not page at load {load}%");
        }
        sweep.row(cells![
            load,
            report.served,
            report.shed(),
            report.rejected(),
            exact,
            total,
            worst.as_str(),
            slo.verdicts().len(),
        ]);
        root.absorb(engine.recorder());
    }

    // E17b: tracing overhead vs an untraced run, per sampling rate.
    // Interleaved best-of-N (E12's protocol), with REPS engine runs per
    // timing sample — one 150% point is ~3 ms, too short to time on this
    // container's single shared core. The <5% gate on the sampled row
    // lives in ci.sh against the committed JSON, not here, so one noisy
    // run can't flake the build.
    const BEST_OF: usize = 21;
    const REPS: usize = 16;
    // configs timed: recorder disabled entirely, then enabled at three
    // sampling rates; `vs_untraced_pct` (enabled-sampled vs enabled-at-0)
    // is the ci.sh-gated quantity
    let configs: [(&str, Option<u64>); 4] =
        [("disabled", None), ("0", Some(0)), ("16", Some(16)), ("1000", Some(1000))];
    let time_config = |sample: Option<u64>| -> f64 {
        let t0 = std::time::Instant::now();
        for _ in 0..REPS {
            let rec = match sample {
                None => Recorder::disabled(),
                Some(_) => Recorder::new().with_capacity(1 << 16),
            };
            let _ = traced_point(&model, &base, 150, 0, sample.unwrap_or(0), rec);
        }
        t0.elapsed().as_secs_f64() / REPS as f64
    };
    // untimed warm-up of every config, plus the results-identity gate
    let mut renders: Vec<String> = Vec::new();
    for (_, sample) in &configs {
        let rec = match sample {
            None => Recorder::disabled(),
            Some(_) => Recorder::new().with_capacity(1 << 16),
        };
        let (r, _) = traced_point(&model, &base, 150, 0, sample.unwrap_or(0), rec);
        renders.push(r.render());
    }
    for r in &renders[1..] {
        assert_eq!(&renders[0], r, "tracing must never change results");
    }
    // interleaved rounds: every config is timed once per round, so the
    // container's load drift hits all of them alike; overheads are then
    // the MEDIAN of per-round paired ratios — a paired ratio cancels the
    // drift that a min-of-N statistic cannot
    let mut rounds: Vec<[f64; 4]> = Vec::new();
    for _ in 0..BEST_OF {
        let mut row = [0.0; 4];
        for (i, (_, sample)) in configs.iter().enumerate() {
            row[i] = time_config(*sample);
        }
        rounds.push(row);
    }
    let median = |mut xs: Vec<f64>| -> f64 {
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        xs[xs.len() / 2]
    };
    let med_us =
        |i: usize| (median(rounds.iter().map(|r| r[i]).collect()) * 1_000_000.0).round() as u64;
    let med_pct = |i: usize, vs: usize| {
        (median(rounds.iter().map(|r| r[i] / r[vs]).collect()) * 100.0 - 100.0).round() as i64
    };
    let mut overhead = Table::new(&[
        "sample_permille",
        "median_us",
        "vs_disabled_pct",
        "vs_untraced_pct",
        "identical",
    ]);
    for (i, (name, _)) in configs.iter().enumerate() {
        overhead.row(cells![
            *name,
            med_us(i),
            if i == 0 { "-".to_string() } else { med_pct(i, 0).to_string() },
            if i <= 1 { "-".to_string() } else { med_pct(i, 1).to_string() },
            "yes",
        ]);
    }

    // E17c: trace and profile documents are byte-identical across jobs.
    let mut docs = Table::new(&["jobs", "trace_fnv", "profile_fnv", "identical"]);
    let mut rendered = Vec::new();
    for jobs in [1usize, 4] {
        let rec = Recorder::new().with_capacity(1 << 16);
        let (_, engine) = traced_point(&model, &base, 150, jobs, 1000, rec);
        let trace_doc = trace_document(engine.recorder()).render();
        let prof_doc = profile_document(&profile(&engine.recorder().snapshot())).render();
        docs.row(cells![
            jobs as u64,
            format!("{:#018x}", fnv(trace_doc.as_bytes())),
            format!("{:#018x}", fnv(prof_doc.as_bytes())),
            "yes",
        ]);
        rendered.push((trace_doc, prof_doc));
    }
    assert_eq!(rendered[0].0, rendered[1].0, "trace documents differ across jobs");
    assert_eq!(rendered[0].1, rendered[1].1, "profile documents differ across jobs");

    // E17d: one trace id spans hls, dma (axi), and xng events.
    let chain_rec = root.child();
    let (trace_id, counts) = cross_layer_chain(&chain_rec);
    let mut chain = Table::new(&["subsystem", "traced_events", "trace_id"]);
    for (sub, n) in &counts {
        chain.row(cells![sub, *n, format!("{trace_id:#x}")]);
    }
    for required in ["hls", "dma", "xng"] {
        assert!(
            counts.iter().any(|(s, _)| s == required),
            "subsystem {required} must link into the cross-layer trace: {counts:?}"
        );
    }
    root.absorb(&chain_rec);
    obs.absorb(&root);

    let text = format!(
        "E17a: traced offered-load sweep (sample 1000‰), critical-path exactness and \
         deadline-hit SLO (≥{HIT_MIN_PERMILLE}‰, pages at ≥{PAGE_LOAD_PCT}% load)\n{}\n\
         E17b: tracing overhead at load 150%, best-of-{BEST_OF} interleaved x{REPS} reps, results byte-identical\n{}\n\
         E17c: trace/profile document checksums, payload workers 1 vs 4\n{}\n\
         E17d: one trace context across HLS co-sim, AXI DMA measurement, XNG dispatch\n{}",
        sweep.render(),
        overhead.render(),
        docs.render(),
        chain.render(),
    );
    ExperimentOutput::new(text)
        .with("e17a", "traced sweep: critical paths + SLO burn-rate", sweep)
        .with("e17b", "tracing overhead by sampling rate", overhead)
        .with("e17c", "trace/profile jobs invariance", docs)
        .with("e17d", "cross-layer trace propagation", chain)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_point_paths_are_exact_and_slo_pages_past_threshold() {
        let model = e14_serving::mlp_model();
        let base = e14_serving::workload_cfg(&model, &e14_serving::serve_cfg());
        let rec = Recorder::new().with_capacity(1 << 16);
        let (report, engine) = traced_point(&model, &base, 200, 0, 1000, rec);
        let prof = profile(&engine.recorder().snapshot());
        assert_eq!(prof.exact_paths("request"), (report.served, report.served));
        assert_eq!(
            engine.slo().unwrap().worst_states()[0].1,
            AlertState::Page
        );
    }

    #[test]
    fn healthy_point_stays_ok() {
        let model = e14_serving::mlp_model();
        let base = e14_serving::workload_cfg(&model, &e14_serving::serve_cfg());
        let (_, engine) =
            traced_point(&model, &base, 50, 0, 1000, Recorder::new().with_capacity(1 << 16));
        assert_eq!(engine.slo().unwrap().worst_states()[0].1, AlertState::Ok);
    }

    #[test]
    fn cross_layer_chain_links_three_subsystems() {
        let rec = Recorder::new().with_capacity(1 << 14);
        let (id, counts) = cross_layer_chain(&rec);
        assert_ne!(id, 0);
        for sub in ["hls", "dma", "xng"] {
            assert!(counts.iter().any(|(s, _)| s == sub), "{counts:?}");
        }
    }
}
