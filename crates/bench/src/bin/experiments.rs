//! Run every experiment (or a named subset) and print the tables that
//! EXPERIMENTS.md records.
//!
//! ```sh
//! cargo run --release -p hermes-bench --bin experiments        # all
//! cargo run --release -p hermes-bench --bin experiments e5 e9  # subset
//! cargo run --release -p hermes-bench --bin experiments --list # ids+titles
//! cargo run --release -p hermes-bench --bin experiments e11 --json BENCH_hermes.json
//! cargo run --release -p hermes-bench --bin experiments e1 e2 --trace t.json
//! cargo run --release -p hermes-bench --bin experiments e17 --profile p.json
//! cargo run --release -p hermes-bench --bin experiments e2 --jobs 1   # pin workers
//! ```
//!
//! `--jobs N` pins the worker count for the whole run, taking precedence
//! over `HERMES_JOBS`; `N` must be a positive integer (unparsable or zero
//! values are rejected with an error, not silently defaulted).
//!
//! `--trace <path>` runs the selection against a shared flight recorder
//! and writes the `hermes-trace/v1` document to `<path>` plus a Chrome
//! `trace_event` rendering to `<path minus .json>.chrome.json`. The wall
//! channel is on for trace runs; every wall-derived field sits on a
//! `"wall`-prefixed key so the deterministic channels diff clean across
//! worker counts (`grep -v '"wall'`).
//!
//! `--profile <path>` runs the deterministic post-hoc profiler over the
//! same recorder and writes the `hermes-profile/v1` document (per-span
//! self-time, per-request critical paths, segment totals) to `<path>`
//! plus a collapsed-stack flamegraph to `<path minus .json>.folded`.
//! Profiles carry no wall channel at all: two profiles from the same
//! selection diff byte-identical at any worker count, no stripping
//! needed. `HERMES_TRACE_SAMPLE=<permille>` bounds how many serve
//! requests record causal traces (strictly parsed, 0..=1000).

use hermes_bench::json::Json;
use hermes_bench::profile_export;
use hermes_bench::trace;
use hermes_obs::{ClockDomain, Recorder};

fn main() {
    // Fail fast on a malformed HERMES_PACKED_SETTLE or HERMES_TRACE_SAMPLE
    // before any experiment runs — a typo silently selecting the wrong
    // settle engine or sampling rate would invalidate a whole benchmark
    // run.
    if let Err(e) = hermes_rtl::sim::packed_settle_env() {
        eprintln!("{e}");
        std::process::exit(1);
    }
    if let Err(e) = hermes_obs::env::trace_sample_env() {
        eprintln!("{e}");
        std::process::exit(1);
    }
    if let Err(e) = hermes_kernel::event_kernel_env() {
        eprintln!("{e}");
        std::process::exit(1);
    }
    let mut filter: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut profile_path: Option<String> = None;
    let mut list = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => match args.next() {
                Some(path) => json_path = Some(path),
                None => {
                    eprintln!("--json requires a file path");
                    std::process::exit(1);
                }
            },
            "--trace" => match args.next() {
                Some(path) => trace_path = Some(path),
                None => {
                    eprintln!("--trace requires a file path");
                    std::process::exit(1);
                }
            },
            "--profile" => match args.next() {
                Some(path) => profile_path = Some(path),
                None => {
                    eprintln!("--profile requires a file path");
                    std::process::exit(1);
                }
            },
            "--jobs" => match args.next() {
                Some(raw) => match raw.trim().parse::<usize>() {
                    Ok(0) => {
                        eprintln!("--jobs 0 requests zero workers; pass a positive integer");
                        std::process::exit(1);
                    }
                    Ok(n) => hermes_par::set_jobs_override(Some(n)),
                    Err(_) => {
                        eprintln!("--jobs {raw:?} is not a positive integer");
                        std::process::exit(1);
                    }
                },
                None => {
                    eprintln!("--jobs requires a worker count");
                    std::process::exit(1);
                }
            },
            "--list" => list = true,
            _ => filter.push(arg),
        }
    }
    let experiments = hermes_bench::all_experiments();
    if let Some(unknown) = filter.iter().find(|f| !experiments.iter().any(|(id, _, _)| id == f)) {
        let ids: Vec<&str> = experiments.iter().map(|(id, _, _)| *id).collect();
        eprintln!("unknown experiment `{unknown}`; available: {}", ids.join(" "));
        std::process::exit(1);
    }
    let selected: Vec<_> = experiments
        .into_iter()
        .filter(|(id, _, _)| filter.is_empty() || filter.iter().any(|f| f == id))
        .collect();
    if list {
        if json_path.is_some() || trace_path.is_some() || profile_path.is_some() {
            eprintln!("--list runs nothing; combine it with none of --json/--trace/--profile");
            std::process::exit(1);
        }
        for (id, title, _) in &selected {
            println!("{id:<4} {title}");
        }
        return;
    }
    if selected.is_empty() && (json_path.is_some() || trace_path.is_some() || profile_path.is_some())
    {
        eprintln!("--json/--trace/--profile need at least one experiment to run");
        std::process::exit(1);
    }

    // the session recorder: a deep ring when tracing or profiling (the
    // wall side channel only when tracing — profiles must diff clean with
    // no stripping), a one-branch no-op otherwise
    let session = if trace_path.is_some() {
        Recorder::with_wall().with_capacity(1 << 16)
    } else if profile_path.is_some() {
        Recorder::new().with_capacity(1 << 16)
    } else {
        Recorder::disabled()
    };
    let mut ran: Vec<(&str, &str, hermes_bench::ExperimentOutput)> = Vec::new();
    for (idx, (id, title, runner)) in selected.into_iter().enumerate() {
        println!("==================================================================");
        println!("{} — {}", id.to_uppercase(), title);
        println!("==================================================================");
        let mark = session.mark();
        let start = std::time::Instant::now();
        let output = runner(&session);
        session.span(
            "bench",
            id,
            ClockDomain::Seq,
            idx as u64,
            1,
            &[("title", title.to_string())],
            mark,
        );
        println!("{}", output.text);
        println!("[{} completed in {:.2} s]\n", id, start.elapsed().as_secs_f64());
        ran.push((id, title, output));
    }
    if let Some(path) = json_path {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let doc = Json::obj(vec![
            ("schema", Json::Str("hermes-bench/v1".into())),
            ("host_cores", Json::Int(cores as i64)),
            ("jobs", Json::Int(hermes_par::jobs() as i64)),
            (
                "experiments",
                Json::Arr(
                    ran.iter()
                        .map(|(id, title, out)| {
                            Json::obj(vec![
                                ("id", Json::Str((*id).into())),
                                ("title", Json::Str((*title).into())),
                                ("tables", out.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        let body = doc.render();
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
    if let Some(path) = trace_path {
        let body = trace::trace_document(&session).render();
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        let chrome = trace::chrome_path(&path);
        let body = trace::chrome_trace(&session).render();
        if let Err(e) = std::fs::write(&chrome, body) {
            eprintln!("failed to write {chrome}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path} and {chrome}");
    }
    if let Some(path) = profile_path {
        let prof = hermes_obs::profile::profile(&session.snapshot());
        let body = profile_export::profile_document(&prof).render();
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        let folded = profile_export::folded_path(&path);
        let body = profile_export::folded_stacks(&prof);
        if let Err(e) = std::fs::write(&folded, body) {
            eprintln!("failed to write {folded}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path} and {folded}");
    }
}
