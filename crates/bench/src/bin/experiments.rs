//! Run every experiment (or a named subset) and print the tables that
//! EXPERIMENTS.md records.
//!
//! ```sh
//! cargo run --release -p hermes-bench --bin experiments        # all
//! cargo run --release -p hermes-bench --bin experiments e5 e9  # subset
//! ```

fn main() {
    let filter: Vec<String> = std::env::args().skip(1).collect();
    let experiments = hermes_bench::all_experiments();
    if let Some(unknown) = filter.iter().find(|f| !experiments.iter().any(|(id, _, _)| id == f)) {
        let ids: Vec<&str> = experiments.iter().map(|(id, _, _)| *id).collect();
        eprintln!("unknown experiment `{unknown}`; available: {}", ids.join(" "));
        std::process::exit(1);
    }
    for (id, title, runner) in experiments {
        if !filter.is_empty() && !filter.iter().any(|f| f == id) {
            continue;
        }
        println!("==================================================================");
        println!("{} — {}", id.to_uppercase(), title);
        println!("==================================================================");
        let start = std::time::Instant::now();
        let output = runner();
        println!("{output}");
        println!("[{} completed in {:.2} s]\n", id, start.elapsed().as_secs_f64());
    }
}
