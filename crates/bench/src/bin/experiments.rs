//! Run every experiment (or a named subset) and print the tables that
//! EXPERIMENTS.md records.
//!
//! ```sh
//! cargo run --release -p hermes-bench --bin experiments        # all
//! cargo run --release -p hermes-bench --bin experiments e5 e9  # subset
//! cargo run --release -p hermes-bench --bin experiments e11 --json BENCH_hermes.json
//! ```

use hermes_bench::json::Json;

fn main() {
    let mut filter: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--json" {
            match args.next() {
                Some(path) => json_path = Some(path),
                None => {
                    eprintln!("--json requires a file path");
                    std::process::exit(1);
                }
            }
        } else {
            filter.push(arg);
        }
    }
    let experiments = hermes_bench::all_experiments();
    if let Some(unknown) = filter.iter().find(|f| !experiments.iter().any(|(id, _, _)| id == f)) {
        let ids: Vec<&str> = experiments.iter().map(|(id, _, _)| *id).collect();
        eprintln!("unknown experiment `{unknown}`; available: {}", ids.join(" "));
        std::process::exit(1);
    }
    let mut ran: Vec<(&str, &str, hermes_bench::ExperimentOutput)> = Vec::new();
    for (id, title, runner) in experiments {
        if !filter.is_empty() && !filter.iter().any(|f| f == id) {
            continue;
        }
        println!("==================================================================");
        println!("{} — {}", id.to_uppercase(), title);
        println!("==================================================================");
        let start = std::time::Instant::now();
        let output = runner();
        println!("{}", output.text);
        println!("[{} completed in {:.2} s]\n", id, start.elapsed().as_secs_f64());
        ran.push((id, title, output));
    }
    if let Some(path) = json_path {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let doc = Json::obj(vec![
            ("schema", Json::Str("hermes-bench/v1".into())),
            ("host_cores", Json::Int(cores as i64)),
            ("jobs", Json::Int(hermes_par::jobs() as i64)),
            (
                "experiments",
                Json::Arr(
                    ran.iter()
                        .map(|(id, title, out)| {
                            Json::obj(vec![
                                ("id", Json::Str((*id).into())),
                                ("title", Json::Str((*title).into())),
                                ("tables", out.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        let body = doc.render();
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
}
