//! E3 — Eucalyptus component characterization (Section II).
//!
//! The library-annotation table the HLS scheduler consumes: latency and
//! resources of adder/multiplier/divider/RAM templates across bit widths
//! and pipeline depths, per device generation.

use crate::cells;
use crate::table::Table;
use crate::ExperimentOutput;
use hermes_eucalyptus::{Eucalyptus, SweepConfig};
use hermes_fpga::device::DeviceProfile;
use hermes_rtl::component::ComponentKind;

/// Run E3 on the default worker count and render its table.
pub fn run() -> ExperimentOutput {
    run_with_jobs(hermes_par::jobs())
}

/// Harness entry point; E3 has no instrumented layers yet, so the
/// recorder is unused.
pub fn run_traced(_obs: &hermes_obs::Recorder) -> ExperimentOutput {
    run()
}

/// Run E3 with an explicit worker count for the kind × width sweep; the
/// library (and hence the table) is identical for every count.
pub fn run_with_jobs(jobs: usize) -> ExperimentOutput {
    let sweep = SweepConfig {
        widths: vec![8, 16, 32, 64],
        pipeline_stages: vec![0, 1, 2],
    };
    let lib = Eucalyptus::new(DeviceProfile::ng_medium_like())
        .with_kinds(vec![
            ComponentKind::Adder,
            ComponentKind::Multiplier,
            ComponentKind::Divider,
            ComponentKind::RamTdp,
        ])
        .characterize_jobs(&sweep, jobs)
        .expect("characterization");
    let mut t = Table::new(&["component", "width", "stages", "delay_ns", "luts", "ffs", "dsps", "rams"]);
    for (key, e) in lib.iter() {
        t.row(cells![
            key.kind,
            key.width,
            key.stages,
            format!("{:.2}", e.delay_ns),
            e.luts,
            e.ffs,
            e.dsps,
            e.rams,
        ]);
    }
    let xml_lines = lib.to_xml().lines().count();
    let text = format!(
        "E3: Eucalyptus characterization of {} ({} entries, {} XML lines)\n{}",
        lib.device_name,
        lib.len(),
        xml_lines,
        t.render()
    );
    ExperimentOutput::new(text).with("e3", "Eucalyptus characterization", t)
}

#[cfg(test)]
mod tests {
    #[test]
    fn e3_covers_widths_and_stages() {
        let out = super::run().text;
        assert!(out.contains("mul"));
        assert!(out.contains("div"));
        assert!(out.contains("64"));
    }
}
