//! E16 — Word-parallel bit-packed settle + rank-partitioned parallel
//! RTL simulation.
//!
//! Two layered hot-path engines on top of the E13 event-driven settle
//! (`crates/rtl`), both measured here against the engines they replace,
//! all of which stay selectable at run time so every comparison is live:
//!
//! * **Word-parallel lanes** — independent 1-bit ops of identical boolean
//!   form are bit-packed up to 64 per `u64` word at settle-program build
//!   time and evaluated as one bitwise instruction each
//!   (`HERMES_PACKED_SETTLE`, strict `on`/`off`).
//! * **Rank-partitioned parallel settle** — the program is cut into
//!   contiguous partitions per topological rank and fanned over
//!   `hermes-par` workers; the plan and the engagement decision are
//!   jobs-independent, so any `--jobs` value is bit-identical to serial.
//!
//! Sub-experiments:
//!
//! * **E16a** — compiled-program structure: packing and partition plan
//!   per design (deterministic).
//! * **E16b** — the E11 sim workload (`acc` head-to-head across four
//!   engines: the pre-dense hashmap baseline, scalar full settle, scalar
//!   event-driven, and packed event-driven), with cycle counts, return
//!   values, and traces asserted identical.
//! * **E16c** — the same kernel tiled into an SoC-scale fabric
//!   (`Netlist::tiled`), the workload class the packing + gating engines
//!   target. The *one-active-tile* row is the headline perf gate: the
//!   packed event-driven engine must beat the hashmap baseline by ≥10×
//!   cycles/sec (asserted in release builds).
//! * **E16d** — partitioned settle determinism: the same fabric driven
//!   with partitioning force-engaged at 1/2/4 workers; net-state, trace,
//!   and counter checksums must match bit-for-bit.
//!
//! Every simulator here is built through [`Simulator::new_with_packing`]
//! with the settle mode set explicitly, so the rendered tables are
//! independent of the `HERMES_PACKED_SETTLE` / `HERMES_EVENT_SETTLE`
//! ambient knobs and of the worker count. Wall-clock figures appear only
//! on `completed in` lines (stripped by ci.sh's determinism diffs) and in
//! the machine-readable JSON tables.

use crate::cells;
use crate::e11_throughput::BaselineSimulator;
use crate::table::Table;
use crate::ExperimentOutput;
use hermes_hls::HlsFlow;
use hermes_rtl::netlist::{NetId, Netlist};
use hermes_rtl::sim::Simulator;
use std::time::Instant;

/// The E11/E13 accumulator kernel — the sim-throughput workload this
/// experiment inherits its baseline from.
const ACC_SRC: &str =
    "int acc(int n) { int s = 0; for (int i = 0; i < n; i += 1) { s += i * i; } return s; }";

/// SoC-fabric scale. Release measures the full 256-tile fabric with the
/// E11 argument; debug (unit/determinism tests) shrinks both so the
/// hashmap baseline finishes quickly.
const SOC_COPIES: usize = if cfg!(debug_assertions) { 16 } else { 256 };
/// `arg_n` for the tiled runs (per active tile).
const SOC_ARG: u64 = if cfg!(debug_assertions) { 200 } else { 2_000 };
/// `arg_n` and repetitions for the single-kernel E11 workload rerun.
const E11_ARG: u64 = if cfg!(debug_assertions) { 400 } else { 2_000 };
const E11_REPS: u32 = if cfg!(debug_assertions) { 2 } else { 6 };

/// One dense-simulator engine configuration.
struct EngineCfg {
    packed: bool,
    event: bool,
    jobs: usize,
    /// Partition-engagement grain override (`None` = production default).
    grain: Option<usize>,
}

/// One run to `done == 1`, with the counters the tables report.
struct EngineRun {
    cycles: u64,
    ret: u64,
    settle_ops: u64,
    parallel_ops: u64,
    parallel_passes: u64,
    trace: String,
    secs: f64,
}

fn run_dense(
    nl: &Netlist,
    pokes: &[(String, u64)],
    done: NetId,
    ret: NetId,
    cfg: &EngineCfg,
    reps: u32,
) -> EngineRun {
    let traced = vec![done, ret];
    let mut last = None;
    let start = Instant::now();
    for _ in 0..reps {
        let mut sim = Simulator::new_with_packing(nl, cfg.packed).expect("valid netlist");
        sim.set_event_driven(cfg.event);
        sim.set_settle_jobs(cfg.jobs);
        if let Some(grain) = cfg.grain {
            sim.set_partition_grain(grain);
        }
        sim.enable_trace(&traced);
        for (name, value) in pokes {
            sim.poke(name, *value).expect("argument net exists");
        }
        let mut cycles = 0u64;
        while sim.peek_net(done) != 1 {
            sim.step().expect("step");
            cycles += 1;
            assert!(cycles < 4_000_000, "kernel never finished");
        }
        last = Some((cycles, sim));
    }
    let secs = start.elapsed().as_secs_f64();
    let (cycles, mut sim) = last.expect("reps >= 1");
    EngineRun {
        cycles,
        ret: sim.peek_net(ret),
        settle_ops: sim.settle_ops(),
        parallel_ops: sim.settle_parallel_ops(),
        parallel_passes: sim.settle_parallel_passes(),
        trace: sim.take_trace().expect("trace enabled").render(nl),
        secs,
    }
}

/// The pre-dense hashmap-state baseline (E11's `BaselineSimulator`) run
/// to `done == 1`.
fn run_hashmap(
    nl: &Netlist,
    pokes: &[(String, u64)],
    done: NetId,
    ret: NetId,
    reps: u32,
) -> (u64, u64, f64) {
    let mut last = (0, 0);
    let start = Instant::now();
    for _ in 0..reps {
        let mut sim = BaselineSimulator::new(nl);
        for (name, value) in pokes {
            sim.poke(name, *value);
        }
        let mut cycles = 0u64;
        while sim.peek_net(done) != 1 {
            sim.step();
            cycles += 1;
            assert!(cycles < 4_000_000, "kernel never finished");
        }
        last = (cycles, sim.peek_net(ret));
    }
    (last.0, last.1, start.elapsed().as_secs_f64())
}

/// FNV-1a over a `u64` stream — the e16d state checksum.
fn fnv_u64(hash: &mut u64, value: u64) {
    for byte in value.to_le_bytes() {
        *hash ^= u64::from(byte);
        *hash = hash.wrapping_mul(0x100_0000_01b3);
    }
}

/// Pokes for the tiled fabric: every tile's `arg_n` when `all`, else
/// tile 0 only (the localized-activity scenario).
fn soc_pokes(copies: usize, all: bool) -> Vec<(String, u64)> {
    let tiles = if all { copies } else { 1 };
    (0..tiles).map(|k| (format!("u{k}_arg_n"), SOC_ARG)).collect()
}

/// Run E16 on the default worker count and render its tables.
pub fn run() -> ExperimentOutput {
    run_with_jobs(hermes_par::jobs())
}

/// Run E16 with an explicit worker count; every count renders the same
/// tables (the partition plan and engagement decision are
/// jobs-independent and partition results merge in program order).
pub fn run_with_jobs(jobs: usize) -> ExperimentOutput {
    run_traced_jobs(jobs, &hermes_obs::Recorder::disabled())
}

/// Run E16 on the default worker count, tracing into `obs`.
pub fn run_traced(obs: &hermes_obs::Recorder) -> ExperimentOutput {
    run_traced_jobs(hermes_par::jobs(), obs)
}

/// Run E16 with an explicit worker count and a flight recorder (the
/// packed/partition counters export under `rtl-par`).
pub fn run_traced_jobs(jobs: usize, obs: &hermes_obs::Recorder) -> ExperimentOutput {
    let design = HlsFlow::new().unroll_limit(0).compile(ACC_SRC).expect("acc compiles");
    let acc_nl = design.netlist();
    let soc_nl = acc_nl.tiled(SOC_COPIES);
    soc_nl.validate().expect("tiled netlist is valid");

    // E16a: what the settle-program compiler produced for each design.
    let mut structure = Table::new(&[
        "design", "nets", "program_ops", "program_words", "packed_words", "packed_lanes",
        "occupancy_pm", "partitions", "ranks",
    ]);
    for (name, nl) in [("acc", acc_nl), (soc_nl.name(), &soc_nl)] {
        let sim = Simulator::new_with_packing(nl, true).expect("valid netlist");
        assert!(
            sim.settle_words() <= sim.settle_program_len(),
            "{name}: packing can only shrink the walked program"
        );
        structure.row(cells![
            name,
            nl.net_count(),
            sim.settle_program_len(),
            sim.settle_words(),
            sim.packed_words(),
            sim.packed_lanes(),
            sim.lane_occupancy_permille(),
            sim.settle_partitions(),
            sim.settle_ranks(),
        ]);
    }
    {
        let sim = Simulator::new_with_packing(&soc_nl, true).expect("valid netlist");
        assert!(sim.packed_lanes() > 0, "tiled fabric must pack some lanes");
        assert!(sim.settle_partitions() > 1, "tiled fabric must partition");
    }

    // E16b: the E11 sim workload, four engines head-to-head.
    let mut timing_lines = String::new();
    let acc_pokes = vec![("arg_n".to_string(), E11_ARG)];
    let acc_done = acc_nl.net_by_name("done").expect("done net");
    let acc_ret = acc_nl.net_by_name("ret_q").expect("ret net");
    let engines: [(&str, Option<EngineCfg>); 4] = [
        ("hashmap (pre-dense)", None),
        ("scalar-full", Some(EngineCfg { packed: false, event: false, jobs, grain: None })),
        ("scalar-event", Some(EngineCfg { packed: false, event: true, jobs, grain: None })),
        ("packed-event", Some(EngineCfg { packed: true, event: true, jobs, grain: None })),
    ];
    let mut workload = Table::new(&["engine", "cycles", "ret", "settle_ops", "trace"]);
    let mut wall = Table::new(&["scenario", "engine", "wall_ms", "kcycles_s", "speedup_vs_hashmap"]);
    let mut reference: Option<EngineRun> = None;
    let mut expected: Option<(u64, u64)> = None;
    let mut base_secs = 0.0f64;
    for (name, cfg) in &engines {
        let (cycles, ret, settle_ops, trace, secs) = match cfg {
            None => {
                let (cycles, ret, secs) = run_hashmap(acc_nl, &acc_pokes, acc_done, acc_ret, E11_REPS);
                base_secs = secs;
                (cycles, ret, "-".to_string(), "-".to_string(), secs)
            }
            Some(cfg) => {
                let run = run_dense(acc_nl, &acc_pokes, acc_done, acc_ret, cfg, E11_REPS);
                let row = (run.cycles, run.ret, run.settle_ops.to_string(), run.secs);
                let verdict = match &reference {
                    None => {
                        reference = Some(run);
                        "reference"
                    }
                    Some(r) => {
                        assert_eq!(r.trace, run.trace, "{name}: trace must be byte-identical");
                        "identical"
                    }
                };
                (row.0, row.1, row.2, verdict.to_string(), row.3)
            }
        };
        match expected {
            None => expected = Some((cycles, ret)),
            Some((ec, er)) => {
                assert_eq!(ec, cycles, "{name}: cycle count must agree");
                assert_eq!(er, ret, "{name}: return value must agree");
            }
        }
        let kcps = (u64::from(E11_REPS) * cycles) as f64 / secs / 1e3;
        workload.row(cells![name, cycles, ret, settle_ops, trace]);
        wall.row(cells![
            "acc-single",
            name,
            format!("{:.1}", secs * 1e3),
            format!("{kcps:.0}"),
            format!("{:.2}", base_secs / secs),
        ]);
        timing_lines.push_str(&format!(
            "[e16b acc({E11_ARG}) x{E11_REPS} {name} completed in {:.1} ms — {kcps:.0} kcycles/s, {:.2}x vs hashmap]\n",
            secs * 1e3,
            base_secs / secs,
        ));
    }
    assert!(reference.is_some(), "dense engines ran");

    // E16c: the tiled SoC fabric — all tiles active, then one active tile
    // (the localized-activity scenario the event+packed engines target).
    let soc_done = soc_nl.net_by_name("u0_done").expect("tile 0 done net");
    let soc_ret = soc_nl.net_by_name("u0_ret_q").expect("tile 0 ret net");
    let mut soc = Table::new(&["scenario", "engine", "cycles", "ret", "settle_ops", "trace"]);
    let mut gate_speedup = 0.0f64;
    for (scenario, all) in [("all-active", true), ("one-active", false)] {
        let pokes = soc_pokes(SOC_COPIES, all);
        let soc_engines: [(&str, Option<EngineCfg>); 3] = [
            ("hashmap (pre-dense)", None),
            ("scalar-full", Some(EngineCfg { packed: false, event: false, jobs, grain: None })),
            ("packed-event", Some(EngineCfg { packed: true, event: true, jobs, grain: None })),
        ];
        let mut reference: Option<EngineRun> = None;
        let mut expected: Option<(u64, u64)> = None;
        let mut base_secs = 0.0f64;
        for (name, cfg) in &soc_engines {
            let (cycles, ret, settle_ops, trace, secs) = match cfg {
                None => {
                    let (cycles, ret, secs) = run_hashmap(&soc_nl, &pokes, soc_done, soc_ret, 1);
                    base_secs = secs;
                    (cycles, ret, "-".to_string(), "-".to_string(), secs)
                }
                Some(cfg) => {
                    let run = run_dense(&soc_nl, &pokes, soc_done, soc_ret, cfg, 1);
                    let row = (run.cycles, run.ret, run.settle_ops.to_string(), run.secs);
                    let verdict = match &reference {
                        None => {
                            reference = Some(run);
                            "reference"
                        }
                        Some(r) => {
                            assert_eq!(r.trace, run.trace, "{scenario}/{name}: identical traces");
                            "identical"
                        }
                    };
                    (row.0, row.1, row.2, verdict.to_string(), row.3)
                }
            };
            match expected {
                None => expected = Some((cycles, ret)),
                Some((ec, er)) => {
                    assert_eq!(ec, cycles, "{scenario}/{name}: cycle count must agree");
                    assert_eq!(er, ret, "{scenario}/{name}: return value must agree");
                }
            }
            let speedup = base_secs / secs;
            let kcps = cycles as f64 / secs / 1e3;
            soc.row(cells![scenario, name, cycles, ret, settle_ops, trace]);
            wall.row(cells![
                format!("soc-{scenario}"),
                name,
                format!("{:.1}", secs * 1e3),
                format!("{kcps:.0}"),
                format!("{speedup:.2}"),
            ]);
            timing_lines.push_str(&format!(
                "[e16c {scenario} {name} completed in {:.1} ms — {kcps:.0} kcycles/s, {speedup:.2}x vs hashmap]\n",
                secs * 1e3,
            ));
            if !all && *name == "packed-event" {
                gate_speedup = speedup;
            }
        }
    }
    // The headline perf gate. Wall-clock, so release builds only — debug
    // runs the same workload for equivalence without timing claims.
    if !cfg!(debug_assertions) {
        assert!(
            gate_speedup >= 10.0,
            "one-active packed-event must be >= 10x the hashmap baseline, got {gate_speedup:.2}x"
        );
    }

    // E16d: force the partitioned path (grain 1) and sweep worker counts;
    // the fabric state, trace, and counters must checksum identically.
    let mut detm = Table::new(&[
        "jobs", "cycles", "settle_ops", "parallel_ops", "parallel_passes", "state_fnv", "verdict",
    ]);
    let pokes = soc_pokes(SOC_COPIES, true);
    let detm_cycles = 150u64;
    let mut reference: Option<(u64, EngineRun)> = None;
    for sweep_jobs in [1usize, 2, 4] {
        let mut sim = Simulator::new_with_packing(&soc_nl, true).expect("valid netlist");
        sim.set_event_driven(true);
        sim.set_settle_jobs(sweep_jobs);
        sim.set_partition_grain(1);
        sim.enable_trace(&[soc_done, soc_ret]);
        for (name, value) in &pokes {
            sim.poke(name, *value).expect("argument net exists");
        }
        for _ in 0..detm_cycles {
            sim.step().expect("step");
        }
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for (id, _) in soc_nl.nets() {
            fnv_u64(&mut hash, sim.peek_net(id));
        }
        let run = EngineRun {
            cycles: detm_cycles,
            ret: sim.peek_net(soc_ret),
            settle_ops: sim.settle_ops(),
            parallel_ops: sim.settle_parallel_ops(),
            parallel_passes: sim.settle_parallel_passes(),
            trace: sim.take_trace().expect("trace enabled").render(&soc_nl),
            secs: 0.0,
        };
        for byte in run.trace.as_bytes() {
            fnv_u64(&mut hash, u64::from(*byte));
        }
        fnv_u64(&mut hash, run.settle_ops);
        fnv_u64(&mut hash, run.parallel_ops);
        assert!(run.parallel_passes > 0, "grain 1 must engage the partitioned path");
        let verdict = match &reference {
            None => "reference",
            Some((ref_hash, ref_run)) => {
                assert_eq!(*ref_hash, hash, "jobs {sweep_jobs}: state checksum must match");
                assert_eq!(ref_run.trace, run.trace, "jobs {sweep_jobs}: identical traces");
                assert_eq!(ref_run.settle_ops, run.settle_ops, "jobs {sweep_jobs}: same op count");
                assert_eq!(
                    ref_run.parallel_ops, run.parallel_ops,
                    "jobs {sweep_jobs}: same partitioned op count"
                );
                "identical"
            }
        };
        detm.row(cells![
            sweep_jobs,
            detm_cycles,
            run.settle_ops,
            run.parallel_ops,
            run.parallel_passes,
            format!("{hash:016x}"),
            verdict,
        ]);
        if reference.is_none() {
            reference = Some((hash, run));
        }
    }

    // Export the packed/partition counters so trace consumers see lane
    // occupancy and partition structure alongside the E13 activity factor.
    {
        let mut sim = Simulator::new_with_packing(&soc_nl, true).expect("valid netlist");
        sim.set_settle_jobs(jobs);
        sim.poke("u0_arg_n", 64).expect("u0_arg_n exists");
        while sim.peek_net(soc_done) != 1 {
            sim.step().expect("step");
        }
        sim.obs_export(obs, "rtl-par");
    }

    let text = format!(
        "E16a: compiled settle-program structure (word-packing + partition plan)\n{}\n\
         E16b: E11 sim workload acc({E11_ARG}) x{E11_REPS} — four engines, equivalence asserted\n{}\n\
         E16c: SoC fabric acc x{SOC_COPIES} (arg {SOC_ARG}) — dense engines vs hashmap baseline\n{}\n\
         E16d: partitioned settle determinism at grain 1 (state+trace+counter FNV)\n{}\n{}",
        structure.render(),
        workload.render(),
        soc.render(),
        detm.render(),
        timing_lines,
    );
    ExperimentOutput::new(text)
        .with("e16a", "settle program structure", structure)
        .with("e16b", "acc workload engines", workload)
        .with("e16c", "tiled SoC engines", soc)
        .with("e16d", "partitioned determinism sweep", detm)
        .with("e16_wall", "engine wall-clock (non-deterministic)", wall)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiled_fabric_packs_and_partitions() {
        let design = HlsFlow::new().unroll_limit(0).compile(ACC_SRC).expect("acc");
        let nl = design.netlist().tiled(8);
        let sim = Simulator::new_with_packing(&nl, true).expect("sim");
        assert!(sim.packed_lanes() >= 8, "8 tiles share identical 1-bit forms");
        assert!(sim.settle_words() < sim.settle_program_len());
    }

    #[test]
    fn engines_agree_on_small_fabric() {
        let design = HlsFlow::new().unroll_limit(0).compile(ACC_SRC).expect("acc");
        let nl = design.netlist().tiled(4);
        let done = nl.net_by_name("u0_done").expect("done");
        let ret = nl.net_by_name("u0_ret_q").expect("ret");
        let pokes = vec![("u0_arg_n".to_string(), 40u64), ("u2_arg_n".to_string(), 17u64)];
        let full = run_dense(
            &nl,
            &pokes,
            done,
            ret,
            &EngineCfg { packed: false, event: false, jobs: 1, grain: None },
            1,
        );
        let packed = run_dense(
            &nl,
            &pokes,
            done,
            ret,
            &EngineCfg { packed: true, event: true, jobs: 4, grain: Some(1) },
            1,
        );
        let (h_cycles, h_ret, _) = run_hashmap(&nl, &pokes, done, ret, 1);
        assert_eq!(full.cycles, packed.cycles);
        assert_eq!(full.cycles, h_cycles);
        assert_eq!(full.ret, packed.ret);
        assert_eq!(full.ret, h_ret);
        assert_eq!(full.trace, packed.trace);
        assert!(packed.parallel_passes > 0, "grain 1 engages partitioning");
    }
}
