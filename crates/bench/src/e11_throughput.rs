//! E11 — Throughput baseline: wall-clock of the heavy engines, serial vs
//! parallel at 1/2/4 workers, and the dense-state RTL simulator measured
//! against the `HashMap`-keyed implementation it replaced.
//!
//! Timings are wall-clock on the build host and vary run to run; the
//! structural facts the tables also record — bit-identical output across
//! worker counts, simulator state agreement cycle-by-cycle, multi-start
//! placement never worse than single-start — are asserted, not just
//! printed. `BENCH_hermes.json` is regenerated from this experiment.

use crate::cells;
use crate::kernels::suite;
use crate::table::Table;
use crate::ExperimentOutput;
use hermes_fpga::device::DeviceProfile;
use hermes_fpga::place::{Effort, Placer};
use hermes_fpga::synth::Synthesizer;
use hermes_hls::HlsFlow;
use hermes_rtl::netlist::{CellId, CellOp, Netlist, NetId};
use hermes_rtl::sim::Simulator;
use hermes_rtl::{mask, sign_extend};
use std::collections::HashMap;
use std::time::Instant;

/// The pre-optimization netlist simulator, kept verbatim (minus tracing)
/// as the measurement baseline: `HashMap`-keyed sequential state and a
/// full cell-table walk with per-cycle allocations in every step.
/// Public so E16 can measure the same baseline on scaled workloads.
pub struct BaselineSimulator<'n> {
    netlist: &'n Netlist,
    values: Vec<u64>,
    reg_state: HashMap<CellId, u64>,
    ram_state: HashMap<CellId, Vec<u64>>,
    order: Vec<CellId>,
}

impl<'n> BaselineSimulator<'n> {
    /// Build and settle (baseline counterpart of [`Simulator::new`]).
    pub fn new(netlist: &'n Netlist) -> Self {
        let order = netlist.combinational_order().expect("validated netlist");
        let mut reg_state = HashMap::new();
        let mut ram_state = HashMap::new();
        for (cid, cell) in netlist.cells() {
            match &cell.op {
                CellOp::Register { .. } => {
                    reg_state.insert(cid, 0);
                }
                CellOp::RamTdp { depth, init } => {
                    let mut mem = init.clone();
                    mem.resize(*depth as usize, 0);
                    ram_state.insert(cid, mem);
                }
                _ => {}
            }
        }
        let mut sim = BaselineSimulator {
            netlist,
            values: vec![0; netlist.net_count()],
            reg_state,
            ram_state,
            order,
        };
        sim.settle();
        sim
    }

    /// Drive a primary input by name and re-settle.
    pub fn poke(&mut self, name: &str, value: u64) {
        let id = self.netlist.net_by_name(name).expect("input exists");
        self.values[id.0 as usize] = mask(value, self.netlist.net(id).width);
        self.settle();
    }

    /// Read a net's settled value.
    pub fn peek_net(&self, id: NetId) -> u64 {
        self.values[id.0 as usize]
    }

    /// Advance one clock cycle.
    pub fn step(&mut self) {
        let mut next_regs: Vec<(CellId, u64)> = Vec::new();
        let mut ram_writes: Vec<(CellId, Vec<(usize, u64)>)> = Vec::new();
        let mut ram_reads: Vec<(CellId, u64, u64)> = Vec::new();
        for (cid, cell) in self.netlist.cells() {
            match &cell.op {
                CellOp::Register { has_enable, .. } => {
                    let d = self.values[cell.inputs[0].0 as usize];
                    let load = if *has_enable {
                        self.values[cell.inputs[1].0 as usize] & 1 == 1
                    } else {
                        true
                    };
                    if load {
                        let w = self.netlist.net(cell.outputs[0]).width;
                        next_regs.push((cid, mask(d, w)));
                    }
                }
                CellOp::RamTdp { depth, .. } => {
                    let depth = *depth as usize;
                    let addr_a = self.values[cell.inputs[0].0 as usize] as usize % depth.max(1);
                    let wd_a = self.values[cell.inputs[1].0 as usize];
                    let we_a = self.values[cell.inputs[2].0 as usize] & 1 == 1;
                    let addr_b = self.values[cell.inputs[3].0 as usize] as usize % depth.max(1);
                    let wd_b = self.values[cell.inputs[4].0 as usize];
                    let we_b = self.values[cell.inputs[5].0 as usize] & 1 == 1;
                    let mem = &self.ram_state[&cid];
                    ram_reads.push((cid, mem[addr_a], mem[addr_b]));
                    let mut writes = Vec::new();
                    if we_a {
                        writes.push((addr_a, wd_a));
                    }
                    if we_b {
                        writes.push((addr_b, wd_b));
                    }
                    if !writes.is_empty() {
                        ram_writes.push((cid, writes));
                    }
                }
                _ => {}
            }
        }
        for (cid, v) in next_regs {
            self.reg_state.insert(cid, v);
        }
        for (cid, writes) in ram_writes {
            let w = self.netlist.net(self.netlist.cell(cid).outputs[0]).width;
            let mem = self.ram_state.get_mut(&cid).expect("ram state exists");
            for (addr, val) in writes {
                mem[addr] = mask(val, w);
            }
        }
        for (cid, ra, rb) in ram_reads {
            let cell = self.netlist.cell(cid);
            self.values[cell.outputs[0].0 as usize] = ra;
            self.values[cell.outputs[1].0 as usize] = rb;
        }
        self.settle();
    }

    fn settle(&mut self) {
        for (cid, cell) in self.netlist.cells() {
            if let CellOp::Register { .. } = cell.op {
                self.values[cell.outputs[0].0 as usize] = self.reg_state[&cid];
            }
        }
        for &cid in &self.order {
            let cell = self.netlist.cell(cid);
            let get = |i: usize| self.values[cell.inputs[i].0 as usize];
            let out_net = cell.outputs[0];
            let ow = self.netlist.net(out_net).width;
            let iw = cell
                .inputs
                .first()
                .map(|&n| self.netlist.net(n).width)
                .unwrap_or(ow);
            let v = match &cell.op {
                CellOp::Add => get(0).wrapping_add(get(1)),
                CellOp::Sub => get(0).wrapping_sub(get(1)),
                CellOp::Mul => get(0).wrapping_mul(get(1)),
                CellOp::Div => get(0).checked_div(get(1)).unwrap_or(u64::MAX),
                CellOp::Mod => {
                    let d = get(1);
                    if d == 0 {
                        get(0)
                    } else {
                        get(0) % d
                    }
                }
                CellOp::And => get(0) & get(1),
                CellOp::Or => get(0) | get(1),
                CellOp::Xor => get(0) ^ get(1),
                CellOp::Not => !get(0),
                CellOp::Shl => get(0) << get(1).min(63),
                CellOp::ShrL => get(0) >> get(1).min(63),
                CellOp::ShrA => (sign_extend(get(0), iw) >> get(1).min(63)) as u64,
                CellOp::Cmp(c) => {
                    let w = self.netlist.net(cell.inputs[0]).width;
                    c.apply(get(0), get(1), w) as u64
                }
                CellOp::Mux => {
                    if get(0) & 1 == 1 {
                        get(2)
                    } else {
                        get(1)
                    }
                }
                CellOp::Const { value } => *value,
                CellOp::Slice { lo, hi } => {
                    let width = hi - lo + 1;
                    mask(get(0) >> lo, width)
                }
                CellOp::ZeroExtend => get(0),
                CellOp::SignExtend => {
                    let w = self.netlist.net(cell.inputs[0]).width;
                    sign_extend(get(0), w) as u64
                }
                CellOp::Register { .. } | CellOp::RamTdp { .. } => continue,
            };
            self.values[out_net.0 as usize] = mask(v, ow);
        }
    }
}

const SIM_SOURCE: &str =
    "int acc(int n) { int s = 0; for (int i = 0; i < n; i += 1) { s += i * i; } return s; }";

/// Run the accumulation netlist to `done` on both simulator generations,
/// asserting identical cycle counts and return values; returns
/// `(cycles, baseline_secs, dense_secs)`. The last dense run exports its
/// settle/cycle counters into `obs` under the `rtl` subsystem.
fn bench_rtl_sim(n: u64, reps: u32, obs: &hermes_obs::Recorder) -> (u64, f64, f64) {
    let design = HlsFlow::new()
        .unroll_limit(0)
        .compile(SIM_SOURCE)
        .expect("acc compiles");
    let nl = design.netlist();
    let done = nl.net_by_name("done").expect("done net");
    let ret = nl.net_by_name("ret_q").expect("ret net");
    let budget = 64 + n * 8;

    let mut base_cycles = 0u64;
    let mut base_ret = 0u64;
    let start = Instant::now();
    for _ in 0..reps {
        let mut sim = BaselineSimulator::new(nl);
        sim.poke("arg_n", n);
        let mut cycles = 0u64;
        while sim.peek_net(done) != 1 {
            sim.step();
            cycles += 1;
            assert!(cycles < budget, "baseline sim never finished");
        }
        base_cycles = cycles;
        base_ret = sim.peek_net(ret);
    }
    let base_secs = start.elapsed().as_secs_f64();

    let mut dense_cycles = 0u64;
    let mut dense_ret = 0u64;
    let mut last_sim = None;
    let start = Instant::now();
    for _ in 0..reps {
        let mut sim = Simulator::new(nl).expect("valid netlist");
        sim.poke("arg_n", n).expect("arg_n exists");
        let mut cycles = 0u64;
        while sim.peek_net(done) != 1 {
            sim.step().expect("step");
            cycles += 1;
            assert!(cycles < budget, "dense sim never finished");
        }
        dense_cycles = cycles;
        dense_ret = sim.peek_net(ret);
        last_sim = Some(sim);
    }
    let dense_secs = start.elapsed().as_secs_f64();
    if let Some(sim) = &last_sim {
        sim.obs_export(obs, "rtl");
    }

    assert_eq!(base_cycles, dense_cycles, "cycle counts must agree");
    assert_eq!(base_ret, dense_ret, "return values must agree");
    (dense_cycles * u64::from(reps), base_secs, dense_secs)
}

/// Run E11 and render its tables.
pub fn run() -> ExperimentOutput {
    run_traced(&hermes_obs::Recorder::disabled())
}

/// Run E11 with a flight recorder (RTL simulator counters under `rtl`).
pub fn run_traced(obs: &hermes_obs::Recorder) -> ExperimentOutput {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut host = Table::new(&["metric", "value"]);
    host.row(cells!["host cores available", cores]);
    host.row(cells!["default worker count (HERMES_JOBS)", hermes_par::jobs()]);

    // dense-state simulator vs the HashMap baseline it replaced
    let (cycles, base_secs, dense_secs) = bench_rtl_sim(2_000, 6, obs);
    let mut sim = Table::new(&["simulator", "cycles", "wall_ms", "kcycles/s", "speedup"]);
    for (name, secs) in [("hashmap (pre-opt)", base_secs), ("dense-vec (current)", dense_secs)] {
        sim.row(cells![
            name,
            cycles,
            format!("{:.1}", secs * 1e3),
            format!("{:.0}", cycles as f64 / secs / 1e3),
            format!("{:.2}x", base_secs / secs),
        ]);
    }

    // parallel engines at 1/2/4 workers; output must be bit-identical
    type Engine = (&'static str, fn(usize) -> ExperimentOutput);
    let engines: &[Engine] = &[
        ("HLS->FPGA flow suite (E2)", crate::e2_fpga_flow::run_with_jobs),
        ("chaos campaigns (E10)", crate::e10_chaos::run_with_jobs),
    ];
    let mut par = Table::new(&["engine", "jobs", "wall_ms", "speedup", "identical"]);
    for (name, runner) in engines {
        let mut serial_ms = 0.0;
        let mut serial_text = String::new();
        for jobs in [1usize, 2, 4] {
            let start = Instant::now();
            let out = runner(jobs);
            let ms = start.elapsed().as_secs_f64() * 1e3;
            if jobs == 1 {
                serial_ms = ms;
                serial_text = out.text.clone();
            }
            assert_eq!(out.text, serial_text, "{name} diverged at jobs={jobs}");
            par.row(cells![
                name,
                jobs,
                format!("{ms:.0}"),
                format!("{:.2}x", serial_ms / ms),
                "yes",
            ]);
        }
    }

    // multi-start placement: quality and cost vs the single anneal
    let hls = HlsFlow::new().unroll_limit(0);
    let design = suite().remove(3).compile(&hls); // fir
    let device = DeviceProfile::ng_medium_like();
    let synth = Synthesizer::new(device.clone())
        .synthesize(design.netlist())
        .expect("fir synthesizes");
    let placer = Placer::new(device, Effort::Low, 0xC0FFEE);
    let mut place = Table::new(&["starts", "jobs", "wall_ms", "best_hpwl", "vs_single"]);
    let start = Instant::now();
    let single = placer.place(&synth.prim).expect("places");
    let single_ms = start.elapsed().as_secs_f64() * 1e3;
    place.row(cells![1, 1, format!("{single_ms:.0}"), format!("{:.0}", single.hpwl), "1.000"]);
    let mut last_hpwl: Option<f64> = None;
    for jobs in [1usize, 4] {
        let start = Instant::now();
        let multi = placer.place_multi(&synth.prim, 4, jobs).expect("places");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        assert!(multi.hpwl <= single.hpwl, "best-of-4 can never be worse");
        if let Some(prev) = last_hpwl {
            assert!((multi.hpwl - prev).abs() < f64::EPSILON, "jobs must not change the result");
        }
        last_hpwl = Some(multi.hpwl);
        place.row(cells![
            4,
            jobs,
            format!("{ms:.0}"),
            format!("{:.0}", multi.hpwl),
            format!("{:.3}", multi.hpwl / single.hpwl),
        ]);
    }

    let text = format!(
        "E11a: build-host parallel capacity\n{}\n\
         E11b: RTL simulator throughput, acc(2000) x6 ({} cycles total)\n{}\n\
         E11c: parallel engines, serial vs 2 and 4 workers (bit-identical output asserted)\n{}\n\
         E11d: multi-start placement (fir), best-of-4 vs single anneal\n{}",
        host.render(),
        cycles,
        sim.render(),
        par.render(),
        place.render(),
    );
    ExperimentOutput::new(text)
        .with("e11a", "host parallel capacity", host)
        .with("e11b", "RTL simulator throughput", sim)
        .with("e11c", "parallel engine scaling", par)
        .with("e11d", "multi-start placement", place)
}

#[cfg(test)]
mod tests {
    #[test]
    fn baseline_and_dense_sims_agree() {
        // equivalence (cycles and return value) is asserted inside
        let (cycles, _, _) = super::bench_rtl_sim(64, 1, &hermes_obs::Recorder::disabled());
        assert!(cycles > 64, "loop actually ran");
    }
}
