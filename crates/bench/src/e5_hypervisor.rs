//! E5 — Hypervisor time-and-space-partitioning guarantees (Fig. 4,
//! Section III).
//!
//! (a) Slot-activation regularity of a victim partition while co-resident
//! partitions behave, crash continuously, or hammer shared memory from
//! another core; (b) hypercall service cost; (c) 1→4 core throughput
//! scaling of a parallel partition (the "enabling parallel computing"
//! claim).

use crate::cells;
use crate::table::Table;
use crate::ExperimentOutput;
use hermes_cpu::memmap::layout;
use hermes_xng::config::{MemRegion, PartitionConfig, Plan, Slot, XngConfig};
use hermes_xng::hypervisor::Hypervisor;
use hermes_xng::partition::native_task;
use hermes_xng::PartitionId;

fn victim_with_coresident(scenario: &str, obs: &hermes_obs::Recorder) -> (u64, u64, u64) {
    let mut cfg = XngConfig::new("e5");
    let victim = cfg.add_partition(PartitionConfig::new("victim"));
    let other = cfg.add_partition(PartitionConfig::new("other").with_memory(MemRegion {
        base: layout::SRAM_BASE,
        size: 0x1000,
        writable: true,
    }));
    cfg.set_plan(0, Plan::new(vec![Slot::new(victim, 5_000), Slot::new(other, 5_000)]));
    let mut hv = Hypervisor::new(cfg).expect("config");
    hv.set_obs(obs.clone());
    hv.attach_native(victim, native_task("victim", |c| {
        c.consume(1_000);
        Ok(())
    }))
    .expect("attach");
    match scenario {
        "well-behaved" => {
            hv.attach_native(other, native_task("calm", |c| {
                c.consume(1_000);
                Ok(())
            }))
            .expect("attach");
        }
        "crashing" => {
            hv.attach_native(other, native_task("crash", |_| Err("boom".into())))
                .expect("attach");
        }
        "mpu-attacker" => {
            let attack = hermes_cpu::isa::assemble(&format!(
                "lui r1, {hi}\nsw r0, (r1)\nhalt",
                hi = layout::DDR_BASE >> 16
            ))
            .expect("asm");
            hv.attach_guest(other, layout::SRAM_BASE, vec![(layout::SRAM_BASE, attack)])
                .expect("attach");
        }
        _ => unreachable!(),
    }
    hv.run(120_000).expect("run");
    let vs = hv.stats(victim);
    let os = hv.stats(other);
    (vs.activations, vs.max_start_jitter, os.restarts)
}

fn hypercall_cost(obs: &hermes_obs::Recorder) -> (u64, u64) {
    // a guest that spins on GetSystemTime hypercalls
    let mut cfg = XngConfig::new("hc");
    let g = cfg.add_partition(PartitionConfig::new("g").with_memory(MemRegion {
        base: layout::SRAM_BASE,
        size: 0x1000,
        writable: true,
    }));
    cfg.set_plan(0, Plan::new(vec![Slot::new(g, 20_000)]));
    let mut hv = Hypervisor::new(cfg).expect("config");
    hv.set_obs(obs.clone());
    let prog = hermes_cpu::isa::assemble(
        "loop:\n  ecall 0x02\n  jal r0, loop",
    )
    .expect("asm");
    hv.attach_guest(g, layout::SRAM_BASE, vec![(layout::SRAM_BASE, prog)])
        .expect("attach");
    hv.run(101_000).expect("run");
    let s = hv.stats(g);
    (s.hypercalls, s.cpu_cycles / s.hypercalls.max(1))
}

fn core_scaling(cores: usize) -> u64 {
    let mut cfg = XngConfig::new("scale");
    let p = cfg.add_partition(PartitionConfig::new("worker"));
    for core in 0..cores {
        cfg.set_plan(core, Plan::new(vec![Slot::new(p, 10_000)]));
    }
    let mut hv = Hypervisor::new(cfg).expect("config");
    hv.attach_native(p, native_task("worker", |c| {
        c.consume(9_000);
        Ok(())
    }))
    .expect("attach");
    hv.run(100_000).expect("run");
    hv.stats(p).cpu_cycles
}

/// Guest throughput on core 0 while `hammers` other cores run
/// bus-hammering guests: returns instructions retired by the victim in a
/// fixed wall-clock window.
fn shared_bus_interference(hammers: usize) -> u64 {
    let mut cfg = XngConfig::new("bus");
    let sram = |i: u32| MemRegion {
        base: layout::SRAM_BASE + i * 0x2000,
        size: 0x2000,
        writable: true,
    };
    // the victim runs on core 3 — the lowest-priority requester at the
    // modelled interconnect — while hammers occupy cores 0..hammers
    let victim = cfg.add_partition(PartitionConfig::new("victim").with_memory(sram(0)));
    cfg.set_plan(3, Plan::new(vec![Slot::new(victim, 30_000)]));
    let mut others = Vec::new();
    for h in 0..hammers {
        let p = cfg.add_partition(
            PartitionConfig::new(format!("hammer{h}")).with_memory(sram(h as u32 + 1)),
        );
        cfg.set_plan(h, Plan::new(vec![Slot::new(p, 30_000)]));
        others.push(p);
    }
    let mut hv = Hypervisor::new(cfg).expect("config");
    // every guest loops on loads from its own SRAM window (shared bus)
    let worker = |base: u32| {
        hermes_cpu::isa::assemble(&format!(
            "lui r1, {hi}
ori r1, r1, {lo}
loop:
lw r2, (r1)
addi r3, r3, 1
jal r0, loop",
            hi = base >> 16,
            lo = base & 0xFFFF,
        ))
        .expect("asm")
    };
    let base0 = layout::SRAM_BASE;
    hv.attach_guest(victim, base0 + 0x100, vec![(base0 + 0x100, worker(base0))])
        .expect("attach");
    for (h, &p) in others.iter().enumerate() {
        let b = layout::SRAM_BASE + (h as u32 + 1) * 0x2000;
        hv.attach_guest(p, b + 0x100, vec![(b + 0x100, worker(b))])
            .expect("attach");
    }
    // run past the end of the 30k-cycle slot so the vCPU context (and its
    // executed-cycle count) is retired and accounted
    hv.run(35_000).expect("run");
    hv.stats(victim).cpu_cycles
}

/// Run E5 and render its tables.
pub fn run() -> ExperimentOutput {
    run_traced(&hermes_obs::Recorder::disabled())
}

/// Run E5 with a flight recorder attached to the hypervisors of the
/// isolation and hypercall scenarios (context-switch, hypercall, and
/// HM-event traces under the `xng` subsystem).
pub fn run_traced(obs: &hermes_obs::Recorder) -> ExperimentOutput {
    let mut a = Table::new(&["co-resident", "victim_activations", "victim_jitter", "other_restarts"]);
    for scenario in ["well-behaved", "crashing", "mpu-attacker"] {
        let (act, jitter, restarts) = victim_with_coresident(scenario, obs);
        a.row(cells![scenario, act, jitter, restarts]);
    }

    let (calls, per_call) = hypercall_cost(obs);
    let mut b = Table::new(&["metric", "value"]);
    b.row(cells!["hypercalls serviced", calls]);
    b.row(cells!["guest cycles per hypercall round-trip", per_call]);

    let mut c = Table::new(&["cores", "partition_cpu_cycles", "scaling"]);
    let base = core_scaling(1);
    for cores in 1..=4 {
        let cy = core_scaling(cores);
        c.row(cells![cores, cy, format!("{:.2}x", cy as f64 / base as f64)]);
    }

    let mut d = Table::new(&["bus hammers", "victim_cpu_cycles", "relative"]);
    let solo = shared_bus_interference(0);
    for hammers in [0usize, 1, 3] {
        let cy = shared_bus_interference(hammers);
        d.row(cells![
            hammers,
            cy,
            format!("{:.2}", cy as f64 / solo as f64)
        ]);
    }

    let _ = PartitionId(0);
    let text = format!(
        "E5a: victim partition regularity under misbehaving co-residents\n{}\n\
         E5b: hypercall service cost\n{}\n\
         E5c: multicore scaling of one parallel partition\n{}\n\
         E5d: intra-slot shared-bus interference on a guest (time slots are\n\
         guaranteed; shared-interconnect throughput inside a slot is the\n\
         residual interference TSP does not hide)\n{}",
        a.render(),
        b.render(),
        c.render(),
        d.render()
    );
    ExperimentOutput::new(text)
        .with("e5a", "victim regularity", a)
        .with("e5b", "hypercall service cost", b)
        .with("e5c", "multicore scaling", c)
        .with("e5d", "intra-slot interference", d)
}

#[cfg(test)]
mod tests {
    #[test]
    fn e5_victim_unaffected() {
        let out = super::run().text;
        // all three scenarios must report the same victim activation count
        let counts: Vec<&str> = out
            .lines()
            .filter(|l| {
                l.contains("well-behaved") || l.contains("crashing") || l.contains("mpu-attacker")
            })
            .map(|l| l.split_whitespace().nth(1).unwrap())
            .collect();
        assert_eq!(counts.len(), 3);
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "victim schedule must be isolation-invariant: {counts:?}"
        );
        assert!(out.contains("4.00x") || out.contains("3.9"), "4-core scaling:\n{out}");
    }
}
