//! # hermes-bench
//!
//! The experiment harness: one module per experiment of EXPERIMENTS.md
//! (E1–E10), each regenerating the corresponding table. The paper itself is
//! a project report with architecture figures rather than result tables;
//! each experiment therefore reproduces the *measurable claim* behind a
//! figure or section, as mapped in DESIGN.md.
//!
//! Run all experiments:
//!
//! ```sh
//! cargo run --release -p hermes-bench --bin experiments
//! ```
//!
//! or one of them: `cargo run --release -p hermes-bench --bin experiments e5`.

pub mod e1_hls_flow;
pub mod e2_fpga_flow;
pub mod e3_characterization;
pub mod e4_axi;
pub mod e5_hypervisor;
pub mod e6_boot;
pub mod e7_usecases;
pub mod e8_radiation;
pub mod e9_dataflow;
pub mod e10_chaos;
pub mod hdl_check;
pub mod kernels;
pub mod table;

/// One experiment: `(id, title, runner)`.
pub type Experiment = (&'static str, &'static str, fn() -> String);

/// Every experiment.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        ("e1", "HLS flow metrics (Fig. 2)", e1_hls_flow::run as fn() -> String),
        ("e2", "FPGA implementation flow (Fig. 3)", e2_fpga_flow::run),
        ("e3", "Eucalyptus characterization (§II)", e3_characterization::run),
        ("e4", "AXI memory-delay sensitivity (§II)", e4_axi::run),
        ("e5", "Hypervisor TSP guarantees (Fig. 4, §III)", e5_hypervisor::run),
        ("e6", "Boot sequence (Fig. 5, §IV)", e6_boot::run),
        ("e7", "Use-case speedups (§V)", e7_usecases::run),
        ("e8", "Radiation hardening (§I)", e8_radiation::run),
        ("e9", "Dataflow vs monolithic FSM (§II)", e9_dataflow::run),
        ("e10", "Cross-layer chaos campaigns (§III-IV)", e10_chaos::run),
    ]
}
