//! # hermes-bench
//!
//! The experiment harness: one module per experiment of EXPERIMENTS.md
//! (E1–E19), each regenerating the corresponding table. The paper itself is
//! a project report with architecture figures rather than result tables;
//! each experiment therefore reproduces the *measurable claim* behind a
//! figure or section, as mapped in DESIGN.md.
//!
//! Run all experiments:
//!
//! ```sh
//! cargo run --release -p hermes-bench --bin experiments
//! ```
//!
//! or one of them: `cargo run --release -p hermes-bench --bin experiments e5`.
//! Pass `--json <path>` to also write the tables as structured JSON (this
//! is how `BENCH_hermes.json`, the perf trajectory baseline, is produced
//! from E11), and pass `--jobs <n>` (or set `HERMES_JOBS=<n>`) to pin the
//! worker count of the parallel experiments (E1/E2/E3/E7/E10 fan their
//! independent units over `hermes-par`; any worker count renders
//! bit-identical tables).

pub mod e1_hls_flow;
pub mod e2_fpga_flow;
pub mod e3_characterization;
pub mod e4_axi;
pub mod e5_hypervisor;
pub mod e6_boot;
pub mod e7_usecases;
pub mod e8_radiation;
pub mod e9_dataflow;
pub mod e10_chaos;
pub mod e11_throughput;
pub mod e12_observability;
pub mod e13_eventdriven;
pub mod e14_serving;
pub mod e15_isolation;
pub mod e16_wordparallel;
pub mod e17_tracing;
pub mod e18_eventkernel;
pub mod e19_fleet;
pub mod hdl_check;
pub mod json;
pub mod kernels;
pub mod profile_export;
pub mod table;
pub mod trace;

use json::Json;
use table::Table;

/// The result of one experiment run: the rendered text plus the underlying
/// tables for machine-readable output.
#[derive(Debug, Clone, Default)]
pub struct ExperimentOutput {
    /// Human-readable rendering (what EXPERIMENTS.md records).
    pub text: String,
    /// The tables behind the text: `(table id, title, table)`.
    pub tables: Vec<(String, String, Table)>,
}

impl ExperimentOutput {
    /// Output with rendered text and no tables yet.
    pub fn new(text: impl Into<String>) -> Self {
        ExperimentOutput {
            text: text.into(),
            tables: Vec::new(),
        }
    }

    /// Attach a named table (builder-style).
    #[must_use]
    pub fn with(mut self, id: &str, title: &str, table: Table) -> Self {
        self.tables.push((id.to_string(), title.to_string(), table));
        self
    }

    /// The tables as a JSON array.
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.tables
                .iter()
                .map(|(id, title, t)| {
                    Json::obj(vec![
                        ("id", Json::Str(id.clone())),
                        ("title", Json::Str(title.clone())),
                        ("rows", t.to_json()),
                    ])
                })
                .collect(),
        )
    }
}

/// One experiment: `(id, title, runner)`. The runner records spans,
/// events, and metrics into the supplied flight recorder; pass
/// [`hermes_obs::Recorder::disabled`] for an untraced run.
pub type Experiment = (
    &'static str,
    &'static str,
    fn(&hermes_obs::Recorder) -> ExperimentOutput,
);

/// Every experiment.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        (
            "e1",
            "HLS flow metrics (Fig. 2)",
            e1_hls_flow::run_traced as fn(&hermes_obs::Recorder) -> ExperimentOutput,
        ),
        ("e2", "FPGA implementation flow (Fig. 3)", e2_fpga_flow::run_traced),
        ("e3", "Eucalyptus characterization (§II)", e3_characterization::run_traced),
        ("e4", "AXI memory-delay sensitivity (§II)", e4_axi::run_traced),
        ("e5", "Hypervisor TSP guarantees (Fig. 4, §III)", e5_hypervisor::run_traced),
        ("e6", "Boot sequence (Fig. 5, §IV)", e6_boot::run_traced),
        ("e7", "Use-case speedups (§V)", e7_usecases::run_traced),
        ("e8", "Radiation hardening (§I)", e8_radiation::run_traced),
        ("e9", "Dataflow vs monolithic FSM (§II)", e9_dataflow::run_traced),
        ("e10", "Cross-layer chaos campaigns (§III-IV)", e10_chaos::run_traced),
        ("e11", "Throughput: serial vs parallel, hot-path gains", e11_throughput::run_traced),
        ("e12", "Observability overhead (tracing on vs off)", e12_observability::run_traced),
        (
            "e13",
            "Event-driven settle + shared characterization cache",
            e13_eventdriven::run_traced,
        ),
        (
            "e14",
            "Deadline-aware accelerator serving (admission, batching, shedding)",
            e14_serving::run_traced,
        ),
        (
            "e15",
            "Adversarial spatial isolation (zero-silent-leak gate)",
            e15_isolation::run_traced,
        ),
        (
            "e16",
            "Word-parallel bit-packed settle + rank-partitioned parallel simulation",
            e16_wordparallel::run_traced,
        ),
        (
            "e17",
            "Causal tracing, critical-path profiling, SLO burn-rate alerting",
            e17_tracing::run_traced,
        ),
        (
            "e18",
            "Unified event kernel: cross-layer fast-forward (polled-tick reduction)",
            e18_eventkernel::run_traced,
        ),
        (
            "e19",
            "Sharded serving fleet (routing, autoscaling, cross-shard failover)",
            e19_fleet::run_traced,
        ),
    ]
}
