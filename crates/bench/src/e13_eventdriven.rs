//! E13 — Event-driven settle and the shared characterization cache.
//!
//! Two orthogonal hot-path optimizations, measured head-to-head against
//! the code paths they replace (both of which remain selectable at run
//! time, so the comparison is always live):
//!
//! * **Activity-gated settling** (`crates/rtl`): the simulator drains a
//!   dirty worklist in topological-rank order instead of evaluating the
//!   whole compiled settle program every pass. E13a reports the per-kernel
//!   *activity factor* — evaluated ops over the full-evaluation baseline —
//!   and E13b times the E11b acc workload both ways. Equivalence is
//!   asserted in-line: cycle counts, return values, and rendered traces
//!   must be byte-identical between the two settle modes (E13d).
//! * **Shared characterization cache** (`crates/eucalyptus` →
//!   `crates/hls`): a suite of kernel flows characterizes each device
//!   once instead of once per flow. E13c times the E2 flow suite with the
//!   cache bypassed (every flow pays its own sweep — the pre-change
//!   behaviour) and with the cache active, and reports the hit/miss/bypass
//!   counter deltas.
//!
//! Wall-clock columns vary run to run; the structural claims (identical
//! outputs, activity factor in `(0, 1]`, event-driven never evaluates
//! more ops than full settle) are asserted, not just printed.

use crate::cells;
use crate::table::Table;
use crate::ExperimentOutput;
use hermes_hls::HlsFlow;
use hermes_rtl::netlist::NetId;
use hermes_rtl::sim::Simulator;
use std::time::Instant;

/// Argument pokes for one kernel run: `(net name, value)`.
type Pokes = &'static [(&'static str, u64)];

/// Scalar kernels that co-simulate through the raw netlist interface
/// (`arg_*` pokes, `done`/`ret_q` nets): name, C-subset source, pokes.
const KERNELS: &[(&str, &str, Pokes)] = &[
    (
        "acc",
        "int acc(int n) { int s = 0; for (int i = 0; i < n; i += 1) { s += i * i; } return s; }",
        &[("arg_n", 200)],
    ),
    (
        "gcd",
        "int gcd(int a, int b) { while (b != 0) { int t = b; b = a % b; a = t; } return a; }",
        &[("arg_a", 3528), ("arg_b", 3780)],
    ),
    (
        "isqrt",
        "int isqrt(int n) { int r = 0; while ((r + 1) * (r + 1) <= n) { r = r + 1; } return r; }",
        &[("arg_n", 1 << 20)],
    ),
];

/// One co-simulation run to `done` in the requested settle mode.
struct SimRun {
    cycles: u64,
    ret: u64,
    settle_ops: u64,
    settle_passes: u64,
    program_len: usize,
    trace: String,
    secs: f64,
}

fn run_kernel(
    nl: &hermes_rtl::netlist::Netlist,
    pokes: &[(&str, u64)],
    event_driven: bool,
    reps: u32,
) -> SimRun {
    let done = nl.net_by_name("done").expect("done net");
    let ret = nl.net_by_name("ret_q").expect("ret net");
    let traced: Vec<NetId> = vec![done, ret];
    let mut last = None;
    let start = Instant::now();
    for _ in 0..reps {
        let mut sim = Simulator::new(nl).expect("valid netlist");
        sim.set_event_driven(event_driven);
        sim.enable_trace(&traced);
        for &(name, value) in pokes {
            sim.poke(name, value).expect("argument net exists");
        }
        let mut cycles = 0u64;
        while sim.peek_net(done) != 1 {
            sim.step().expect("step");
            cycles += 1;
            assert!(cycles < 1_000_000, "kernel never finished");
        }
        last = Some((cycles, sim.peek_net(ret), sim));
    }
    let secs = start.elapsed().as_secs_f64();
    let (cycles, retv, mut sim) = last.expect("reps >= 1");
    SimRun {
        cycles,
        ret: retv,
        settle_ops: sim.settle_ops(),
        settle_passes: sim.settle_passes(),
        program_len: sim.settle_program_len(),
        trace: sim.take_trace().expect("trace enabled").render(nl),
        secs,
    }
}

/// Run E13 and render its tables.
pub fn run() -> ExperimentOutput {
    run_traced(&hermes_obs::Recorder::disabled())
}

/// Run E13 with a flight recorder (RTL counters under `rtl-event`).
pub fn run_traced(obs: &hermes_obs::Recorder) -> ExperimentOutput {
    // E13a: per-kernel activity factor, event-driven vs full settle.
    let hls = HlsFlow::new().unroll_limit(0);
    let mut act = Table::new(&[
        "kernel", "cycles", "program_ops", "full_ops", "event_ops", "activity", "reduction",
    ]);
    let mut traces = Table::new(&["kernel", "trace_rows", "trace_bytes", "event_vs_full"]);
    for (name, source, pokes) in KERNELS {
        let design = hls.compile(source).unwrap_or_else(|e| panic!("{name}: {e}"));
        let nl = design.netlist();
        let full = run_kernel(nl, pokes, false, 1);
        let event = run_kernel(nl, pokes, true, 1);
        assert_eq!(full.cycles, event.cycles, "{name}: cycle counts must agree");
        assert_eq!(full.ret, event.ret, "{name}: return values must agree");
        assert_eq!(full.trace, event.trace, "{name}: traces must be byte-identical");
        assert_eq!(full.settle_passes, event.settle_passes, "{name}: same pass count");
        assert_eq!(
            full.settle_ops,
            full.settle_passes * full.program_len as u64,
            "{name}: full settle evaluates the whole program each pass"
        );
        assert!(
            event.settle_ops <= full.settle_ops,
            "{name}: event-driven can never evaluate more ops"
        );
        let activity = event.settle_ops as f64 / full.settle_ops as f64;
        assert!(activity > 0.0 && activity <= 1.0, "{name}: activity {activity}");
        act.row(cells![
            name,
            full.cycles,
            full.program_len,
            full.settle_ops,
            event.settle_ops,
            format!("{activity:.3}"),
            format!("{:.2}x", 1.0 / activity),
        ]);
        traces.row(cells![
            name,
            full.trace.lines().count().saturating_sub(1),
            full.trace.len(),
            "identical",
        ]);
    }

    // E13b: the E11b workload (acc(2000) x6) timed in both settle modes.
    let design = hls
        .compile(KERNELS[0].1)
        .expect("acc compiles");
    let nl = design.netlist();
    let pokes: &[(&str, u64)] = &[("arg_n", 2_000)];
    let full = run_kernel(nl, pokes, false, 6);
    let event = run_kernel(nl, pokes, true, 6);
    assert_eq!(full.cycles, event.cycles);
    assert_eq!(full.ret, event.ret);
    assert_eq!(full.trace, event.trace);
    let ops_reduction = full.settle_ops as f64 / event.settle_ops as f64;
    let mut wall = Table::new(&["settle mode", "ops_evaluated", "wall_ms", "kcycles/s", "speedup"]);
    for (mode, r) in [("full (pre-opt)", &full), ("event-driven", &event)] {
        wall.row(cells![
            mode,
            r.settle_ops,
            format!("{:.1}", r.secs * 1e3),
            format!("{:.0}", (r.cycles * 6) as f64 / r.secs / 1e3),
            format!("{:.2}x", full.secs / r.secs),
        ]);
    }
    {
        // export the event-driven counters so E12-style trace consumers
        // see the activity factor (settle_ops vs settle_ops_full)
        let mut sim = Simulator::new(nl).expect("valid netlist");
        sim.poke("arg_n", 64).expect("arg_n exists");
        let done = nl.net_by_name("done").expect("done net");
        while sim.peek_net(done) != 1 {
            sim.step().expect("step");
        }
        sim.obs_export(obs, "rtl-event");
    }

    // E13c: E2 flow suite with the characterization cache bypassed
    // (pre-change behaviour: one sweep per flow) vs shared.
    let jobs = hermes_par::jobs();
    let mut cachet = Table::new(&[
        "mode", "wall_ms", "sweeps_run", "cache_hits", "identical", "speedup",
    ]);
    let s0 = hermes_eucalyptus::cache::stats();
    hermes_eucalyptus::cache::set_bypass(true);
    let start = Instant::now();
    let bypassed = crate::e2_fpga_flow::run_with_jobs(jobs);
    let bypass_ms = start.elapsed().as_secs_f64() * 1e3;
    hermes_eucalyptus::cache::set_bypass(false);
    let s1 = hermes_eucalyptus::cache::stats();
    let start = Instant::now();
    let cached = crate::e2_fpga_flow::run_with_jobs(jobs);
    let cached_ms = start.elapsed().as_secs_f64() * 1e3;
    let s2 = hermes_eucalyptus::cache::stats();
    assert_eq!(
        bypassed.text, cached.text,
        "cache must not change the E2 tables"
    );
    assert!(
        s1.bypasses - s0.bypasses >= 1,
        "bypassed run must have skipped the store"
    );
    cachet.row(cells![
        "bypass (sweep per flow)",
        format!("{bypass_ms:.0}"),
        s1.bypasses - s0.bypasses,
        0,
        "-",
        "1.00x",
    ]);
    cachet.row(cells![
        "shared cache",
        format!("{cached_ms:.0}"),
        s2.misses - s1.misses,
        s2.hits - s1.hits,
        "yes",
        format!("{:.2}x", bypass_ms / cached_ms),
    ]);

    let text = format!(
        "E13a: settle activity factor per kernel (event-driven vs full, equivalence asserted)\n{}\n\
         E13b: E11b workload acc(2000) x6, settle ops reduced {:.1}x\n{}\n\
         E13c: E2 flow suite, characterization sweep per flow vs shared cache ({} workers)\n{}\n\
         E13d: traced output, event-driven vs full settle\n{}",
        act.render(),
        ops_reduction,
        wall.render(),
        jobs,
        cachet.render(),
        traces.render(),
    );
    ExperimentOutput::new(text)
        .with("e13a", "settle activity factor", act)
        .with("e13b", "acc workload settle modes", wall)
        .with("e13c", "characterization cache", cachet)
        .with("e13d", "trace equivalence", traces)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_agree_across_settle_modes() {
        let hls = HlsFlow::new().unroll_limit(0);
        for (name, source, pokes) in KERNELS {
            let design = hls.compile(source).unwrap_or_else(|e| panic!("{name}: {e}"));
            let full = run_kernel(design.netlist(), pokes, false, 1);
            let event = run_kernel(design.netlist(), pokes, true, 1);
            assert_eq!(full.ret, event.ret, "{name}");
            assert_eq!(full.trace, event.trace, "{name}");
            assert!(event.settle_ops < full.settle_ops, "{name}: some gating");
        }
    }

    #[test]
    fn gcd_kernel_computes_gcd() {
        let hls = HlsFlow::new().unroll_limit(0);
        let design = hls.compile(KERNELS[1].1).expect("gcd compiles");
        let run = run_kernel(design.netlist(), KERNELS[1].2, true, 1);
        assert_eq!(run.ret, 252, "gcd(3528, 3780)");
    }
}
