//! E19 — Sharded serving fleet: load-aware routing, histogram-driven
//! autoscaling, cross-shard failover.
//!
//! The fleet engine (`crates/fleet`, DESIGN.md §15) fronts N independent
//! serving shards with a consistent-hash balancer (tenant affinity, a
//! power-of-two-choices fallback under pressure), a deterministic
//! histogram-driven autoscaler (drain-then-kill elasticity), and
//! cross-shard failover for whole-shard kills. E19 drives it at fleet
//! scale — over a million heavy-tailed (bounded-Pareto) arrivals across
//! 512 tenants — and holds it to the single-engine bar: the accounting
//! invariant `served + shed + rejected + balancer_shed == offered` on
//! every row, byte-identical output across `--jobs` and the
//! `HERMES_EVENT_KERNEL` knob.
//!
//! (a) sweeps the shard count at a fixed arrival process (4 shards ≈
//! 170% of capacity, 8 ≈ 85%, 16 ≈ 42%) and reports throughput, tail
//! latency, the shed/reject split, and the routing skew — the
//! consistent-hash ring with 128 vnodes per shard plus the po2c
//! fallback must keep `max/mean` routed per shard under 1.5x.
//! (b) replays an 8-shard point under a shard-kill chaos campaign:
//! every kill evacuates the victim's queued and in-flight work and
//! re-offers it to survivors (counted, never lost), and the victim
//! rejoins the ring after its outage.
//! (c) runs a two-phase burst-then-quiet stream against the autoscaler
//! and requires at least one scale-up under burn and one completed
//! drain-then-kill scale-down in the quiet tail.
//! (d) replays a chaos+scaler point at payload workers 1 vs 4 and with
//! the event kernel forced off, asserting byte-identical renders.

use crate::cells;
use crate::table::Table;
use crate::ExperimentOutput;
use hermes_chaos::plan::{FaultPlan, FaultPlanConfig};
use hermes_fleet::engine::{FleetConfig, FleetEngine, FleetReport};
use hermes_fleet::scaler::ScalerConfig;
use hermes_fleet::workload::{self, FleetWorkloadConfig};
use hermes_serve::engine::ServeConfig;
use hermes_serve::model::AcceleratorModel;

/// Workload seed for the sweep (arrivals, tenants, payloads).
const SEED: u64 = 19;
/// Chaos seed for the shard-kill campaign.
const CHAOS_SEED: u64 = 47;
/// E19a sweep: `(shards, requests)` per point. The totals sum to
/// 1,048,576 requests — the fleet-scale floor this experiment gates.
const SWEEP: [(usize, usize); 3] = [(4, 262_144), (8, 393_216), (16, 393_216)];
/// Tenants in every stream, drawn uniformly (the ring hashes them).
const TENANTS: u16 = 512;
/// Requests in the chaos replay (E19b).
const CHAOS_REQUESTS: usize = 131_072;
/// Requests in the identity replay (E19d).
const IDENTITY_REQUESTS: usize = 32_768;

/// The synthetic fleet accelerator: cheap enough to price a million
/// requests, non-trivial enough that the output checksum depends on
/// every payload word. `svc(k) = 16 + 20k` ticks, so one shard's two
/// instances sustain ~0.091 requests/tick at full batches and the
/// default workload gap (~1.63 ticks mean) saturates ~6.8 shards.
fn fleet_model() -> AcceleratorModel {
    AcceleratorModel::new("fleet-synth", 16, 20, |xs| {
        xs.iter().map(|&x| x.wrapping_mul(3).wrapping_sub(7)).collect()
    })
}

fn fleet_serve_cfg(jobs: usize) -> ServeConfig {
    ServeConfig {
        queue_depth: 64,
        tenant_quota: 24,
        // fleet-scale streams: record 2 permille of traces (identity is
        // unaffected — sampling decides recording, never trace ids)
        trace_sample_permille: 2,
        jobs,
        ..ServeConfig::default()
    }
}

fn fleet_cfg(shards: usize, jobs: usize) -> FleetConfig {
    FleetConfig { shards, serve: fleet_serve_cfg(jobs), ..FleetConfig::default() }
}

fn stream_cfg(requests: usize) -> FleetWorkloadConfig {
    FleetWorkloadConfig { requests, tenants: TENANTS, ..FleetWorkloadConfig::default() }
}

fn run_fleet(
    cfg: FleetConfig,
    arrivals: Vec<hermes_serve::request::Request>,
    plan: Option<FaultPlan>,
    scaler: Option<ScalerConfig>,
    event_kernel: Option<bool>,
    obs: &hermes_obs::Recorder,
) -> FleetReport {
    let mut engine = FleetEngine::new(cfg, fleet_model(), arrivals).with_recorder(obs.child());
    if let Some(plan) = plan {
        engine = engine.with_chaos(plan);
    }
    if let Some(scaler) = scaler {
        engine = engine.with_scaler(scaler);
    }
    if let Some(on) = event_kernel {
        engine = engine.with_event_kernel(on);
    }
    let report = engine.run();
    assert!(report.accounted(), "fleet accounting invariant violated: {report:?}");
    obs.absorb(engine.recorder());
    report
}

/// One chaos+scaler fleet run with the payload worker count and the
/// event-kernel knob explicit (public so the determinism suite can
/// replay it across both knobs).
pub fn identity_run(jobs: usize, event_kernel: bool) -> FleetReport {
    let arrivals = workload::generate(SEED + 4, &stream_cfg(IDENTITY_REQUESTS));
    let span = arrivals.last().expect("stream non-empty").arrival;
    let plan = FaultPlan::generate(
        CHAOS_SEED + 1,
        &FaultPlanConfig::shard_only(span, 3, (span / 16) as u32, 8),
    );
    let scaler = ScalerConfig { eval_interval: 2_000, min_shards: 2, ..ScalerConfig::default() };
    run_fleet(
        fleet_cfg(8, jobs),
        arrivals,
        Some(plan),
        Some(scaler),
        Some(event_kernel),
        &hermes_obs::Recorder::disabled(),
    )
}

/// Run E19 and render its tables.
pub fn run() -> ExperimentOutput {
    run_traced(&hermes_obs::Recorder::disabled())
}

/// Run E19 with a flight recorder (fleet metrics under `fleet`,
/// per-shard serve metrics under `shard<i>/serve`).
pub fn run_traced(obs: &hermes_obs::Recorder) -> ExperimentOutput {
    run_traced_jobs(0, obs)
}

/// Run E19 with every shard's payload pool pinned to `jobs` workers
/// (the determinism suite and the ci.sh jobs gate diff 1 vs 4).
pub fn run_with_jobs(jobs: usize) -> ExperimentOutput {
    run_traced_jobs(jobs, &hermes_obs::Recorder::disabled())
}

/// Run E19 with both the worker count and the recorder explicit.
pub fn run_traced_jobs(jobs: usize, obs: &hermes_obs::Recorder) -> ExperimentOutput {
    // E19a: shard-count sweep over 1,048,576 heavy-tailed arrivals.
    let mut sweep = Table::new(&[
        "shards",
        "offered",
        "served",
        "shed",
        "rejected",
        "balancer_shed",
        "served_per_mtick",
        "p50",
        "p99",
        "po2c",
        "skew_x100",
        "accounted",
    ]);
    let mut points = Vec::new();
    for &(shards, requests) in &SWEEP {
        let arrivals = workload::generate(SEED, &stream_cfg(requests));
        let r = run_fleet(fleet_cfg(shards, jobs), arrivals, None, None, None, obs);
        let throughput = (r.served * 1_000_000).checked_div(r.makespan).unwrap_or(0);
        sweep.row(cells![
            shards,
            r.offered,
            r.served,
            r.shed,
            r.rejected,
            r.balancer_shed,
            throughput,
            r.p50_latency,
            r.p99_latency,
            r.routed_po2c,
            r.skew_x100(),
            if r.accounted() { "yes" } else { "NO" },
        ]);
        assert_eq!(r.offered, requests as u64, "the whole stream reaches the balancer");
        assert_eq!(r.balancer_shed, 0, "a healthy ring routes everything");
        assert!(r.served > 0, "every point serves");
        assert!(
            r.skew_x100() <= 150,
            "consistent hashing + po2c must spread load: skew {} at {} shards ({:?})",
            r.skew_x100(),
            shards,
            r.routed
        );
        points.push(r);
    }
    let total_offered: u64 = points.iter().map(|r| r.offered).sum();
    assert!(total_offered >= 1_000_000, "fleet-scale floor: {total_offered} offered");
    let permille =
        |r: &FleetReport| r.served * 1_000 / r.offered.max(1);
    assert!(
        permille(&points[0]) < permille(&points[1]) && permille(&points[1]) <= permille(&points[2]),
        "served fraction must grow with shard count: {:?}",
        points.iter().map(permille).collect::<Vec<_>>()
    );
    assert!(
        points[0].shed + points[0].rejected > points[2].shed + points[2].rejected,
        "an overloaded 4-shard fleet sheds more than an underloaded 16-shard one"
    );
    assert!(
        points[2].p99_latency <= points[1].p99_latency,
        "tail latency must not grow with headroom: p99 {} at 16 vs {} at 8",
        points[2].p99_latency,
        points[1].p99_latency
    );

    // E19b: shard-kill chaos at 8 shards — failover re-routes, loses
    // nothing, and the victims rejoin the ring.
    let arrivals = workload::generate(SEED + 2, &stream_cfg(CHAOS_REQUESTS));
    let span = arrivals.last().expect("stream non-empty").arrival;
    let clean = run_fleet(fleet_cfg(8, jobs), arrivals.clone(), None, None, None, obs);
    let plan = FaultPlan::generate(
        CHAOS_SEED,
        &FaultPlanConfig::shard_only(span, 8, (span / 16) as u32, 8),
    );
    let chaos = run_fleet(fleet_cfg(8, jobs), arrivals, Some(plan), None, None, obs);
    assert_eq!(chaos.shard_kills, 8, "all scheduled kills applied");
    assert!(chaos.failover_rerouted > 0, "kills landed on live work: {chaos:?}");
    assert!(chaos.revives > 0, "outages end within the run: {chaos:?}");
    assert_eq!(chaos.balancer_shed, 0, "survivors absorbed every evacuation");
    let mut chaos_t = Table::new(&[
        "campaign",
        "offered",
        "served",
        "shed",
        "rejected",
        "rerouted",
        "requeued",
        "kills",
        "revives",
        "accounted",
    ]);
    for (name, r) in [("clean @8 shards", &clean), ("chaos @8 shards", &chaos)] {
        chaos_t.row(cells![
            name,
            r.offered,
            r.served,
            r.shed,
            r.rejected,
            r.failover_rerouted,
            r.requeued,
            r.shard_kills,
            r.revives,
            if r.accounted() { "yes" } else { "NO" },
        ]);
    }

    // E19c: a hard burst (≈13x two shards' capacity) then a long sparse
    // tail; the autoscaler must grow under burn and drain when quiet.
    let burst = FleetWorkloadConfig {
        requests: 24_576,
        tenants: TENANTS,
        gap_scale_x256: 16,
        gap_cap_x256: 4_096,
        ..FleetWorkloadConfig::default()
    };
    let mut arrivals = workload::generate(SEED + 3, &burst);
    let burst_end = arrivals.last().expect("burst non-empty").arrival;
    let tail = FleetWorkloadConfig {
        requests: 120,
        tenants: TENANTS,
        // constant 900-tick gaps: cap == scale collapses the Pareto draw
        gap_scale_x256: 900 * 256,
        gap_cap_x256: 900 * 256,
        first_id: burst.requests as u64,
        start: burst_end + 1_000,
        ..FleetWorkloadConfig::default()
    };
    arrivals.extend(workload::generate(SEED + 3, &tail));
    let scaler = ScalerConfig {
        eval_interval: 500,
        p99_slo: 2_500,
        min_window: 32,
        queue_high: 24,
        up_consecutive: 2,
        down_consecutive: 3,
        cooldown_evals: 1,
        min_shards: 2,
        max_shards: 6,
        ..ScalerConfig::default()
    };
    let elastic = run_fleet(fleet_cfg(2, jobs), arrivals, None, Some(scaler), None, obs);
    assert!(elastic.scale_ups >= 1, "burn must scale up: {elastic:?}");
    assert!(elastic.scale_downs >= 1, "the quiet tail must drain-then-kill: {elastic:?}");
    assert!(
        elastic.shard_reports.len() >= 3,
        "scale-up spawned shards: {}",
        elastic.shard_reports.len()
    );
    let grown_served: u64 = elastic.shard_reports[2..].iter().map(|r| r.served).sum();
    assert!(grown_served > 0, "grown shards actually took load: {elastic:?}");
    let mut scale_t = Table::new(&[
        "phase_stream",
        "offered",
        "served",
        "shed",
        "rejected",
        "shards_spawned",
        "scale_ups",
        "scale_downs",
        "grown_served",
        "accounted",
    ]);
    scale_t.row(cells![
        "burst+tail",
        elastic.offered,
        elastic.served,
        elastic.shed,
        elastic.rejected,
        elastic.shard_reports.len(),
        elastic.scale_ups,
        elastic.scale_downs,
        grown_served,
        if elastic.accounted() { "yes" } else { "NO" },
    ]);

    // E19d: workers and the event kernel are throughput knobs, never
    // results knobs — chaos + scaler replayed across both.
    let r1 = identity_run(1, true);
    let r4 = identity_run(4, true);
    let r_off = identity_run(1, false);
    assert_eq!(r1, r4, "reports must be identical across jobs");
    assert_eq!(r1.render(), r4.render(), "renders must be byte-identical across jobs");
    assert_eq!(r1, r_off, "reports must be identical across the kernel knob");
    assert_eq!(r1.render(), r_off.render(), "renders must be byte-identical across the knob");
    let mut ident_t = Table::new(&["variant", "served", "p99", "checksum", "identical"]);
    for (variant, r) in [("jobs=1", &r1), ("jobs=4", &r4), ("kernel=off", &r_off)] {
        ident_t.row(cells![
            variant,
            r.served,
            r.p99_latency,
            format!("{:#018x}", r.output_checksum),
            "yes",
        ]);
    }

    let text = format!(
        "E19a: shard-count sweep, {} heavy-tailed requests total over {} tenants \
         (synthetic model: per-item {} + overhead {} ticks; skew gate <= 150)\n{}\n\
         E19b: shard-kill chaos at 8 shards ({} requests; kills evacuate and re-route, \
         nothing lost)\n{}\n\
         E19c: burst-then-quiet autoscale (eval every {} ticks, drain-then-kill)\n{}\n\
         E19d: payload workers 1 vs 4 and event kernel off, byte-identical reports\n{}",
        total_offered,
        TENANTS,
        fleet_model().per_item,
        fleet_model().batch_overhead,
        sweep.render(),
        CHAOS_REQUESTS,
        chaos_t.render(),
        500,
        scale_t.render(),
        ident_t.render(),
    );
    ExperimentOutput::new(text)
        .with("e19a", "fleet shard-count sweep", sweep)
        .with("e19b", "fleet shard-kill failover", chaos_t)
        .with("e19c", "fleet autoscale burst/quiet", scale_t)
        .with("e19d", "fleet jobs/kernel invariance", ident_t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_points_account_and_spread() {
        let obs = hermes_obs::Recorder::disabled();
        let arrivals = workload::generate(SEED, &stream_cfg(8_192));
        let r = run_fleet(fleet_cfg(4, 0), arrivals, None, None, None, &obs);
        assert!(r.accounted());
        assert!(r.served > 0);
        assert!(r.routed.iter().all(|&n| n > 0), "every shard took load: {:?}", r.routed);
    }

    #[test]
    fn chaos_point_stays_accounted_and_reroutes() {
        let obs = hermes_obs::Recorder::disabled();
        let arrivals = workload::generate(SEED + 2, &stream_cfg(8_192));
        let span = arrivals.last().unwrap().arrival;
        let plan = FaultPlan::generate(
            CHAOS_SEED,
            &FaultPlanConfig::shard_only(span, 4, (span / 8) as u32, 8),
        );
        let r = run_fleet(fleet_cfg(8, 0), arrivals, Some(plan), None, None, &obs);
        assert!(r.accounted());
        assert_eq!(r.shard_kills, 4);
        assert!(r.failover_rerouted > 0);
    }
}
