//! Structural sanity checks over the HDL the suite kernels generate —
//! a lightweight lint standing in for an external simulator/synthesis run
//! (which the offline environment does not provide).

/// Count occurrences of a word token.
fn count(text: &str, word: &str) -> usize {
    text.match_indices(word).count()
}

/// Check a Verilog module for basic structural health.
pub fn lint_verilog(text: &str) -> Result<(), String> {
    if count(text, "module ") != count(text, "endmodule") {
        return Err("module/endmodule imbalance".into());
    }
    let opens = text.matches('(').count();
    let closes = text.matches(')').count();
    if opens != closes {
        return Err(format!("paren imbalance: {opens} vs {closes}"));
    }
    if count(text, "begin") != count(text, "end\n") + count(text, "end ") {
        // `endmodule` contains `end`; compare begins against standalone ends
    }
    if !text.contains("input wire clk") {
        return Err("missing clock port".into());
    }
    Ok(())
}

/// Check a VHDL entity/architecture pair.
pub fn lint_vhdl(text: &str) -> Result<(), String> {
    if count(text, "entity ") < 1 || !text.contains("end entity") {
        return Err("entity not closed".into());
    }
    if !text.contains("architecture rtl of") || !text.contains("end architecture rtl;") {
        return Err("architecture not closed".into());
    }
    if !count(text, "process").is_multiple_of(2) {
        return Err("process/end process imbalance".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::suite;
    use hermes_hls::HlsFlow;

    #[test]
    fn all_suite_kernels_emit_healthy_hdl() {
        let flow = HlsFlow::new().unroll_limit(0);
        for k in suite() {
            let d = k.compile(&flow);
            let top = d.name().to_string();
            let v = d.emit_verilog();
            lint_verilog(&v).unwrap_or_else(|e| panic!("{} verilog: {e}", k.name));
            assert!(v.contains(&format!("module {top}")));
            let h = d.emit_vhdl();
            lint_vhdl(&h).unwrap_or_else(|e| panic!("{} vhdl: {e}", k.name));
            assert!(h.contains(&format!("entity {top} is")));
            // the AXI wrapper also emits and mentions every array param
            let wrapper =
                hermes_hls::interface::emit_wrapper_verilog(&d.interface_spec());
            assert!(wrapper.contains(&format!("module {top}_axi_top")));
        }
    }

    #[test]
    fn lints_catch_breakage() {
        assert!(lint_verilog("module x (\ninput wire clk\n);").is_err());
        assert!(lint_verilog("module x (); endmodule").is_err(), "no clk");
        assert!(lint_vhdl("entity x is end entity x;").is_err());
    }
}
