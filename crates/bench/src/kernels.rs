//! The shared kernel suite: every use-case kernel with a standard stimulus
//! set, so E1/E2/E7 measure the same designs.

use hermes_apps::image::{CONV3_SOURCE, HISTOGRAM_SOURCE, SOBEL_SOURCE};
use hermes_apps::sdr::{CORRELATE_SOURCE, DFT_POWER_SOURCE, FIR_SOURCE};
use hermes_apps::vbn::CENTROID_SOURCE;
use hermes_apps::ai::MLP_SOURCE;
use hermes_apps::TestDataGen;
use hermes_hls::ir::ArrayId;
use hermes_hls::simulate::{ExternalMemory, SimResult};
use hermes_hls::{Design, HlsFlow};

/// One suite kernel: source plus a standard stimulus.
pub struct Kernel {
    /// Kernel name.
    pub name: &'static str,
    /// C-subset source.
    pub source: &'static str,
    /// Scalar arguments of the standard stimulus.
    pub args: Vec<i64>,
    /// External array buffers of the standard stimulus (by array id).
    pub buffers: Vec<(ArrayId, Vec<i64>)>,
}

impl Kernel {
    /// Compile with the given flow.
    ///
    /// # Panics
    ///
    /// Panics on compile failure (suite kernels are known-good).
    pub fn compile(&self, flow: &HlsFlow) -> Design {
        flow.compile(self.source)
            .unwrap_or_else(|e| panic!("{}: {e}", self.name))
    }

    /// Compile with the given flow, tracing per-stage spans into `obs`.
    ///
    /// # Panics
    ///
    /// Panics on compile failure (suite kernels are known-good).
    pub fn compile_traced(&self, flow: &HlsFlow, obs: &hermes_obs::Recorder) -> Design {
        flow.compile_traced(self.source, obs)
            .unwrap_or_else(|e| panic!("{}: {e}", self.name))
    }

    /// Run the standard stimulus.
    ///
    /// # Panics
    ///
    /// Panics on simulation failure.
    pub fn simulate(&self, design: &Design) -> SimResult {
        let mut ext = ExternalMemory::buffers(self.buffers.clone());
        design
            .simulate_with_memory(&self.args, &mut ext)
            .unwrap_or_else(|e| panic!("{}: {e}", self.name))
    }
}

/// The standard suite (image, vision, SDR, AI kernels of Section V).
pub fn suite() -> Vec<Kernel> {
    let (w, h) = (16usize, 12usize);
    let frame = hermes_apps::image::star_field(w, h, 5, 99);
    let mut g = TestDataGen::new(31);
    let fir_n = 32usize;
    let taps = hermes_apps::sdr::boxcar_taps(8);
    let fir_x = g.vec_signed(fir_n + taps.len() - 1, 2000);
    let pattern = vec![1i64, -1, 1, 1, -1, 1, -1, -1];
    let signal = hermes_apps::sdr::embed_pattern(64, &pattern, 17, 400, 5);
    let (inputs, hidden, outputs) = (6usize, 8usize, 3usize);
    let (w1, b1, w2, b2) = hermes_apps::ai::synth_weights(inputs, hidden, outputs, 17);
    let x = TestDataGen::new(3).vec_below(inputs, 256);
    vec![
        Kernel {
            name: "sobel",
            source: SOBEL_SOURCE,
            args: vec![w as i64, h as i64],
            buffers: vec![(ArrayId(0), frame.clone()), (ArrayId(1), vec![0; w * h])],
        },
        Kernel {
            name: "conv3",
            source: CONV3_SOURCE,
            args: vec![w as i64, h as i64],
            buffers: vec![
                (ArrayId(0), frame.clone()),
                (ArrayId(1), vec![0; w * h]),
                (ArrayId(2), vec![1, 2, 1, 2, 4, 2, 1, 2, 1]),
            ],
        },
        Kernel {
            name: "histogram",
            source: HISTOGRAM_SOURCE,
            args: vec![(w * h) as i64],
            buffers: vec![(ArrayId(0), frame.clone()), (ArrayId(1), vec![0; 256])],
        },
        Kernel {
            name: "fir",
            source: FIR_SOURCE,
            args: vec![fir_n as i64, taps.len() as i64],
            buffers: vec![
                (ArrayId(0), fir_x),
                (ArrayId(1), taps),
                (ArrayId(2), vec![0; fir_n]),
            ],
        },
        Kernel {
            name: "correlate",
            source: CORRELATE_SOURCE,
            args: vec![signal.len() as i64, pattern.len() as i64],
            buffers: vec![
                (ArrayId(0), signal),
                (ArrayId(1), pattern),
                (ArrayId(2), vec![0; 2]),
            ],
        },
        Kernel {
            name: "dft",
            source: DFT_POWER_SOURCE,
            args: {
                let (n, bins) = (16i64, 8i64);
                vec![n, bins]
            },
            buffers: {
                let (n, bins) = (16usize, 8usize);
                let x = hermes_apps::sdr::tone(n, 3, 1000);
                let (cos_t, sin_t) = hermes_apps::sdr::dft_tables(n, bins);
                vec![
                    (ArrayId(0), x),
                    (ArrayId(1), cos_t),
                    (ArrayId(2), sin_t),
                    (ArrayId(3), vec![0; bins]),
                ]
            },
        },
        Kernel {
            name: "centroid",
            source: CENTROID_SOURCE,
            args: vec![w as i64, h as i64, 50],
            buffers: vec![(ArrayId(0), frame), (ArrayId(1), vec![0; 3])],
        },
        Kernel {
            name: "mlp",
            source: MLP_SOURCE,
            args: vec![inputs as i64, hidden as i64, outputs as i64],
            buffers: vec![
                (ArrayId(0), x),
                (ArrayId(1), w1),
                (ArrayId(2), b1),
                (ArrayId(3), w2),
                (ArrayId(4), b2),
                (ArrayId(5), vec![0; outputs]),
            ],
        },
    ]
}
