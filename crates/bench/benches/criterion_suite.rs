//! Criterion micro-benchmarks of the ecosystem's hot paths — one group per
//! experiment family, so `cargo bench --workspace` exercises the same code
//! the E1–E9 tables report on.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hermes_axi::memory::MemoryTiming;
use hermes_axi::testbench::AxiTestbench;
use hermes_boot::bl1::{Bl1, BootSource};
use hermes_boot::flash::{FlashImageBuilder, RedundancyMode};
use hermes_boot::loadlist::LoadList;
use hermes_cpu::cluster::Cluster;
use hermes_cpu::isa::assemble;
use hermes_cpu::memmap::layout;
use hermes_fpga::device::DeviceProfile;
use hermes_fpga::flow::{FlowOptions, NxFlow};
use hermes_hls::HlsFlow;
use hermes_rad::campaign::{Campaign, Protection};
use hermes_rad::edac;
use hermes_rtl::sim::Simulator;
use hermes_xng::config::{PartitionConfig, Plan, Slot, XngConfig};
use hermes_xng::hypervisor::Hypervisor;
use hermes_xng::partition::native_task;

const FIR: &str = hermes_apps::sdr::FIR_SOURCE;

fn bench_hls(c: &mut Criterion) {
    let flow = HlsFlow::new().unroll_limit(0);
    c.bench_function("e1_hls_compile_fir", |b| {
        b.iter(|| flow.compile(FIR).expect("compiles"))
    });
    let design = flow
        .compile("int gcd(int a, int b) { while (b != 0) { int t = b; b = a % b; a = t; } return a; }")
        .expect("compiles");
    c.bench_function("e1_hls_simulate_gcd", |b| {
        b.iter(|| design.simulate(&[123456, 7890]).expect("simulates"))
    });
}

fn bench_fpga(c: &mut Criterion) {
    let flow = HlsFlow::new().unroll_limit(0);
    let design = flow.compile(FIR).expect("compiles");
    let device = DeviceProfile::ng_medium_like();
    c.bench_function("e2_fpga_flow_fir", |b| {
        b.iter(|| {
            NxFlow::new(
                device.clone(),
                FlowOptions {
                    effort: hermes_fpga::place::Effort::Zero,
                    ..FlowOptions::default()
                },
            )
            .run(design.netlist())
            .expect("implements")
        })
    });
    let netlist = design.netlist();
    c.bench_function("e1_rtl_simulate_100_cycles", |b| {
        b.iter_batched(
            || Simulator::new(netlist).expect("valid netlist"),
            |mut sim| sim.run(100).expect("runs"),
            BatchSize::SmallInput,
        )
    });
}

fn bench_axi(c: &mut Criterion) {
    c.bench_function("e4_axi_read_4k", |b| {
        b.iter_batched(
            || AxiTestbench::new(16 * 1024, MemoryTiming::default()),
            |mut tb| tb.read_blocking(0, 4096).expect("reads"),
            BatchSize::SmallInput,
        )
    });
}

fn bench_cpu_and_xng(c: &mut Criterion) {
    let prog = assemble(
        "addi r1, r0, 2000\nloop:\naddi r1, r1, -1\nbne r1, r0, loop\nhalt",
    )
    .expect("asm");
    c.bench_function("e5_cpu_run_6k_instructions", |b| {
        b.iter_batched(
            || {
                let mut cl = Cluster::new();
                cl.load_program(0, layout::SRAM_BASE, &prog).expect("load");
                cl.start_core(0, layout::SRAM_BASE);
                cl
            },
            |mut cl| cl.run(10_000).expect("runs"),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("e5_hypervisor_10k_cycles", |b| {
        b.iter_batched(
            || {
                let mut cfg = XngConfig::new("bench");
                let a = cfg.add_partition(PartitionConfig::new("a"));
                let z = cfg.add_partition(PartitionConfig::new("b"));
                cfg.set_plan(0, Plan::new(vec![Slot::new(a, 1000), Slot::new(z, 1000)]));
                let mut hv = Hypervisor::new(cfg).expect("config");
                hv.attach_native(a, native_task("a", |c| {
                    c.consume(100);
                    Ok(())
                }))
                .expect("attach");
                hv.attach_native(z, native_task("b", |c| {
                    c.consume(100);
                    Ok(())
                }))
                .expect("attach");
                hv
            },
            |mut hv| hv.run(10_000).expect("runs"),
            BatchSize::SmallInput,
        )
    });
}

fn bench_boot_and_rad(c: &mut Criterion) {
    c.bench_function("e6_full_flash_boot", |b| {
        b.iter_batched(
            || {
                let app = assemble("addi r1, r0, 1\nhalt").expect("asm");
                let mut builder = FlashImageBuilder::new();
                let e = builder.add_software(layout::DDR_BASE, layout::DDR_BASE, &app);
                builder.build(&LoadList { entries: vec![e] }, RedundancyMode::Tmr)
            },
            |flash| Bl1::new(BootSource::Flash(flash)).boot().expect("boots"),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("e8_edac_encode_decode", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for v in 0..64u32 {
                acc ^= edac::encode(v.wrapping_mul(0x9E37_79B9));
            }
            acc
        })
    });
    c.bench_function("e8_tmr_campaign_256w", |b| {
        b.iter(|| {
            Campaign::new(256, 1)
                .upsets(100)
                .scrub_interval(Some(1000))
                .run(Protection::Tmr)
        })
    });
}

fn bench_characterization_and_dataflow(c: &mut Criterion) {
    c.bench_function("e3_characterize_adder_sweep", |b| {
        b.iter(|| {
            hermes_eucalyptus::Eucalyptus::new(DeviceProfile::ng_medium_like())
                .with_kinds(vec![hermes_rtl::component::ComponentKind::Adder])
                .characterize(&hermes_eucalyptus::SweepConfig {
                    widths: vec![8, 16, 32],
                    pipeline_stages: vec![0, 1],
                })
                .expect("characterizes")
        })
    });
    c.bench_function("e9_dataflow_synthesis_6_flows", |b| {
        use hermes_hls::dataflow::{synthesize_dataflow, synthesize_monolithic, Task, TaskGraph};
        b.iter(|| {
            let mut g = TaskGraph::new();
            for i in 0..6 {
                let a = g.add_task(Task {
                    name: format!("p{i}"),
                    states: 12,
                    latency: 100,
                });
                let z = g.add_task(Task {
                    name: format!("c{i}"),
                    states: 12,
                    latency: 100,
                });
                g.connect(a, z, 4);
            }
            (
                synthesize_monolithic(&g, 200),
                synthesize_dataflow(&g, 200),
            )
        })
    });
    c.bench_function("e7_usecase_sobel_cosim", |b| {
        let flow = HlsFlow::new().unroll_limit(0);
        let design = flow
            .compile(hermes_apps::image::SOBEL_SOURCE)
            .expect("compiles");
        let (w, h) = (16usize, 12usize);
        let frame = hermes_apps::image::star_field(w, h, 5, 99);
        b.iter(|| {
            let mut ext = hermes_hls::simulate::ExternalMemory::buffers(vec![
                (hermes_hls::ir::ArrayId(0), frame.clone()),
                (hermes_hls::ir::ArrayId(1), vec![0; w * h]),
            ]);
            design
                .simulate_with_memory(&[w as i64, h as i64], &mut ext)
                .expect("simulates")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_hls, bench_fpga, bench_axi, bench_cpu_and_xng, bench_boot_and_rad, bench_characterization_and_dataflow
}
criterion_main!(benches);
