//! Parallel experiments must render bit-identical output at any worker
//! count: every fan-out in the harness merges results in input order, so
//! the worker count is a pure throughput knob, never a results knob.

#[test]
fn e1_parallel_matches_serial() {
    let serial = hermes_bench::e1_hls_flow::run_with_jobs(1).text;
    let parallel = hermes_bench::e1_hls_flow::run_with_jobs(4).text;
    assert_eq!(serial, parallel);
}

#[test]
fn e2_parallel_matches_serial() {
    let serial = hermes_bench::e2_fpga_flow::run_with_jobs(1).text;
    let parallel = hermes_bench::e2_fpga_flow::run_with_jobs(4).text;
    assert_eq!(serial, parallel);
}

#[test]
fn e3_parallel_matches_serial() {
    let serial = hermes_bench::e3_characterization::run_with_jobs(1).text;
    let parallel = hermes_bench::e3_characterization::run_with_jobs(4).text;
    assert_eq!(serial, parallel);
}

#[test]
fn e7_parallel_matches_serial() {
    let serial = hermes_bench::e7_usecases::run_with_jobs(1).text;
    let parallel = hermes_bench::e7_usecases::run_with_jobs(4).text;
    assert_eq!(serial, parallel);
}

#[test]
fn e10_parallel_matches_serial() {
    let serial = hermes_bench::e10_chaos::run_with_jobs(1).text;
    let parallel = hermes_bench::e10_chaos::run_with_jobs(4).text;
    assert_eq!(serial, parallel);
}

/// E16 exercises the rank-partitioned settle engine itself: its tables
/// (engine equivalence verdicts, state checksums) must not move with the
/// worker count, and neither may the perf-gate scenario's cycle counts.
#[test]
fn e16_parallel_matches_serial() {
    let serial = hermes_bench::e16_wordparallel::run_with_jobs(1).text;
    let parallel = hermes_bench::e16_wordparallel::run_with_jobs(4).text;
    let strip = |text: &str| {
        text.lines()
            .filter(|l| !l.contains("completed in"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&serial), strip(&parallel));
}

/// E18's serving leg fans payload work over the worker pool; like every
/// other experiment its tables (tick ledgers, wheel counters, identity
/// verdicts) must not move with the worker count.
#[test]
fn e18_parallel_matches_serial() {
    let serial = hermes_bench::e18_eventkernel::run_with_jobs(1).text;
    let parallel = hermes_bench::e18_eventkernel::run_with_jobs(4).text;
    assert_eq!(serial, parallel);
}

/// E19's fleet fans every shard's payload work over the worker pool; its
/// chaos+scaler replay (the E19d point, public as `identity_run`) must
/// not move with the worker count. The full experiment is additionally
/// diffed at `--jobs 1` vs `--jobs 4` by the ci.sh release-binary gate.
#[test]
fn e19_parallel_matches_serial() {
    let serial = hermes_bench::e19_fleet::identity_run(1, true);
    let parallel = hermes_bench::e19_fleet::identity_run(4, true);
    assert_eq!(serial, parallel, "fleet reports identical across jobs");
    assert_eq!(serial.render(), parallel.render(), "fleet renders byte-identical");
}

/// The fleet steps on the kernel timer wheel; forcing the reference
/// scheduler instead must not move results either.
#[test]
fn e19_event_kernel_knob_never_moves_results() {
    let on = hermes_bench::e19_fleet::identity_run(1, true);
    let off = hermes_bench::e19_fleet::identity_run(1, false);
    assert_eq!(on, off, "fleet reports identical across the knob");
    assert_eq!(on.render(), off.render(), "fleet renders byte-identical");
}

/// The `HERMES_EVENT_KERNEL` knob holds the same contract as the worker
/// count: it moves *when work happens on the host*, never *what the
/// simulation computes*. Replay E18's serving leg (E14-shaped: chaos on
/// the pool) and hypervisor leg (E10-shaped: crashes, restarts, an
/// expiring watchdog) with the kernel forced on and off through the
/// explicit API overrides (no racy env mutation) and require
/// byte-identical outcomes.
#[test]
fn event_kernel_knob_never_moves_results() {
    let (r_off, _) = hermes_bench::e18_eventkernel::serve_run(1, false);
    let (r_on, _) = hermes_bench::e18_eventkernel::serve_run(1, true);
    assert_eq!(r_off, r_on, "serve reports identical across the knob");
    assert_eq!(r_off.render(), r_on.render(), "serve renders byte-identical");

    let off = hermes_bench::e18_eventkernel::xng_run(false);
    let on = hermes_bench::e18_eventkernel::xng_run(true);
    assert_eq!(off.time(), on.time(), "hypervisor clocks agree");
    assert_eq!(off.hm_escalations, on.hm_escalations);
    assert_eq!(off.health().log(), on.health().log(), "HM timeline identical");
}

/// The flight recorder holds the same contract as the tables: a trace
/// taken serial must be bit-identical to one taken 4-wide (the wall
/// channel is off here; ci.sh additionally gates the wall-stripped
/// `--trace` output of the full binary).
#[test]
fn trace_document_matches_across_worker_counts() {
    let doc = |jobs: usize| {
        let obs = hermes_obs::Recorder::new();
        hermes_bench::e1_hls_flow::run_traced_jobs(jobs, &obs);
        hermes_bench::e10_chaos::run_traced_jobs(jobs, &obs);
        hermes_bench::trace::trace_document(&obs).render()
    };
    let serial = doc(1);
    assert_eq!(serial, doc(4));
    assert!(serial.contains("\"schema\": \"hermes-trace/v1\""));
    assert!(serial.contains("\"fault-injected\""));
}
