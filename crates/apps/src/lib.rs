//! # hermes-apps
//!
//! The representative space use cases of Section V of the paper, in two
//! forms each:
//!
//! * a **C-subset kernel** (`*_SOURCE` constants) synthesizable by
//!   `hermes-hls` into an FPGA accelerator, and
//! * a **Rust reference implementation** used as the software baseline
//!   running on the processor subsystem and as the golden model for
//!   HLS co-simulation.
//!
//! Coverage of the paper's use-case list:
//!
//! | Paper use case | Module |
//! |---|---|
//! | image and vision processing | [`image`] (Sobel, convolution, histogram) |
//! | software-defined algorithms | [`sdr`] (FIR filter, correlation) |
//! | artificial intelligence     | [`ai`] (fixed-point MLP inference) |
//! | AOCS (hypervisor use case)  | [`aocs`] (quaternion attitude + PID) |
//! | Visual Based Navigation     | [`vbn`] (centroid extraction) |
//! | Electrical Orbit Raising    | [`eor`] (low-thrust spiral planner) |

pub mod ai;
pub mod aocs;
pub mod eor;
pub mod image;
pub mod sdr;
pub mod vbn;

/// Deterministic pseudo-random test data generator (xorshift64*), kept
/// here so every module and bench draws identical stimuli.
#[derive(Debug, Clone)]
pub struct TestDataGen {
    state: u64,
}

impl TestDataGen {
    /// Seeded generator (seed must be nonzero; 0 is mapped to a constant).
    pub fn new(seed: u64) -> Self {
        TestDataGen {
            state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed },
        }
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }

    /// A vector of `n` values in `[0, bound)` as `i64`.
    pub fn vec_below(&mut self, n: usize, bound: u64) -> Vec<i64> {
        (0..n).map(|_| self.below(bound) as i64).collect()
    }

    /// A vector of `n` signed values in `[-bound, bound)`.
    pub fn vec_signed(&mut self, n: usize, bound: i64) -> Vec<i64> {
        (0..n)
            .map(|_| (self.below(2 * bound as u64) as i64) - bound)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let mut a = TestDataGen::new(5);
        let mut b = TestDataGen::new(5);
        assert_eq!(a.vec_below(10, 256), b.vec_below(10, 256));
    }

    #[test]
    fn bounds_respected() {
        let mut g = TestDataGen::new(1);
        for v in g.vec_below(1000, 100) {
            assert!((0..100).contains(&v));
        }
        for v in g.vec_signed(1000, 50) {
            assert!((-50..50).contains(&v));
        }
    }
}
