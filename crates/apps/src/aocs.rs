//! Attitude and Orbit Control System (hypervisor use case, from SELENE).
//!
//! A fixed-point (Q16) rigid-body attitude model with a PD detumbling and
//! pointing controller — the control-loop partition of the paper's
//! XtratuM evaluation scenario. Runs as a native partition task
//! ([`AocsTask`]) publishing its attitude on a sampling port.

use hermes_xng::partition::{NativeTask, TaskCtx};

/// Fixed-point fractional bits.
pub const Q: u32 = 16;
/// 1.0 in Q16.
pub const ONE: i64 = 1 << Q;

fn mul_q(a: i64, b: i64) -> i64 {
    (a * b) >> Q
}

/// Integer square root (floor) of a non-negative value.
pub fn isqrt(v: i64) -> i64 {
    if v <= 0 {
        return 0;
    }
    let mut x = v;
    let mut y = (x + 1) / 2;
    while y < x {
        x = y;
        y = (x + v / x) / 2;
    }
    x
}

/// Attitude state: a unit quaternion (scalar-first, Q16) and body rates
/// (Q16 rad/s).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AocsState {
    /// Quaternion `[w, x, y, z]` in Q16.
    pub q: [i64; 4],
    /// Body angular rate `[x, y, z]` in Q16 rad/s.
    pub omega: [i64; 3],
}

impl Default for AocsState {
    fn default() -> Self {
        AocsState {
            q: [ONE, 0, 0, 0],
            omega: [0, 0, 0],
        }
    }
}

impl AocsState {
    /// A tumbling initial state with the given Q16 rates.
    pub fn tumbling(omega: [i64; 3]) -> Self {
        AocsState {
            q: [ONE, 0, 0, 0],
            omega,
        }
    }

    /// Quaternion norm squared (Q16).
    fn norm_sq(&self) -> i64 {
        self.q.iter().map(|&c| mul_q(c, c)).sum()
    }

    /// Renormalize the quaternion (first-order).
    fn renormalize(&mut self) {
        let n2 = self.norm_sq();
        // correction factor ~ (3 - n2) / 2 for n2 near 1 (Q16)
        let corr = (3 * ONE - n2) / 2;
        for c in &mut self.q {
            *c = mul_q(*c, corr);
        }
    }

    /// Propagate attitude by `dt` (Q16 seconds): `q̇ = ½ q ⊗ [0, ω]`.
    pub fn propagate(&mut self, dt: i64) {
        let [w, x, y, z] = self.q;
        let [ox, oy, oz] = self.omega;
        let half_dt = dt / 2;
        let dw = mul_q(-(mul_q(x, ox) + mul_q(y, oy) + mul_q(z, oz)), half_dt);
        let dx = mul_q(mul_q(w, ox) + mul_q(y, oz) - mul_q(z, oy), half_dt);
        let dy = mul_q(mul_q(w, oy) - mul_q(x, oz) + mul_q(z, ox), half_dt);
        let dz = mul_q(mul_q(w, oz) + mul_q(x, oy) - mul_q(y, ox), half_dt);
        self.q = [w + dw, x + dx, y + dy, z + dz];
        self.renormalize();
    }

    /// Apply a body torque-induced rate change `dω = τ/I · dt` (Q16, unit
    /// inertia).
    pub fn apply_torque(&mut self, torque: [i64; 3], dt: i64) {
        for (o, t) in self.omega.iter_mut().zip(torque) {
            *o += mul_q(t, dt);
        }
    }

    /// Pointing error: angle proxy `2·|vec(q)|` relative to the identity
    /// attitude, Q16 radians (small-angle).
    pub fn pointing_error(&self) -> i64 {
        let v2: i64 = self.q[1..].iter().map(|&c| mul_q(c, c)).sum();
        2 * isqrt(v2 << Q)
    }

    /// Rate magnitude |ω| in Q16.
    pub fn rate_magnitude(&self) -> i64 {
        let v2: i64 = self.omega.iter().map(|&c| mul_q(c, c)).sum();
        isqrt(v2 << Q)
    }
}

/// PD attitude controller gains (Q16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PdGains {
    /// Proportional gain on the attitude error.
    pub kp: i64,
    /// Derivative gain on the body rate.
    pub kd: i64,
}

impl Default for PdGains {
    fn default() -> Self {
        PdGains {
            kp: ONE / 2,
            kd: 3 * ONE,
        }
    }
}

/// One controller step: returns the commanded torque for the current state
/// (pointing to the identity attitude).
pub fn pd_control(state: &AocsState, gains: PdGains) -> [i64; 3] {
    let mut torque = [0i64; 3];
    for (i, t) in torque.iter_mut().enumerate() {
        // vector part of the error quaternion = q[1..] (target = identity)
        *t = -mul_q(gains.kp, state.q[i + 1]) - mul_q(gains.kd, state.omega[i]);
    }
    torque
}

/// Run the closed loop for `steps` iterations of `dt` and report the final
/// state (used by tests and the benches).
pub fn run_closed_loop(mut state: AocsState, gains: PdGains, dt: i64, steps: u32) -> AocsState {
    for _ in 0..steps {
        let torque = pd_control(&state, gains);
        state.apply_torque(torque, dt);
        state.propagate(dt);
    }
    state
}

/// The AOCS partition task: one control step per activation; publishes the
/// quaternion on the `att` sampling port (if configured) and charges a
/// realistic cycle cost.
pub struct AocsTask {
    /// Current state.
    pub state: AocsState,
    gains: PdGains,
    dt: i64,
    /// Cycles one control step costs on the CPU (measured figure for a
    /// fixed-point PD loop of this size).
    pub cycles_per_step: u64,
    initial: AocsState,
}

impl AocsTask {
    /// A task starting from a tumbling state.
    pub fn new(initial: AocsState) -> Self {
        AocsTask {
            state: initial,
            gains: PdGains::default(),
            dt: ONE / 10, // 100 ms control period
            cycles_per_step: 1_200,
            initial,
        }
    }
}

impl NativeTask for AocsTask {
    fn name(&self) -> &str {
        "aocs"
    }

    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Result<(), String> {
        let torque = pd_control(&self.state, self.gains);
        self.state.apply_torque(torque, self.dt);
        self.state.propagate(self.dt);
        ctx.consume(self.cycles_per_step);
        // publish attitude (ignore absence of the port: standalone runs)
        let mut msg = Vec::with_capacity(32);
        for c in self.state.q {
            msg.extend_from_slice(&(c as i32).to_le_bytes());
        }
        for c in self.state.omega {
            msg.extend_from_slice(&(c as i32).to_le_bytes());
        }
        let _ = ctx.write_port("att", &msg);
        Ok(())
    }

    fn reset(&mut self) {
        self.state = self.initial;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isqrt_exact_squares() {
        for v in [0i64, 1, 4, 9, 100, 65536, 1 << 30] {
            let r = isqrt(v);
            assert!(r * r <= v && (r + 1) * (r + 1) > v, "isqrt({v}) = {r}");
        }
    }

    #[test]
    fn identity_attitude_is_stable() {
        let s = run_closed_loop(AocsState::default(), PdGains::default(), ONE / 10, 100);
        assert_eq!(s.pointing_error(), 0);
        assert_eq!(s.rate_magnitude(), 0);
    }

    #[test]
    fn detumbling_converges() {
        let initial = AocsState::tumbling([ONE / 4, -ONE / 8, ONE / 16]);
        let start_rate = initial.rate_magnitude();
        let s = run_closed_loop(initial, PdGains::default(), ONE / 10, 400);
        assert!(
            s.rate_magnitude() < start_rate / 20,
            "rates should decay: {} -> {}",
            start_rate,
            s.rate_magnitude()
        );
        assert!(
            s.pointing_error() < ONE / 10,
            "pointing error settles: {}",
            s.pointing_error()
        );
    }

    #[test]
    fn quaternion_stays_normalized() {
        let mut s = AocsState::tumbling([ONE / 6, ONE / 7, -ONE / 9]);
        for _ in 0..500 {
            s.propagate(ONE / 20);
            let n2 = s.q.iter().map(|&c| mul_q(c, c)).sum::<i64>();
            assert!(
                (n2 - ONE).abs() < ONE / 16,
                "norm drifted: {n2} vs {ONE}"
            );
        }
    }

    #[test]
    fn uncontrolled_tumble_does_not_converge() {
        let initial = AocsState::tumbling([ONE / 4, 0, 0]);
        let mut s = initial;
        for _ in 0..400 {
            s.propagate(ONE / 10);
        }
        assert_eq!(
            s.rate_magnitude(),
            initial.rate_magnitude(),
            "no controller, no decay"
        );
        assert!(s.pointing_error() > ONE / 4, "attitude drifts");
    }
}
