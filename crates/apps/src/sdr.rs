//! Software-defined (radio) algorithms (HLS use case #2): a direct-form
//! FIR filter and a sliding cross-correlation — the front-end kernels of a
//! software-defined telemetry receiver.

/// FIR filter, C-subset kernel: `y[n] = Σ taps[k] · x[n-k]`, Q15 taps,
/// output shifted right by 15. `x` has `n + ntaps - 1` samples (history
/// prefix included).
pub const FIR_SOURCE: &str = r#"
void fir(int *x, int *taps, int *y, int n, int ntaps) {
    for (int i = 0; i < n; i++) {
        int acc = 0;
        for (int k = 0; k < ntaps; k++) {
            acc += taps[k] * x[i + ntaps - 1 - k];
        }
        y[i] = acc >> 15;
    }
}
"#;

/// Sliding correlation against a known preamble, C-subset kernel: returns
/// the lag of the peak score in `best_lag[0]` and the score in
/// `best_lag[1]`.
pub const CORRELATE_SOURCE: &str = r#"
void correlate(int *signal, int *pattern, int *best_lag, int n, int m) {
    int best = -2147483647;
    int lag = 0;
    for (int s = 0; s + m <= n; s++) {
        int acc = 0;
        for (int k = 0; k < m; k++) {
            acc += signal[s + k] * pattern[k];
        }
        if (acc > best) {
            best = acc;
            lag = s;
        }
    }
    best_lag[0] = lag;
    best_lag[1] = best;
}
"#;

/// Power spectrum by direct DFT, C-subset kernel: `power[k] = re² + im²`
/// with Q14 cosine/sine tables supplied by the host (`cos_t[k*n + t]`,
/// `sin_t[k*n + t]`). Direct form keeps the kernel in the subset; an FFT
/// is algebraically equivalent for these sizes.
pub const DFT_POWER_SOURCE: &str = r#"
void dft_power(int *x, int *cos_t, int *sin_t, int *power, int n, int bins) {
    for (int k = 0; k < bins; k++) {
        int re = 0;
        int im = 0;
        for (int t = 0; t < n; t++) {
            re += x[t] * cos_t[k * n + t];
            im -= x[t] * sin_t[k * n + t];
        }
        re = re >> 14;
        im = im >> 14;
        power[k] = re * re + im * im;
    }
}
"#;

/// Rust reference for [`FIR_SOURCE`].
pub fn fir_ref(x: &[i64], taps: &[i64], n: usize) -> Vec<i64> {
    let ntaps = taps.len();
    (0..n)
        .map(|i| {
            let acc: i64 = (0..ntaps).map(|k| taps[k] * x[i + ntaps - 1 - k]).sum();
            acc >> 15
        })
        .collect()
}

/// Rust reference for [`CORRELATE_SOURCE`].
pub fn correlate_ref(signal: &[i64], pattern: &[i64]) -> (i64, i64) {
    let (n, m) = (signal.len(), pattern.len());
    let mut best = i64::MIN;
    let mut lag = 0i64;
    for s in 0..=(n - m) {
        let acc: i64 = (0..m).map(|k| signal[s + k] * pattern[k]).sum();
        if acc > best {
            best = acc;
            lag = s as i64;
        }
    }
    (lag, best)
}

/// Rust reference for [`DFT_POWER_SOURCE`].
pub fn dft_power_ref(x: &[i64], cos_t: &[i64], sin_t: &[i64], bins: usize) -> Vec<i64> {
    let n = x.len();
    (0..bins)
        .map(|k| {
            let mut re = 0i64;
            let mut im = 0i64;
            for t in 0..n {
                re += x[t] * cos_t[k * n + t];
                im -= x[t] * sin_t[k * n + t];
            }
            re >>= 14;
            im >>= 14;
            re * re + im * im
        })
        .collect()
}

/// Q14 cosine/sine twiddle tables for an `n`-point DFT with `bins` output
/// bins (integer CORDIC-free tables via a recurrence-free evaluation).
pub fn dft_tables(n: usize, bins: usize) -> (Vec<i64>, Vec<i64>) {
    let scale = f64::from(1 << 14);
    let mut cos_t = Vec::with_capacity(bins * n);
    let mut sin_t = Vec::with_capacity(bins * n);
    for k in 0..bins {
        for t in 0..n {
            let phase = 2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
            cos_t.push((phase.cos() * scale).round() as i64);
            sin_t.push((phase.sin() * scale).round() as i64);
        }
    }
    (cos_t, sin_t)
}

/// A sampled Q12 sine wave at `cycles_per_window` cycles over `n` samples.
pub fn tone(n: usize, cycles_per_window: usize, amp: i64) -> Vec<i64> {
    (0..n)
        .map(|t| {
            let phase = 2.0 * std::f64::consts::PI * (cycles_per_window * t) as f64 / n as f64;
            (phase.sin() * amp as f64).round() as i64
        })
        .collect()
}

/// A low-pass FIR prototype (boxcar scaled to Q15) of `ntaps` taps.
pub fn boxcar_taps(ntaps: usize) -> Vec<i64> {
    vec![(1i64 << 15) / ntaps as i64; ntaps]
}

/// Embed `pattern` into a noisy signal at `offset` (BPSK-style ±amp).
pub fn embed_pattern(
    len: usize,
    pattern: &[i64],
    offset: usize,
    amp: i64,
    seed: u64,
) -> Vec<i64> {
    let mut g = crate::TestDataGen::new(seed);
    let mut signal = g.vec_signed(len, amp / 4);
    for (k, &p) in pattern.iter().enumerate() {
        if offset + k < len {
            signal[offset + k] += p * amp;
        }
    }
    signal
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_hls::ir::ArrayId;
    use hermes_hls::simulate::ExternalMemory;
    use hermes_hls::HlsFlow;

    #[test]
    fn fir_hls_matches_reference() {
        let n = 24usize;
        let taps = boxcar_taps(5);
        let mut g = crate::TestDataGen::new(11);
        let x = g.vec_signed(n + taps.len() - 1, 1000);
        let design = HlsFlow::new().unroll_limit(0).compile(FIR_SOURCE).unwrap();
        let mut ext = ExternalMemory::buffers(vec![
            (ArrayId(0), x.clone()),
            (ArrayId(1), taps.clone()),
            (ArrayId(2), vec![0; n]),
        ]);
        design
            .simulate_with_memory(&[n as i64, taps.len() as i64], &mut ext)
            .unwrap();
        assert_eq!(
            ext.buffer(ArrayId(2)).unwrap(),
            &fir_ref(&x, &taps, n)
        );
    }

    #[test]
    fn boxcar_smooths() {
        let taps = boxcar_taps(8);
        // step input: after the transition the output settles near the step
        let mut x = vec![0i64; 7];
        x.extend(vec![32768i64; 24]);
        let y = fir_ref(&x, &taps, 24);
        assert!(y[0] < 32000, "leading edge still rising: {}", y[0]);
        assert!(
            (y[23] - 32760).abs() < 16,
            "settled output near input: {}",
            y[23]
        );
        // monotone rise across the transition
        assert!(y.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn dft_hls_matches_reference_and_finds_tone() {
        let (n, bins) = (16usize, 8usize);
        let x = tone(n, 3, 1000);
        let (cos_t, sin_t) = dft_tables(n, bins);
        let design = HlsFlow::new()
            .unroll_limit(0)
            .compile(DFT_POWER_SOURCE)
            .unwrap();
        let mut ext = ExternalMemory::buffers(vec![
            (ArrayId(0), x.clone()),
            (ArrayId(1), cos_t.clone()),
            (ArrayId(2), sin_t.clone()),
            (ArrayId(3), vec![0; bins]),
        ]);
        design
            .simulate_with_memory(&[n as i64, bins as i64], &mut ext)
            .unwrap();
        let got = ext.buffer(ArrayId(3)).unwrap();
        let want = dft_power_ref(&x, &cos_t, &sin_t, bins);
        assert_eq!(got, &want);
        // bin 3 dominates the spectrum
        let peak = want
            .iter()
            .enumerate()
            .max_by_key(|(_, &p)| p)
            .map(|(k, _)| k)
            .unwrap();
        assert_eq!(peak, 3, "spectrum: {want:?}");
    }

    #[test]
    fn correlate_hls_finds_preamble() {
        let pattern = vec![1i64, -1, 1, 1, -1, 1, -1, -1];
        let signal = embed_pattern(64, &pattern, 23, 500, 3);
        let design = HlsFlow::new()
            .unroll_limit(0)
            .compile(CORRELATE_SOURCE)
            .unwrap();
        let mut ext = ExternalMemory::buffers(vec![
            (ArrayId(0), signal.clone()),
            (ArrayId(1), pattern.clone()),
            (ArrayId(2), vec![0; 2]),
        ]);
        design
            .simulate_with_memory(&[signal.len() as i64, pattern.len() as i64], &mut ext)
            .unwrap();
        let got = ext.buffer(ArrayId(2)).unwrap();
        let (lag, best) = correlate_ref(&signal, &pattern);
        assert_eq!(got[0], lag);
        assert_eq!(got[1], best);
        assert_eq!(lag, 23, "preamble found at the embedded offset");
    }
}
