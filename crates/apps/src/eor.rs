//! Electrical Orbit Raising (hypervisor use case): low-thrust spiral
//! planning and propagation.
//!
//! Models the continuous-thrust circular-orbit-raising problem solved by
//! electric propulsion (the Edelbaum approximation for coplanar transfer):
//! required Δv = v₀ − v₁, transfer time = Δv / a_thrust. The propagator
//! advances orbit radius each control period; [`EorTask`] runs it as a
//! partition publishing progress.

use crate::aocs::isqrt;
use hermes_xng::partition::{NativeTask, TaskCtx};

/// Scaled gravitational parameter: μ in km³/s² for Earth is 398600.4;
/// stored ×1000 for integer math (km³/s² · 1e3).
pub const MU_SCALED: i64 = 398_600_400;

/// Circular orbit velocity in m/s for a radius in km.
pub fn circular_velocity_ms(radius_km: i64) -> i64 {
    // v = sqrt(mu/r): mu_scaled/r gives (km²/s²)·1e3 = m²/s² · 1e-3... work
    // in m²/s²: mu[km³/s²]/r[km] = km²/s² -> ×1e6 = m²/s².
    isqrt(MU_SCALED / radius_km * 1_000_000 / 1_000)
}

/// An Edelbaum-style transfer plan between circular orbits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferPlan {
    /// Start radius, km.
    pub r_start_km: i64,
    /// Target radius, km.
    pub r_target_km: i64,
    /// Total Δv, m/s.
    pub delta_v_ms: i64,
    /// Transfer duration, seconds, at the given thrust acceleration.
    pub duration_s: i64,
}

/// Plan a coplanar low-thrust raise with `accel_um_s2` thrust acceleration
/// in µm/s² (electric thrusters deliver 10–300 µm/s² on comsat-class
/// spacecraft).
///
/// # Panics
///
/// Panics if radii are non-positive or the target is below the start
/// (lowering uses the same Δv but this planner only raises).
pub fn plan_transfer(r_start_km: i64, r_target_km: i64, accel_um_s2: i64) -> TransferPlan {
    assert!(r_start_km > 0 && r_target_km >= r_start_km);
    let v0 = circular_velocity_ms(r_start_km);
    let v1 = circular_velocity_ms(r_target_km);
    let delta_v = v0 - v1; // raising a circular orbit *lowers* velocity
    let duration = if accel_um_s2 > 0 {
        delta_v * 1_000_000 / accel_um_s2
    } else {
        i64::MAX
    };
    TransferPlan {
        r_start_km,
        r_target_km,
        delta_v_ms: delta_v,
        duration_s: duration,
    }
}

/// Orbit-raising propagator state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EorState {
    /// Current orbit radius, km.
    pub radius_km: i64,
    /// Δv expended so far, µm/s (integer accumulator; see
    /// [`EorState::delta_v_spent_ms`]).
    pub delta_v_spent_um: i64,
    /// Elapsed transfer time, s.
    pub elapsed_s: i64,
}

impl EorState {
    /// Start of the transfer.
    pub fn new(r_start_km: i64) -> Self {
        EorState {
            radius_km: r_start_km,
            delta_v_spent_um: 0,
            elapsed_s: 0,
        }
    }

    /// Δv expended so far, m/s.
    pub fn delta_v_spent_ms(&self) -> i64 {
        self.delta_v_spent_um / 1_000_000
    }

    /// Advance the spiral by `dt_s` seconds at `accel_um_s2`: the radius
    /// rate for a slow spiral is `dr/dt = 2 a r / v`.
    pub fn advance(&mut self, plan: &TransferPlan, accel_um_s2: i64, dt_s: i64) {
        if self.radius_km >= plan.r_target_km {
            return;
        }
        let v = circular_velocity_ms(self.radius_km).max(1);
        // dr[km] = 2 * a[µm/s²] * r[km] * dt[s] / v[m/s] / 1e6
        let dr = 2 * accel_um_s2 * self.radius_km / v * dt_s / 1_000_000;
        self.radius_km = (self.radius_km + dr.max(1)).min(plan.r_target_km);
        self.delta_v_spent_um += accel_um_s2 * dt_s;
        self.elapsed_s += dt_s;
    }

    /// Whether the target radius has been reached.
    pub fn arrived(&self, plan: &TransferPlan) -> bool {
        self.radius_km >= plan.r_target_km
    }
}

/// The EOR partition task: one propagation step per activation, publishing
/// `(radius_km, elapsed_s)` on the `orbit` sampling port.
pub struct EorTask {
    /// The plan.
    pub plan: TransferPlan,
    /// Thrust acceleration in µm/s².
    pub accel_um_s2: i64,
    /// Propagation step per activation, seconds.
    pub dt_s: i64,
    /// State.
    pub state: EorState,
    /// Cycles one propagation step costs.
    pub cycles_per_step: u64,
}

impl EorTask {
    /// A GTO→GEO-like raise (24,400 km → 42,164 km) at 100 µm/s².
    pub fn gto_to_geo() -> Self {
        let plan = plan_transfer(24_400, 42_164, 100);
        EorTask {
            plan,
            accel_um_s2: 100,
            dt_s: 3600, // one-hour steps
            state: EorState::new(plan.r_start_km),
            cycles_per_step: 800,
        }
    }
}

impl NativeTask for EorTask {
    fn name(&self) -> &str {
        "eor"
    }

    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Result<(), String> {
        self.state.advance(&self.plan, self.accel_um_s2, self.dt_s);
        ctx.consume(self.cycles_per_step);
        let mut msg = Vec::with_capacity(8);
        msg.extend_from_slice(&(self.state.radius_km as i32).to_le_bytes());
        msg.extend_from_slice(&(self.state.elapsed_s as i32).to_le_bytes());
        let _ = ctx.write_port("orbit", &msg);
        Ok(())
    }

    fn reset(&mut self) {
        self.state = EorState::new(self.plan.r_start_km);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circular_velocities_are_physical() {
        // LEO ~ 7.6 km/s, GEO ~ 3.07 km/s
        let leo = circular_velocity_ms(6_778);
        let geo = circular_velocity_ms(42_164);
        assert!((7_500..7_800).contains(&leo), "LEO v = {leo}");
        assert!((3_000..3_150).contains(&geo), "GEO v = {geo}");
    }

    #[test]
    fn gto_to_geo_plan_is_reasonable() {
        let plan = plan_transfer(24_400, 42_164, 100);
        // Edelbaum circular-to-circular (no inclination): ~ 970 m/s
        assert!(
            (900..1_100).contains(&plan.delta_v_ms),
            "Δv = {} m/s",
            plan.delta_v_ms
        );
        // at 100 µm/s² that's ~112 days
        let days = plan.duration_s / 86_400;
        assert!((90..140).contains(&days), "duration = {days} days");
    }

    #[test]
    fn propagation_reaches_target_monotonically() {
        let plan = plan_transfer(24_400, 42_164, 100);
        let mut s = EorState::new(plan.r_start_km);
        let mut last = s.radius_km;
        let mut steps = 0;
        while !s.arrived(&plan) && steps < 10_000 {
            s.advance(&plan, 100, 3600);
            assert!(s.radius_km >= last, "radius must not decrease");
            last = s.radius_km;
            steps += 1;
        }
        assert!(s.arrived(&plan), "never arrived after {steps} steps");
        assert_eq!(s.radius_km, plan.r_target_km);
        // spent Δv within 2x of plan (spiral losses + integer steps)
        assert!(s.delta_v_spent_ms() >= plan.delta_v_ms / 2);
        assert!(s.delta_v_spent_ms() <= plan.delta_v_ms * 2);
    }

    #[test]
    fn more_thrust_is_faster() {
        let plan_lo = plan_transfer(24_400, 42_164, 50);
        let plan_hi = plan_transfer(24_400, 42_164, 200);
        assert!(plan_hi.duration_s < plan_lo.duration_s / 2);
    }
}
