//! Image and vision processing kernels (HLS use case #1).
//!
//! On-board optical payloads pre-process frames before downlink (the
//! low-bandwidth motivation of the paper's introduction): edge extraction
//! (Sobel), smoothing (3×3 convolution), and statistics (histogram).

/// Sobel edge magnitude, C-subset kernel. `src` and `dst` are row-major
/// `w × h` images; border pixels are zeroed. Magnitude is `|gx| + |gy|`
/// clamped to 255.
pub const SOBEL_SOURCE: &str = r#"
void sobel(int *src, int *dst, int w, int h) {
    for (int y = 0; y < h; y++) {
        for (int x = 0; x < w; x++) {
            if (y == 0 || y == h - 1 || x == 0 || x == w - 1) {
                dst[y * w + x] = 0;
            } else {
                int p00 = src[(y - 1) * w + (x - 1)];
                int p01 = src[(y - 1) * w + x];
                int p02 = src[(y - 1) * w + (x + 1)];
                int p10 = src[y * w + (x - 1)];
                int p12 = src[y * w + (x + 1)];
                int p20 = src[(y + 1) * w + (x - 1)];
                int p21 = src[(y + 1) * w + x];
                int p22 = src[(y + 1) * w + (x + 1)];
                int gx = (p02 + 2 * p12 + p22) - (p00 + 2 * p10 + p20);
                int gy = (p20 + 2 * p21 + p22) - (p00 + 2 * p01 + p02);
                if (gx < 0) gx = 0 - gx;
                if (gy < 0) gy = 0 - gy;
                int mag = gx + gy;
                if (mag > 255) mag = 255;
                dst[y * w + x] = mag;
            }
        }
    }
}
"#;

/// 3×3 convolution with a caller-supplied kernel (q4 fixed point, result
/// shifted right by 4), C-subset kernel.
pub const CONV3_SOURCE: &str = r#"
void conv3(int *src, int *dst, int *kernel, int w, int h) {
    for (int y = 1; y < h - 1; y++) {
        for (int x = 1; x < w - 1; x++) {
            int acc = 0;
            for (int ky = 0; ky < 3; ky++) {
                for (int kx = 0; kx < 3; kx++) {
                    acc += src[(y + ky - 1) * w + (x + kx - 1)] * kernel[ky * 3 + kx];
                }
            }
            acc = acc >> 4;
            if (acc < 0) acc = 0;
            if (acc > 255) acc = 255;
            dst[y * w + x] = acc;
        }
    }
}
"#;

/// 256-bin histogram, C-subset kernel.
pub const HISTOGRAM_SOURCE: &str = r#"
void histogram(int *src, int *bins, int n) {
    for (int i = 0; i < 256; i++) {
        bins[i] = 0;
    }
    for (int i = 0; i < n; i++) {
        int v = src[i] & 255;
        bins[v] += 1;
    }
}
"#;

/// Rust reference for [`SOBEL_SOURCE`].
pub fn sobel_ref(src: &[i64], w: usize, h: usize) -> Vec<i64> {
    let mut dst = vec![0i64; w * h];
    for y in 1..h.saturating_sub(1) {
        for x in 1..w.saturating_sub(1) {
            let p = |dy: isize, dx: isize| {
                src[(y as isize + dy) as usize * w + (x as isize + dx) as usize]
            };
            let gx = (p(-1, 1) + 2 * p(0, 1) + p(1, 1)) - (p(-1, -1) + 2 * p(0, -1) + p(1, -1));
            let gy = (p(1, -1) + 2 * p(1, 0) + p(1, 1)) - (p(-1, -1) + 2 * p(-1, 0) + p(-1, 1));
            dst[y * w + x] = (gx.abs() + gy.abs()).min(255);
        }
    }
    dst
}

/// Rust reference for [`CONV3_SOURCE`].
pub fn conv3_ref(src: &[i64], kernel: &[i64; 9], w: usize, h: usize) -> Vec<i64> {
    let mut dst = vec![0i64; w * h];
    for y in 1..h - 1 {
        for x in 1..w - 1 {
            let mut acc = 0i64;
            for ky in 0..3 {
                for kx in 0..3 {
                    acc += src[(y + ky - 1) * w + (x + kx - 1)] * kernel[ky * 3 + kx];
                }
            }
            dst[y * w + x] = (acc >> 4).clamp(0, 255);
        }
    }
    dst
}

/// Rust reference for [`HISTOGRAM_SOURCE`].
pub fn histogram_ref(src: &[i64]) -> Vec<i64> {
    let mut bins = vec![0i64; 256];
    for &v in src {
        bins[(v & 255) as usize] += 1;
    }
    bins
}

/// Generate a synthetic star-field test frame: dark background, a handful
/// of bright gaussian-ish blobs (deterministic).
pub fn star_field(w: usize, h: usize, stars: usize, seed: u64) -> Vec<i64> {
    let mut gen = crate::TestDataGen::new(seed);
    let mut img = vec![8i64; w * h]; // dark noise floor
    for px in img.iter_mut() {
        *px += (gen.below(8)) as i64;
    }
    for _ in 0..stars {
        let cx = gen.below(w as u64) as isize;
        let cy = gen.below(h as u64) as isize;
        let peak = 150 + gen.below(100) as i64;
        for dy in -2isize..=2 {
            for dx in -2isize..=2 {
                let (x, y) = (cx + dx, cy + dy);
                if x >= 0 && y >= 0 && (x as usize) < w && (y as usize) < h {
                    let falloff = 1 + (dx.abs() + dy.abs()) as i64;
                    let px = &mut img[y as usize * w + x as usize];
                    *px = (*px + peak / falloff).min(255);
                }
            }
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_hls::simulate::ExternalMemory;
    use hermes_hls::HlsFlow;

    #[test]
    fn sobel_hls_matches_reference() {
        let (w, h) = (12usize, 10usize);
        let img = star_field(w, h, 4, 42);
        let design = HlsFlow::new().unroll_limit(0).compile(SOBEL_SOURCE).unwrap();
        let mut ext = ExternalMemory::buffers(vec![
            (hermes_hls::ir::ArrayId(0), img.clone()),
            (hermes_hls::ir::ArrayId(1), vec![0; w * h]),
        ]);
        design
            .simulate_with_memory(&[w as i64, h as i64], &mut ext)
            .unwrap();
        let got = ext.buffer(hermes_hls::ir::ArrayId(1)).unwrap();
        let want = sobel_ref(&img, w, h);
        assert_eq!(got, &want);
    }

    #[test]
    fn conv3_hls_matches_reference() {
        let (w, h) = (8usize, 8usize);
        let img = star_field(w, h, 3, 7);
        // box blur kernel in q4: 16/9 ~ 1 each + center heavier
        let kernel: [i64; 9] = [1, 2, 1, 2, 4, 2, 1, 2, 1];
        let design = HlsFlow::new().unroll_limit(0).compile(CONV3_SOURCE).unwrap();
        let mut ext = ExternalMemory::buffers(vec![
            (hermes_hls::ir::ArrayId(0), img.clone()),
            (hermes_hls::ir::ArrayId(1), vec![0; w * h]),
            (hermes_hls::ir::ArrayId(2), kernel.to_vec()),
        ]);
        design
            .simulate_with_memory(&[w as i64, h as i64], &mut ext)
            .unwrap();
        let got = ext.buffer(hermes_hls::ir::ArrayId(1)).unwrap();
        let want = conv3_ref(&img, &kernel, w, h);
        assert_eq!(got, &want);
    }

    #[test]
    fn histogram_hls_matches_reference() {
        let img = star_field(16, 8, 5, 3);
        let design = HlsFlow::new()
            .unroll_limit(0)
            .compile(HISTOGRAM_SOURCE)
            .unwrap();
        let mut ext = ExternalMemory::buffers(vec![
            (hermes_hls::ir::ArrayId(0), img.clone()),
            (hermes_hls::ir::ArrayId(1), vec![0; 256]),
        ]);
        design
            .simulate_with_memory(&[img.len() as i64], &mut ext)
            .unwrap();
        let got = ext.buffer(hermes_hls::ir::ArrayId(1)).unwrap();
        assert_eq!(got, &histogram_ref(&img));
    }

    #[test]
    fn references_are_sane() {
        let img = star_field(16, 16, 3, 9);
        assert!(img.iter().all(|&p| (0..=255).contains(&p)));
        let edges = sobel_ref(&img, 16, 16);
        assert!(edges.iter().any(|&e| e > 0), "stars produce edges");
        assert!(edges.iter().all(|&e| (0..=255).contains(&e)));
        let bins = histogram_ref(&img);
        assert_eq!(bins.iter().sum::<i64>(), 256);
    }
}
