//! Artificial-intelligence inference kernel (HLS use case #3).
//!
//! A fixed-point (Q8.8) two-layer perceptron of the kind flown for on-board
//! classification: `out = W2 · relu(W1 · x + b1) + b2`. The C kernel is the
//! coarse-grained-parallel workload the paper's dataflow extension targets
//! (each layer is a task); here it is synthesized as a single accelerator,
//! and the E9 bench builds the task-graph version.

/// Fixed-point fractional bits.
pub const Q: u32 = 8;

/// MLP inference, C-subset kernel. Layout:
/// `w1[hidden*inputs]`, `b1[hidden]`, `w2[outputs*hidden]`, `b2[outputs]`,
/// all Q8.8. Activations saturate to 16-bit range.
pub const MLP_SOURCE: &str = r#"
void mlp(int *x, int *w1, int *b1, int *w2, int *b2, int *out,
         int inputs, int hidden, int outputs) {
    int h[64];
    for (int j = 0; j < hidden; j++) {
        int acc = b1[j] << 8;
        for (int i = 0; i < inputs; i++) {
            acc += w1[j * inputs + i] * x[i];
        }
        acc = acc >> 8;
        if (acc < 0) acc = 0;          // ReLU
        if (acc > 32767) acc = 32767;  // saturate
        h[j] = acc;
    }
    for (int k = 0; k < outputs; k++) {
        int acc = b2[k] << 8;
        for (int j = 0; j < hidden; j++) {
            acc += w2[k * hidden + j] * h[j];
        }
        acc = acc >> 8;
        if (acc < -32768) acc = -32768;
        if (acc > 32767) acc = 32767;
        out[k] = acc;
    }
}
"#;

/// Rust reference for [`MLP_SOURCE`].
#[allow(clippy::too_many_arguments)] // mirrors the C kernel signature
pub fn mlp_ref(
    x: &[i64],
    w1: &[i64],
    b1: &[i64],
    w2: &[i64],
    b2: &[i64],
    inputs: usize,
    hidden: usize,
    outputs: usize,
) -> Vec<i64> {
    let mut h = vec![0i64; hidden];
    for j in 0..hidden {
        let mut acc = b1[j] << Q;
        for i in 0..inputs {
            acc += w1[j * inputs + i] * x[i];
        }
        h[j] = (acc >> Q).clamp(0, 32767);
    }
    let mut out = vec![0i64; outputs];
    for k in 0..outputs {
        let mut acc = b2[k] << Q;
        for j in 0..hidden {
            acc += w2[k * hidden + j] * h[j];
        }
        out[k] = (acc >> Q).clamp(-32768, 32767);
    }
    out
}

/// Deterministic Q8.8 network weights for a given topology (stands in for
/// a trained model).
pub fn synth_weights(
    inputs: usize,
    hidden: usize,
    outputs: usize,
    seed: u64,
) -> (Vec<i64>, Vec<i64>, Vec<i64>, Vec<i64>) {
    let mut g = crate::TestDataGen::new(seed);
    let w1 = g.vec_signed(hidden * inputs, 1 << Q); // |w| < 1.0
    let b1 = g.vec_signed(hidden, 1 << (Q - 2));
    let w2 = g.vec_signed(outputs * hidden, 1 << Q);
    let b2 = g.vec_signed(outputs, 1 << (Q - 2));
    (w1, b1, w2, b2)
}

/// Argmax over the reference output — the "classification" result.
pub fn classify(scores: &[i64]) -> usize {
    scores
        .iter()
        .enumerate()
        .max_by_key(|(_, &v)| v)
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_hls::ir::ArrayId;
    use hermes_hls::simulate::ExternalMemory;
    use hermes_hls::HlsFlow;

    #[test]
    fn mlp_hls_matches_reference() {
        let (inputs, hidden, outputs) = (6usize, 8usize, 3usize);
        let (w1, b1, w2, b2) = synth_weights(inputs, hidden, outputs, 17);
        let mut g = crate::TestDataGen::new(5);
        let x = g.vec_below(inputs, 1 << Q);
        let design = HlsFlow::new().unroll_limit(0).compile(MLP_SOURCE).unwrap();
        let mut ext = ExternalMemory::buffers(vec![
            (ArrayId(0), x.clone()),
            (ArrayId(1), w1.clone()),
            (ArrayId(2), b1.clone()),
            (ArrayId(3), w2.clone()),
            (ArrayId(4), b2.clone()),
            (ArrayId(5), vec![0; outputs]),
        ]);
        design
            .simulate_with_memory(
                &[inputs as i64, hidden as i64, outputs as i64],
                &mut ext,
            )
            .unwrap();
        let got = ext.buffer(ArrayId(5)).unwrap();
        let want = mlp_ref(&x, &w1, &b1, &w2, &b2, inputs, hidden, outputs);
        assert_eq!(got, &want);
    }

    #[test]
    fn relu_and_saturation_behave() {
        // all-negative weights force ReLU to zero every hidden unit
        let inputs = 4;
        let hidden = 4;
        let outputs = 2;
        let w1 = vec![-(1 << Q); hidden * inputs];
        let b1 = vec![0; hidden];
        let w2 = vec![1 << Q; outputs * hidden];
        let b2 = vec![100, -100];
        let x = vec![1 << Q; inputs];
        let out = mlp_ref(&x, &w1, &b1, &w2, &b2, inputs, hidden, outputs);
        assert_eq!(out, vec![100, -100], "only the bias survives ReLU");
    }

    #[test]
    fn classification_is_stable() {
        let (w1, b1, w2, b2) = synth_weights(8, 16, 4, 99);
        let mut g = crate::TestDataGen::new(1);
        for _ in 0..10 {
            let x = g.vec_below(8, 1 << Q);
            let out = mlp_ref(&x, &w1, &b1, &w2, &b2, 8, 16, 4);
            let c = classify(&out);
            assert!(c < 4);
            // re-evaluation agrees (pure function)
            assert_eq!(
                classify(&mlp_ref(&x, &w1, &b1, &w2, &b2, 8, 16, 4)),
                c
            );
        }
    }
}
