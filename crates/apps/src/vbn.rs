//! Visual-Based Navigation (hypervisor use case): centroid extraction.
//!
//! The VBN partition processes camera frames into target centroids (the
//! image-processing element of the SELENE-derived scenario). The kernel —
//! intensity-weighted centroiding above a threshold — exists both as a
//! C-subset HLS kernel and as the Rust reference, and [`VbnTask`] wraps it
//! as a partition consuming frames from a queuing port and publishing
//! centroids on a sampling port.

use hermes_xng::partition::{NativeTask, TaskCtx};

/// Centroid extraction, C-subset kernel. Writes `out[0] = cx_q8`,
/// `out[1] = cy_q8`, `out[2] = mass` (0 mass = no target; cx/cy then 0).
pub const CENTROID_SOURCE: &str = r#"
void centroid(int *img, int *out, int w, int h, int threshold) {
    int mass = 0;
    int mx = 0;
    int my = 0;
    for (int y = 0; y < h; y++) {
        for (int x = 0; x < w; x++) {
            int v = img[y * w + x];
            if (v > threshold) {
                mass += v;
                mx += v * x;
                my += v * y;
            }
        }
    }
    if (mass > 0) {
        out[0] = (mx << 8) / mass;
        out[1] = (my << 8) / mass;
    } else {
        out[0] = 0;
        out[1] = 0;
    }
    out[2] = mass;
}
"#;

/// Rust reference for [`CENTROID_SOURCE`]: `(cx_q8, cy_q8, mass)`.
pub fn centroid_ref(img: &[i64], w: usize, h: usize, threshold: i64) -> (i64, i64, i64) {
    let mut mass = 0i64;
    let mut mx = 0i64;
    let mut my = 0i64;
    for y in 0..h {
        for x in 0..w {
            let v = img[y * w + x];
            if v > threshold {
                mass += v;
                mx += v * x as i64;
                my += v * y as i64;
            }
        }
    }
    if mass > 0 {
        ((mx << 8) / mass, (my << 8) / mass, mass)
    } else {
        (0, 0, 0)
    }
}

/// Paint a single bright blob at `(cx, cy)` on a dark frame.
pub fn blob_frame(w: usize, h: usize, cx: usize, cy: usize, peak: i64) -> Vec<i64> {
    let mut img = vec![5i64; w * h];
    for dy in -2isize..=2 {
        for dx in -2isize..=2 {
            let x = cx as isize + dx;
            let y = cy as isize + dy;
            if x >= 0 && y >= 0 && (x as usize) < w && (y as usize) < h {
                let falloff = 1 + (dx.abs() + dy.abs()) as i64;
                img[y as usize * w + x as usize] = (peak / falloff).min(255);
            }
        }
    }
    img
}

/// The VBN partition task: dequeues frame descriptors (`[cx, cy]` of a
/// synthetic blob, 2×u32 LE) from the `frames` queuing port, runs the
/// centroider, and publishes `(cx_q8, cy_q8)` on the `nav` sampling port.
pub struct VbnTask {
    /// Frame geometry.
    pub width: usize,
    /// Frame geometry.
    pub height: usize,
    /// Detection threshold.
    pub threshold: i64,
    /// Cycles charged per processed pixel (software centroiding cost).
    pub cycles_per_pixel: u64,
    /// Centroids produced so far.
    pub processed: u64,
}

impl VbnTask {
    /// A task for `w × h` frames.
    pub fn new(w: usize, h: usize) -> Self {
        VbnTask {
            width: w,
            height: h,
            threshold: 50,
            cycles_per_pixel: 6,
            processed: 0,
        }
    }
}

impl NativeTask for VbnTask {
    fn name(&self) -> &str {
        "vbn"
    }

    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Result<(), String> {
        while let Ok(Some(msg)) = ctx.read_queuing("frames") {
            if msg.len() < 8 {
                return Err("short frame descriptor".into());
            }
            let cx = u32::from_le_bytes([msg[0], msg[1], msg[2], msg[3]]) as usize;
            let cy = u32::from_le_bytes([msg[4], msg[5], msg[6], msg[7]]) as usize;
            let img = blob_frame(self.width, self.height, cx, cy, 220);
            let (qx, qy, _mass) = centroid_ref(&img, self.width, self.height, self.threshold);
            ctx.consume(self.cycles_per_pixel * (self.width * self.height) as u64);
            self.processed += 1;
            let mut out = Vec::with_capacity(8);
            out.extend_from_slice(&(qx as i32).to_le_bytes());
            out.extend_from_slice(&(qy as i32).to_le_bytes());
            let _ = ctx.write_port("nav", &out);
        }
        Ok(())
    }

    fn reset(&mut self) {
        self.processed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_hls::ir::ArrayId;
    use hermes_hls::simulate::ExternalMemory;
    use hermes_hls::HlsFlow;

    #[test]
    fn centroid_hls_matches_reference() {
        let (w, h) = (16usize, 12usize);
        let img = blob_frame(w, h, 11, 4, 200);
        let design = HlsFlow::new()
            .unroll_limit(0)
            .compile(CENTROID_SOURCE)
            .unwrap();
        let mut ext = ExternalMemory::buffers(vec![
            (ArrayId(0), img.clone()),
            (ArrayId(1), vec![0; 3]),
        ]);
        design
            .simulate_with_memory(&[w as i64, h as i64, 50], &mut ext)
            .unwrap();
        let got = ext.buffer(ArrayId(1)).unwrap();
        let (cx, cy, mass) = centroid_ref(&img, w, h, 50);
        assert_eq!(got[0], cx);
        assert_eq!(got[1], cy);
        assert_eq!(got[2], mass);
    }

    #[test]
    fn centroid_lands_on_the_blob() {
        let (w, h) = (32usize, 32usize);
        let img = blob_frame(w, h, 20, 9, 240);
        let (cx, cy, mass) = centroid_ref(&img, w, h, 50);
        assert!(mass > 0);
        // Q8 coordinates within half a pixel of the blob centre
        assert!((cx - (20 << 8)).abs() < 128, "cx = {}", cx as f64 / 256.0);
        assert!((cy - (9 << 8)).abs() < 128, "cy = {}", cy as f64 / 256.0);
    }

    #[test]
    fn empty_frame_reports_no_target() {
        let img = vec![3i64; 64];
        assert_eq!(centroid_ref(&img, 8, 8, 50), (0, 0, 0));
    }
}
