//! Boot flash model with redundancy.
//!
//! Section IV: BL1 manages "basic redundancy for software components stored
//! in Flash (either through TMR or through sequential accesses to multiple
//! hardware Flash components)". The model keeps three complete copies of
//! the flash contents; [`Flash::read_redundant`] implements both policies
//! and reports how many corrupted bytes were repaired. Test hooks flip
//! individual bits per copy, standing in for radiation upsets in
//! non-volatile memory.

use crate::loadlist::{ImageKind, LoadEntry, LoadList};
use crate::BootError;
use hermes_fpga::bitstream::{crc32, Bitstream};

/// Number of redundant flash copies (TMR).
pub const COPIES: usize = 3;

/// Flash offset at which the load list lives.
pub const LOADLIST_OFFSET: u32 = 0x0001_0000;

/// Flash offset at which image payloads start.
pub const PAYLOAD_OFFSET: u32 = 0x0002_0000;

/// Bytes the flash controller delivers per cycle once initialized.
pub const READ_BYTES_PER_CYCLE: u32 = 4;

/// Magic of an image header.
pub const IMAGE_MAGIC: [u8; 4] = *b"HIMG";

/// Header in front of the BL1 image at offset 0 (what BL0 parses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImageHeader {
    /// Payload size in bytes.
    pub size: u32,
    /// CRC-32 of the payload.
    pub crc: u32,
}

impl ImageHeader {
    /// Serialized size.
    pub const BYTES: u32 = 12;

    /// Serialize.
    pub fn to_bytes(self) -> [u8; 12] {
        let mut v = [0u8; 12];
        v[..4].copy_from_slice(&IMAGE_MAGIC);
        v[4..8].copy_from_slice(&self.size.to_le_bytes());
        v[8..12].copy_from_slice(&self.crc.to_le_bytes());
        v
    }

    /// Parse.
    ///
    /// # Errors
    ///
    /// Returns [`BootError::Integrity`] on bad magic.
    pub fn from_bytes(data: &[u8]) -> Result<Self, BootError> {
        if data.len() < 12 || data[..4] != IMAGE_MAGIC {
            return Err(BootError::Integrity {
                what: "image header".into(),
            });
        }
        Ok(ImageHeader {
            size: u32::from_le_bytes([data[4], data[5], data[6], data[7]]),
            crc: u32::from_le_bytes([data[8], data[9], data[10], data[11]]),
        })
    }
}

/// Redundancy policy for flash reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedundancyMode {
    /// No redundancy: read copy 0 only.
    None,
    /// Byte-wise majority vote across the three copies.
    Tmr,
    /// Try copies in order until one passes the caller's integrity check.
    Sequential,
}

/// The flash device (three physical copies).
#[derive(Debug, Clone)]
pub struct Flash {
    copies: Vec<Vec<u8>>,
    /// Redundancy policy used by [`Flash::read_redundant`].
    pub mode: RedundancyMode,
    /// Cumulative bytes corrected by TMR voting.
    pub corrected_bytes: u64,
    /// Cumulative cycles spent reading.
    pub read_cycles: u64,
}

impl Flash {
    /// A blank flash of `size` bytes per copy.
    pub fn new(size: usize, mode: RedundancyMode) -> Self {
        Flash {
            copies: vec![vec![0xFF; size]; COPIES],
            mode,
            corrected_bytes: 0,
            read_cycles: 0,
        }
    }

    /// Size of one copy.
    pub fn size(&self) -> usize {
        self.copies[0].len()
    }

    /// Program the same data into all copies.
    ///
    /// # Errors
    ///
    /// Returns [`BootError::FlashRange`] when out of range.
    pub fn program(&mut self, offset: u32, data: &[u8]) -> Result<(), BootError> {
        let end = offset as usize + data.len();
        if end > self.size() {
            return Err(BootError::FlashRange {
                offset,
                len: data.len() as u32,
            });
        }
        for copy in &mut self.copies {
            copy[offset as usize..end].copy_from_slice(data);
        }
        Ok(())
    }

    /// Raw read from one copy (no vote, charges read cycles).
    ///
    /// # Errors
    ///
    /// Returns [`BootError::FlashRange`] when out of range.
    pub fn read_copy(&mut self, copy: usize, offset: u32, len: u32) -> Result<Vec<u8>, BootError> {
        let end = offset as usize + len as usize;
        if copy >= COPIES || end > self.size() {
            return Err(BootError::FlashRange { offset, len });
        }
        self.read_cycles += u64::from(len.div_ceil(READ_BYTES_PER_CYCLE));
        Ok(self.copies[copy][offset as usize..end].to_vec())
    }

    /// Redundant read according to [`Flash::mode`].
    ///
    /// In TMR mode every byte is majority-voted across the three copies
    /// (cost: 3× the read cycles); `None`/`Sequential` read copy 0 (callers
    /// implementing sequential fallback use [`Flash::read_copy`] for the
    /// alternates).
    ///
    /// # Errors
    ///
    /// Returns [`BootError::FlashRange`] when out of range.
    pub fn read_redundant(&mut self, offset: u32, len: u32) -> Result<Vec<u8>, BootError> {
        match self.mode {
            RedundancyMode::None | RedundancyMode::Sequential => self.read_copy(0, offset, len),
            RedundancyMode::Tmr => {
                let a = self.read_copy(0, offset, len)?;
                let b = self.read_copy(1, offset, len)?;
                let c = self.read_copy(2, offset, len)?;
                let mut out = Vec::with_capacity(len as usize);
                for i in 0..len as usize {
                    let (x, y, z) = (a[i], b[i], c[i]);
                    let voted = (x & y) | (x & z) | (y & z);
                    if !(x == y && y == z) {
                        self.corrected_bytes += 1;
                    }
                    out.push(voted);
                }
                Ok(out)
            }
        }
    }

    /// Flip one bit in one copy (fault-injection hook).
    ///
    /// Returns `false` if out of range.
    pub fn flip_bit(&mut self, copy: usize, byte_offset: u32, bit: u8) -> bool {
        if copy >= COPIES || byte_offset as usize >= self.size() || bit >= 8 {
            return false;
        }
        self.copies[copy][byte_offset as usize] ^= 1 << bit;
        true
    }
}

/// Builds a complete flash image: BL1 stub, load list, payloads.
#[derive(Debug, Default)]
pub struct FlashImageBuilder {
    payloads: Vec<(u32, Vec<u8>)>,
    next_offset: u32,
}

impl FlashImageBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        FlashImageBuilder {
            payloads: Vec::new(),
            next_offset: PAYLOAD_OFFSET,
        }
    }

    fn add_payload(&mut self, bytes: Vec<u8>) -> (u32, u32, u32) {
        let offset = self.next_offset;
        let size = bytes.len() as u32;
        let crc = crc32(&bytes);
        self.next_offset += size.div_ceil(256) * 256; // 256-byte alignment
        self.payloads.push((offset, bytes));
        (offset, size, crc)
    }

    /// Add a software image (machine words) deployed to `dest` and started
    /// at `entry` on core 0.
    pub fn add_software(&mut self, dest: u32, entry: u32, words: &[u32]) -> LoadEntry {
        self.add_software_on_core(dest, entry, 0, words)
    }

    /// Add a software image started on a specific core.
    pub fn add_software_on_core(
        &mut self,
        dest: u32,
        entry: u32,
        core: u8,
        words: &[u32],
    ) -> LoadEntry {
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let (offset, size, crc) = self.add_payload(bytes);
        LoadEntry {
            kind: ImageKind::Software,
            offset,
            size,
            dest,
            entry,
            core,
            crc,
        }
    }

    /// Add a data image deployed to `dest` without starting anything.
    pub fn add_data(&mut self, dest: u32, bytes: &[u8]) -> LoadEntry {
        let (offset, size, crc) = self.add_payload(bytes.to_vec());
        LoadEntry {
            kind: ImageKind::Software,
            offset,
            size,
            dest,
            entry: 0,
            core: 0,
            crc,
        }
    }

    /// Add an eFPGA bitstream.
    pub fn add_bitstream(&mut self, bitstream: &Bitstream) -> LoadEntry {
        let bytes = bitstream.to_bytes();
        let (offset, size, crc) = self.add_payload(bytes);
        LoadEntry {
            kind: ImageKind::Bitstream,
            offset,
            size,
            dest: 0,
            entry: 0,
            core: 0,
            crc,
        }
    }

    /// Assemble the flash: a synthetic BL1 image at offset 0, the load list
    /// at [`LOADLIST_OFFSET`], payloads beyond.
    ///
    /// # Panics
    ///
    /// Panics if the payloads exceed the 8 MiB flash (test images are far
    /// smaller).
    pub fn build(self, list: &LoadList, mode: RedundancyMode) -> Flash {
        let size = (self.next_offset as usize + 0x1_0000).max(0x10_0000);
        let mut flash = Flash::new(size, mode);
        // synthetic BL1 binary: in this model BL1 is host code, but BL0
        // still fetches and integrity-checks a real blob
        let bl1_blob: Vec<u8> = (0..4096u32).flat_map(|i| i.to_le_bytes()).collect();
        let header = ImageHeader {
            size: bl1_blob.len() as u32,
            crc: crc32(&bl1_blob),
        };
        flash.program(0, &header.to_bytes()).expect("in range");
        flash
            .program(ImageHeader::BYTES, &bl1_blob)
            .expect("in range");
        flash
            .program(LOADLIST_OFFSET, &list.to_bytes())
            .expect("in range");
        for (offset, bytes) in &self.payloads {
            flash.program(*offset, bytes).expect("in range");
        }
        flash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tmr_vote_corrects_single_copy_corruption() {
        let mut flash = Flash::new(1024, RedundancyMode::Tmr);
        flash.program(0, &[0xAA; 64]).unwrap();
        for bit in 0..8 {
            flash.flip_bit(1, 10, bit);
        }
        flash.flip_bit(2, 20, 3);
        let data = flash.read_redundant(0, 64).unwrap();
        assert!(data.iter().all(|&b| b == 0xAA), "voting repairs");
        assert_eq!(flash.corrected_bytes, 2);
    }

    #[test]
    fn double_copy_corruption_defeats_tmr() {
        let mut flash = Flash::new(256, RedundancyMode::Tmr);
        flash.program(0, &[0x00; 16]).unwrap();
        flash.flip_bit(0, 5, 1);
        flash.flip_bit(1, 5, 1); // same bit in two copies
        let data = flash.read_redundant(0, 16).unwrap();
        assert_eq!(data[5], 0x02, "majority is now wrong");
    }

    #[test]
    fn tmr_costs_three_reads() {
        let mut plain = Flash::new(1024, RedundancyMode::None);
        plain.program(0, &[1; 512]).unwrap();
        plain.read_redundant(0, 512).unwrap();
        let mut tmr = Flash::new(1024, RedundancyMode::Tmr);
        tmr.program(0, &[1; 512]).unwrap();
        tmr.read_redundant(0, 512).unwrap();
        assert_eq!(tmr.read_cycles, 3 * plain.read_cycles);
    }

    #[test]
    fn range_checks() {
        let mut flash = Flash::new(128, RedundancyMode::None);
        assert!(matches!(
            flash.read_redundant(100, 64),
            Err(BootError::FlashRange { .. })
        ));
        assert!(matches!(
            flash.program(120, &[0; 16]),
            Err(BootError::FlashRange { .. })
        ));
        assert!(!flash.flip_bit(0, 999, 0));
        assert!(!flash.flip_bit(5, 0, 0));
    }

    #[test]
    fn builder_lays_out_images() {
        let mut b = FlashImageBuilder::new();
        let e1 = b.add_software(0x4000_0000, 0x4000_0000, &[1, 2, 3]);
        let e2 = b.add_data(0x4100_0000, &[9; 300]);
        assert!(e2.offset > e1.offset);
        assert_eq!(e2.offset % 256, 0);
        let list = LoadList {
            entries: vec![e1.clone(), e2],
        };
        let mut flash = b.build(&list, RedundancyMode::Tmr);
        // load list parses back from flash
        let raw = flash
            .read_redundant(LOADLIST_OFFSET, list.to_bytes().len() as u32)
            .unwrap();
        let parsed = LoadList::from_bytes(&raw).unwrap();
        assert_eq!(parsed.entries.len(), 2);
        // payload CRC matches
        let payload = flash.read_redundant(e1.offset, e1.size).unwrap();
        assert_eq!(crc32(&payload), e1.crc);
    }

    #[test]
    fn image_header_roundtrip() {
        let h = ImageHeader {
            size: 4096,
            crc: 0xCAFEBABE,
        };
        let back = ImageHeader::from_bytes(&h.to_bytes()).unwrap();
        assert_eq!(back, h);
        assert!(ImageHeader::from_bytes(b"XXXXXXXXXXXX").is_err());
    }
}
