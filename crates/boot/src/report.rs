//! The boot report: "generation of a BL1 boot report made available for
//! next-stage software" (Section IV).

use hermes_fpga::bitstream::crc32;

/// Address in shared SRAM where BL1 deposits the serialized report.
pub const BOOT_REPORT_ADDR: u32 = 0x100F_0000;

/// Outcome of one boot stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageStatus {
    /// Completed normally.
    Ok,
    /// Completed after correcting errors (redundancy/retransmission).
    Recovered,
    /// Failed.
    Failed,
    /// Skipped (e.g. SpaceWire controller on a flash-only boot).
    Skipped,
}

/// One stage record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageRecord {
    /// Stage name.
    pub name: String,
    /// Cycles consumed.
    pub cycles: u64,
    /// Status.
    pub status: StageStatus,
    /// Free-form detail.
    pub detail: String,
}

/// The complete report.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BootReport {
    /// Stage records in execution order.
    pub stages: Vec<StageRecord>,
    /// Flash bytes corrected by TMR voting.
    pub flash_corrected_bytes: u64,
    /// SpaceWire packets retransmitted.
    pub spw_retransmissions: u64,
    /// Software images deployed.
    pub images_loaded: u32,
    /// Bitstreams programmed.
    pub bitstreams_programmed: u32,
    /// Boot attempts that failed over to an alternate boot source.
    pub boot_source_failovers: u32,
    /// Corrupt bitstreams replaced by the golden fallback bitstream.
    pub golden_bitstream_substitutions: u32,
    /// Whether the whole boot succeeded.
    pub success: bool,
    /// Whether the system came up in safe mode (no source bootable; a
    /// minimal environment holding only the failure report).
    pub safe_mode: bool,
    /// Machine-readable reason for the last boot failure, when any.
    pub failure: Option<String>,
}

impl BootReport {
    /// Record a stage.
    pub fn stage(
        &mut self,
        name: impl Into<String>,
        cycles: u64,
        status: StageStatus,
        detail: impl Into<String>,
    ) {
        self.stages.push(StageRecord {
            name: name.into(),
            cycles,
            status,
            detail: detail.into(),
        });
    }

    /// Total cycles across all stages.
    pub fn total_cycles(&self) -> u64 {
        self.stages.iter().map(|s| s.cycles).sum()
    }

    /// Human-readable rendering (what a BL2 would print on the UART).
    pub fn render(&self) -> String {
        let verdict = if self.success {
            "SUCCESS"
        } else if self.safe_mode {
            "SAFE-MODE"
        } else {
            "FAILED"
        };
        let mut s = format!(
            "BL1 boot report: {} ({} cycles)\n",
            verdict,
            self.total_cycles()
        );
        for st in &self.stages {
            s.push_str(&format!(
                "  {:<22} {:>9} cy  {:<9} {}\n",
                st.name,
                st.cycles,
                format!("{:?}", st.status),
                st.detail
            ));
        }
        s.push_str(&format!(
            "  corrected {} flash bytes, {} SpW retransmissions, \
             {} images, {} bitstreams\n",
            self.flash_corrected_bytes,
            self.spw_retransmissions,
            self.images_loaded,
            self.bitstreams_programmed
        ));
        if self.boot_source_failovers > 0 || self.golden_bitstream_substitutions > 0 {
            s.push_str(&format!(
                "  {} boot-source failover(s), {} golden bitstream substitution(s)\n",
                self.boot_source_failovers, self.golden_bitstream_substitutions
            ));
        }
        if let Some(reason) = &self.failure {
            s.push_str(&format!("  failure: {reason}\n"));
        }
        s
    }

    /// Export the boot timeline into a flight recorder under subsystem
    /// `sub`: one `Boot`-clocked span per stage (ts = cumulative cycles at
    /// stage start, dur = stage cycles, args = status/detail), plus the
    /// report's recovery counters.
    pub fn obs_export(&self, obs: &hermes_obs::Recorder, sub: &str) {
        use hermes_obs::{ClockDomain, WallMark};
        let mut at = 0u64;
        for st in &self.stages {
            obs.span(
                sub,
                &st.name,
                ClockDomain::Boot,
                at,
                st.cycles,
                &[
                    ("status", format!("{:?}", st.status)),
                    ("detail", st.detail.clone()),
                ],
                WallMark::none(),
            );
            at += st.cycles;
        }
        obs.counter_add(sub, "flash_corrected_bytes", self.flash_corrected_bytes);
        obs.counter_add(sub, "spw_retransmissions", self.spw_retransmissions);
        obs.counter_add(sub, "images_loaded", u64::from(self.images_loaded));
        obs.counter_add(
            sub,
            "bitstreams_programmed",
            u64::from(self.bitstreams_programmed),
        );
        obs.counter_add(
            sub,
            "boot_source_failovers",
            u64::from(self.boot_source_failovers),
        );
        obs.counter_add(
            sub,
            "golden_bitstream_substitutions",
            u64::from(self.golden_bitstream_substitutions),
        );
        let verdict = if self.success {
            "success"
        } else if self.safe_mode {
            "safe-mode"
        } else {
            "failed"
        };
        obs.instant(
            sub,
            "boot-verdict",
            ClockDomain::Boot,
            at,
            &[
                ("verdict", verdict.to_string()),
                (
                    "failure",
                    self.failure.clone().unwrap_or_else(|| "-".to_string()),
                ),
            ],
        );
    }

    /// Compact binary serialization (what lands at [`BOOT_REPORT_ADDR`]):
    /// a summary block with a trailing CRC.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::new();
        v.extend_from_slice(b"HRPT");
        v.push(u8::from(self.success));
        v.push(u8::from(self.safe_mode));
        v.extend_from_slice(&(self.stages.len() as u16).to_le_bytes());
        v.extend_from_slice(&self.total_cycles().to_le_bytes());
        v.extend_from_slice(&self.flash_corrected_bytes.to_le_bytes());
        v.extend_from_slice(&self.spw_retransmissions.to_le_bytes());
        v.extend_from_slice(&self.images_loaded.to_le_bytes());
        v.extend_from_slice(&self.bitstreams_programmed.to_le_bytes());
        v.extend_from_slice(&self.boot_source_failovers.to_le_bytes());
        v.extend_from_slice(&self.golden_bitstream_substitutions.to_le_bytes());
        // machine-readable failure reason (length-prefixed UTF-8)
        let reason = self.failure.as_deref().unwrap_or("");
        v.extend_from_slice(&(reason.len() as u16).to_le_bytes());
        v.extend_from_slice(reason.as_bytes());
        let crc = crc32(&v);
        v.extend_from_slice(&crc.to_le_bytes());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accumulates_and_renders() {
        let mut r = BootReport::default();
        r.stage("clock-pll", 2000, StageStatus::Ok, "600 MHz");
        r.stage("ddr-init", 20000, StageStatus::Ok, "");
        r.stage("image 0", 512, StageStatus::Recovered, "1 byte voted");
        r.success = true;
        r.images_loaded = 1;
        assert_eq!(r.total_cycles(), 22512);
        let text = r.render();
        assert!(text.contains("SUCCESS"));
        assert!(text.contains("clock-pll"));
        assert!(text.contains("Recovered"));
    }

    #[test]
    fn binary_form_has_crc() {
        let mut r = BootReport::default();
        r.stage("x", 1, StageStatus::Ok, "");
        let bytes = r.to_bytes();
        assert_eq!(&bytes[..4], b"HRPT");
        let body = &bytes[..bytes.len() - 4];
        let crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
        assert_eq!(crc32(body), crc);
    }

    #[test]
    fn safe_mode_report_carries_failure_reason() {
        let r = BootReport {
            safe_mode: true,
            failure: Some("flash: integrity failure on `image 0`".into()),
            ..BootReport::default()
        };
        let text = r.render();
        assert!(text.contains("SAFE-MODE"));
        assert!(text.contains("integrity failure"));
        let bytes = r.to_bytes();
        assert_eq!(bytes[5], 1, "safe-mode flag serialized");
        let s = String::from_utf8_lossy(&bytes);
        assert!(s.contains("integrity failure"), "reason embedded in binary");
    }
}
