//! BL1: the generic level-1 boot loader developed in HERMES.
//!
//! Implements the "common functionalities of the BL1 for the NG-ULTRA SoC"
//! of Section IV: privileged CPU and hardware initialization (clock PLLs,
//! DDR, flash, SpaceWire, TCMs, MPU), load-list management from flash or
//! SpaceWire, integrity and redundancy handling, eFPGA programming, boot
//! report generation, and the final branch to application software.

use crate::bl0;
use crate::flash::{Flash, RedundancyMode, COPIES, LOADLIST_OFFSET};
use crate::loadlist::{ImageKind, LoadEntry, LoadList};
use crate::report::{BootReport, StageRecord, StageStatus, BOOT_REPORT_ADDR};
use crate::spacewire::SpaceWireLink;
use crate::BootError;
use hermes_fpga::bitstream::{crc32, Bitstream};
use hermes_cpu::cluster::Cluster;

/// Fixed initialization costs in cycles (hardware bring-up latencies of the
/// kind the BL1 specification sequences: PLL lock, DDR training, …).
pub mod costs {
    /// CPU#0 registers, caches, exceptions.
    pub const CPU_INIT: u64 = 400;
    /// Clock PLL lock.
    pub const CLOCK_PLL: u64 = 2_000;
    /// DDR controller training.
    pub const DDR_INIT: u64 = 20_000;
    /// Flash controller setup.
    pub const FLASH_CTRL: u64 = 500;
    /// SpaceWire controller setup.
    pub const SPW_CTRL: u64 = 800;
    /// Tightly-coupled memory enable.
    pub const TCM_INIT: u64 = 1_000;
    /// MPU programming.
    pub const MPU_INIT: u64 = 300;
    /// eFPGA configuration per bitstream frame.
    pub const EFPGA_PER_FRAME: u64 = 8;
}

/// Where BL1 fetches the boot chain from.
#[derive(Debug)]
pub enum BootSource {
    /// Local boot flash.
    Flash(Flash),
    /// Remote SpaceWire node (objects `loadlist` and `obj@0x<offset>`).
    SpaceWire(SpaceWireLink),
}

impl BootSource {
    /// Publish a flash layout onto a remote node under the naming scheme
    /// BL1 uses for SpaceWire boot (testbench convenience).
    pub fn spacewire_from_flash(
        mut flash: Flash,
        list: &LoadList,
    ) -> Result<SpaceWireLink, BootError> {
        let mut remote = crate::spacewire::RemoteNode::new();
        // BL1 image with header
        let header = flash.read_redundant(0, crate::flash::ImageHeader::BYTES)?;
        let parsed = crate::flash::ImageHeader::from_bytes(&header)?;
        let mut bl1 = header;
        bl1.extend(flash.read_redundant(crate::flash::ImageHeader::BYTES, parsed.size)?);
        remote.publish("bl1", bl1);
        remote.publish("loadlist", list.to_bytes());
        for e in &list.entries {
            let data = flash.read_redundant(e.offset, e.size)?;
            remote.publish(format!("obj@{:#x}", e.offset), data);
        }
        Ok(SpaceWireLink::new(remote))
    }
}

/// Result of a complete BL0→BL1→branch sequence.
#[derive(Debug)]
pub struct BootOutcome {
    /// The boot report (also deposited at [`BOOT_REPORT_ADDR`]).
    pub report: BootReport,
    /// The processor cluster, with images loaded and entry cores having
    /// executed their startup (bounded).
    pub cluster: Cluster,
    /// Verified bitstreams "programmed" into the eFPGA.
    pub bitstreams: Vec<Bitstream>,
}

/// The BL1 boot-loader engine.
#[derive(Debug)]
pub struct Bl1 {
    source: BootSource,
    /// Cycles the started applications may run before BL1 returns
    /// (0 = load only, don't execute).
    pub app_run_budget: u64,
    /// Golden (factory) bitstream substituted when a load-list bitstream
    /// fails to parse or verify — the eFPGA comes up with the known-good
    /// design instead of aborting the boot.
    pub golden_bitstream: Option<Bitstream>,
}

impl Bl1 {
    /// A BL1 booting from the given source.
    pub fn new(source: BootSource) -> Self {
        Bl1 {
            source,
            app_run_budget: 1_000_000,
            golden_bitstream: None,
        }
    }

    /// Install a golden fallback bitstream (builder style).
    pub fn with_golden_bitstream(mut self, bs: Bitstream) -> Self {
        self.golden_bitstream = Some(bs);
        self
    }

    /// Execute the full boot sequence (Fig. 5 of the paper: BL0 fetch,
    /// hardware init, load list processing, eFPGA programming, branch).
    ///
    /// # Errors
    ///
    /// Unrecoverable integrity or protocol failures abort the boot; the
    /// partially filled report is contained in successful outcomes only
    /// (callers needing the failure report can inspect the error and the
    /// stage at which it occurred from the error detail).
    pub fn boot(&mut self) -> Result<BootOutcome, BootError> {
        let mut report = BootReport::default();
        let mut cluster = Cluster::new();
        let mut bitstreams = Vec::new();

        // --- BL0 ---
        let bl0_outcome = match &mut self.source {
            BootSource::Flash(flash) => bl0::fetch_bl1_from_flash(flash)?,
            BootSource::SpaceWire(link) => bl0::fetch_bl1_from_spacewire(link)?,
        };
        report.stage(
            "bl0-fetch-bl1",
            bl0_outcome.cycles,
            if bl0_outcome.recovered {
                StageStatus::Recovered
            } else {
                StageStatus::Ok
            },
            format!("{} attempt(s)", bl0_outcome.attempts),
        );

        // --- hardware initialization ---
        report.stage("cpu0-init", costs::CPU_INIT, StageStatus::Ok, "");
        report.stage("clock-pll", costs::CLOCK_PLL, StageStatus::Ok, "600 MHz");
        report.stage("ddr-init", costs::DDR_INIT, StageStatus::Ok, "");
        let (flash_status, spw_status) = match self.source {
            BootSource::Flash(_) => (StageStatus::Ok, StageStatus::Skipped),
            BootSource::SpaceWire(_) => (StageStatus::Skipped, StageStatus::Ok),
        };
        report.stage("flash-ctrl", costs::FLASH_CTRL, flash_status, "");
        report.stage("spw-ctrl", costs::SPW_CTRL, spw_status, "");
        report.stage("tcm-init", costs::TCM_INIT, StageStatus::Ok, "");
        report.stage("mpu-init", costs::MPU_INIT, StageStatus::Ok, "");

        // --- load list ---
        let list = self.fetch_loadlist(&mut report)?;

        // --- images ---
        let mut started: Vec<(u8, u32)> = Vec::new();
        for (i, entry) in list.entries.iter().enumerate() {
            let (payload, stage_cycles, recovered) =
                self.fetch_payload(entry, &format!("image {i}"))?;
            match entry.kind {
                ImageKind::Software => {
                    cluster.bus.load_bytes(entry.dest, &payload)?;
                    report.images_loaded += 1;
                    report.stage(
                        format!("load image {i}"),
                        stage_cycles,
                        if recovered {
                            StageStatus::Recovered
                        } else {
                            StageStatus::Ok
                        },
                        format!("{} bytes -> {:#010x}", payload.len(), entry.dest),
                    );
                    if entry.entry != 0 {
                        started.push((entry.core, entry.entry));
                    }
                }
                ImageKind::Bitstream => {
                    let (bs, substituted) =
                        match Bitstream::from_bytes(&payload).and_then(|bs| {
                            bs.verify()?;
                            Ok(bs)
                        }) {
                            Ok(bs) => (bs, false),
                            Err(e) => match &self.golden_bitstream {
                                Some(golden) => (golden.clone(), true),
                                None => return Err(e.into()),
                            },
                        };
                    let program_cycles =
                        bs.frames.len() as u64 * costs::EFPGA_PER_FRAME;
                    report.bitstreams_programmed += 1;
                    if substituted {
                        report.golden_bitstream_substitutions += 1;
                    }
                    let detail = if substituted {
                        format!("golden bitstream substituted ({})", bs.design_name)
                    } else {
                        format!("{} frames ({})", bs.frames.len(), bs.design_name)
                    };
                    report.stage(
                        format!("program bitstream {i}"),
                        stage_cycles + program_cycles,
                        if recovered || substituted {
                            StageStatus::Recovered
                        } else {
                            StageStatus::Ok
                        },
                        detail,
                    );
                    bitstreams.push(bs);
                }
            }
        }

        // --- statistics from the transport ---
        match &self.source {
            BootSource::Flash(flash) => {
                report.flash_corrected_bytes = flash.corrected_bytes;
            }
            BootSource::SpaceWire(link) => {
                report.spw_retransmissions = link.retransmissions;
            }
        }

        // --- boot report to SRAM, then branch ---
        report.success = true;
        cluster
            .bus
            .load_bytes(BOOT_REPORT_ADDR, &report.to_bytes())?;
        for &(core, entry) in &started {
            cluster.start_core(core as usize, entry);
        }
        let mut branch_cycles = 0;
        if !started.is_empty() && self.app_run_budget > 0 {
            cluster.run(self.app_run_budget)?;
            branch_cycles = cluster.cycles;
        }
        report.stage(
            "branch",
            branch_cycles,
            StageStatus::Ok,
            format!("{} core(s) started", started.len()),
        );

        Ok(BootOutcome {
            report,
            cluster,
            bitstreams,
        })
    }

    fn fetch_loadlist(&mut self, report: &mut BootReport) -> Result<LoadList, BootError> {
        match &mut self.source {
            BootSource::Flash(flash) => {
                let start = flash.read_cycles;
                // read a generous window; the parser knows the real length
                let window = 8 * 1024;
                let raw = flash.read_redundant(LOADLIST_OFFSET, window)?;
                let list = LoadList::from_bytes(&raw)?;
                report.stage(
                    "fetch load list",
                    flash.read_cycles - start,
                    StageStatus::Ok,
                    format!("{} entries", list.entries.len()),
                );
                Ok(list)
            }
            BootSource::SpaceWire(link) => {
                let start = link.cycles;
                let raw = link.fetch("loadlist")?;
                let list = LoadList::from_bytes(&raw)?;
                report.stage(
                    "fetch load list",
                    link.cycles - start,
                    StageStatus::Ok,
                    format!("{} entries", list.entries.len()),
                );
                Ok(list)
            }
        }
    }

    fn fetch_payload(
        &mut self,
        entry: &LoadEntry,
        what: &str,
    ) -> Result<(Vec<u8>, u64, bool), BootError> {
        match &mut self.source {
            BootSource::Flash(flash) => {
                let start = flash.read_cycles;
                let corrected_before = flash.corrected_bytes;
                let data = flash.read_redundant(entry.offset, entry.size)?;
                if crc32(&data) == entry.crc {
                    let recovered = flash.corrected_bytes > corrected_before;
                    return Ok((data, flash.read_cycles - start, recovered));
                }
                // sequential fallback across copies
                if flash.mode == RedundancyMode::Sequential {
                    for copy in 1..COPIES {
                        let alt = flash.read_copy(copy, entry.offset, entry.size)?;
                        if crc32(&alt) == entry.crc {
                            return Ok((alt, flash.read_cycles - start, true));
                        }
                    }
                }
                Err(BootError::Integrity { what: what.into() })
            }
            BootSource::SpaceWire(link) => {
                let start = link.cycles;
                let retr_before = link.retransmissions;
                let data = link.fetch(&format!("obj@{:#x}", entry.offset))?;
                if crc32(&data) != entry.crc {
                    return Err(BootError::Integrity { what: what.into() });
                }
                Ok((
                    data,
                    link.cycles - start,
                    link.retransmissions > retr_before,
                ))
            }
        }
    }
}

/// Staged boot-source failover: try each configured source in order, then
/// fall back to a safe-mode boot when none succeeds.
///
/// This is the degradation ladder of Section IV: primary flash boot, then
/// the alternate source (a SpaceWire rescue link or a second flash bank),
/// then — with every source exhausted — a safe-mode boot that brings up a
/// minimal environment whose only job is to hold the machine-readable
/// failure report at [`BOOT_REPORT_ADDR`] for the ground segment.
#[derive(Debug)]
pub struct StagedBoot {
    sources: Vec<BootSource>,
    /// Per-attempt application run budget (see [`Bl1::app_run_budget`]).
    pub app_run_budget: u64,
    /// Golden bitstream handed to each attempt.
    pub golden_bitstream: Option<Bitstream>,
}

impl StagedBoot {
    /// A ladder over the given sources, tried in order. Single-use: `boot`
    /// consumes the sources.
    pub fn new(sources: Vec<BootSource>) -> Self {
        StagedBoot {
            sources,
            app_run_budget: 1_000_000,
            golden_bitstream: None,
        }
    }

    /// Install a golden fallback bitstream (builder style).
    pub fn with_golden_bitstream(mut self, bs: Bitstream) -> Self {
        self.golden_bitstream = Some(bs);
        self
    }

    /// Run the ladder: the outcome of the first source that boots (its
    /// report annotated with the failed attempts), or the safe-mode
    /// outcome when every source fails. Safe mode is a *successful*
    /// containment, so it is returned as `Ok` with
    /// [`BootReport::safe_mode`] set and `success` false.
    ///
    /// # Errors
    ///
    /// Only infrastructure failures (e.g. the report not fitting in SRAM)
    /// error out; boot-chain faults degrade through the ladder instead.
    pub fn boot(&mut self) -> Result<BootOutcome, BootError> {
        let mut failures: Vec<(&'static str, String)> = Vec::new();
        for source in std::mem::take(&mut self.sources) {
            let label = match &source {
                BootSource::Flash(_) => "flash",
                BootSource::SpaceWire(_) => "spacewire",
            };
            let mut bl1 = Bl1::new(source);
            bl1.app_run_budget = self.app_run_budget;
            bl1.golden_bitstream = self.golden_bitstream.clone();
            match bl1.boot() {
                Ok(mut out) => {
                    if !failures.is_empty() {
                        out.report.boot_source_failovers = failures.len() as u32;
                        for (i, (src, err)) in failures.iter().enumerate() {
                            out.report.stages.insert(
                                i,
                                StageRecord {
                                    name: format!("boot-source {src}"),
                                    cycles: 0,
                                    status: StageStatus::Failed,
                                    detail: err.clone(),
                                },
                            );
                        }
                        // re-deposit the annotated report
                        out.cluster
                            .bus
                            .load_bytes(BOOT_REPORT_ADDR, &out.report.to_bytes())?;
                    }
                    return Ok(out);
                }
                Err(e) => failures.push((label, e.to_string())),
            }
        }
        // Every source failed (or none was configured): safe-mode boot.
        let mut report = BootReport::default();
        for (src, err) in &failures {
            report.stage(
                format!("boot-source {src}"),
                0,
                StageStatus::Failed,
                err.clone(),
            );
        }
        report.safe_mode = true;
        report.failure = failures
            .last()
            .map(|(s, e)| format!("{s}: {e}"))
            .or_else(|| Some("no boot source configured".into()));
        report.stage(
            "safe-mode",
            costs::CPU_INIT,
            StageStatus::Recovered,
            "minimal environment, failure report deposited",
        );
        let mut cluster = Cluster::new();
        cluster
            .bus
            .load_bytes(BOOT_REPORT_ADDR, &report.to_bytes())?;
        Ok(BootOutcome {
            report,
            cluster,
            bitstreams: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flash::FlashImageBuilder;
    use hermes_cpu::isa::assemble;
    use hermes_cpu::memmap::layout;

    fn app_words(marker: u32) -> Vec<u32> {
        assemble(&format!("addi r1, r0, {marker}\nhalt")).unwrap()
    }

    fn simple_flash(mode: RedundancyMode) -> (Flash, LoadList) {
        let mut b = FlashImageBuilder::new();
        let e = b.add_software(layout::DDR_BASE, layout::DDR_BASE, &app_words(77));
        let list = LoadList { entries: vec![e] };
        (b.build(&list, mode), list)
    }

    #[test]
    fn full_flash_boot_runs_app() {
        let (flash, _) = simple_flash(RedundancyMode::Tmr);
        let mut bl1 = Bl1::new(BootSource::Flash(flash));
        let out = bl1.boot().unwrap();
        assert!(out.report.success);
        assert_eq!(out.report.images_loaded, 1);
        assert_eq!(out.cluster.core(0).reg(1), 77, "application executed");
        // report deposited in SRAM
        let stored = out.cluster.bus.read_bytes(BOOT_REPORT_ADDR, 4).unwrap();
        assert_eq!(&stored, b"HRPT");
        let text = out.report.render();
        assert!(text.contains("ddr-init"));
        assert!(text.contains("branch"));
    }

    #[test]
    fn boot_with_corrupted_copy_recovers_under_tmr() {
        let (mut flash, list) = simple_flash(RedundancyMode::Tmr);
        let off = list.entries[0].offset;
        for i in 0..8 {
            flash.flip_bit(1, off + i, (i % 8) as u8);
        }
        let mut bl1 = Bl1::new(BootSource::Flash(flash));
        let out = bl1.boot().unwrap();
        assert!(out.report.success);
        assert!(out.report.flash_corrected_bytes >= 8);
        assert_eq!(out.cluster.core(0).reg(1), 77);
    }

    #[test]
    fn boot_fails_without_redundancy() {
        let (mut flash, list) = simple_flash(RedundancyMode::None);
        flash.flip_bit(0, list.entries[0].offset, 0);
        let mut bl1 = Bl1::new(BootSource::Flash(flash));
        assert!(matches!(bl1.boot(), Err(BootError::Integrity { .. })));
    }

    #[test]
    fn sequential_mode_recovers() {
        let (mut flash, list) = simple_flash(RedundancyMode::Sequential);
        flash.flip_bit(0, list.entries[0].offset, 3);
        let mut bl1 = Bl1::new(BootSource::Flash(flash));
        let out = bl1.boot().unwrap();
        assert!(out.report.success);
        assert_eq!(out.cluster.core(0).reg(1), 77);
    }

    #[test]
    fn spacewire_boot_works_and_is_slower() {
        let (flash, list) = simple_flash(RedundancyMode::Tmr);
        let flash_cycles = {
            let (f2, _) = simple_flash(RedundancyMode::Tmr);
            let mut bl1 = Bl1::new(BootSource::Flash(f2));
            let out = bl1.boot().unwrap();
            out.report
                .stages
                .iter()
                .filter(|s| s.name.contains("fetch") || s.name.contains("load image"))
                .map(|s| s.cycles)
                .sum::<u64>()
        };
        let link = BootSource::spacewire_from_flash(flash, &list).unwrap();
        let mut bl1 = Bl1::new(BootSource::SpaceWire(link));
        let out = bl1.boot().unwrap();
        assert!(out.report.success);
        assert_eq!(out.cluster.core(0).reg(1), 77);
        let spw_cycles: u64 = out
            .report
            .stages
            .iter()
            .filter(|s| s.name.contains("fetch") || s.name.contains("load image"))
            .map(|s| s.cycles)
            .sum();
        assert!(
            spw_cycles > flash_cycles,
            "SpaceWire transfer should be slower: {spw_cycles} vs {flash_cycles}"
        );
    }

    #[test]
    fn bitstream_entry_is_programmed() {
        use hermes_fpga::device::DeviceProfile;
        use hermes_fpga::flow::{FlowOptions, NxFlow};
        use hermes_rtl::netlist::{CellOp, Netlist};
        let mut nl = Netlist::new("blinker");
        let a = nl.add_input("a", 4);
        let y = nl.add_net("y", 4);
        nl.add_cell("n", CellOp::Not, &[a], &[y]).unwrap();
        nl.mark_output(y);
        let (_, art) = NxFlow::new(DeviceProfile::ng_medium_like(), FlowOptions::default())
            .run_with_artifacts(&nl)
            .unwrap();

        let mut b = FlashImageBuilder::new();
        let e1 = b.add_bitstream(&art.bitstream);
        let e2 = b.add_software(layout::DDR_BASE, layout::DDR_BASE, &app_words(5));
        let list = LoadList {
            entries: vec![e1, e2],
        };
        let flash = b.build(&list, RedundancyMode::Tmr);
        let mut bl1 = Bl1::new(BootSource::Flash(flash));
        let out = bl1.boot().unwrap();
        assert_eq!(out.report.bitstreams_programmed, 1);
        assert_eq!(out.bitstreams.len(), 1);
        assert_eq!(out.bitstreams[0].design_name, "blinker");
        assert_eq!(out.cluster.core(0).reg(1), 5);
    }

    #[test]
    fn corrupted_bitstream_rejected() {
        use hermes_fpga::bitstream::Frame;
        let bs = Bitstream {
            device_name: "d".into(),
            design_name: "x".into(),
            frames: vec![Frame::new([0u8; 64])],
        };
        let mut bytes = bs.to_bytes();
        let n = bytes.len();
        bytes[n - 10] ^= 1; // corrupt a frame byte after CRC computation
        let mut b = FlashImageBuilder::new();
        let mut entry = b.add_data(0, &bytes);
        entry.kind = ImageKind::Bitstream;
        let list = LoadList {
            entries: vec![entry],
        };
        let flash = b.build(&list, RedundancyMode::Tmr);
        let mut bl1 = Bl1::new(BootSource::Flash(flash));
        assert!(matches!(bl1.boot(), Err(BootError::Bitstream(_))));
    }

    #[test]
    fn staged_boot_fails_over_to_spacewire() {
        // Primary flash: unrecoverable (no redundancy, payload corrupted).
        let (mut bad, list) = simple_flash(RedundancyMode::None);
        bad.flip_bit(0, list.entries[0].offset, 0);
        // Alternate: the same image served over SpaceWire.
        let (good, list2) = simple_flash(RedundancyMode::Tmr);
        let link = BootSource::spacewire_from_flash(good, &list2).unwrap();
        let mut staged = StagedBoot::new(vec![
            BootSource::Flash(bad),
            BootSource::SpaceWire(link),
        ]);
        let out = staged.boot().unwrap();
        assert!(out.report.success);
        assert!(!out.report.safe_mode);
        assert_eq!(out.report.boot_source_failovers, 1);
        assert_eq!(out.cluster.core(0).reg(1), 77, "app ran from alternate");
        let text = out.report.render();
        assert!(text.contains("boot-source flash"), "failed attempt recorded");
        // the annotated report is what sits in SRAM
        let stored = out.cluster.bus.read_bytes(BOOT_REPORT_ADDR, 4).unwrap();
        assert_eq!(&stored, b"HRPT");
    }

    #[test]
    fn staged_boot_exhausts_into_safe_mode() {
        let (mut bad1, list1) = simple_flash(RedundancyMode::None);
        bad1.flip_bit(0, list1.entries[0].offset, 0);
        let (mut bad2, list2) = simple_flash(RedundancyMode::None);
        bad2.flip_bit(0, list2.entries[0].offset, 5);
        let mut staged =
            StagedBoot::new(vec![BootSource::Flash(bad1), BootSource::Flash(bad2)]);
        let out = staged.boot().unwrap();
        assert!(!out.report.success);
        assert!(out.report.safe_mode);
        assert!(out.report.failure.as_deref().unwrap().contains("integrity"));
        assert!(out.bitstreams.is_empty());
        // machine-readable failure report deposited even in safe mode
        let stored = out.cluster.bus.read_bytes(BOOT_REPORT_ADDR, 6).unwrap();
        assert_eq!(&stored[..4], b"HRPT");
        assert_eq!(stored[4], 0, "success flag clear");
        assert_eq!(stored[5], 1, "safe-mode flag set");
    }

    #[test]
    fn golden_bitstream_substitutes_for_corrupt_one() {
        use hermes_fpga::bitstream::Frame;
        let golden = Bitstream {
            device_name: "ng-ultra".into(),
            design_name: "golden".into(),
            frames: vec![Frame::new([1u8; 64])],
        };
        let bs = Bitstream {
            device_name: "d".into(),
            design_name: "x".into(),
            frames: vec![Frame::new([0u8; 64])],
        };
        let mut bytes = bs.to_bytes();
        let n = bytes.len();
        bytes[n - 10] ^= 1; // corrupt a frame byte after CRC computation
        let mut b = FlashImageBuilder::new();
        let mut entry = b.add_data(0, &bytes);
        entry.kind = ImageKind::Bitstream;
        let list = LoadList {
            entries: vec![entry],
        };
        let flash = b.build(&list, RedundancyMode::Tmr);
        let mut bl1 =
            Bl1::new(BootSource::Flash(flash)).with_golden_bitstream(golden);
        let out = bl1.boot().unwrap();
        assert!(out.report.success);
        assert_eq!(out.report.golden_bitstream_substitutions, 1);
        assert_eq!(out.bitstreams.len(), 1);
        assert_eq!(out.bitstreams[0].design_name, "golden");
        assert!(out.report.render().contains("golden bitstream substituted"));
    }

    #[test]
    fn load_only_mode() {
        let (flash, _) = simple_flash(RedundancyMode::Tmr);
        let mut bl1 = Bl1::new(BootSource::Flash(flash));
        bl1.app_run_budget = 0;
        let out = bl1.boot().unwrap();
        assert!(out.report.success);
        assert_eq!(out.cluster.core(0).reg(1), 0, "app not executed");
    }
}
