//! BL0: the eROM first-stage loader.
//!
//! "A small application hard-coded into the SoC internal ROM that fetches a
//! binary executable (called BL1 …) from either local boot FLASH memory or
//! remotely from the SpaceWire bus" (Section IV). BL0 parses the BL1 image
//! header, fetches and integrity-checks the blob (falling back across
//! redundant flash copies if needed), and hands control to BL1.

use crate::flash::{Flash, ImageHeader, RedundancyMode, COPIES};
use crate::spacewire::SpaceWireLink;
use crate::BootError;
use hermes_fpga::bitstream::crc32;

/// Result of the BL0 stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bl0Outcome {
    /// Cycles consumed fetching and checking BL1.
    pub cycles: u64,
    /// Flash copies tried (1 = first copy was good).
    pub attempts: u32,
    /// Whether redundancy had to repair or fall back.
    pub recovered: bool,
}

/// Fetch and verify the BL1 image from flash.
///
/// # Errors
///
/// Returns [`BootError::Integrity`] if every copy fails its CRC.
pub fn fetch_bl1_from_flash(flash: &mut Flash) -> Result<Bl0Outcome, BootError> {
    let start_cycles = flash.read_cycles;
    let corrected_before = flash.corrected_bytes;
    let header_raw = flash.read_redundant(0, ImageHeader::BYTES)?;
    let header = ImageHeader::from_bytes(&header_raw)?;
    match flash.mode {
        RedundancyMode::Tmr | RedundancyMode::None => {
            let blob = flash.read_redundant(ImageHeader::BYTES, header.size)?;
            if crc32(&blob) != header.crc {
                return Err(BootError::Integrity {
                    what: "BL1 image".into(),
                });
            }
            Ok(Bl0Outcome {
                cycles: flash.read_cycles - start_cycles,
                attempts: 1,
                recovered: flash.corrected_bytes > corrected_before,
            })
        }
        RedundancyMode::Sequential => {
            for copy in 0..COPIES {
                let blob = flash.read_copy(copy, ImageHeader::BYTES, header.size)?;
                if crc32(&blob) == header.crc {
                    return Ok(Bl0Outcome {
                        cycles: flash.read_cycles - start_cycles,
                        attempts: copy as u32 + 1,
                        recovered: copy > 0,
                    });
                }
            }
            Err(BootError::Integrity {
                what: "BL1 image".into(),
            })
        }
    }
}

/// Fetch and verify the BL1 image over SpaceWire (object `"bl1"` with a
/// 12-byte [`ImageHeader`] prefix).
///
/// # Errors
///
/// Returns [`BootError::SpaceWire`] / [`BootError::Integrity`].
pub fn fetch_bl1_from_spacewire(link: &mut SpaceWireLink) -> Result<Bl0Outcome, BootError> {
    let start = link.cycles;
    let raw = link.fetch("bl1")?;
    let header = ImageHeader::from_bytes(&raw)?;
    let blob = raw
        .get(ImageHeader::BYTES as usize..(ImageHeader::BYTES + header.size) as usize)
        .ok_or_else(|| BootError::Integrity {
            what: "BL1 image (truncated)".into(),
        })?;
    if crc32(blob) != header.crc {
        return Err(BootError::Integrity {
            what: "BL1 image".into(),
        });
    }
    Ok(Bl0Outcome {
        cycles: link.cycles - start,
        attempts: 1,
        recovered: link.retransmissions > 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flash::FlashImageBuilder;
    use crate::loadlist::LoadList;
    use crate::spacewire::RemoteNode;

    fn flash_with_bl1(mode: RedundancyMode) -> Flash {
        FlashImageBuilder::new().build(&LoadList::default(), mode)
    }

    #[test]
    fn clean_fetch() {
        let mut flash = flash_with_bl1(RedundancyMode::Tmr);
        let o = fetch_bl1_from_flash(&mut flash).unwrap();
        assert_eq!(o.attempts, 1);
        assert!(!o.recovered);
        assert!(o.cycles > 0);
    }

    #[test]
    fn tmr_recovers_from_single_copy_corruption() {
        let mut flash = flash_with_bl1(RedundancyMode::Tmr);
        for b in 0..50 {
            flash.flip_bit(0, 100 + b, (b % 8) as u8);
        }
        let o = fetch_bl1_from_flash(&mut flash).unwrap();
        assert!(o.recovered);
    }

    #[test]
    fn sequential_falls_back_to_next_copy() {
        let mut flash = flash_with_bl1(RedundancyMode::Sequential);
        flash.flip_bit(0, 200, 1); // corrupt BL1 blob in copy 0
        let o = fetch_bl1_from_flash(&mut flash).unwrap();
        assert_eq!(o.attempts, 2);
        assert!(o.recovered);
    }

    #[test]
    fn unprotected_boot_fails_on_corruption() {
        let mut flash = flash_with_bl1(RedundancyMode::None);
        flash.flip_bit(0, 200, 1);
        assert!(matches!(
            fetch_bl1_from_flash(&mut flash),
            Err(BootError::Integrity { .. })
        ));
    }

    #[test]
    fn all_copies_corrupt_fails() {
        let mut flash = flash_with_bl1(RedundancyMode::Sequential);
        for c in 0..COPIES {
            flash.flip_bit(c, 300, 2);
        }
        assert!(fetch_bl1_from_flash(&mut flash).is_err());
    }

    #[test]
    fn spacewire_fetch() {
        let blob: Vec<u8> = (0..2048u32).flat_map(|i| i.to_le_bytes()).collect();
        let header = ImageHeader {
            size: blob.len() as u32,
            crc: crc32(&blob),
        };
        let mut raw = header.to_bytes().to_vec();
        raw.extend_from_slice(&blob);
        let mut remote = RemoteNode::new();
        remote.publish("bl1", raw);
        let mut link = SpaceWireLink::new(remote);
        let o = fetch_bl1_from_spacewire(&mut link).unwrap();
        assert!(o.cycles > 0);
    }
}
