//! The load list: the BL1 manifest "describing a set of application
//! software to be deployed to memory, and bitstream to be programmed in the
//! eFPGA matrix" (Section IV).
//!
//! Binary format (little-endian):
//!
//! ```text
//! magic "HLDL" | u16 version | u16 entry count | entries…
//! entry: u8 kind | u32 flash offset | u32 size | u32 dest | u32 entry_pc
//!        | u8 core | u32 crc32(payload)
//! ```

use crate::BootError;
use hermes_fpga::bitstream::crc32;

/// What an entry deploys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImageKind {
    /// Software image copied to memory and (optionally) started.
    Software,
    /// eFPGA configuration bitstream.
    Bitstream,
}

/// One load-list entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadEntry {
    /// Image kind.
    pub kind: ImageKind,
    /// Byte offset of the payload in the boot medium.
    pub offset: u32,
    /// Payload size in bytes.
    pub size: u32,
    /// Destination address for software (ignored for bitstreams).
    pub dest: u32,
    /// Entry PC for software started at boot (0 = load only).
    pub entry: u32,
    /// Core to start (software only).
    pub core: u8,
    /// CRC-32 of the payload.
    pub crc: u32,
}

/// The manifest.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LoadList {
    /// Entries in deployment order.
    pub entries: Vec<LoadEntry>,
}

/// Magic bytes of a serialized load list.
pub const MAGIC: [u8; 4] = *b"HLDL";
/// Current format version.
pub const VERSION: u16 = 1;
const ENTRY_BYTES: usize = 1 + 4 + 4 + 4 + 4 + 1 + 4;

impl LoadList {
    /// Serialize to the binary manifest format (with its own trailing CRC).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(8 + self.entries.len() * ENTRY_BYTES + 4);
        v.extend_from_slice(&MAGIC);
        v.extend_from_slice(&VERSION.to_le_bytes());
        v.extend_from_slice(&(self.entries.len() as u16).to_le_bytes());
        for e in &self.entries {
            v.push(match e.kind {
                ImageKind::Software => 0,
                ImageKind::Bitstream => 1,
            });
            v.extend_from_slice(&e.offset.to_le_bytes());
            v.extend_from_slice(&e.size.to_le_bytes());
            v.extend_from_slice(&e.dest.to_le_bytes());
            v.extend_from_slice(&e.entry.to_le_bytes());
            v.push(e.core);
            v.extend_from_slice(&e.crc.to_le_bytes());
        }
        let crc = crc32(&v);
        v.extend_from_slice(&crc.to_le_bytes());
        v
    }

    /// Parse a binary manifest, verifying its CRC.
    ///
    /// # Errors
    ///
    /// Returns [`BootError::LoadList`] for malformed or corrupt input.
    pub fn from_bytes(data: &[u8]) -> Result<Self, BootError> {
        let err = |detail: &str| BootError::LoadList {
            detail: detail.into(),
        };
        if data.len() < 12 {
            return Err(err("truncated header"));
        }
        if data[..4] != MAGIC {
            return Err(err("bad magic"));
        }
        let version = u16::from_le_bytes([data[4], data[5]]);
        if version != VERSION {
            return Err(err("unsupported version"));
        }
        let count = u16::from_le_bytes([data[6], data[7]]) as usize;
        let body_len = 8 + count * ENTRY_BYTES;
        if data.len() < body_len + 4 {
            return Err(err("truncated entries"));
        }
        let stored_crc = u32::from_le_bytes([
            data[body_len],
            data[body_len + 1],
            data[body_len + 2],
            data[body_len + 3],
        ]);
        if crc32(&data[..body_len]) != stored_crc {
            return Err(err("manifest CRC mismatch"));
        }
        let mut entries = Vec::with_capacity(count);
        for i in 0..count {
            let b = &data[8 + i * ENTRY_BYTES..8 + (i + 1) * ENTRY_BYTES];
            let u32_at =
                |o: usize| u32::from_le_bytes([b[o], b[o + 1], b[o + 2], b[o + 3]]);
            entries.push(LoadEntry {
                kind: match b[0] {
                    0 => ImageKind::Software,
                    1 => ImageKind::Bitstream,
                    k => {
                        return Err(BootError::LoadList {
                            detail: format!("unknown image kind {k}"),
                        })
                    }
                },
                offset: u32_at(1),
                size: u32_at(5),
                dest: u32_at(9),
                entry: u32_at(13),
                core: b[17],
                crc: u32_at(18),
            });
        }
        Ok(LoadList { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LoadList {
        LoadList {
            entries: vec![
                LoadEntry {
                    kind: ImageKind::Software,
                    offset: 0x2000,
                    size: 256,
                    dest: 0x4000_0000,
                    entry: 0x4000_0000,
                    core: 0,
                    crc: 0xDEAD_BEEF,
                },
                LoadEntry {
                    kind: ImageKind::Bitstream,
                    offset: 0x3000,
                    size: 4096,
                    dest: 0,
                    entry: 0,
                    core: 0,
                    crc: 0x1234_5678,
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let l = sample();
        let bytes = l.to_bytes();
        let back = LoadList::from_bytes(&bytes).unwrap();
        assert_eq!(back, l);
    }

    #[test]
    fn corruption_detected() {
        let mut bytes = sample().to_bytes();
        bytes[10] ^= 0x40;
        assert!(matches!(
            LoadList::from_bytes(&bytes),
            Err(BootError::LoadList { .. })
        ));
    }

    #[test]
    fn truncation_and_magic_checked() {
        assert!(LoadList::from_bytes(b"HLDL").is_err());
        assert!(LoadList::from_bytes(b"XXXXxxxxxxxxxxxx").is_err());
        let mut bytes = sample().to_bytes();
        bytes.truncate(bytes.len() - 6);
        assert!(LoadList::from_bytes(&bytes).is_err());
    }

    #[test]
    fn empty_list_roundtrips() {
        let l = LoadList::default();
        assert_eq!(LoadList::from_bytes(&l.to_bytes()).unwrap(), l);
    }
}
