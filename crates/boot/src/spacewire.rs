//! SpaceWire link model and the remote boot protocol.
//!
//! BL0/BL1 can fetch the boot chain "remotely from the SpaceWire bus"
//! (Section IV) following "a custom protocol". The model provides a
//! packet-level link (with CRC-protected payloads, configurable bandwidth,
//! and an error-injection hook) and a simple file-serving remote node: the
//! boot side requests a named object, the remote answers with data packets.

use crate::BootError;
use hermes_fpga::bitstream::crc32;
use std::collections::HashMap;

/// Payload bytes per SpaceWire data packet.
pub const PACKET_PAYLOAD: usize = 256;

/// Cycles to transfer one packet (SpaceWire is serial and slower than
/// local flash; ~0.5 byte/cycle plus per-packet overhead).
pub const CYCLES_PER_PACKET: u64 = (PACKET_PAYLOAD as u64) * 2 + 40;

/// Retransmissions allowed per corrupt packet before the fetch fails.
pub const RETRY_BUDGET: u32 = 3;

/// One link packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Logical address of the target node.
    pub target: u8,
    /// Sequence number within a transfer.
    pub sequence: u16,
    /// Payload bytes.
    pub payload: Vec<u8>,
    /// CRC-32 of the payload.
    pub crc: u32,
}

impl Packet {
    /// Build a packet with a valid CRC.
    pub fn new(target: u8, sequence: u16, payload: Vec<u8>) -> Self {
        Packet {
            target,
            sequence,
            crc: crc32(&payload),
            payload,
        }
    }

    /// Whether the payload matches the CRC.
    pub fn is_intact(&self) -> bool {
        crc32(&self.payload) == self.crc
    }
}

/// An in-flight bit error scheduled against an object's transfers.
#[derive(Debug, Clone, PartialEq, Eq)]
struct InjectedFault {
    object: String,
    packet: usize,
    bit: usize,
    /// How many more serves of the object this fault corrupts.
    remaining: u32,
}

/// The remote node serving boot objects over the link.
#[derive(Debug, Clone, Default)]
pub struct RemoteNode {
    objects: HashMap<String, Vec<u8>>,
    faults: Vec<InjectedFault>,
}

impl RemoteNode {
    /// An empty node.
    pub fn new() -> Self {
        RemoteNode::default()
    }

    /// Publish an object (e.g. `"loadlist"`, `"image:0"`).
    pub fn publish(&mut self, name: impl Into<String>, data: Vec<u8>) {
        self.objects.insert(name.into(), data);
    }

    /// Names of all published objects.
    pub fn object_names(&self) -> Vec<String> {
        self.objects.keys().cloned().collect()
    }

    /// Inject a single bit error into packet `packet` of the next transfer
    /// of `object` (corrupts exactly one serve).
    pub fn inject_fault(&mut self, object: impl Into<String>, packet: usize, bit: usize) {
        self.inject_persistent_fault(object, packet, bit, 1);
    }

    /// Inject a bit error that corrupts packet `packet` of the next
    /// `repeats` consecutive serves of `object` — a noisy-link model that
    /// lets tests probe the retransmission budget: a fetch serves the
    /// object once plus up to 3 retries, so `repeats <= 3` recovers and
    /// `repeats >= 4` exhausts the budget.
    pub fn inject_persistent_fault(
        &mut self,
        object: impl Into<String>,
        packet: usize,
        bit: usize,
        repeats: u32,
    ) {
        if repeats == 0 {
            return;
        }
        self.faults.push(InjectedFault {
            object: object.into(),
            packet,
            bit,
            remaining: repeats,
        });
    }

    fn serve(&mut self, name: &str) -> Option<Vec<Packet>> {
        let data = self.objects.get(name)?.clone();
        let mut packets: Vec<Packet> = data
            .chunks(PACKET_PAYLOAD)
            .enumerate()
            .map(|(i, chunk)| Packet::new(0, i as u16, chunk.to_vec()))
            .collect();
        // apply any injected faults for this object (post-CRC: corruption
        // in flight), each persisting for its remaining serve count
        for fault in self.faults.iter_mut().filter(|f| f.object == name) {
            fault.remaining -= 1;
            if let Some(pkt) = packets.get_mut(fault.packet) {
                let byte = fault.bit / 8;
                if byte < pkt.payload.len() {
                    pkt.payload[byte] ^= 1 << (fault.bit % 8);
                }
            }
        }
        self.faults.retain(|f| f.remaining > 0);
        Some(packets)
    }
}

/// The boot-side link endpoint.
#[derive(Debug, Clone, Default)]
pub struct SpaceWireLink {
    /// The remote node.
    pub remote: RemoteNode,
    /// Cycles consumed on the link.
    pub cycles: u64,
    /// Packets retransmitted after CRC failures.
    pub retransmissions: u64,
}

impl SpaceWireLink {
    /// A link to a fresh remote node.
    pub fn new(remote: RemoteNode) -> Self {
        SpaceWireLink {
            remote,
            cycles: 0,
            retransmissions: 0,
        }
    }

    /// Fetch a named object, verifying per-packet CRCs and retransmitting
    /// corrupt packets (up to [`RETRY_BUDGET`] attempts each).
    ///
    /// # Errors
    ///
    /// Returns [`BootError::SpaceWire`] if the object is unknown or a
    /// packet stays corrupt after the retry budget.
    pub fn fetch(&mut self, name: &str) -> Result<Vec<u8>, BootError> {
        let packets = self
            .remote
            .serve(name)
            .ok_or_else(|| BootError::SpaceWire {
                detail: format!("remote has no object `{name}`"),
            })?;
        let mut out = Vec::new();
        for (i, pkt) in packets.iter().enumerate() {
            self.cycles += CYCLES_PER_PACKET;
            if pkt.is_intact() {
                out.extend_from_slice(&pkt.payload);
                continue;
            }
            // retransmission loop: re-serve the object, take packet i
            let mut repaired = false;
            for _ in 0..RETRY_BUDGET {
                self.retransmissions += 1;
                self.cycles += CYCLES_PER_PACKET;
                let again = self.remote.serve(name).ok_or_else(|| BootError::SpaceWire {
                    detail: format!("remote lost object `{name}`"),
                })?;
                if let Some(p) = again.get(i) {
                    if p.is_intact() {
                        out.extend_from_slice(&p.payload);
                        repaired = true;
                        break;
                    }
                }
            }
            if !repaired {
                return Err(BootError::SpaceWire {
                    detail: format!("packet {i} of `{name}` unrecoverable"),
                });
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_roundtrip() {
        let mut remote = RemoteNode::new();
        let data: Vec<u8> = (0..1000u32).map(|i| i as u8).collect();
        remote.publish("img", data.clone());
        let mut link = SpaceWireLink::new(remote);
        let got = link.fetch("img").unwrap();
        assert_eq!(got, data);
        assert!(link.cycles >= 4 * CYCLES_PER_PACKET);
        assert_eq!(link.retransmissions, 0);
    }

    #[test]
    fn corrupt_packet_retransmitted() {
        let mut remote = RemoteNode::new();
        remote.publish("img", vec![7u8; 600]);
        remote.inject_fault("img", 1, 13);
        let mut link = SpaceWireLink::new(remote);
        let got = link.fetch("img").unwrap();
        assert_eq!(got, vec![7u8; 600]);
        assert!(link.retransmissions >= 1);
    }

    #[test]
    fn corruption_just_under_budget_recovers() {
        // The first serve plus `RETRY_BUDGET` retries are available; a
        // fault persisting for exactly RETRY_BUDGET serves leaves the last
        // retry clean.
        let mut remote = RemoteNode::new();
        remote.publish("img", vec![3u8; 700]);
        remote.inject_persistent_fault("img", 2, 5, RETRY_BUDGET);
        let mut link = SpaceWireLink::new(remote);
        let got = link.fetch("img").unwrap();
        assert_eq!(got, vec![3u8; 700]);
        assert_eq!(link.retransmissions, u64::from(RETRY_BUDGET));
    }

    #[test]
    fn corruption_beyond_budget_is_unrecoverable() {
        let mut remote = RemoteNode::new();
        remote.publish("img", vec![3u8; 700]);
        remote.inject_persistent_fault("img", 2, 5, RETRY_BUDGET + 1);
        let mut link = SpaceWireLink::new(remote);
        let err = link.fetch("img").unwrap_err();
        match err {
            BootError::SpaceWire { detail } => {
                assert!(detail.contains("unrecoverable"), "got: {detail}");
            }
            other => panic!("wrong error: {other}"),
        }
        assert_eq!(link.retransmissions, u64::from(RETRY_BUDGET));
    }

    #[test]
    fn persistent_faults_on_different_packets_are_independent() {
        let mut remote = RemoteNode::new();
        remote.publish("img", vec![9u8; 1024]);
        remote.inject_persistent_fault("img", 0, 3, 2);
        remote.inject_persistent_fault("img", 3, 7, 1);
        let mut link = SpaceWireLink::new(remote);
        let got = link.fetch("img").unwrap();
        assert_eq!(got, vec![9u8; 1024]);
        assert!(link.retransmissions >= 2);
    }

    #[test]
    fn unknown_object_fails() {
        let mut link = SpaceWireLink::new(RemoteNode::new());
        assert!(matches!(
            link.fetch("nope"),
            Err(BootError::SpaceWire { .. })
        ));
    }

    #[test]
    fn packet_crc_detects_tamper() {
        let mut p = Packet::new(0, 0, vec![1, 2, 3]);
        assert!(p.is_intact());
        p.payload[1] ^= 0x80;
        assert!(!p.is_intact());
    }
}
