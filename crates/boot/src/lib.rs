//! # hermes-boot
//!
//! The NG-ULTRA boot chain of Section IV of the paper:
//!
//! * **BL0** — the small eROM-resident loader (developed in DAHLIA)
//!   that fetches BL1 from local boot flash or remotely over SpaceWire;
//! * **BL1** — the field-loadable generic level-1 boot loader developed in
//!   HERMES: initializes clocks/PLLs, DDR, flash and SpaceWire controllers,
//!   tightly-coupled memories and the MPU; processes a **load list**
//!   describing application software images and eFPGA bitstreams; manages
//!   **integrity** (CRC-32) and **basic redundancy** of flash-resident
//!   software (TMR or sequential copies); and produces a **boot report**
//!   for the next stage;
//! * **BL2 / application** — the loaded software, started on the
//!   `hermes-cpu` quad-core cluster.
//!
//! ## Example
//!
//! ```
//! use hermes_boot::flash::{Flash, RedundancyMode};
//! use hermes_boot::loadlist::{ImageKind, LoadEntry, LoadList};
//! use hermes_boot::bl1::{Bl1, BootSource};
//!
//! # fn main() -> Result<(), hermes_boot::BootError> {
//! // Build a flash image holding BL1 + a load list + one application.
//! let app_words = hermes_cpu::isa::assemble("addi r1, r0, 42\nhalt")
//!     .map_err(hermes_boot::BootError::Cpu)?;
//! let mut builder = hermes_boot::flash::FlashImageBuilder::new();
//! let app = builder.add_software(0x1000_0000, 0x1000_0000, &app_words);
//! let list = LoadList { entries: vec![app] };
//! let flash = builder.build(&list, RedundancyMode::Tmr);
//!
//! let mut bl1 = Bl1::new(BootSource::Flash(flash));
//! let outcome = bl1.boot()?;
//! assert!(outcome.report.success);
//! // the application actually ran on core 0:
//! assert_eq!(outcome.cluster.core(0).reg(1), 42);
//! # Ok(())
//! # }
//! ```

pub mod bl0;
pub mod bl1;
pub mod flash;
pub mod loadlist;
pub mod report;
pub mod spacewire;

use std::fmt;

/// Errors produced by the boot chain.
#[derive(Debug, Clone, PartialEq)]
pub enum BootError {
    /// An image failed its integrity check on all available copies.
    Integrity {
        /// What was being loaded.
        what: String,
    },
    /// The load list is malformed.
    LoadList {
        /// Detail message.
        detail: String,
    },
    /// A flash access was out of range.
    FlashRange {
        /// Offset requested.
        offset: u32,
        /// Length requested.
        len: u32,
    },
    /// The SpaceWire link failed to deliver a requested image.
    SpaceWire {
        /// Detail message.
        detail: String,
    },
    /// A bitstream failed verification.
    Bitstream(hermes_fpga::FpgaError),
    /// Loading into target memory failed.
    Cpu(hermes_cpu::CpuError),
}

impl fmt::Display for BootError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BootError::Integrity { what } => {
                write!(f, "integrity failure loading {what} (all copies corrupt)")
            }
            BootError::LoadList { detail } => write!(f, "malformed load list: {detail}"),
            BootError::FlashRange { offset, len } => {
                write!(f, "flash access out of range: {len} bytes at {offset:#x}")
            }
            BootError::SpaceWire { detail } => write!(f, "spacewire failure: {detail}"),
            BootError::Bitstream(e) => write!(f, "bitstream rejected: {e}"),
            BootError::Cpu(e) => write!(f, "load failure: {e}"),
        }
    }
}

impl std::error::Error for BootError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BootError::Bitstream(e) => Some(e),
            BootError::Cpu(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hermes_fpga::FpgaError> for BootError {
    fn from(e: hermes_fpga::FpgaError) -> Self {
        BootError::Bitstream(e)
    }
}

impl From<hermes_cpu::CpuError> for BootError {
    fn from(e: hermes_cpu::CpuError) -> Self {
        BootError::Cpu(e)
    }
}
