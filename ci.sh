#!/usr/bin/env bash
# Tier-1 gate: build, test, lint. Fully offline (the workspace is hermetic).
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

echo "ci: OK"
