#!/usr/bin/env bash
# Tier-1 gate: build, test, lint. Fully offline (the workspace is hermetic).
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# Parallel determinism gate: the worker count is a throughput knob, never a
# results knob. Run the fanned-out experiments serial and 4-wide (via the
# --jobs flag, which overrides HERMES_JOBS) and diff everything except the
# wall-clock lines.
EXP=target/release/experiments
strip_timing() { grep -v "completed in" "$1" > "$1.stripped"; }
"$EXP" --jobs 1 e1 e2 e7 e10 e14 e15 e16 e19 > /tmp/hermes_serial.txt
"$EXP" --jobs 4 e1 e2 e7 e10 e14 e15 e16 e19 > /tmp/hermes_par.txt
strip_timing /tmp/hermes_serial.txt
strip_timing /tmp/hermes_par.txt
diff /tmp/hermes_serial.txt.stripped /tmp/hermes_par.txt.stripped \
  || { echo "ci: parallel output diverged from serial" >&2; exit 1; }

# Settle-mode golden gate: event-driven settling is a speed knob, never a
# results knob. Re-render the same experiments with event-driven settle
# disabled and require byte-identical text. (E19 is RTL-free, so the settle
# knobs cannot touch it; it rides along only so the diff baseline matches
# the jobs-gate run list.)
HERMES_EVENT_SETTLE=off "$EXP" --jobs 1 e1 e2 e7 e10 e14 e15 e16 e19 > /tmp/hermes_fullsettle.txt
strip_timing /tmp/hermes_fullsettle.txt
diff /tmp/hermes_serial.txt.stripped /tmp/hermes_fullsettle.txt.stripped \
  || { echo "ci: output diverged between event-driven and full settle" >&2; exit 1; }

# Packed-settle golden gate: word-parallel bit-packing is likewise a speed
# knob. Re-render with the packed engine disabled and require byte-identical
# text; a malformed knob value must be rejected up front, not defaulted.
HERMES_PACKED_SETTLE=off "$EXP" --jobs 1 e1 e2 e7 e10 e14 e15 e16 e19 > /tmp/hermes_scalarsettle.txt
strip_timing /tmp/hermes_scalarsettle.txt
diff /tmp/hermes_serial.txt.stripped /tmp/hermes_scalarsettle.txt.stripped \
  || { echo "ci: output diverged between packed and scalar settle" >&2; exit 1; }
if HERMES_PACKED_SETTLE=banana "$EXP" --list > /dev/null 2>&1; then
  echo "ci: HERMES_PACKED_SETTLE=banana must be rejected" >&2; exit 1
fi
HERMES_PACKED_SETTLE=on "$EXP" --list > /dev/null \
  || { echo "ci: HERMES_PACKED_SETTLE=on must be accepted" >&2; exit 1; }

# Event-kernel golden gate: the unified timer-wheel scheduler is a
# host-work knob, never a results knob. Re-render the same experiments
# with the kernel disabled (sorted-reference scheduler / per-tick
# polling loops) and require byte-identical text; a malformed knob value
# must be rejected up front, not defaulted.
HERMES_EVENT_KERNEL=off "$EXP" --jobs 1 e1 e2 e7 e10 e14 e15 e16 e19 > /tmp/hermes_pollsched.txt
strip_timing /tmp/hermes_pollsched.txt
diff /tmp/hermes_serial.txt.stripped /tmp/hermes_pollsched.txt.stripped \
  || { echo "ci: output diverged between event kernel and polling schedulers" >&2; exit 1; }
if HERMES_EVENT_KERNEL=banana "$EXP" --list > /dev/null 2>&1; then
  echo "ci: HERMES_EVENT_KERNEL=banana must be rejected" >&2; exit 1
fi
HERMES_EVENT_KERNEL=on "$EXP" --list > /dev/null \
  || { echo "ci: HERMES_EVENT_KERNEL=on must be accepted" >&2; exit 1; }

# Trace determinism gate: the flight recorder is part of the determinism
# contract. Record the same experiments serial and 4-wide, strip the
# wall-clock side channel (every wall-derived field sits on a line whose
# key starts with "wall), and require byte-identical documents.
"$EXP" --jobs 1 e1 e2 e7 e10 e14 e15 e16 e19 --trace /tmp/hermes_trace_serial.json > /dev/null
"$EXP" --jobs 4 e1 e2 e7 e10 e14 e15 e16 e19 --trace /tmp/hermes_trace_par.json > /dev/null
grep -q '"schema": "hermes-trace/v1"' /tmp/hermes_trace_serial.json \
  || { echo "ci: trace document missing hermes-trace/v1 schema" >&2; exit 1; }
grep -v '"wall' /tmp/hermes_trace_serial.json > /tmp/hermes_trace_serial.stripped
grep -v '"wall' /tmp/hermes_trace_par.json > /tmp/hermes_trace_par.stripped
diff /tmp/hermes_trace_serial.stripped /tmp/hermes_trace_par.stripped \
  || { echo "ci: trace diverged between HERMES_JOBS=1 and 4" >&2; exit 1; }
test -s /tmp/hermes_trace_serial.chrome.json \
  || { echo "ci: chrome trace rendering missing" >&2; exit 1; }

# CLI surface: --list prints every id without running anything, the
# output flags refuse to run with nothing selected, and --jobs rejects
# zero or unparsable worker counts instead of silently defaulting.
# (Capture once and grep the variable: piping straight into `grep -q`
# races an EPIPE panic in the binary when grep exits on first match.)
LIST=$("$EXP" --list)
for id in e13 e14 e15 e16 e17 e18 e19; do
  grep -q "^$id " <<< "$LIST" || { echo "ci: --list missing $id" >&2; exit 1; }
done
if "$EXP" --list --trace /tmp/never.json > /dev/null 2>&1; then
  echo "ci: --list --trace must be rejected" >&2; exit 1
fi
if "$EXP" --list --profile /tmp/never.json > /dev/null 2>&1; then
  echo "ci: --list --profile must be rejected" >&2; exit 1
fi
if "$EXP" --profile > /dev/null 2>&1; then
  echo "ci: bare --profile must be rejected" >&2; exit 1
fi
if "$EXP" --jobs 0 --list > /dev/null 2>&1; then
  echo "ci: --jobs 0 must be rejected" >&2; exit 1
fi
if "$EXP" --jobs banana --list > /dev/null 2>&1; then
  echo "ci: --jobs banana must be rejected" >&2; exit 1
fi
if "$EXP" --jobs > /dev/null 2>&1; then
  echo "ci: bare --jobs must be rejected" >&2; exit 1
fi

# Trace-sampling knob: strictly parsed permille, rejected up front — a
# typo must never silently disable (or fully enable) request tracing.
if HERMES_TRACE_SAMPLE=banana "$EXP" --list > /dev/null 2>&1; then
  echo "ci: HERMES_TRACE_SAMPLE=banana must be rejected" >&2; exit 1
fi
if HERMES_TRACE_SAMPLE=1001 "$EXP" --list > /dev/null 2>&1; then
  echo "ci: HERMES_TRACE_SAMPLE=1001 must be rejected (permille is 0..=1000)" >&2; exit 1
fi
HERMES_TRACE_SAMPLE=250 "$EXP" --list > /dev/null \
  || { echo "ci: HERMES_TRACE_SAMPLE=250 must be accepted" >&2; exit 1; }

# E11 smoke: the throughput experiment must run end to end and emit JSON.
"$EXP" e11 --json /tmp/hermes_bench_smoke.json > /dev/null
python3 -c "import json; json.load(open('/tmp/hermes_bench_smoke.json'))" 2>/dev/null \
  || grep -q '"schema": "hermes-bench/v1"' /tmp/hermes_bench_smoke.json

# E12 smoke: the observability-overhead experiment must run end to end
# and its trace document must carry the hermes-trace/v1 schema line.
"$EXP" e12 --trace /tmp/hermes_e12_trace.json > /dev/null
grep -q '"schema": "hermes-trace/v1"' /tmp/hermes_e12_trace.json \
  || { echo "ci: e12 trace missing schema line" >&2; exit 1; }
python3 -c "import json; json.load(open('/tmp/hermes_e12_trace.json'))" 2>/dev/null \
  || echo "ci: (python3 unavailable; schema line checked)"

# E13 smoke: event-driven settle + characterization cache must run end to
# end, emit schema'd JSON, and report a sane activity factor (0 < f <= 1)
# for every kernel.
"$EXP" e13 --json /tmp/hermes_e13_smoke.json > /dev/null
python3 - <<'PY' 2>/dev/null || grep -q '"schema": "hermes-bench/v1"' /tmp/hermes_e13_smoke.json
import json
doc = json.load(open('/tmp/hermes_e13_smoke.json'))
assert doc["schema"] == "hermes-bench/v1"
tables = {t["id"]: t for e in doc["experiments"] for t in e["tables"]}
rows = tables["e13a"]["rows"]
assert len(rows) >= 3, "e13a must cover the kernel set"
for row in rows:
    f = float(row["activity"])
    assert 0.0 < f <= 1.0, f"activity factor {f} out of (0, 1]"
print("ci: e13 activity factors sane")
PY

# E14 smoke: the serving experiment must run end to end, emit schema'd
# JSON, sweep at least four offered loads reaching 1.5x saturation, and
# account every request at every point: served + shed + rejected ==
# offered, with zero unaccounted requests in the chaos campaign too.
"$EXP" e14 --json /tmp/hermes_e14_smoke.json > /dev/null
python3 - <<'PY' 2>/dev/null || grep -q '"schema": "hermes-bench/v1"' /tmp/hermes_e14_smoke.json
import json
doc = json.load(open('/tmp/hermes_e14_smoke.json'))
assert doc["schema"] == "hermes-bench/v1"
tables = {t["id"]: t for e in doc["experiments"] for t in e["tables"]}
sweep = tables["e14a"]["rows"]
assert len(sweep) >= 4, "e14a must sweep at least 4 offered loads"
assert max(int(r["load_pct"]) for r in sweep) >= 150, "sweep must pass 1.5x saturation"
for row in sweep:
    offered = int(row["offered"])
    total = int(row["served"]) + int(row["shed"]) + int(row["rejected"])
    assert total == offered, f"load {row['load_pct']}%: {total} accounted of {offered} offered"
for row in tables["e14b"]["rows"]:
    assert row["accounted"] == "yes", f"chaos campaign unaccounted: {row}"
assert any(int(r["requeued"]) > 0 for r in tables["e14b"]["rows"]), "chaos must requeue mid-batch work"
jobs = tables["e14c"]["rows"]
assert len({r["checksum"] for r in jobs}) == 1, "output checksum differs across jobs"
print("ci: e14 shed accounting holds at every load")
PY

# E15 smoke: the adversarial-isolation experiment must run end to end,
# emit schema'd JSON, sweep at least four seeds, and hold the
# zero-silent-leak gate at every point: probes == trapped, zero silent
# probes, sentinels intact, no trap blamed on a victim, and every fuzzed
# hypercall attributed.
"$EXP" e15 --json /tmp/hermes_e15_smoke.json > /dev/null
python3 - <<'PY' 2>/dev/null || grep -q '"schema": "hermes-bench/v1"' /tmp/hermes_e15_smoke.json
import json
doc = json.load(open('/tmp/hermes_e15_smoke.json'))
assert doc["schema"] == "hermes-bench/v1"
tables = {t["id"]: t for e in doc["experiments"] for t in e["tables"]}
sweep = tables["e15a"]["rows"]
assert len({r["seed"] for r in sweep}) >= 4, "e15a must sweep at least 4 seeds"
assert len({r["isolation"] for r in sweep}) == 2, "e15a must cover both isolation modes"
for row in sweep:
    assert int(row["probes"]) == int(row["trapped"]), f"unaccounted probes: {row}"
    assert int(row["silent"]) == 0, f"silent cross-partition probe: {row}"
    assert row["sentinels"] == "intact", f"victim sentinel breached: {row}"
    assert int(row["victim_blamed"]) == 0, f"trap blamed on a victim: {row}"
    assert row["leak_free"] == "yes", f"leak gate failed: {row}"
    assert int(row["escalations"]) >= 1 and int(row["failovers"]) >= 1, f"HM ladder idle: {row}"
for row in tables["e15d"]["rows"]:
    assert int(row["attempts"]) == int(row["attributed"]), f"unattributed fuzz: {row}"
    assert int(row["silent"]) == 0, f"silent fuzzed hypercall: {row}"
print("ci: e15 zero-silent-leak gate holds")
PY

# E16 smoke: the word-parallel + partitioned simulation experiment must
# run end to end, emit schema'd JSON, pack lanes and partition the tiled
# fabric, checksum identically across the worker sweep, and clear the
# headline perf gate: the packed event-driven engine >= 10x the hashmap
# baseline on the one-active-tile SoC scenario.
"$EXP" e16 --json /tmp/hermes_e16_smoke.json > /dev/null
python3 - <<'PY' 2>/dev/null || grep -q '"schema": "hermes-bench/v1"' /tmp/hermes_e16_smoke.json
import json
doc = json.load(open('/tmp/hermes_e16_smoke.json'))
assert doc["schema"] == "hermes-bench/v1"
tables = {t["id"]: t for e in doc["experiments"] for t in e["tables"]}
soc = [r for r in tables["e16a"]["rows"] if r["design"] != "acc"]
assert soc and all(int(r["packed_lanes"]) > 0 for r in soc), "tiled fabric must pack lanes"
assert all(int(r["partitions"]) > 1 for r in soc), "tiled fabric must partition"
sweep = tables["e16d"]["rows"]
assert len(sweep) >= 3, "e16d must sweep at least 3 worker counts"
assert len({r["state_fnv"] for r in sweep}) == 1, "state checksum differs across jobs"
gate = [r for r in tables["e16_wall"]["rows"]
        if r["scenario"] == "soc-one-active" and r["engine"] == "packed-event"]
assert len(gate) == 1, "missing the one-active packed-event gate row"
speedup = float(gate[0]["speedup_vs_hashmap"])
assert speedup >= 10.0, f"perf gate: {speedup:.2f}x < 10x vs hashmap baseline"
print(f"ci: e16 perf gate holds ({speedup:.1f}x vs pre-dense baseline)")
PY

# E17: causal tracing, critical-path profiling, SLO burn-rate alerting.
# One run emits the smoke JSON and a profile at --jobs 1; a second run
# profiles at --jobs 4. Profiles carry no wall channel at all, so the
# jobs-determinism diff is a straight byte diff, no stripping.
"$EXP" e17 --jobs 1 --json /tmp/hermes_e17_smoke.json --profile /tmp/hermes_e17_p1.json > /dev/null
"$EXP" e17 --jobs 4 --profile /tmp/hermes_e17_p4.json > /dev/null
grep -q '"schema": "hermes-profile/v1"' /tmp/hermes_e17_p1.json \
  || { echo "ci: profile document missing hermes-profile/v1 schema" >&2; exit 1; }
if grep -q '"wall' /tmp/hermes_e17_p1.json; then
  echo "ci: profile document must carry no wall-clock fields" >&2; exit 1
fi
diff /tmp/hermes_e17_p1.json /tmp/hermes_e17_p4.json \
  || { echo "ci: profile diverged between --jobs 1 and 4" >&2; exit 1; }
diff /tmp/hermes_e17_p1.folded /tmp/hermes_e17_p4.folded \
  || { echo "ci: folded stacks diverged between --jobs 1 and 4" >&2; exit 1; }
python3 - <<'PY' 2>/dev/null || grep -q '"schema": "hermes-bench/v1"' /tmp/hermes_e17_smoke.json
import json
doc = json.load(open('/tmp/hermes_e17_smoke.json'))
assert doc["schema"] == "hermes-bench/v1"
tables = {t["id"]: t for e in doc["experiments"] for t in e["tables"]}
sweep = tables["e17a"]["rows"]
assert len(sweep) >= 4, "e17a must sweep at least 4 offered loads"
for row in sweep:
    load = int(row["load_pct"])
    assert int(row["cp_exact"]) == int(row["cp_total"]) == int(row["served"]), \
        f"critical-path accounting broken: {row}"
    paged = row["alert"] == "page"
    assert paged == (load >= 150), f"SLO must page at >=150% and only there: {row}"
    if paged:
        assert int(row["transitions"]) > 0, f"paging without alert transitions: {row}"
for row in tables["e17b"]["rows"]:
    assert row["identical"] == "yes", f"tracing changed results: {row}"
docs = tables["e17c"]["rows"]
assert len({r["trace_fnv"] for r in docs}) == 1, "trace checksum differs across jobs"
assert len({r["profile_fnv"] for r in docs}) == 1, "profile checksum differs across jobs"
chain = {r["subsystem"] for r in tables["e17d"]["rows"]}
assert {"hls", "dma", "xng"} <= chain, f"cross-layer trace incomplete: {chain}"
print("ci: e17 critical-path + SLO gates hold")
PY

# E18 smoke: the unified-event-kernel experiment must run end to end,
# emit schema'd JSON, fast-forward in every layer, clear the >=10x
# cross-layer polled-tick reduction gate (the gate is algorithmic —
# counted scheduler passes, not wall clock — so it is safe to assert on
# a live run even on this single shared core), keep the off-knob replay
# byte-identical, and leave no timer unaccounted on the wheel.
"$EXP" e18 --jobs 1 --json /tmp/hermes_e18_smoke.json > /dev/null
python3 - <<'PY' 2>/dev/null || grep -q '"schema": "hermes-bench/v1"' /tmp/hermes_e18_smoke.json
import json
doc = json.load(open('/tmp/hermes_e18_smoke.json'))
assert doc["schema"] == "hermes-bench/v1"
tables = {t["id"]: t for e in doc["experiments"] for t in e["tables"]}
rows = {r["layer"]: r for r in tables["e18a"]["rows"]}
assert {"serve", "xng", "axi", "total"} <= set(rows), f"e18a layers missing: {set(rows)}"
for name, row in rows.items():
    if name != "total":
        assert int(row["skipped"]) > 0, f"{name} leg never fast-forwarded: {row}"
total = rows["total"]
assert int(total["polled"]) + int(total["skipped"]) == int(total["span_ticks"])
reduction = int(total["reduction_x"])
assert reduction >= 10, f"perf gate: {reduction}x < 10x polled-tick reduction"
wheel = {r["layer"]: r for r in tables["e18b"]["rows"]}
for name, row in wheel.items():
    assert int(row["posted"]) >= int(row["popped"]) + int(row["cancelled"]), \
        f"wheel over-drained: {row}"
assert int(wheel["total"]["cascades"]) > 0, "overflow calendar never cascaded"
for row in tables["e18c"]["rows"]:
    assert row["identical"] == "yes", f"event-kernel knob moved results: {row}"
print(f"ci: e18 event-kernel gate holds ({reduction}x polled-tick reduction)")
PY

# E19 smoke: the sharded-fleet experiment must run end to end, emit
# schema'd JSON, sweep 4/8/16 shards over at least a million requests,
# account every request on every row (served + shed + rejected +
# balancer_shed == offered — under shard-kill chaos too: evacuated work
# is re-routed, never lost), keep the routing skew under the 1.5x gate,
# and show the autoscaler taking at least one scale-up and one completed
# drain-then-kill scale-down.
"$EXP" e19 --jobs 1 --json /tmp/hermes_e19_smoke.json > /dev/null
python3 - <<'PY' 2>/dev/null || grep -q '"schema": "hermes-bench/v1"' /tmp/hermes_e19_smoke.json
import json
doc = json.load(open('/tmp/hermes_e19_smoke.json'))
assert doc["schema"] == "hermes-bench/v1"
tables = {t["id"]: t for e in doc["experiments"] for t in e["tables"]}
def accounted(row):
    total = (int(row["served"]) + int(row["shed"]) + int(row["rejected"])
             + int(row.get("balancer_shed", 0)))
    assert total == int(row["offered"]), f"fleet accounting broken: {row}"
sweep = tables["e19a"]["rows"]
assert {int(r["shards"]) for r in sweep} == {4, 8, 16}, "e19a must sweep 4/8/16 shards"
assert sum(int(r["offered"]) for r in sweep) >= 1_000_000, "e19a must offer >= 1M requests"
for row in sweep:
    accounted(row)
    assert int(row["skew_x100"]) <= 150, f"routing skew gate: {row}"
chaos = {r["campaign"]: r for r in tables["e19b"]["rows"]}
for row in chaos.values():
    accounted(row)
    assert row["accounted"] == "yes", f"fleet chaos unaccounted: {row}"
kill = next(r for r in chaos.values() if int(r["kills"]) > 0)
assert int(kill["rerouted"]) > 0, f"kills must evacuate live work: {kill}"
assert int(kill["revives"]) > 0, f"victims must rejoin the ring: {kill}"
scale = tables["e19c"]["rows"][0]
accounted(scale)
assert int(scale["scale_ups"]) >= 1, f"autoscaler never scaled up: {scale}"
assert int(scale["scale_downs"]) >= 1, f"autoscaler never drained down: {scale}"
ident = tables["e19d"]["rows"]
assert len({r["checksum"] for r in ident}) == 1, "fleet checksum differs across jobs/kernel"
print("ci: e19 fleet accounting, skew, and elasticity gates hold")
PY

# Committed-baseline gate: the checked-in BENCH_hermes.json must carry
# the E17 rows, and its sampled-tracing overhead row (16 permille) must
# stay under 5% vs the untraced recorder — the HERMES_TRACE_SAMPLE knob
# is the documented bound on always-on tracing cost. Asserted against
# the committed file (not a fresh run): this container's single shared
# core makes live wall-clock gates flaky by design.
python3 - <<'PY' 2>/dev/null || grep -q '"e17b"' BENCH_hermes.json
import json
doc = json.load(open('BENCH_hermes.json'))
tables = {t["id"]: t for e in doc["experiments"] for t in e["tables"]}
rows = {str(r["sample_permille"]): r for r in tables["e17b"]["rows"]}
pct = int(rows["16"]["vs_untraced_pct"])
assert pct < 5, f"committed sampled-tracing overhead {pct}% >= 5%"
sweep = tables["e17a"]["rows"]
assert any(r["alert"] == "page" for r in sweep), "committed e17a never pages"
print(f"ci: committed sampled-tracing overhead {pct}% < 5%")
PY

# The committed baseline must also carry the E18 rows with the >=10x
# cross-layer polled-tick reduction intact.
python3 - <<'PY' 2>/dev/null || grep -q '"e18a"' BENCH_hermes.json
import json
doc = json.load(open('BENCH_hermes.json'))
tables = {t["id"]: t for e in doc["experiments"] for t in e["tables"]}
total = next(r for r in tables["e18a"]["rows"] if r["layer"] == "total")
reduction = int(total["reduction_x"])
assert reduction >= 10, f"committed e18 reduction {reduction}x < 10x"
print(f"ci: committed e18 polled-tick reduction {reduction}x >= 10x")
PY

# The committed baseline must also carry the E19 rows: a >=1M-request
# fleet sweep whose 8-shard point keeps the consistent-hash + po2c
# routing skew within 1.5x of even.
python3 - <<'PY' 2>/dev/null || grep -q '"e19a"' BENCH_hermes.json
import json
doc = json.load(open('BENCH_hermes.json'))
tables = {t["id"]: t for e in doc["experiments"] for t in e["tables"]}
sweep = tables["e19a"]["rows"]
assert sum(int(r["offered"]) for r in sweep) >= 1_000_000, "committed e19a under 1M requests"
eight = next(r for r in sweep if int(r["shards"]) == 8)
skew = int(eight["skew_x100"])
assert skew <= 150, f"committed e19 routing skew {skew} > 150"
print(f"ci: committed e19 8-shard routing skew {skew} <= 150")
PY

echo "ci: OK"
