#!/usr/bin/env bash
# Tier-1 gate: build, test, lint. Fully offline (the workspace is hermetic).
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# Parallel determinism gate: the worker count is a throughput knob, never a
# results knob. Run the fanned-out experiments serial and 4-wide and diff
# everything except the wall-clock lines.
EXP=target/release/experiments
strip_timing() { grep -v "completed in" "$1" > "$1.stripped"; }
HERMES_JOBS=1 "$EXP" e1 e2 e7 e10 > /tmp/hermes_serial.txt
HERMES_JOBS=4 "$EXP" e1 e2 e7 e10 > /tmp/hermes_par.txt
strip_timing /tmp/hermes_serial.txt
strip_timing /tmp/hermes_par.txt
diff /tmp/hermes_serial.txt.stripped /tmp/hermes_par.txt.stripped \
  || { echo "ci: parallel output diverged from serial" >&2; exit 1; }

# E11 smoke: the throughput experiment must run end to end and emit JSON.
"$EXP" e11 --json /tmp/hermes_bench_smoke.json > /dev/null
python3 -c "import json; json.load(open('/tmp/hermes_bench_smoke.json'))" 2>/dev/null \
  || grep -q '"schema": "hermes-bench/v1"' /tmp/hermes_bench_smoke.json

echo "ci: OK"
