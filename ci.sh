#!/usr/bin/env bash
# Tier-1 gate: build, test, lint. Fully offline (the workspace is hermetic).
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# Parallel determinism gate: the worker count is a throughput knob, never a
# results knob. Run the fanned-out experiments serial and 4-wide and diff
# everything except the wall-clock lines.
EXP=target/release/experiments
strip_timing() { grep -v "completed in" "$1" > "$1.stripped"; }
HERMES_JOBS=1 "$EXP" e1 e2 e7 e10 > /tmp/hermes_serial.txt
HERMES_JOBS=4 "$EXP" e1 e2 e7 e10 > /tmp/hermes_par.txt
strip_timing /tmp/hermes_serial.txt
strip_timing /tmp/hermes_par.txt
diff /tmp/hermes_serial.txt.stripped /tmp/hermes_par.txt.stripped \
  || { echo "ci: parallel output diverged from serial" >&2; exit 1; }

# Trace determinism gate: the flight recorder is part of the determinism
# contract. Record the same experiments serial and 4-wide, strip the
# wall-clock side channel (every wall-derived field sits on a line whose
# key starts with "wall), and require byte-identical documents.
HERMES_JOBS=1 "$EXP" e1 e2 e7 e10 --trace /tmp/hermes_trace_serial.json > /dev/null
HERMES_JOBS=4 "$EXP" e1 e2 e7 e10 --trace /tmp/hermes_trace_par.json > /dev/null
grep -q '"schema": "hermes-trace/v1"' /tmp/hermes_trace_serial.json \
  || { echo "ci: trace document missing hermes-trace/v1 schema" >&2; exit 1; }
grep -v '"wall' /tmp/hermes_trace_serial.json > /tmp/hermes_trace_serial.stripped
grep -v '"wall' /tmp/hermes_trace_par.json > /tmp/hermes_trace_par.stripped
diff /tmp/hermes_trace_serial.stripped /tmp/hermes_trace_par.stripped \
  || { echo "ci: trace diverged between HERMES_JOBS=1 and 4" >&2; exit 1; }
test -s /tmp/hermes_trace_serial.chrome.json \
  || { echo "ci: chrome trace rendering missing" >&2; exit 1; }

# CLI surface: --list prints every id without running anything, and the
# output flags refuse to run with nothing selected.
"$EXP" --list | grep -q '^e12 ' || { echo "ci: --list missing e12" >&2; exit 1; }
if "$EXP" --list --trace /tmp/never.json > /dev/null 2>&1; then
  echo "ci: --list --trace must be rejected" >&2; exit 1
fi

# E11 smoke: the throughput experiment must run end to end and emit JSON.
"$EXP" e11 --json /tmp/hermes_bench_smoke.json > /dev/null
python3 -c "import json; json.load(open('/tmp/hermes_bench_smoke.json'))" 2>/dev/null \
  || grep -q '"schema": "hermes-bench/v1"' /tmp/hermes_bench_smoke.json

# E12 smoke: the observability-overhead experiment must run end to end
# and its trace document must carry the hermes-trace/v1 schema line.
"$EXP" e12 --trace /tmp/hermes_e12_trace.json > /dev/null
grep -q '"schema": "hermes-trace/v1"' /tmp/hermes_e12_trace.json \
  || { echo "ci: e12 trace missing schema line" >&2; exit 1; }
python3 -c "import json; json.load(open('/tmp/hermes_e12_trace.json'))" 2>/dev/null \
  || echo "ci: (python3 unavailable; schema line checked)"

echo "ci: OK"
